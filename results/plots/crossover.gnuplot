set datafile separator comma
set terminal pngcairo size 900,600
set output 'results/plots/crossover.png'
set title 'crossover'
set key outside right
set grid
set logscale xy
set xlabel 'cardinality n'
set ylabel 'execution time (s)'
plot 'results/crossover.csv' skip 1 using 1:2 with linespoints title 'Q-inventory (exact)', \
'' skip 1 using 1:3 with linespoints title 'BFCE (0.05, 0.05)'
