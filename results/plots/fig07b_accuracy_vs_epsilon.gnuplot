set datafile separator comma
set terminal pngcairo size 900,600
set output 'results/plots/fig07b_accuracy_vs_epsilon.png'
set title 'fig07b accuracy vs epsilon'
set key outside right
set grid
set xlabel 'epsilon'
set ylabel 'accuracy'
set yrange [0:0.06]
plot 'results/fig07b_accuracy_vs_epsilon.csv' skip 1 using 1:2 with linespoints title 'T1', \
'' skip 1 using 1:3 with linespoints title 'T2', \
'' skip 1 using 1:4 with linespoints title 'T3'
