set datafile separator comma
set terminal pngcairo size 900,600
set output 'results/plots/fig07a_accuracy_vs_n.png'
set title 'fig07a accuracy vs n'
set key outside right
set grid
set logscale x
set xlabel 'cardinality n'
set ylabel 'accuracy |n_hat - n| / n'
set yrange [0:0.06]
plot 'results/fig07a_accuracy_vs_n.csv' skip 1 using 1:2 with linespoints title 'T1', \
'' skip 1 using 1:3 with linespoints title 'T2', \
'' skip 1 using 1:4 with linespoints title 'T3'
