set datafile separator comma
set terminal pngcairo size 900,600
set output 'results/plots/fig03_linearity.png'
set title 'fig03 linearity'
set key outside right
set grid
set xlabel 'cardinality n'
set ylabel 'slots'
plot 'results/fig03_linearity.csv' skip 1 using 1:2 with linespoints title 'zeros p=0.1', \
'' skip 1 using 1:3 with linespoints title 'ones p=0.1', \
'' skip 1 using 1:5 with linespoints title 'zeros p=0.2', \
'' skip 1 using 1:6 with linespoints title 'ones p=0.2'
