set datafile separator comma
set terminal pngcairo size 900,600
set output 'results/plots/fig10a_time_vs_n.png'
set title 'fig10a time vs n'
set key outside right
set grid
set logscale xy
set xlabel 'cardinality n'
set ylabel 'execution time (s)'
plot 'results/fig10a_time_vs_n.csv' skip 1 using 1:2 with linespoints title 'BFCE', \
'' skip 1 using 1:3 with linespoints title 'ZOE', \
'' skip 1 using 1:4 with linespoints title 'SRC'
