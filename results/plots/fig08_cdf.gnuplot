set datafile separator comma
set terminal pngcairo size 900,600
set output 'results/plots/fig08_cdf.png'
set title 'fig08 cdf'
set key outside right
set grid
set xlabel 'quantile'
set ylabel 'estimate n_hat'
plot 'results/fig08_cdf.csv' skip 1 using 1:2 with linespoints title 'T1', \
'' skip 1 using 1:3 with linespoints title 'T2', \
'' skip 1 using 1:4 with linespoints title 'T3'
