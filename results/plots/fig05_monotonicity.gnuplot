set datafile separator comma
set terminal pngcairo size 900,600
set output 'results/plots/fig05_monotonicity.png'
set title 'fig05 monotonicity'
set key outside right
set grid
set xlabel 'cardinality n'
set ylabel 'f1 / f2'
plot 'results/fig05_monotonicity.csv' skip 1 using 1:2 with lines title 'f1', \
'' skip 1 using 1:3 with lines title 'f2'
