set datafile separator comma
set terminal pngcairo size 900,600
set output 'results/plots/fig10b_time_vs_epsilon.png'
set title 'fig10b time vs epsilon'
set key outside right
set grid
set logscale y
set xlabel 'epsilon'
set ylabel 'execution time (s)'
plot 'results/fig10b_time_vs_epsilon.csv' skip 1 using 1:2 with linespoints title 'BFCE', \
'' skip 1 using 1:3 with linespoints title 'ZOE', \
'' skip 1 using 1:4 with linespoints title 'SRC'
