set datafile separator comma
set terminal pngcairo size 900,600
set output 'results/plots/fig10c_time_vs_delta.png'
set title 'fig10c time vs delta'
set key outside right
set grid
set logscale y
set xlabel 'delta'
set ylabel 'execution time (s)'
plot 'results/fig10c_time_vs_delta.csv' skip 1 using 1:2 with linespoints title 'BFCE', \
'' skip 1 using 1:3 with linespoints title 'ZOE', \
'' skip 1 using 1:4 with linespoints title 'SRC'
