set datafile separator comma
set terminal pngcairo size 900,600
set output 'results/plots/fig09a_accuracy_vs_n.png'
set title 'fig09a accuracy vs n'
set key outside right
set grid
set logscale x
set xlabel 'cardinality n'
set ylabel 'accuracy'
plot 'results/fig09a_accuracy_vs_n.csv' skip 1 using 1:2 with linespoints title 'BFCE', \
'' skip 1 using 1:3 with linespoints title 'ZOE', \
'' skip 1 using 1:4 with linespoints title 'SRC'
