//! mask → lex → reserialize must reproduce the masked input byte-for-byte.
#![no_main]

use libfuzzer_sys::fuzz_target;

fuzz_target!(|data: &[u8]| {
    rfid_analysis::fuzz_surface::lex_round_trip(data);
});
