//! Any bytes the `rfid-sketch/v1` decoder accepts must re-encode to the
//! identical bytes (canonical form), estimate to a finite value, and
//! survive a self-merge unchanged; everything else must be a typed error.
#![no_main]

use libfuzzer_sys::fuzz_target;

fuzz_target!(|data: &[u8]| {
    rfid_bfce::sketch::fuzz::snapshot_roundtrip(data);
});
