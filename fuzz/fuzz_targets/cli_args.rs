//! The `rfid` argument parser must never panic: any argument vector
//! yields a command or a `ParseError` with a non-empty rendering.
#![no_main]

use libfuzzer_sys::fuzz_target;

fuzz_target!(|data: &[u8]| {
    rfid_cli::fuzz::cli_args(data);
});
