//! Scope-tree brace matching must stay well-formed on arbitrary input.
#![no_main]

use libfuzzer_sys::fuzz_target;

fuzz_target!(|data: &[u8]| {
    rfid_analysis::fuzz_surface::scope_tree(data);
});
