//! Differential: for arbitrary tags, frame widths, thread counts, and
//! dispatch modes, the batched fill kernels (Bloom and ZOE) must agree
//! bitwise with the scalar `response_counts_reference*` path.
#![no_main]

use libfuzzer_sys::fuzz_target;

fuzz_target!(|data: &[u8]| {
    rfid_baselines::fuzz::fill_kernels_diff(data);
});
