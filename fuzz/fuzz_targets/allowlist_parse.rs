//! `analysis.toml` parsing must return Ok/Err, never panic.
#![no_main]

use libfuzzer_sys::fuzz_target;

fuzz_target!(|data: &[u8]| {
    rfid_analysis::fuzz_surface::allowlist_parse(data);
});
