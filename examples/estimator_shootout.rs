//! Shoot-out: every estimator in the workspace counting the same
//! population, with accuracy and (simulated) air time side by side —
//! a miniature of the paper's Figures 9 and 10 plus the related-work
//! family of Section II.
//!
//! ```text
//! cargo run --release --example estimator_shootout
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_bfce_repro::baselines::all_baselines;
use rfid_bfce_repro::prelude::*;
use rfid_bfce_repro::sim::CardinalityEstimator;

fn main() {
    let truth = 100_000usize;
    let accuracy = Accuracy::new(0.1, 0.1);
    println!(
        "population: {truth} tags (T2, approximate normal IDs); requirement ({}, {})",
        accuracy.epsilon, accuracy.delta
    );
    println!(
        "{:<6} {:>10} {:>9} {:>11} {:>13} {:>9}",
        "name", "estimate", "rel_err", "air_time_s", "reader_bits", "slots"
    );

    let mut estimators: Vec<Box<dyn CardinalityEstimator>> = vec![Box::new(Bfce::paper())];
    estimators.extend(all_baselines());

    for est in &estimators {
        // Fresh, identically-seeded world per estimator: same tag
        // population, independent protocol randomness.
        let mut world_rng = StdRng::seed_from_u64(99);
        let population = WorkloadSpec::T2.generate(truth, &mut world_rng);
        let mut system = RfidSystem::new(population);
        let mut rng = StdRng::seed_from_u64(1234);
        let report = est.estimate(&mut system, accuracy, &mut rng);
        println!(
            "{:<6} {:>10.0} {:>9.4} {:>11.4} {:>13} {:>9}",
            est.name(),
            report.n_hat,
            report.relative_error(truth),
            report.air.total_seconds(),
            report.air.reader_bits,
            report.air.bitslots + report.air.aloha_slots,
        );
    }
    println!("\n(LOF and PET are rough constant-factor estimators by design.)");
}
