//! Differential stocktaking — the extension built on BFCE's deterministic
//! tag behaviour (see `rfid_bfce::diff`).
//!
//! Because a tag's response pattern is a pure function of its pre-stored
//! RN, the broadcast seeds, and `p`, replaying the *same* seeds across two
//! inventory epochs makes every per-slot difference attributable to
//! arrivals or departures. Two frames — 2 x 8192 bit-slots, ~0.32 s of
//! air time — estimate how many pallets left and how many arrived, with no
//! tag ever identified.
//!
//! ```text
//! cargo run --release --example differential_stocktake
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_bfce_repro::bfce::diff::estimate_changes;
use rfid_bfce_repro::bfce::BfceConfig;
use rfid_bfce_repro::prelude::*;
use rfid_bfce_repro::sim::Tag;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);

    // Monday's stock: 80 000 items.
    let monday = WorkloadSpec::Clustered { block: 400 }.generate(80_000, &mut rng);
    let monday_tags: Vec<Tag> = monday.tags().to_vec();

    // By Friday: 7 000 items shipped (departed), 4 500 received (arrived).
    let shipped = 7_000usize;
    let received = 4_500usize;
    let mut friday_tags: Vec<Tag> = monday_tags[shipped..].to_vec();
    let new_stock = WorkloadSpec::T1.generate(received, &mut rng);
    friday_tags.extend_from_slice(new_stock.tags());

    let mut before = RfidSystem::new(rfid_bfce_repro::sim::TagPopulation::new(
        monday_tags,
    ));
    let mut after = RfidSystem::new(rfid_bfce_repro::sim::TagPopulation::new(
        friday_tags,
    ));

    // Persistence carried over from the regular BFCE estimation: tuned for
    // lambda ~ 1 at the Monday stock level.
    let p_n = ((8192.0f64 / (3.0 * 80_000.0) * 1024.0).round() as u32).clamp(1, 1023);
    let out = estimate_changes(&BfceConfig::paper(), &mut before, &mut after, p_n, &mut rng);

    println!("Monday stock : 80000 items");
    println!("true shipped : {shipped:>6}   estimated departures: {:>8.0}", out.departures);
    println!("true received: {received:>6}   estimated arrivals  : {:>8.0}", out.arrivals);
    println!(
        "air time     : {:.3} s + {:.3} s (two frames, same seeds)",
        before.air_time().total_seconds(),
        after.air_time().total_seconds()
    );
    println!(
        "slot diffs   : {} busy->idle, {} idle->busy of 8192",
        (out.rho_gone * 8192.0).round(),
        (out.rho_new * 8192.0).round()
    );
    for w in &out.warnings {
        println!("warning      : {w}");
    }

    let dep_err = (out.departures - shipped as f64).abs() / shipped as f64;
    let arr_err = (out.arrivals - received as f64).abs() / received as f64;
    assert!(dep_err < 0.25 && arr_err < 0.25, "differential estimate off");
}
