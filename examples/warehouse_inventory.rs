//! Warehouse inventory monitoring — the application the paper's
//! introduction motivates.
//!
//! Three synchronized readers cover overlapping zones of a warehouse
//! (logically one reader, per Section III-A). A nightly BFCE round
//! estimates the stock level; a drop of more than the estimation noise
//! triggers a shrinkage alarm, without ever reading a single tag ID.
//!
//! ```text
//! cargo run --release --example warehouse_inventory
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfid_bfce_repro::prelude::*;
use rfid_bfce_repro::sim::multireader::MultiReaderDeployment;
use rfid_bfce_repro::sim::Tag;

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);

    // Stock the warehouse: 120k pallet-tagged items with clustered EPCs.
    let initial = WorkloadSpec::Clustered { block: 500 }.generate(120_000, &mut rng);
    let mut stock: Vec<Tag> = initial.tags().to_vec();
    println!("night 0: stocked {} items", stock.len());

    let accuracy = Accuracy::new(0.05, 0.05);
    let bfce = Bfce::paper();
    let mut last_estimate = None::<f64>;

    for night in 1..=5 {
        // Normal operations remove ~1% per night; night 4 sees a theft of
        // an extra 8%.
        let shrink = if night == 4 { 0.09 } else { 0.01 };
        stock.retain(|_| rng.gen::<f64>() > shrink);

        // Three readers with overlapping coverage; the back-end fuses them
        // into one logical reader.
        let mut deployment = MultiReaderDeployment::new();
        let third = stock.len() / 3;
        deployment.add_reader(stock[..2 * third].to_vec());
        deployment.add_reader(stock[third..].to_vec());
        deployment.add_reader(stock[..third].iter().chain(&stock[2 * third..]).copied().collect());
        let mut system = deployment
            .logical_system()
            .expect("consistent deployment");

        let report = bfce.estimate(&mut system, accuracy, &mut rng);
        let estimate = report.n_hat;
        print!(
            "night {night}: true {:>6}, estimated {:>9.0}, air {:.3}s",
            stock.len(),
            estimate,
            report.air.total_seconds()
        );
        if let Some(prev) = last_estimate {
            let drop = (prev - estimate) / prev;
            // Estimation noise is within +/- epsilon each; a drop beyond
            // 2 * epsilon is statistically meaningful shrinkage.
            if drop > 2.0 * accuracy.epsilon {
                print!("  << SHRINKAGE ALARM: {:.1}% drop", drop * 100.0);
            }
        }
        println!();
        last_estimate = Some(estimate);

        assert!(report.relative_error(stock.len()) <= 0.06);
    }
}
