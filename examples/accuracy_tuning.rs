//! Accuracy tuning: how BFCE's internal parameters respond to the
//! `(epsilon, delta)` requirement — and why its air time does not.
//!
//! Sweeps the requirement grid at a fixed population and prints the
//! persistence numerator the brute-force search picks (Theorems 3/4),
//! whether it is provable at the measured lower bound, and the (constant)
//! slot budget and air time.
//!
//! ```text
//! cargo run --release --example accuracy_tuning
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_bfce_repro::bfce::overhead::total_bit_slots;
use rfid_bfce_repro::bfce::BfceConfig;
use rfid_bfce_repro::prelude::*;

fn main() {
    let truth = 200_000usize;
    println!("population: {truth} tags (T1)\n");
    println!(
        "{:>7} {:>7} {:>6} {:>10} {:>9} {:>9} {:>9}",
        "epsilon", "delta", "p_o", "provable", "rel_err", "slots", "air_s"
    );

    let bfce = Bfce::paper();
    for &epsilon in &[0.05, 0.1, 0.2, 0.3] {
        for &delta in &[0.05, 0.2] {
            let mut rng = StdRng::seed_from_u64((epsilon * 1e4 + delta * 10.0) as u64);
            let population = WorkloadSpec::T1.generate(truth, &mut rng);
            let mut system = RfidSystem::new(population);
            let run = bfce.run(&mut system, Accuracy::new(epsilon, delta), &mut rng);
            let acc = run.accurate.as_ref().expect("accurate stage ran");
            println!(
                "{:>7} {:>7} {:>6} {:>10} {:>9.4} {:>9} {:>9.4}",
                epsilon,
                delta,
                format!("{}/1024", acc.p_n),
                acc.provable,
                run.report.relative_error(truth),
                run.report.phases[1].air.bitslots + run.report.phases[2].air.bitslots,
                run.report.air.total_seconds()
            );
        }
    }
    println!(
        "\nslot budget is constant at {} (1024 rough + 8192 accurate): the \
         requirement tunes p, never the air time — the paper's core claim.",
        total_bit_slots(&BfceConfig::paper())
    );
}
