//! Quickstart: estimate the cardinality of a 500 000-tag population with
//! BFCE in one round.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_bfce_repro::prelude::*;

fn main() {
    let truth = 500_000usize;
    let mut rng = StdRng::seed_from_u64(7);

    // 1. Deploy: a population of tags with uniform IDs (the paper's T1).
    let population = WorkloadSpec::T1.generate(truth, &mut rng);
    let mut system = RfidSystem::new(population);

    // 2. Estimate with the paper's exact configuration and accuracy
    //    requirement (epsilon = delta = 0.05).
    let bfce = Bfce::paper();
    let run = bfce.run(&mut system, Accuracy::paper_default(), &mut rng);

    // 3. Inspect the result.
    println!("true cardinality : {truth}");
    println!("estimate         : {:.0}", run.n_hat());
    println!(
        "relative error   : {:.4}",
        run.report.relative_error(truth)
    );
    println!(
        "air time         : {:.4} s (paper bound: < 0.19 s nominal)",
        run.report.air.total_seconds()
    );
    println!("probe outcome    : p_s = {}/1024 after {} window(s)",
        run.probe.p_n, run.probe.rounds);
    println!(
        "rough lower bound: n_low = {:.0} (rho = {:.4})",
        run.rough.n_low, run.rough.rho
    );
    let acc = run.accurate.as_ref().expect("accurate stage ran");
    println!(
        "accurate stage   : p_o = {}/1024 ({}), rho = {:.4}",
        acc.p_n,
        if acc.provable { "provable" } else { "best-effort" },
        acc.rho
    );
    for phase in &run.report.phases {
        println!(
            "  phase {:<9}: {:>9.1} us ({} reader bits, {} bit-slots)",
            phase.name,
            phase.air.total_us(),
            phase.air.reader_bits,
            phase.air.bitslots
        );
    }
    assert!(run.report.relative_error(truth) <= 0.05);
}
