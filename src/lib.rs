//! Facade crate for the BFCE reproduction workspace.
//!
//! Re-exports the full public API so examples and downstream users can depend
//! on a single crate:
//!
//! * [`bfce`] — the paper's contribution: the Bloom-Filter-based
//!   Cardinality Estimator (probe, rough, and accurate phases, theory),
//!   plus the differential (`bfce::diff`), union (`bfce::multiset`) and
//!   efficiency/confidence-interval (`bfce::efficiency`) extensions.
//! * [`sim`] — the EPC C1G2-style air-interface simulator (tags, channels,
//!   timing model + PHY link parameters, bit-slot frames, air-time ledger,
//!   protocol traces, multi-reader deployments).
//! * [`baselines`] — ZOE, SRC, LOF, the wider related-work family
//!   (UPE/EZB/FNEB/ART/MLE/PET/A³), and exact Q-protocol inventory.
//! * [`workloads`] — the T1/T2/T3 tag-ID distributions of the evaluation,
//!   plus churn processes for monitoring studies.
//! * [`stats`], [`hash`] — the numerics and hashing substrates.
//! * [`experiments`] — figure-regeneration and guarantee-validation
//!   harness.
//!
//! # Quickstart
//!
//! ```
//! use rfid_bfce_repro::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let population = WorkloadSpec::T1.generate(10_000, &mut rng);
//! let mut system = RfidSystem::new(population);
//! let bfce = Bfce::new(BfceConfig::default());
//! let report = bfce.estimate(&mut system, Accuracy::new(0.05, 0.05), &mut rng);
//! let err = (report.n_hat - 10_000.0).abs() / 10_000.0;
//! assert!(err < 0.05, "estimate {} off by {err}", report.n_hat);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rfid_baselines as baselines;
pub use rfid_bfce as bfce;
pub use rfid_experiments as experiments;
pub use rfid_hash as hash;
pub use rfid_sim as sim;
pub use rfid_stats as stats;
pub use rfid_workloads as workloads;

/// Commonly used items, importable in one line.
pub mod prelude {
    pub use rfid_baselines::{Lof, Src, Zoe};
    pub use rfid_bfce::{Bfce, BfceConfig};
    pub use rfid_sim::{
        Accuracy, CardinalityEstimator, EstimationReport, FillDispatch, RfidSystem,
    };
    pub use rfid_workloads::WorkloadSpec;
}
