//! Reproducibility: every stochastic component in the workspace is
//! seed-deterministic, so experiments (and bug reports) replay exactly.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_bfce_repro::baselines::{Art, Fneb, Mle, Pet, Src, Upe, Zoe};
use rfid_bfce_repro::prelude::*;
use rfid_bfce_repro::sim::CardinalityEstimator;

fn estimate_with(est: &dyn CardinalityEstimator, seed: u64) -> (f64, f64) {
    let mut world = StdRng::seed_from_u64(seed);
    let population = WorkloadSpec::T2.generate(25_000, &mut world);
    let mut system = RfidSystem::new(population);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    let report = est.estimate(&mut system, Accuracy::new(0.1, 0.1), &mut rng);
    (report.n_hat, report.air.total_us())
}

#[test]
fn every_estimator_replays_exactly_per_seed() {
    let estimators: Vec<Box<dyn CardinalityEstimator>> = vec![
        Box::new(Bfce::paper()),
        Box::new(Lof::default()),
        Box::new(Zoe::default()),
        Box::new(Src::default()),
        Box::new(Upe::default()),
        Box::new(Fneb::default()),
        Box::new(Art::default()),
        Box::new(Mle::default()),
        Box::new(Pet::default()),
    ];
    for est in &estimators {
        let a = estimate_with(est.as_ref(), 42);
        let b = estimate_with(est.as_ref(), 42);
        assert_eq!(a, b, "{} not reproducible", est.name());
        let c = estimate_with(est.as_ref(), 43);
        assert_ne!(a.0, c.0, "{} ignores the seed", est.name());
    }
}

#[test]
fn workload_generation_is_stable_across_calls() {
    for spec in WorkloadSpec::PAPER_SET {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let a = spec.generate(5_000, &mut r1);
        let b = spec.generate(5_000, &mut r2);
        assert_eq!(a.tags(), b.tags());
    }
}

/// Every f64 in a [`RepeatedOutcome`], as raw bits, so equality means
/// bitwise equality — not merely "within epsilon".
fn outcome_bits(o: &rfid_bfce_repro::experiments::runner::RepeatedOutcome) -> Vec<u64> {
    vec![
        u64::from(o.trials),
        o.mean_error.to_bits(),
        o.max_error.to_bits(),
        o.within_epsilon.to_bits(),
        o.mean_seconds.to_bits(),
        o.max_seconds.to_bits(),
        o.p50_error.to_bits(),
        o.p95_error.to_bits(),
        o.p99_error.to_bits(),
        o.p50_seconds.to_bits(),
        o.p95_seconds.to_bits(),
        o.p99_seconds.to_bits(),
    ]
}

#[test]
fn two_run_audit_bfce_zoe_src_outcomes_are_bitwise_identical() {
    // The PR 2 determinism contract, audited end-to-end: run the full
    // trial engine twice per estimator, at 1 worker and at 4 workers, and
    // require all four outcomes to agree bit for bit. Exercises workload
    // generation, frame fill (including its parallel path), estimation,
    // and the sequential Welford/percentile aggregation.
    use rfid_bfce_repro::experiments::engine::TrialRunner;
    let estimators: Vec<Box<dyn CardinalityEstimator>> = vec![
        Box::new(Bfce::paper()),
        Box::new(Zoe::default()),
        Box::new(Src::default()),
    ];
    for est in &estimators {
        let outcome = |jobs: usize| {
            TrialRunner::new(6, 1701)
                .jobs(jobs)
                .run(est.as_ref(), WorkloadSpec::T2, 30_000, Accuracy::paper_default())
                .outcome()
        };
        let first = outcome_bits(&outcome(1));
        assert_eq!(
            first,
            outcome_bits(&outcome(1)),
            "{}: serial re-run drifted",
            est.name()
        );
        assert_eq!(
            first,
            outcome_bits(&outcome(4)),
            "{}: 4-worker run differs from serial",
            est.name()
        );
        assert_eq!(
            first,
            outcome_bits(&outcome(4)),
            "{}: 4-worker re-run drifted",
            est.name()
        );
    }
}

#[test]
fn parallel_frame_fill_does_not_depend_on_thread_interleaving() {
    // Run the same BFCE estimation repeatedly on a population large enough
    // to engage the parallel frame-fill path; the result must be bitwise
    // stable (counts merge by addition, never by racing).
    let run = || {
        let mut world = StdRng::seed_from_u64(11);
        let population = WorkloadSpec::T1.generate(300_000, &mut world);
        let mut system = RfidSystem::new(population);
        let mut rng = StdRng::seed_from_u64(13);
        Bfce::paper()
            .estimate(&mut system, Accuracy::paper_default(), &mut rng)
            .n_hat
    };
    let first = run();
    for _ in 0..3 {
        assert_eq!(run(), first);
    }
}
