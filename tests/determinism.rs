//! Reproducibility: every stochastic component in the workspace is
//! seed-deterministic, so experiments (and bug reports) replay exactly.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_bfce_repro::baselines::{Art, Fneb, Mle, Pet, Src, Upe, Zoe};
use rfid_bfce_repro::prelude::*;
use rfid_bfce_repro::sim::CardinalityEstimator;

fn estimate_with(est: &dyn CardinalityEstimator, seed: u64) -> (f64, f64) {
    let mut world = StdRng::seed_from_u64(seed);
    let population = WorkloadSpec::T2.generate(25_000, &mut world);
    let mut system = RfidSystem::new(population);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    let report = est.estimate(&mut system, Accuracy::new(0.1, 0.1), &mut rng);
    (report.n_hat, report.air.total_us())
}

#[test]
fn every_estimator_replays_exactly_per_seed() {
    let estimators: Vec<Box<dyn CardinalityEstimator>> = vec![
        Box::new(Bfce::paper()),
        Box::new(Lof::default()),
        Box::new(Zoe::default()),
        Box::new(Src::default()),
        Box::new(Upe::default()),
        Box::new(Fneb::default()),
        Box::new(Art::default()),
        Box::new(Mle::default()),
        Box::new(Pet::default()),
    ];
    for est in &estimators {
        let a = estimate_with(est.as_ref(), 42);
        let b = estimate_with(est.as_ref(), 42);
        assert_eq!(a, b, "{} not reproducible", est.name());
        let c = estimate_with(est.as_ref(), 43);
        assert_ne!(a.0, c.0, "{} ignores the seed", est.name());
    }
}

#[test]
fn workload_generation_is_stable_across_calls() {
    for spec in WorkloadSpec::PAPER_SET {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let a = spec.generate(5_000, &mut r1);
        let b = spec.generate(5_000, &mut r2);
        assert_eq!(a.tags(), b.tags());
    }
}

/// Every f64 in a [`RepeatedOutcome`], as raw bits, so equality means
/// bitwise equality — not merely "within epsilon".
fn outcome_bits(o: &rfid_bfce_repro::experiments::runner::RepeatedOutcome) -> Vec<u64> {
    vec![
        u64::from(o.trials),
        o.mean_error.to_bits(),
        o.max_error.to_bits(),
        o.within_epsilon.to_bits(),
        o.mean_seconds.to_bits(),
        o.max_seconds.to_bits(),
        o.p50_error.to_bits(),
        o.p95_error.to_bits(),
        o.p99_error.to_bits(),
        o.p50_seconds.to_bits(),
        o.p95_seconds.to_bits(),
        o.p99_seconds.to_bits(),
    ]
}

#[test]
fn two_run_audit_bfce_zoe_src_outcomes_are_bitwise_identical() {
    // The PR 2 determinism contract, audited end-to-end: run the full
    // trial engine twice per estimator, at 1 worker and at 4 workers, and
    // require all four outcomes to agree bit for bit. Exercises workload
    // generation, frame fill (including its parallel path), estimation,
    // and the sequential Welford/percentile aggregation.
    use rfid_bfce_repro::experiments::engine::TrialRunner;
    let estimators: Vec<Box<dyn CardinalityEstimator>> = vec![
        Box::new(Bfce::paper()),
        Box::new(Zoe::default()),
        Box::new(Src::default()),
    ];
    for est in &estimators {
        let outcome = |jobs: usize| {
            TrialRunner::new(6, 1701)
                .jobs(jobs)
                .run(est.as_ref(), WorkloadSpec::T2, 30_000, Accuracy::paper_default())
                .outcome()
        };
        let first = outcome_bits(&outcome(1));
        assert_eq!(
            first,
            outcome_bits(&outcome(1)),
            "{}: serial re-run drifted",
            est.name()
        );
        assert_eq!(
            first,
            outcome_bits(&outcome(4)),
            "{}: 4-worker run differs from serial",
            est.name()
        );
        assert_eq!(
            first,
            outcome_bits(&outcome(4)),
            "{}: 4-worker re-run drifted",
            est.name()
        );
    }
}

#[test]
fn parallel_frame_fill_does_not_depend_on_thread_interleaving() {
    // Run the same BFCE estimation repeatedly on a population large enough
    // to engage the parallel frame-fill path; the result must be bitwise
    // stable (counts merge by addition, never by racing).
    let run = || {
        let mut world = StdRng::seed_from_u64(11);
        let population = WorkloadSpec::T1.generate(300_000, &mut world);
        let mut system = RfidSystem::new(population);
        let mut rng = StdRng::seed_from_u64(13);
        Bfce::paper()
            .estimate(&mut system, Accuracy::paper_default(), &mut rng)
            .n_hat
    };
    let first = run();
    for _ in 0..3 {
        assert_eq!(run(), first);
    }
}

/// Fault schedules are part of the determinism contract (ISSUE 6): a
/// faulted trial sweep must be bitwise replayable from its seed at any
/// `--jobs` setting. Exercises the fault plan's per-frame substreams, the
/// retry/salvage collector, and the quality accounting through the same
/// TrialRunner path the robustness ablation uses.
#[test]
fn fault_schedules_replay_bitwise_at_any_job_count() {
    use rfid_bfce_repro::experiments::engine::TrialRunner;
    use rfid_bfce_repro::experiments::robustness::FaultClass;
    use rfid_bfce_repro::hash::stream_seed;

    let classes = [FaultClass::Abort, FaultClass::Burst, FaultClass::Dropout];
    for (class_idx, class) in classes.iter().enumerate() {
        let sweep = |jobs: usize| -> Vec<(u64, u64, u64, u64, u32)> {
            TrialRunner::new(6, stream_seed(1701, class_idx as u64))
                .jobs(jobs)
                .map(|ctx| {
                    let mut system = class.build_system(4_000, 0.6, ctx.seed);
                    system.set_noise_seed(ctx.seed);
                    system.set_frame_min_chunk(ctx.frame_min_chunk);
                    let mut rng = ctx.rng();
                    let report =
                        Bfce::paper().estimate(&mut system, Accuracy::paper_default(), &mut rng);
                    let q = system.quality();
                    (
                        report.n_hat.to_bits(),
                        q.retries,
                        q.aborted_frames,
                        q.slots_corrupted,
                        q.readers_failed,
                    )
                })
        };
        let serial = sweep(1);
        assert_eq!(
            serial,
            sweep(4),
            "{}: faulted sweep differs between 1 and 4 workers",
            class.name()
        );
        assert_eq!(
            serial,
            sweep(1),
            "{}: serial faulted sweep drifted on re-run",
            class.name()
        );
    }
}

/// The batched word-level frame-fill kernel is an exact rewrite of the
/// scalar path: for the same plan the busy frame and observed response
/// count must be bit-identical, at any worker count. This is the
/// two-run determinism audit required of every parallel kernel in the
/// workspace (see DESIGN notes in `rfid_sim::parallel`).
#[test]
fn batched_bloom_fill_is_worker_count_invariant() {
    use rfid_bfce_repro::bfce::{BfceConfig, BloomPlan};
    use rfid_bfce_repro::sim::frame::{
        response_counts_reference, response_fill_with_threads,
    };
    use rfid_bfce_repro::sim::Tag;

    let cfg = BfceConfig::paper();
    let mut world = StdRng::seed_from_u64(0xDE7E_0001);
    let population = WorkloadSpec::T3.generate(40_000, &mut world);
    let tags: Vec<Tag> = population.tags().to_vec();
    let seeds = [0x0001_F00Du32, 0x0002_BEAD, 0x0003_C0DE];
    let plan = BloomPlan::new(&cfg, &seeds, 307);

    let counts = response_counts_reference(&tags, cfg.w, &plan, usize::MAX);
    let scalar_prefix: u64 = counts.iter().map(|&c| u64::from(c)).sum();

    let one = response_fill_with_threads(&tags, cfg.w, cfg.w, &plan, 1);
    let four = response_fill_with_threads(&tags, cfg.w, cfg.w, &plan, 4);

    // Batched output at 1 worker equals the scalar reference...
    for (slot, &c) in counts.iter().enumerate() {
        assert_eq!(
            one.busy.get(slot),
            c > 0,
            "slot {slot}: batched busy diverges from scalar count {c}"
        );
    }
    assert_eq!(one.prefix_responses, scalar_prefix);
    // ...and the worker count never changes a single word.
    assert_eq!(one.busy.words(), four.busy.words());
    assert_eq!(one.prefix_responses, four.prefix_responses);
    // Two runs at the same worker count are bit-identical too.
    let four_again = response_fill_with_threads(&tags, cfg.w, cfg.w, &plan, 4);
    assert_eq!(four.busy.words(), four_again.busy.words());
    assert_eq!(four.prefix_responses, four_again.prefix_responses);
}

/// The adaptive scalar/batched dispatch layer (ISSUE 7) must be an
/// observability no-op: which kernel fills a frame can change the wall
/// clock but never the estimate, the air-time bill, or the round count.
/// Audited exactly at the dispatch boundary — populations one below, at,
/// and one above the default threshold — for every dispatch mode and at
/// both serial and 4-worker trial sweeps, for an estimator on each frame
/// path (BFCE: bit frames; ZOE: singleton slot batches).
#[test]
fn dispatch_choice_never_changes_observations_at_the_boundary() {
    use rfid_bfce_repro::experiments::engine::TrialRunner;
    use rfid_bfce_repro::sim::frame::DEFAULT_BATCHED_FILL_THRESHOLD;

    let estimators: Vec<Box<dyn CardinalityEstimator>> =
        vec![Box::new(Bfce::paper()), Box::new(Zoe::default())];
    let populations = [
        DEFAULT_BATCHED_FILL_THRESHOLD - 1,
        DEFAULT_BATCHED_FILL_THRESHOLD,
        DEFAULT_BATCHED_FILL_THRESHOLD + 1,
    ];
    let modes = [
        FillDispatch::Scalar,
        FillDispatch::Batched,
        FillDispatch::Auto,
        FillDispatch::Threshold(DEFAULT_BATCHED_FILL_THRESHOLD),
    ];
    for est in &estimators {
        for &n in &populations {
            let sweep = |dispatch: FillDispatch, jobs: usize| -> Vec<(u64, u64, u64)> {
                TrialRunner::new(3, 0x0d15_7a7c_4000 + n as u64)
                    .jobs(jobs)
                    .map(|ctx| {
                        let mut world = StdRng::seed_from_u64(ctx.seed);
                        let population = WorkloadSpec::T2.generate(n, &mut world);
                        let mut system = RfidSystem::new(population);
                        system.set_frame_min_chunk(ctx.frame_min_chunk);
                        system.set_fill_dispatch(dispatch);
                        let mut rng = ctx.rng();
                        let report = est.as_ref().estimate(
                            &mut system,
                            Accuracy::paper_default(),
                            &mut rng,
                        );
                        (
                            report.n_hat.to_bits(),
                            report.air.total_us().to_bits(),
                            report.rounds,
                        )
                    })
            };
            let reference = sweep(FillDispatch::Scalar, 1);
            for &mode in &modes {
                for jobs in [1usize, 4] {
                    assert_eq!(
                        reference,
                        sweep(mode, jobs),
                        "{}: n={n} dispatch={mode:?} jobs={jobs} diverged from scalar serial",
                        est.name()
                    );
                }
            }
        }
    }
}

#[test]
fn snapshot_merge_is_bitwise_invariant_under_order_and_parallelism() {
    // The merge-path determinism audit: per-reader snapshots must not
    // depend on the frame-fill chunking (the knob `--jobs` turns), and
    // the back-end fold must not depend on the order snapshots arrive —
    // so a multi-reader estimate is one number, reproducible anywhere.
    use rfid_bfce_repro::baselines::registers::collect_register_sketch;
    use rfid_bfce_repro::bfce::{merge_all, RegisterFlavor, Snapshot};
    use rfid_bfce_repro::sim::multireader::MultiReaderDeployment;

    let mut world = StdRng::seed_from_u64(0xD17E_0001);
    let population = WorkloadSpec::T2.generate(60_000, &mut world);
    let mut deployment = MultiReaderDeployment::new();
    for chunk in population.tags().chunks(60_000 / 8 + 1) {
        deployment.add_reader(chunk.to_vec());
    }

    let snapshots_with_chunk = |min_chunk: usize| -> Vec<Vec<u8>> {
        (0..deployment.reader_count())
            .map(|reader| {
                let mut system = deployment.reader_system(reader).expect("in range");
                system.set_frame_min_chunk(min_chunk);
                collect_register_sketch(RegisterFlavor::HllPp, 12, 32, &mut system, 0xD17E)
                    .snapshot()
            })
            .collect()
    };

    // Serial fill, tiny chunks (maximum parallel splits), and a mid-size
    // chunking must produce byte-identical snapshots per reader.
    let serial = snapshots_with_chunk(usize::MAX);
    assert_eq!(serial, snapshots_with_chunk(64));
    assert_eq!(serial, snapshots_with_chunk(1));

    // And the fold is order-invariant, bit for bit.
    let forward = merge_all(serial.iter().map(Vec::as_slice)).expect("compatible");
    let backward =
        merge_all(serial.iter().rev().map(Vec::as_slice)).expect("compatible");
    assert_eq!(forward.snapshot(), backward.snapshot());
    assert_eq!(forward.estimate().to_bits(), backward.estimate().to_bits());
}

#[test]
fn register_baselines_replay_exactly_per_seed() {
    // The two sketch baselines join the per-seed replay contract: same
    // seed, same estimate and air time; different seed, different draw.
    use rfid_bfce_repro::baselines::{HllPp, LogLogBeta};
    let estimators: Vec<Box<dyn CardinalityEstimator>> =
        vec![Box::new(HllPp::default()), Box::new(LogLogBeta::default())];
    for est in &estimators {
        let a = estimate_with(est.as_ref(), 42);
        let b = estimate_with(est.as_ref(), 42);
        assert_eq!(a, b, "{} not reproducible", est.name());
        let c = estimate_with(est.as_ref(), 43);
        assert_ne!(a.0, c.0, "{} ignores the seed", est.name());
    }
}
