//! Reproducibility: every stochastic component in the workspace is
//! seed-deterministic, so experiments (and bug reports) replay exactly.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_bfce_repro::baselines::{Art, Fneb, Mle, Pet, Src, Upe, Zoe};
use rfid_bfce_repro::prelude::*;
use rfid_bfce_repro::sim::CardinalityEstimator;

fn estimate_with(est: &dyn CardinalityEstimator, seed: u64) -> (f64, f64) {
    let mut world = StdRng::seed_from_u64(seed);
    let population = WorkloadSpec::T2.generate(25_000, &mut world);
    let mut system = RfidSystem::new(population);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    let report = est.estimate(&mut system, Accuracy::new(0.1, 0.1), &mut rng);
    (report.n_hat, report.air.total_us())
}

#[test]
fn every_estimator_replays_exactly_per_seed() {
    let estimators: Vec<Box<dyn CardinalityEstimator>> = vec![
        Box::new(Bfce::paper()),
        Box::new(Lof::default()),
        Box::new(Zoe::default()),
        Box::new(Src::default()),
        Box::new(Upe::default()),
        Box::new(Fneb::default()),
        Box::new(Art::default()),
        Box::new(Mle::default()),
        Box::new(Pet::default()),
    ];
    for est in &estimators {
        let a = estimate_with(est.as_ref(), 42);
        let b = estimate_with(est.as_ref(), 42);
        assert_eq!(a, b, "{} not reproducible", est.name());
        let c = estimate_with(est.as_ref(), 43);
        assert_ne!(a.0, c.0, "{} ignores the seed", est.name());
    }
}

#[test]
fn workload_generation_is_stable_across_calls() {
    for spec in WorkloadSpec::PAPER_SET {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let a = spec.generate(5_000, &mut r1);
        let b = spec.generate(5_000, &mut r2);
        assert_eq!(a.tags(), b.tags());
    }
}

#[test]
fn parallel_frame_fill_does_not_depend_on_thread_interleaving() {
    // Run the same BFCE estimation repeatedly on a population large enough
    // to engage the parallel frame-fill path; the result must be bitwise
    // stable (counts merge by addition, never by racing).
    let run = || {
        let mut world = StdRng::seed_from_u64(11);
        let population = WorkloadSpec::T1.generate(300_000, &mut world);
        let mut system = RfidSystem::new(population);
        let mut rng = StdRng::seed_from_u64(13);
        Bfce::paper()
            .estimate(&mut system, Accuracy::paper_default(), &mut rng)
            .n_hat
    };
    let first = run();
    for _ in 0..3 {
        assert_eq!(run(), first);
    }
}
