//! The merge algebra, property-tested.
//!
//! `Snapshot::merge` claims to be a commutative, associative, idempotent
//! fold whose identity is the empty sketch, with `restore . snapshot`
//! the identity on estimators — over every storage tier (Small → Array →
//! Dense), every sketch flavor, and any reader count. These properties
//! are what make multi-reader estimation order-independent and therefore
//! bitwise reproducible; this suite checks them on randomized
//! populations rather than hand-picked examples.
//!
//! Equality throughout is *bitwise* equality of canonical wire bytes,
//! not estimate closeness: two sketches are "the same" exactly when
//! their `snapshot()` encodings match byte for byte.

// The proptest! macro expands one property at a time; six bodies in one
// block outgrow the default recursion limit.
#![recursion_limit = "512"]

use proptest::prelude::*;
use rfid_bfce_repro::bfce::sketch::repr::sparse_cap;
use rfid_bfce_repro::bfce::{
    merge_all, BfceConfig, BloomPlan, BloomSketch, RegisterFlavor, RegisterSketch,
    Snapshot,
};
use rfid_bfce_repro::sim::{RfidSystem, Tag, TagPopulation};

fn flavor_of(pick: u8) -> RegisterFlavor {
    if pick % 2 == 0 {
        RegisterFlavor::HllPp
    } else {
        RegisterFlavor::LogLogBeta
    }
}

/// A register sketch over `n` synthetic identities drawn from a stream
/// keyed by `stream` (distinct streams give overlapping-but-different
/// populations).
fn sketch_of(
    flavor: RegisterFlavor,
    precision: u8,
    seed: u32,
    stream: u64,
    n: usize,
) -> RegisterSketch {
    let mut sketch = RegisterSketch::new(flavor, precision, 32, seed);
    for i in 0..n as u64 {
        sketch.observe_identity(i.wrapping_mul(2 * stream + 1));
    }
    sketch
}

fn bytes(s: &impl Snapshot) -> Vec<u8> {
    s.snapshot()
}

fn merged(a: &RegisterSketch, b: &RegisterSketch) -> RegisterSketch {
    let mut out = a.clone();
    out.merge(b).expect("same parameters");
    out
}

// Population sizes that land each storage tier at p <= 10 (m <= 1024,
// sparse cap <= 256): inline Small, sorted Array, and saturated Dense —
// plus the boundaries where promotions happen.
fn tier_spanning_n() -> impl Strategy<Value = usize> {
    prop_oneof![
        0usize..=10,       // Small, and the Small -> Array crossing
        10usize..260,      // Array, up to the Array -> Dense crossing
        500usize..4_000,   // Dense
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_commutative(
        pick in 0u8..2,
        precision in 4u8..=10,
        seed in any::<u32>(),
        a_n in tier_spanning_n(),
        b_n in tier_spanning_n(),
    ) {
        let flavor = flavor_of(pick);
        let a = sketch_of(flavor, precision, seed, 1, a_n);
        let b = sketch_of(flavor, precision, seed, 3, b_n);
        prop_assert_eq!(bytes(&merged(&a, &b)), bytes(&merged(&b, &a)));
    }

    #[test]
    fn merge_is_associative(
        pick in 0u8..2,
        precision in 4u8..=10,
        seed in any::<u32>(),
        ns in (tier_spanning_n(), tier_spanning_n(), tier_spanning_n()),
    ) {
        let (a_n, b_n, c_n) = ns;
        let flavor = flavor_of(pick);
        let a = sketch_of(flavor, precision, seed, 1, a_n);
        let b = sketch_of(flavor, precision, seed, 3, b_n);
        let c = sketch_of(flavor, precision, seed, 5, c_n);
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(bytes(&left), bytes(&right));
    }

    #[test]
    fn merge_is_idempotent_with_the_empty_sketch_as_identity(
        pick in 0u8..2,
        precision in 4u8..=10,
        seed in any::<u32>(),
        n in tier_spanning_n(),
    ) {
        let flavor = flavor_of(pick);
        let a = sketch_of(flavor, precision, seed, 7, n);
        prop_assert_eq!(bytes(&merged(&a, &a)), bytes(&a));
        let empty = sketch_of(flavor, precision, seed, 7, 0);
        prop_assert_eq!(bytes(&merged(&a, &empty)), bytes(&a));
        prop_assert_eq!(bytes(&merged(&empty, &a)), bytes(&a));
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn restore_of_snapshot_is_bitwise_identity(
        pick in 0u8..2,
        precision in 4u8..=10,
        seed in any::<u32>(),
        n in tier_spanning_n(),
    ) {
        let flavor = flavor_of(pick);
        let a = sketch_of(flavor, precision, seed, 9, n);
        let wire = bytes(&a);
        let back = RegisterSketch::restore(&wire).expect("own snapshot restores");
        prop_assert_eq!(&back, &a);
        prop_assert_eq!(bytes(&back), wire);
        // Tier is canonical in the nonzero count, so it survives the trip.
        prop_assert_eq!(back.registers().tier(), a.registers().tier());
        let cap = sparse_cap(precision);
        let expect_tier = if a.registers().nonzero() <= 8 {
            "small"
        } else if a.registers().nonzero() <= cap {
            "array"
        } else {
            "dense"
        };
        prop_assert_eq!(a.registers().tier(), expect_tier);
    }

    #[test]
    fn any_reader_count_folds_to_the_union(
        pick in 0u8..2,
        precision in 4u8..=9,
        seed in any::<u32>(),
        reader_ns in prop::collection::vec(0usize..1_500, 1..12),
    ) {
        // k readers, each observing a prefix of the same identity stream
        // (nested coverages — the worst case for double counting): the
        // fold over per-reader snapshots must equal the largest reader's
        // sketch, whatever the reader count.
        let flavor = flavor_of(pick);
        let snapshots: Vec<Vec<u8>> = reader_ns
            .iter()
            .map(|&n| bytes(&sketch_of(flavor, precision, seed, 11, n)))
            .collect();
        let folded = merge_all(snapshots.iter().map(Vec::as_slice)).expect("compatible");
        let biggest = reader_ns.iter().copied().max().unwrap_or(0);
        let union = sketch_of(flavor, precision, seed, 11, biggest);
        prop_assert_eq!(folded.snapshot(), bytes(&union));
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn bloom_snapshots_obey_the_same_algebra(
        seed in any::<u32>(),
        a_n in 0usize..3_000,
        b_n in 0usize..3_000,
    ) {
        // The BFCE-frame sketch: one real frame per population over the
        // same seeds and persistence, then the wire-level algebra.
        let cfg = BfceConfig::paper();
        let seeds = [seed, seed ^ 0x9E37, seed.wrapping_add(77)];
        let p_n = 40;
        let frame_sketch = |n: usize, stream: u64| {
            let tags: Vec<Tag> = (0..n as u64)
                .map(|i| Tag {
                    id: i.wrapping_mul(2 * stream + 1),
                    rn: i as u32,
                })
                .collect();
            let mut sys = RfidSystem::new(TagPopulation::new(tags));
            let plan = BloomPlan::new(&cfg, &seeds, p_n);
            let frame = sys.run_bitslot_frame(cfg.w, &plan);
            BloomSketch::from_frame(&cfg, &frame, &seeds, p_n)
        };
        let a = frame_sketch(a_n, 1);
        let b = frame_sketch(b_n, 3);
        let ab = {
            let mut m = a.clone();
            m.merge(&b).expect("same parameters");
            m
        };
        let ba = {
            let mut m = b.clone();
            m.merge(&a).expect("same parameters");
            m
        };
        prop_assert_eq!(bytes(&ab), bytes(&ba));
        let again = BloomSketch::restore(&bytes(&a)).expect("own snapshot restores");
        prop_assert_eq!(bytes(&again), bytes(&a));
        let mut aa = a.clone();
        aa.merge(&a).expect("self-merge");
        prop_assert_eq!(bytes(&aa), bytes(&a));
    }
}
