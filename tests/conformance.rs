//! Statistical conformance layer: the *distributions* the simulator
//! produces must match the paper's analysis, not just their means.
//!
//! Two families of checks:
//!
//! * a two-sample Kolmogorov–Smirnov test of the BFCE relative-error
//!   sample against the delta-method normal approximation of Section IV
//!   (`sd(n_hat) = sqrt(w (e^lambda - 1)) / (k p)`), and
//! * a chi-square test of per-frame busy/idle occupancy against the
//!   Poisson-approximation busy probability `1 - e^{-n/f}` for
//!   single-hash frames.
//!
//! Significance policy (documented in `BENCHMARKS.md`): all conformance
//! tests run at `alpha = 0.001`. Seeds are fixed, so each test is
//! deterministic for a given `rand` version; alpha only bounds the
//! false-alarm rate when seeds or the upstream `rand` stream change
//! (about 1 in 1000 per re-roll for a correct implementation).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfid_bfce_repro::bfce::estimator::standalone_frame;
use rfid_bfce_repro::bfce::theory::{estimate_from_rho, lambda};
use rfid_bfce_repro::bfce::BfceConfig;
use rfid_bfce_repro::hash::mix::{bucket, mix_pair};
use rfid_bfce_repro::sim::frame::response_counts;
use rfid_bfce_repro::sim::{ResponsePlan, RfidSystem, Tag};
use rfid_bfce_repro::stats::{
    chi_square_critical, chi_square_statistic_against, ks_critical, ks_statistic, normal_quantile,
};
use rfid_bfce_repro::workloads::WorkloadSpec;

/// Documented significance level for every conformance assertion.
const ALPHA: f64 = 0.001;

/// One standalone-frame estimate at persistence numerator `p_n`, with
/// fresh per-frame hash seeds drawn from `rng`.
fn one_estimate(cfg: &BfceConfig, system: &mut RfidSystem, p_n: u32, rng: &mut StdRng) -> f64 {
    let frame = standalone_frame(cfg, system, p_n, rng);
    let p = p_n as f64 / 1024.0;
    estimate_from_rho(frame.rho(), cfg.w, cfg.k, p)
}

/// KS conformance: the empirical distribution of BFCE relative errors
/// over repeated frames must match the delta-method normal
/// approximation `N(0, sigma_rel^2)` with
/// `sigma_rel = sqrt(w (e^lambda - 1)) / (k p n)`.
#[test]
fn relative_errors_match_the_normal_approximation() {
    let cfg = BfceConfig::paper();
    let n = 100_000usize;
    let p_n = 51u32; // p ~ 0.05 => lambda ~ 1.8, well inside the design band
    let trials = 64usize;

    let mut world = StdRng::seed_from_u64(0xC0F0_0001);
    let population = WorkloadSpec::T1.generate(n, &mut world);
    let mut system = RfidSystem::new(population);
    let mut rng = StdRng::seed_from_u64(0xC0F0_0002);

    let errors: Vec<f64> = (0..trials)
        .map(|_| (one_estimate(&cfg, &mut system, p_n, &mut rng) - n as f64) / n as f64)
        .collect();

    // Reference sample: a deterministic quantile grid of the predicted
    // normal law (m = 512 points at the (i + 1/2)/m quantiles).
    let p = p_n as f64 / 1024.0;
    let l = lambda(n as f64, cfg.w, cfg.k, p);
    let sigma_rel = (cfg.w as f64 * (l.exp() - 1.0)).sqrt() / (cfg.k as f64 * p) / n as f64;
    let m = 512usize;
    let reference: Vec<f64> = (0..m)
        .map(|i| sigma_rel * normal_quantile((i as f64 + 0.5) / m as f64))
        .collect();

    let stat = ks_statistic(&errors, &reference);
    let crit = ks_critical(errors.len(), reference.len(), ALPHA);
    assert!(
        stat <= crit,
        "KS statistic {stat:.4} exceeds the alpha = {ALPHA} critical value {crit:.4} \
         (sigma_rel = {sigma_rel:.5})"
    );
}

/// A plan where every tag always answers in exactly one slot: the
/// single-hash, no-persistence frame whose busy probability is the
/// textbook `1 - (1 - 1/f)^n ~ 1 - e^{-n/f}`.
#[derive(Debug)]
struct SingleHashPlan {
    seed: u32,
    w: usize,
}

impl ResponsePlan for SingleHashPlan {
    fn responses(&self, tag: &Tag, out: &mut Vec<usize>) {
        out.push(bucket(mix_pair(tag.id, self.seed as u64), self.w));
    }
}

/// Chi-square conformance: across repeated single-hash frames, the
/// busy/idle split must track `f (1 - e^{-n/f})` / `f e^{-n/f}`. Each
/// frame contributes one degree of freedom (busy + idle = f is fixed),
/// so the pooled statistic is compared against `chi2(R)`.
#[test]
fn busy_idle_occupancy_matches_poisson_approximation() {
    let n = 2_000usize;
    let w = 1_024usize;
    let frames = 32usize;

    let mut world = StdRng::seed_from_u64(0xC0F0_0003);
    let population = WorkloadSpec::T1.generate(n, &mut world);
    let tags: Vec<Tag> = population.tags().to_vec();

    let load = n as f64 / w as f64;
    let e_idle = w as f64 * (-load).exp();
    let e_busy = w as f64 - e_idle;

    let mut seeds = StdRng::seed_from_u64(0xC0F0_0004);
    let mut observed = Vec::with_capacity(2 * frames);
    let mut expected = Vec::with_capacity(2 * frames);
    for _ in 0..frames {
        let plan = SingleHashPlan {
            seed: seeds.gen::<u32>(),
            w,
        };
        let counts = response_counts(&tags, w, &plan);
        let busy = counts.iter().filter(|&&c| c > 0).count() as u64;
        observed.push(busy);
        observed.push(w as u64 - busy);
        expected.push(e_busy);
        expected.push(e_idle);
    }

    let stat = chi_square_statistic_against(&observed, &expected);
    let crit = chi_square_critical(frames as u64, ALPHA);
    assert!(
        stat <= crit,
        "pooled chi-square {stat:.2} exceeds the alpha = {ALPHA} critical value {crit:.2} \
         over {frames} frames (expected busy {e_busy:.1} of {w})"
    );
}

/// Chi-square conformance for the imperfect-hash fault channel: sensed
/// through [`ImperfectHashChannel`], the observed busy probability of a
/// single-hash frame must track the *biased* Poisson law
/// `p_busy = (1 - p_miss)(1 - e^{-n/f}) + p_ghost e^{-n/f}` — the fault
/// class injects a quantified occupancy bias, not arbitrary noise.
#[test]
fn imperfect_hash_occupancy_matches_the_biased_poisson_law() {
    use rfid_bfce_repro::sim::ImperfectHashChannel;

    let n = 2_000usize;
    let w = 1_024usize;
    let frames = 32usize;
    let (p_miss, p_ghost) = (0.15, 0.03);

    let mut world = StdRng::seed_from_u64(0xC0F0_0006);
    let population = WorkloadSpec::T1.generate(n, &mut world);
    let mut system = RfidSystem::with_channel(
        population,
        Box::new(ImperfectHashChannel::new(p_miss, p_ghost)),
    );
    system.set_noise_seed(0xC0F0_0007);

    let load = n as f64 / w as f64;
    let p_truth_busy = 1.0 - (-load).exp();
    let p_busy = (1.0 - p_miss) * p_truth_busy + p_ghost * (1.0 - p_truth_busy);
    let e_busy = w as f64 * p_busy;
    let e_idle = w as f64 - e_busy;

    let mut seeds = StdRng::seed_from_u64(0xC0F0_0008);
    let mut observed = Vec::with_capacity(2 * frames);
    let mut expected = Vec::with_capacity(2 * frames);
    for _ in 0..frames {
        let plan = SingleHashPlan {
            seed: seeds.gen::<u32>(),
            w,
        };
        let frame = system.run_bitslot_frame(w, &plan);
        observed.push(frame.busy_count() as u64);
        observed.push(frame.idle_count() as u64);
        expected.push(e_busy);
        expected.push(e_idle);
    }

    let stat = chi_square_statistic_against(&observed, &expected);
    let crit = chi_square_critical(frames as u64, ALPHA);
    assert!(
        stat <= crit,
        "pooled chi-square {stat:.2} exceeds the alpha = {ALPHA} critical value {crit:.2} \
         (expected busy {e_busy:.1} of {w} under p_miss = {p_miss}, p_ghost = {p_ghost})"
    );
}

/// Chi-square conformance for the capture-effect fault channel: over
/// repeated single-hash Aloha frames, the empty/singleton/collision split
/// must follow the Poisson occupancy law with every captured collision
/// moved into the singleton bin:
/// `p_single' = load e^{-load} + c (1 - e^{-load} - load e^{-load})`.
#[test]
fn capture_effect_shifts_singletons_by_the_configured_rate() {
    use rfid_bfce_repro::sim::CaptureChannel;

    let n = 1_500usize;
    let f = 1_024usize;
    let frames = 32usize;
    let capture = 0.4;

    let mut world = StdRng::seed_from_u64(0xC0F0_0009);
    let population = WorkloadSpec::T1.generate(n, &mut world);
    let mut system =
        RfidSystem::with_channel(population, Box::new(CaptureChannel::new(capture)));
    system.set_noise_seed(0xC0F0_000A);

    let load = n as f64 / f as f64;
    let p_empty = (-load).exp();
    let p_single = load * p_empty;
    let p_coll = 1.0 - p_empty - p_single;
    let e_empty = f as f64 * p_empty;
    let e_single = f as f64 * (p_single + capture * p_coll);
    let e_coll = f as f64 * (1.0 - capture) * p_coll;

    let mut seeds = StdRng::seed_from_u64(0xC0F0_000B);
    let mut observed = Vec::with_capacity(3 * frames);
    let mut expected = Vec::with_capacity(3 * frames);
    for _ in 0..frames {
        let plan = SingleHashPlan {
            seed: seeds.gen::<u32>(),
            w: f,
        };
        let frame = system.run_aloha_frame(f, &plan);
        observed.push(frame.empties() as u64);
        observed.push(frame.singletons() as u64);
        observed.push(frame.collisions() as u64);
        expected.push(e_empty);
        expected.push(e_single);
        expected.push(e_coll);
    }

    // Each frame fixes one marginal (the three bins sum to f), so the
    // pooled statistic has 2 degrees of freedom per frame.
    let stat = chi_square_statistic_against(&observed, &expected);
    let crit = chi_square_critical(2 * frames as u64, ALPHA);
    assert!(
        stat <= crit,
        "pooled chi-square {stat:.2} exceeds the alpha = {ALPHA} critical value {crit:.2} \
         (expected singletons {e_single:.1} of {f} at capture = {capture})"
    );
}

/// KS conformance for the LogLog-family baselines: over repeated
/// independent hash seeds, the relative errors of both register-sketch
/// estimators must match their design law `N(0, (1.04 / sqrt(m))^2)` —
/// the published standard error both HyperLogLog++ and LogLog-β inherit
/// from the underlying max-rank register file. This pins the *sampling
/// distribution* of the new baselines, not just a point estimate, with
/// the same fixed-seed policy as the BFCE checks above.
#[test]
fn loglog_family_relative_errors_match_the_design_sigma() {
    use rfid_bfce_repro::bfce::{RegisterFlavor, RegisterSketch};

    let n = 20_000usize;
    let precision = 10u8; // m = 1024 => sigma_rel ~ 3.25%
    let trials = 64usize;
    let sigma_rel = 1.04 / f64::from(1u32 << precision).sqrt();

    let mut world = StdRng::seed_from_u64(0xC0F0_0010);
    let population = WorkloadSpec::T1.generate(n, &mut world);

    let m = 512usize;
    let reference: Vec<f64> = (0..m)
        .map(|i| sigma_rel * normal_quantile((i as f64 + 0.5) / m as f64))
        .collect();

    for (flavor, seed_stream) in [
        (RegisterFlavor::HllPp, 0xC0F0_0011u64),
        (RegisterFlavor::LogLogBeta, 0xC0F0_0012u64),
    ] {
        let mut seeds = StdRng::seed_from_u64(seed_stream);
        let errors: Vec<f64> = (0..trials)
            .map(|_| {
                let mut sketch = RegisterSketch::new(flavor, precision, 32, seeds.gen());
                for tag in population.tags() {
                    sketch.observe_identity(tag.id);
                }
                (sketch.estimate() - n as f64) / n as f64
            })
            .collect();

        let stat = ks_statistic(&errors, &reference);
        let crit = ks_critical(errors.len(), reference.len(), ALPHA);
        assert!(
            stat <= crit,
            "{flavor:?}: KS statistic {stat:.4} exceeds the alpha = {ALPHA} critical \
             value {crit:.4} (sigma_rel = {sigma_rel:.5})"
        );
    }
}

/// The batched word-level fill path must leave the conformance picture
/// unchanged: re-running the KS experiment through the reference scalar
/// path yields the *same* error sample bit for bit (the kernels are
/// exact rewrites, not approximations), so one distributional test
/// covers both.
#[test]
fn batched_and_scalar_fill_share_one_error_distribution() {
    use rfid_bfce_repro::bfce::BloomPlan;
    use rfid_bfce_repro::sim::frame::{response_counts_reference, response_fill_with_threads};

    let cfg = BfceConfig::paper();
    let n = 30_000usize;
    let p_n = 128u32;
    let mut world = StdRng::seed_from_u64(0xC0F0_0005);
    let population = WorkloadSpec::T1.generate(n, &mut world);
    let tags: Vec<Tag> = population.tags().to_vec();
    let seeds = [0xA11C_E001u32, 0xB0B0_0002, 0xCAFE_0003];
    let plan = BloomPlan::new(&cfg, &seeds, p_n);

    let counts = response_counts_reference(&tags, cfg.w, &plan, usize::MAX);
    let scalar_busy = counts.iter().filter(|&&c| c > 0).count();
    let fill = response_fill_with_threads(&tags, cfg.w, cfg.w, &plan, 1);
    let batched_busy = (0..cfg.w).filter(|&i| fill.busy.get(i)).count();
    assert_eq!(
        scalar_busy, batched_busy,
        "batched fill changed the busy count the estimator sees"
    );
}
