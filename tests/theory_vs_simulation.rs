//! Theory-versus-simulation: the analytical results of Section IV must
//! predict what the simulator actually does. These are the tests that
//! would catch a units/convention mismatch (e.g. the paper's inverted
//! B-vector encoding) anywhere in the stack.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_bfce_repro::bfce::estimator::standalone_frame;
use rfid_bfce_repro::bfce::overhead::{nominal_total_seconds, nominal_total_us};
use rfid_bfce_repro::bfce::theory::{expected_rho, lambda};
use rfid_bfce_repro::bfce::{Bfce, BfceConfig};
use rfid_bfce_repro::prelude::*;
use rfid_bfce_repro::sim::Timing;

/// One observed idle ratio for a fresh population/frame.
fn observed_rho(n: usize, p_n: u32, seed: u64) -> f64 {
    let cfg = BfceConfig::paper();
    let mut world = StdRng::seed_from_u64(seed);
    let population = WorkloadSpec::T1.generate(n, &mut world);
    let mut system = RfidSystem::new(population);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    standalone_frame(&cfg, &mut system, p_n, &mut rng).rho()
}

#[test]
fn theorem_1_predicts_the_observed_idle_ratio() {
    // Across loads from sparse to dense, the measured idle fraction must
    // track e^-lambda within a few standard errors of the w = 8192
    // binomial observation.
    for (n, p_n) in [
        (5_000usize, 102u32),
        (50_000, 102),
        (50_000, 10),
        (500_000, 3),
        (1_000_000, 3),
    ] {
        let p = p_n as f64 / 1024.0;
        let l = lambda(n as f64, 8192, 3, p);
        let want = expected_rho(l);
        let sigma = (want * (1.0 - want) / 8192.0).sqrt();
        let got = observed_rho(n, p_n, n as u64 + p_n as u64);
        assert!(
            (got - want).abs() < 5.0 * sigma.max(1e-4),
            "n={n} p_n={p_n}: rho {got} vs theory {want} (sigma {sigma})"
        );
    }
}

#[test]
fn section_iv_e1_overhead_matches_the_measured_ledger() {
    // The closed-form t1 + t2 must equal the ledger total of the two
    // estimation phases (probe excluded, as in the paper).
    let mut world = StdRng::seed_from_u64(4);
    let population = WorkloadSpec::T2.generate(300_000, &mut world);
    let mut system = RfidSystem::new(population);
    let mut rng = StdRng::seed_from_u64(5);
    let run = Bfce::paper().run(&mut system, Accuracy::paper_default(), &mut rng);
    let measured_phases_us =
        run.report.phases[1].air.total_us() + run.report.phases[2].air.total_us();
    // The paper's formula assumes the rough broadcast is the first
    // transmission; in the full protocol one extra turnaround separates
    // the (uncounted) probe stage from the rough phase.
    let nominal = nominal_total_us(&Timing::c1g2(), &BfceConfig::paper())
        + Timing::c1g2().turnaround_us;
    assert!(
        (measured_phases_us - nominal).abs() < 1e-6,
        "measured {measured_phases_us} vs closed form {nominal}"
    );
    assert!(nominal_total_seconds(&Timing::c1g2(), &BfceConfig::paper()) < 0.19);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized version of the Theorem-1 check over the design space.
    #[test]
    fn idle_ratio_tracks_theory_under_random_parameters(
        n in 2_000usize..300_000,
        p_n in 2u32..200,
        seed in 0u64..1_000,
    ) {
        let p = p_n as f64 / 1024.0;
        let l = lambda(n as f64, 8192, 3, p);
        // Keep away from fully saturated frames where sigma collapses.
        prop_assume!(l < 5.0);
        let want = expected_rho(l);
        let sigma = (want * (1.0 - want) / 8192.0).sqrt();
        let got = observed_rho(n, p_n, seed);
        prop_assert!(
            (got - want).abs() < 6.0 * sigma.max(1e-4),
            "n={n} p_n={p_n}: rho {got} vs {want}"
        );
    }

    /// The end-to-end estimator, repeatedly sampled across the design
    /// space, stays within the requested interval nearly always (delta
    /// allows 5% misses; we tolerate a single-case margin instead of a
    /// statistical test here).
    #[test]
    fn bfce_error_stays_near_epsilon(
        n in 10_000usize..400_000,
        seed in 0u64..1_000,
    ) {
        let mut world = StdRng::seed_from_u64(seed);
        let population = WorkloadSpec::T1.generate(n, &mut world);
        let mut system = RfidSystem::new(population);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
        let report =
            Bfce::paper().estimate(&mut system, Accuracy::paper_default(), &mut rng);
        prop_assert!(
            report.relative_error(n) < 0.10,
            "n={n} seed={seed}: err {}",
            report.relative_error(n)
        );
    }
}
