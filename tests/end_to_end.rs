//! Cross-crate integration: workloads feed the simulator, estimators
//! drive it through the trait, and the air-time ledger accounts every
//! protocol faithfully.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_bfce_repro::baselines::{Art, Ezb, Fneb, HllPp, Lof, LogLogBeta, Mle, Pet, QInventory, Src, Upe, Zoe, A3};
use rfid_bfce_repro::prelude::*;
use rfid_bfce_repro::sim::CardinalityEstimator;
use rfid_cli::commands::{all_estimators, make_estimator, ESTIMATOR_NAMES};

fn system(spec: WorkloadSpec, n: usize, seed: u64) -> RfidSystem {
    let mut rng = StdRng::seed_from_u64(seed);
    RfidSystem::new(spec.generate(n, &mut rng))
}

#[test]
fn bfce_meets_accuracy_on_every_paper_workload() {
    for (wi, spec) in WorkloadSpec::PAPER_SET.iter().enumerate() {
        for (si, &n) in [10_000usize, 200_000].iter().enumerate() {
            let mut sys = system(*spec, n, 100 + wi as u64);
            let mut rng = StdRng::seed_from_u64(7 + si as u64 + wi as u64 * 13);
            let report =
                Bfce::paper().estimate(&mut sys, Accuracy::paper_default(), &mut rng);
            let rel = report.relative_error(n);
            assert!(
                rel < 0.05,
                "{} @ n={n}: rel = {rel} (estimate {})",
                spec.name(),
                report.n_hat
            );
        }
    }
}

#[test]
fn estimators_compose_through_the_trait_object() {
    let estimators: Vec<Box<dyn CardinalityEstimator>> = vec![
        Box::new(Bfce::paper()),
        Box::new(Zoe::default()),
        Box::new(Src::default()),
        Box::new(Ezb::default()),
    ];
    let truth = 30_000usize;
    for est in estimators {
        let mut sys = system(WorkloadSpec::T2, truth, 55);
        let mut rng = StdRng::seed_from_u64(3);
        let report = est.estimate(&mut sys, Accuracy::new(0.1, 0.1), &mut rng);
        assert!(
            report.relative_error(truth) < 0.12,
            "{}: estimate {} for {truth}",
            est.name(),
            report.n_hat
        );
        // Every protocol leaves a faithful ledger trail.
        assert!(report.air.total_us() > 0.0);
        assert!(report.air.reader_messages > 0);
        let system_total = sys.air_time().total_us();
        assert!(
            (system_total - report.air.total_us()).abs() < 1e-6,
            "{}: report air {} != system ledger {}",
            est.name(),
            report.air.total_us(),
            system_total
        );
    }
}

#[test]
fn every_registered_estimator_answers_through_the_trait() {
    // The estimator set is *derived* from the CLI registry
    // (`rfid_cli::commands::ESTIMATOR_NAMES`) rather than hand-listed, so
    // a baseline added to the factory is automatically exercised here and
    // a stale hardcoded count can never mask a missing registration. The
    // analysis crate's estimator-registry rule demands every
    // `impl CardinalityEstimator` appear in at least one tests/ file; the
    // type-level roll call lives in `workspace_types_cover_the_registry`
    // below.
    let estimators = all_estimators();
    assert_eq!(estimators.len(), ESTIMATOR_NAMES.len());
    let truth = 10_000usize;
    let mut names = std::collections::BTreeSet::new();
    for est in estimators {
        assert!(!est.name().is_empty(), "estimator with empty name");
        assert!(names.insert(est.name()), "duplicate name {}", est.name());
        let mut sys = system(WorkloadSpec::T1, truth, 21);
        let mut rng = StdRng::seed_from_u64(4);
        let report = est.estimate(&mut sys, Accuracy::new(0.2, 0.2), &mut rng);
        assert!(
            report.n_hat.is_finite() && report.n_hat > 0.0,
            "{}: degenerate estimate {}",
            est.name(),
            report.n_hat
        );
        assert!(report.air.total_us() > 0.0, "{}: empty air ledger", est.name());
    }
}

#[test]
fn workspace_types_cover_the_registry() {
    // The type-level roll call: every concrete `impl CardinalityEstimator`
    // in the workspace must be reachable through the CLI registry, under
    // the display name its type reports. A type missing from this list has
    // no CLI name; a name missing from the factory fails `all_estimators`.
    let concrete: Vec<(&str, Box<dyn CardinalityEstimator>)> = vec![
        ("bfce", Box::new(Bfce::paper())),
        ("zoe", Box::new(Zoe::default())),
        ("src", Box::new(Src::default())),
        ("lof", Box::new(Lof::default())),
        ("upe", Box::new(Upe::default())),
        ("ezb", Box::new(Ezb::default())),
        ("fneb", Box::new(Fneb::default())),
        ("art", Box::new(Art::default())),
        ("mle", Box::new(Mle::default())),
        ("pet", Box::new(Pet::default())),
        ("a3", Box::new(A3::default())),
        ("inventory", Box::new(QInventory::default())),
        ("hllpp", Box::new(HllPp::default())),
        ("llbeta", Box::new(LogLogBeta::default())),
    ];
    assert_eq!(concrete.len(), ESTIMATOR_NAMES.len());
    for (cli_name, est) in concrete {
        assert!(ESTIMATOR_NAMES.contains(&cli_name), "{cli_name}");
        let from_registry = make_estimator(cli_name).expect(cli_name);
        assert_eq!(from_registry.name(), est.name(), "{cli_name}");
    }
}

#[test]
fn bfce_execution_time_is_independent_of_cardinality_and_accuracy() {
    // The constant-time property, end to end: across two orders of
    // magnitude of n and the full accuracy grid, BFCE's air time stays in
    // a tight band (only the probe stage varies by a few windows).
    let mut times = Vec::new();
    for &n in &[20_000usize, 200_000, 1_000_000] {
        for &eps in &[0.05, 0.3] {
            let mut sys = system(WorkloadSpec::T1, n, n as u64);
            let mut rng = StdRng::seed_from_u64(n as u64 ^ 17);
            let report =
                Bfce::paper().estimate(&mut sys, Accuracy::new(eps, 0.05), &mut rng);
            times.push(report.air.total_seconds());
        }
    }
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        max / min < 1.15,
        "air time not constant: {times:?}"
    );
    assert!(max < 0.21, "air time {max} above the paper's ballpark");
}

#[test]
fn zoe_is_dominated_by_reader_traffic_and_bfce_by_tag_traffic() {
    // The architectural contrast the paper draws in Section I.
    let truth = 50_000usize;
    let mut sys = system(WorkloadSpec::T1, truth, 1);
    let mut rng = StdRng::seed_from_u64(5);
    let zoe = Zoe::default().estimate(&mut sys, Accuracy::paper_default(), &mut rng);
    assert!(zoe.air.reader_us > zoe.air.tag_us);

    let mut sys2 = system(WorkloadSpec::T1, truth, 1);
    let bfce = Bfce::paper().estimate(&mut sys2, Accuracy::paper_default(), &mut rng);
    assert!(bfce.air.tag_us > bfce.air.reader_us);
    assert!(bfce.air.total_us() < zoe.air.total_us() / 10.0);
}

#[test]
fn lof_feeds_zoe_the_same_way_the_paper_wires_them() {
    // ZOE's first phase is LOF x10: its reported phase structure must
    // reflect that.
    let mut sys = system(WorkloadSpec::T3, 40_000, 2);
    let mut rng = StdRng::seed_from_u64(8);
    let report = Zoe::default().estimate(&mut sys, Accuracy::new(0.2, 0.2), &mut rng);
    assert_eq!(report.phases.len(), 2);
    assert!(report.phases[0].name.contains("LOF"));
    // LOF alone: 10 rounds * 32 slots.
    assert_eq!(report.phases[0].air.bitslots, 320);
}

#[test]
fn reports_surface_warnings_for_out_of_design_range_populations() {
    // 200 tags is far below the paper's design floor (n > 1000): BFCE
    // still answers, flags the best-effort path, and stays in the right
    // order of magnitude.
    let mut sys = system(WorkloadSpec::T1, 200, 3);
    let mut rng = StdRng::seed_from_u64(9);
    let run = Bfce::paper().run(&mut sys, Accuracy::paper_default(), &mut rng);
    assert!(!run.report.warnings.is_empty());
    assert!(
        (run.n_hat() - 200.0).abs() < 150.0,
        "estimate {} for 200 tags",
        run.n_hat()
    );
}
