//! The fault matrix: every estimator in the workspace, under every fault
//! class the robustness layer injects.
//!
//! Three guarantees per `(estimator, fault class)` cell:
//!
//! 1. **No panics.** Degraded observations must degrade the estimate, not
//!    crash the protocol.
//! 2. **Flagged or clean.** If the run is degraded, the system's
//!    [`Quality`] record says so, its counters are internally consistent,
//!    and the widened `(ε, δ)` it reports is no tighter than the nominal
//!    requirement. If the run is *not* degraded (every fault recovered or
//!    none fired), the estimate is bitwise identical to a fault-free run
//!    of the same seed — recovered retries are estimate-preserving.
//! 3. **Replayable.** Repeating a faulted cell with the same seed
//!    reproduces the estimate and the quality record exactly.
//!
//! The `estimator-registry` analysis rule requires every
//! `impl CardinalityEstimator` in the workspace to be mentioned here, so
//! a new estimator cannot ship without passing the matrix.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_bfce_repro::baselines::{
    Art, Ezb, Fneb, HllPp, Lof, LogLogBeta, Mle, Pet, QInventory, Src, Upe, Zoe, A3,
};
use rfid_bfce_repro::experiments::robustness::FaultClass;
use rfid_bfce_repro::hash::stream_seed;
use rfid_bfce_repro::prelude::*;
use rfid_bfce_repro::sim::Quality;
use rfid_bfce_repro::workloads::WorkloadSpec as Workload;

const N: usize = 5_000;
const LAMBDA: f64 = 0.5;

/// Every estimator the workspace ships, in CLI-registry order.
fn estimator_family() -> Vec<Box<dyn CardinalityEstimator>> {
    vec![
        Box::new(Bfce::paper()),
        Box::new(Zoe::default()),
        Box::new(Src::default()),
        Box::new(Lof::default()),
        Box::new(Upe::default()),
        Box::new(Ezb::default()),
        Box::new(Fneb::default()),
        Box::new(Art::default()),
        Box::new(Mle::default()),
        Box::new(Pet::default()),
        Box::new(A3::default()),
        Box::new(QInventory::default()),
        Box::new(HllPp::default()),
        Box::new(LogLogBeta::default()),
    ]
}

/// One faulted estimation run; returns the report and the quality record.
fn faulted_run(
    est: &dyn CardinalityEstimator,
    class: FaultClass,
    seed: u64,
) -> (EstimationReport, Quality) {
    let mut system = class.build_system(N, LAMBDA, seed);
    system.set_noise_seed(seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let report = est.estimate(&mut system, Accuracy::paper_default(), &mut rng);
    let quality = system.quality().clone();
    (report, quality)
}

/// The fault-free twin of [`faulted_run`]: same population stream, same
/// noise seed, same reader RNG, perfect channel, no fault plan.
fn clean_run(est: &dyn CardinalityEstimator, seed: u64) -> EstimationReport {
    let mut world = StdRng::seed_from_u64(stream_seed(seed, 0));
    let population = Workload::T1.generate(N, &mut world);
    let mut system = RfidSystem::new(population);
    system.set_noise_seed(seed);
    let mut rng = StdRng::seed_from_u64(seed);
    est.estimate(&mut system, Accuracy::paper_default(), &mut rng)
}

fn assert_counters_consistent(quality: &Quality, label: &str) {
    assert!(
        quality.slots_lost <= quality.slots_observed,
        "{label}: lost {} > observed {}",
        quality.slots_lost,
        quality.slots_observed
    );
    assert!(
        quality.slots_corrupted <= quality.slots_observed,
        "{label}: corrupted {} > observed {}",
        quality.slots_corrupted,
        quality.slots_observed
    );
    assert!(
        quality.aborted_frames <= quality.frames,
        "{label}: aborted {} > frames {}",
        quality.aborted_frames,
        quality.frames
    );
    assert!(
        quality.desync_events <= quality.frames,
        "{label}: desyncs {} > frames {}",
        quality.desync_events,
        quality.frames
    );
    if quality.slots_lost > 0 {
        assert!(
            quality.aborted_frames > 0,
            "{label}: slots lost without an aborted frame"
        );
    }
}

#[test]
fn every_estimator_survives_every_fault_class() {
    let accuracy = Accuracy::paper_default();
    for (est_idx, est) in estimator_family().iter().enumerate() {
        for (class_idx, &class) in FaultClass::all().iter().enumerate() {
            let label = format!("{} x {}", est.name(), class.name());
            let seed = stream_seed(0xFA17_AB1E, (est_idx as u64) << 8 | class_idx as u64);

            // Guarantee 1: the cell completes and yields a finite estimate.
            let (report, quality) = faulted_run(est.as_ref(), class, seed);
            assert!(
                report.n_hat.is_finite(),
                "{label}: non-finite estimate {}",
                report.n_hat
            );
            assert_counters_consistent(&quality, &label);

            if quality.degraded() {
                // Guarantee 2a: degraded runs widen, never tighten, the
                // advertised accuracy.
                let widened = quality.widened(accuracy);
                assert!(
                    widened.epsilon >= accuracy.epsilon,
                    "{label}: widened epsilon {} below nominal",
                    widened.epsilon
                );
                assert!(
                    widened.delta >= accuracy.delta,
                    "{label}: widened delta {} below nominal",
                    widened.delta
                );
            } else {
                // Guarantee 2b: a non-degraded faulted run is
                // indistinguishable from a fault-free run — recovered
                // retries must be estimate-preserving.
                let clean = clean_run(est.as_ref(), seed);
                assert_eq!(
                    report.n_hat.to_bits(),
                    clean.n_hat.to_bits(),
                    "{label}: non-degraded run diverges from clean twin \
                     ({} vs {})",
                    report.n_hat,
                    clean.n_hat
                );
            }

            // Guarantee 3: the cell replays bitwise.
            let (replay, replay_quality) = faulted_run(est.as_ref(), class, seed);
            assert_eq!(
                report.n_hat.to_bits(),
                replay.n_hat.to_bits(),
                "{label}: estimate not replayable"
            );
            assert_eq!(quality, replay_quality, "{label}: quality not replayable");
        }
    }
}

#[test]
fn abort_recovery_is_estimate_preserving_on_a_perfect_channel() {
    // The abort class on a perfect channel: whenever every abort recovers
    // within the retry budget, the estimate must equal the clean twin's
    // bitwise, while the retry counter records the overhead.
    let est = Bfce::paper();
    let mut recovered = 0u32;
    for trial in 0..12u64 {
        let seed = stream_seed(0xAB0_127, trial);
        let (report, quality) = faulted_run(&est, FaultClass::Abort, seed);
        if !quality.degraded() {
            recovered += 1;
            let clean = clean_run(&est, seed);
            assert_eq!(report.n_hat.to_bits(), clean.n_hat.to_bits());
        } else {
            assert!(quality.aborted_frames > 0);
        }
    }
    assert!(
        recovered > 0,
        "no trial recovered cleanly; abort intensity too aggressive for the test"
    );
}

#[test]
fn noisy_channel_classes_always_flag_degradation() {
    for class in [
        FaultClass::Capture,
        FaultClass::ImperfectHash,
        FaultClass::BitError,
    ] {
        let (_, quality) = faulted_run(&Bfce::paper(), class, 99);
        assert!(
            quality.degraded(),
            "{}: noisy channel not flagged",
            class.name()
        );
        assert!(quality.noisy_channel);
    }
}

#[test]
fn dropout_cells_record_lost_coverage_for_frame_running_estimators() {
    // Estimators that execute reader frames must observe the dropout and
    // account the lost coverage.
    let (_, quality) = faulted_run(&Zoe::default(), FaultClass::Dropout, 7);
    assert!(quality.degraded());
    assert!(quality.readers_failed > 0);
    assert!(quality.coverage_lost > 0);

    // Q-inventory never runs frames, so the dropout plan can never fire:
    // the cell stays clean and therefore bitwise-equal to its twin.
    let (report, quality) = faulted_run(&QInventory::default(), FaultClass::Dropout, 7);
    assert!(!quality.degraded());
    let clean = clean_run(&QInventory::default(), 7);
    assert_eq!(report.n_hat.to_bits(), clean.n_hat.to_bits());
}
