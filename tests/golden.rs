//! Golden-figure regression: small fixed-seed renderings of the figure
//! tables, committed under `tests/golden/`, must regenerate **bitwise**
//! identically on every run.
//!
//! Each golden file opens with a fingerprint of the local
//! `rand::rngs::StdRng` stream (see `rfid_experiments::golden`). When
//! the local fingerprint matches the committed one, the committed bytes
//! are authoritative and any drift — estimator, simulator, trial engine,
//! or CSV writer — fails the test; regenerate intentionally with
//! `cargo run -p rfid-experiments --bin golden`. When the fingerprints
//! differ (a different `rand` build produced the goldens), the byte
//! comparison is vacuous, so the test instead asserts the property the
//! golden guards: two fresh regenerations agree bitwise.

use rfid_experiments::golden;

/// Path to a committed golden file, anchored at the workspace root
/// (cargo sets `CARGO_MANIFEST_DIR` when compiling tests; a bare rustc
/// invocation falls back to the current directory).
fn golden_path(stem: &str) -> String {
    let root = option_env!("CARGO_MANIFEST_DIR").unwrap_or(".");
    format!("{root}/tests/golden/{stem}.csv")
}

#[test]
fn committed_goldens_regenerate_bitwise() {
    let local = golden::rand_fingerprint();
    for (stem, table) in golden::artifacts() {
        let rendered = golden::render(&table);
        let path = golden_path(stem);
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden file {path}: {e}"));
        let committed_fp = committed
            .lines()
            .next()
            .and_then(|l| l.strip_prefix(golden::FINGERPRINT_PREFIX))
            .unwrap_or_else(|| panic!("{path} lacks a fingerprint header"));
        if committed_fp == local {
            assert_eq!(
                rendered, committed,
                "{stem}: regeneration drifted from the committed golden; if the \
                 change is intentional run `cargo run -p rfid-experiments --bin golden`"
            );
        } else {
            // Foreign rand stream: fall back to the determinism property.
            let again = golden::render(&table_by_stem(stem));
            assert_eq!(
                rendered, again,
                "{stem}: two regenerations under one build must agree bitwise"
            );
            eprintln!(
                "note: {stem} golden was produced by a different rand build \
                 (committed {committed_fp}, local {local}); byte comparison skipped"
            );
        }
    }
}

/// A second, independent regeneration of one artifact (fresh `run` call,
/// nothing shared with the first).
fn table_by_stem(stem: &str) -> rfid_experiments::Table {
    for (s, t) in golden::artifacts() {
        if s == stem {
            return t;
        }
    }
    panic!("unknown golden stem {stem}");
}

#[test]
fn golden_files_are_well_formed() {
    for (stem, _) in [("fig03_quick", ()), ("guarantee_quick", ())] {
        let path = golden_path(stem);
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden file {path}: {e}"));
        let mut lines = committed.lines();
        let fp = lines.next().unwrap_or("");
        assert!(
            fp.starts_with(golden::FINGERPRINT_PREFIX),
            "{stem}: first line must carry the rand fingerprint"
        );
        let header = lines.next().unwrap_or("");
        assert!(
            header.contains(','),
            "{stem}: second line must be a CSV header, got {header:?}"
        );
        assert!(
            lines.filter(|l| !l.starts_with('#')).count() >= 2,
            "{stem}: golden must contain at least two data rows"
        );
    }
}
