//! Multi-reader deployments: the paper's "logically one reader"
//! assumption, exercised end to end.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_bfce_repro::baselines::registers::collect_register_sketch;
use rfid_bfce_repro::bfce::{merge_all, RegisterFlavor, Snapshot};
use rfid_bfce_repro::prelude::*;
use rfid_bfce_repro::sim::multireader::MultiReaderDeployment;
use rfid_bfce_repro::sim::Tag;
use rfid_bfce_repro::stats::d_for_delta;

fn tags(range: std::ops::Range<u64>) -> Vec<Tag> {
    range
        .map(|id| Tag {
            id,
            rn: (id as u32).wrapping_mul(0x9E37_79B9),
        })
        .collect()
}

#[test]
fn overlapping_readers_count_each_tag_once() {
    // Four readers with heavy overlap: the logical population is the
    // union, and BFCE estimates that union, not the sum of coverages.
    let mut deployment = MultiReaderDeployment::new();
    deployment.add_reader(tags(1..60_001));
    deployment.add_reader(tags(40_001..100_001));
    deployment.add_reader(tags(80_001..140_001));
    deployment.add_reader(tags(1..20_001));
    let union = 140_000usize;
    let population = deployment
        .logical_population()
        .expect("consistent deployment");
    assert_eq!(population.cardinality(), union);
    assert!(deployment.coverage_entries() > union); // overlaps are real

    let mut system = deployment.logical_system().expect("consistent deployment");
    let mut rng = StdRng::seed_from_u64(77);
    let report = Bfce::paper().estimate(&mut system, Accuracy::paper_default(), &mut rng);
    assert!(
        report.relative_error(union) < 0.05,
        "estimate {} for union {union}",
        report.n_hat
    );
    // Sanity: the naive per-reader sum would be badly wrong.
    let naive = deployment.coverage_entries() as f64;
    assert!((report.n_hat - naive).abs() / naive > 0.2);
}

#[test]
fn disjoint_warehouse_zones_sum_up() {
    let mut deployment = MultiReaderDeployment::new();
    deployment.add_reader(tags(1..30_001));
    deployment.add_reader(tags(50_001..90_001));
    deployment.add_reader(tags(100_001..130_001));
    let total = 30_000 + 40_000 + 30_000;
    let mut system = deployment.logical_system().expect("consistent deployment");
    let mut rng = StdRng::seed_from_u64(5);
    let report = Bfce::paper().estimate(&mut system, Accuracy::paper_default(), &mut rng);
    assert!(report.relative_error(total) < 0.05);
}

#[test]
fn single_reader_deployment_degenerates_to_plain_system() {
    let mut deployment = MultiReaderDeployment::new();
    deployment.add_reader(tags(1..10_001));
    let sys = deployment.logical_system().expect("consistent deployment");
    assert_eq!(sys.true_cardinality(), 10_000);
    assert_eq!(deployment.reader_count(), 1);
}

#[test]
fn sixty_four_reader_snapshot_merge_meets_the_accuracy_bound() {
    // The acceptance bar for the snapshot merge path: 64 physical readers
    // covering a >= 1M-tag union (25% of each reader's coverage shared
    // with its neighbour), one LogLog-beta snapshot per reader, folded by
    // the back end — the merged estimate must sit inside the (eps, delta)
    // band the sketch's precision provably supports, and the folded bytes
    // must not depend on the order the snapshots arrive in.
    const READERS: u64 = 64;
    const CHUNK: u64 = 16_384;
    const SHARED: u64 = CHUNK / 4;
    let union = (READERS * CHUNK) as usize; // 1_048_576 distinct tags
    assert!(union >= 1_000_000);

    let mut deployment = MultiReaderDeployment::new();
    for reader in 0..READERS {
        let start = reader * CHUNK;
        let mut coverage = tags(start..start + CHUNK);
        // Wrapping overlap into the next reader's zone.
        let next = (reader + 1) % READERS * CHUNK;
        coverage.extend(tags(next..next + SHARED));
        deployment.add_reader(coverage);
    }
    assert_eq!(
        deployment
            .logical_population()
            .expect("consistent deployment")
            .cardinality(),
        union
    );

    // Every reader sketches its own coverage under one shared broadcast
    // seed; only the serialized snapshots travel to the back end.
    let shared_seed = 0xC0FF_EE64u32;
    let snapshots: Vec<Vec<u8>> = (0..READERS as usize)
        .map(|reader| {
            let mut system = deployment.reader_system(reader).expect("in range");
            collect_register_sketch(
                RegisterFlavor::LogLogBeta,
                14,
                32,
                &mut system,
                shared_seed,
            )
            .snapshot()
        })
        .collect();

    let folded = merge_all(snapshots.iter().map(Vec::as_slice)).expect("compatible");
    let reference = folded.snapshot();

    // Bitwise order-invariance: arrival order is operationally arbitrary.
    let orders: [Vec<usize>; 3] = [
        (0..64).rev().collect(),                       // reversed
        (0..64).map(|i| (i * 37) % 64).collect(),      // 37 is coprime to 64
        (0..32).flat_map(|i| [i, i + 32]).collect(),   // interleaved halves
    ];
    for order in orders {
        let permuted = merge_all(order.iter().map(|&i| snapshots[i].as_slice()))
            .expect("compatible");
        assert_eq!(permuted.snapshot(), reference);
        assert_eq!(
            permuted.estimate().to_bits(),
            folded.estimate().to_bits(),
            "estimate must be bitwise order-invariant"
        );
    }

    // Accuracy: precision 14 gives sigma ~ 1.04 / sqrt(2^14); the paper's
    // (0.05, 0.05) requirement is provably within reach, and this seed
    // must land inside the band.
    let (epsilon, delta) = (0.05, 0.05);
    let sigma = 1.04 / f64::from(1u32 << 14).sqrt();
    assert!(sigma * d_for_delta(delta) < epsilon, "precision too coarse");
    let rel = (folded.estimate() - union as f64).abs() / union as f64;
    assert!(
        rel < epsilon,
        "merged estimate {} for union {union} (rel {rel})",
        folded.estimate()
    );
}
