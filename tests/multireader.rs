//! Multi-reader deployments: the paper's "logically one reader"
//! assumption, exercised end to end.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_bfce_repro::prelude::*;
use rfid_bfce_repro::sim::multireader::MultiReaderDeployment;
use rfid_bfce_repro::sim::Tag;

fn tags(range: std::ops::Range<u64>) -> Vec<Tag> {
    range
        .map(|id| Tag {
            id,
            rn: (id as u32).wrapping_mul(0x9E37_79B9),
        })
        .collect()
}

#[test]
fn overlapping_readers_count_each_tag_once() {
    // Four readers with heavy overlap: the logical population is the
    // union, and BFCE estimates that union, not the sum of coverages.
    let mut deployment = MultiReaderDeployment::new();
    deployment.add_reader(tags(1..60_001));
    deployment.add_reader(tags(40_001..100_001));
    deployment.add_reader(tags(80_001..140_001));
    deployment.add_reader(tags(1..20_001));
    let union = 140_000usize;
    let population = deployment
        .logical_population()
        .expect("consistent deployment");
    assert_eq!(population.cardinality(), union);
    assert!(deployment.coverage_entries() > union); // overlaps are real

    let mut system = deployment.logical_system().expect("consistent deployment");
    let mut rng = StdRng::seed_from_u64(77);
    let report = Bfce::paper().estimate(&mut system, Accuracy::paper_default(), &mut rng);
    assert!(
        report.relative_error(union) < 0.05,
        "estimate {} for union {union}",
        report.n_hat
    );
    // Sanity: the naive per-reader sum would be badly wrong.
    let naive = deployment.coverage_entries() as f64;
    assert!((report.n_hat - naive).abs() / naive > 0.2);
}

#[test]
fn disjoint_warehouse_zones_sum_up() {
    let mut deployment = MultiReaderDeployment::new();
    deployment.add_reader(tags(1..30_001));
    deployment.add_reader(tags(50_001..90_001));
    deployment.add_reader(tags(100_001..130_001));
    let total = 30_000 + 40_000 + 30_000;
    let mut system = deployment.logical_system().expect("consistent deployment");
    let mut rng = StdRng::seed_from_u64(5);
    let report = Bfce::paper().estimate(&mut system, Accuracy::paper_default(), &mut rng);
    assert!(report.relative_error(total) < 0.05);
}

#[test]
fn single_reader_deployment_degenerates_to_plain_system() {
    let mut deployment = MultiReaderDeployment::new();
    deployment.add_reader(tags(1..10_001));
    let sys = deployment.logical_system().expect("consistent deployment");
    assert_eq!(sys.true_cardinality(), 10_000);
    assert_eq!(deployment.reader_count(), 1);
}
