//! The named benchmark suites and the JSON report.
//!
//! Four suites, each comparing the batched word-level kernels of this
//! workspace against the retained scalar reference paths:
//!
//! * [`frame_fill`] — one full Bloom frame (hash `k` slots per tag,
//!   p-persistence, busy/idle accumulation, channel sense) at 1k–1M tags
//!   and pinned worker counts, batched [`rfid_sim::frame::response_fill_with_threads`]
//!   vs the scalar [`rfid_sim::frame::response_counts_reference_with_threads`];
//! * [`zoe_slots`] — one ZOE seed batch (512 single-slot frames) through
//!   `ZoeSlotPlan`'s geometric-gap walk: the scalar scratch-buffer path vs
//!   the sink-direct batched kernel vs the adaptive dispatch entry point;
//! * [`tag_hash`] — raw slot hashing through [`rfid_hash::hash_slots_batch`]
//!   vs the per-tag virtual call, plus [`rfid_hash::SplitMix64::fill_u64`]
//!   vs sequential draws — the batched cases stream in cache-sized chunks,
//!   the usage pattern production code follows;
//! * [`trial_engine`] — the end-to-end Monte-Carlo engine running BFCE,
//!   ZOE, and SRC estimations through `rfid-experiments`' `TrialRunner`.
//!
//! Paired cases share a checksum, asserted equal — a speedup only counts if
//! the outputs are bitwise-identical.

use crate::json::JsonValue;
use crate::measure::{measure, BenchConfig, BenchResult};
use rfid_baselines::ZoeSlotPlan;
use rfid_bfce::{Bfce, BfceConfig, BloomPlan};
use rfid_hash::{hash_slots_batch, MixHasher, SlotHasher, SplitMix64, TagIdentity, XorBitgetHasher};
use rfid_sim::frame::{
    response_counts_reference_with_threads, response_fill_dispatched, response_fill_with_threads,
    BitFrame, ScalarRef,
};
use rfid_sim::{Accuracy, Bitmap, CardinalityEstimator, FillDispatch, PerfectChannel, Tag};

/// Tags per chunk the cache-friendly batched `tag_hash` cases stream
/// through: 4096 slots × 8 bytes keeps the scratch buffer inside L1/L2
/// instead of round-tripping an `8·n`-byte vector through DRAM.
const HASH_CHUNK: usize = 4_096;

/// Words per chunk for the counter-mode PRNG fill, same reasoning.
const PRNG_CHUNK: usize = 1_024;

/// Deterministic synthetic population used by the kernel suites.
fn synth_tags(n: usize) -> Vec<Tag> {
    let mut prng = SplitMix64::new(0xBE7C_4A5E_0000 + n as u64);
    (0..n as u64)
        .map(|i| Tag {
            id: i + 1,
            rn: prng.next_u32(),
        })
        .collect()
}

/// Persistence numerator the accurate phase would broadcast at cardinality
/// `n` (`p ≈ 1.594 w / n`, clamped to the 10-bit grid) — so the frame-fill
/// benchmark exercises the production response rate at every scale.
fn accurate_p_n(w: usize, n: usize) -> u32 {
    let p = 1.594 * w as f64 / n as f64;
    ((p * 1024.0).round() as i64).clamp(1, 1023) as u32
}

/// Order-insensitive digest of a busy bitmap plus a response total.
fn fill_checksum(busy: &Bitmap, responses: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &word in busy.words() {
        h = (h ^ word).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ responses
}

/// Whether `name` survives the CLI's substring filter.
fn selected(filter: Option<&str>, name: &str) -> bool {
    filter.is_none_or(|f| name.contains(f))
}

/// The frame-fill suite: scalar counts path vs batched bitmap kernel.
pub fn frame_fill(cfg: &BenchConfig, filter: Option<&str>) -> Vec<BenchResult> {
    let sizes: &[usize] = if cfg.quick {
        &[1_000, 10_000, 100_000]
    } else {
        &[1_000, 10_000, 100_000, 1_000_000]
    };
    let bfce_cfg = BfceConfig::paper();
    let w = bfce_cfg.w;
    let seeds = [0x5EED_0001u32, 0xBEEF_CAFE, 0x1234_5678];
    let mut out = Vec::new();
    for &n in sizes {
        let tags = synth_tags(n);
        let p_n = accurate_p_n(w, n);
        let plan = BloomPlan::new(&bfce_cfg, &seeds, p_n);
        for threads in [1usize, 4] {
            let params = |variant: &str| -> Vec<(&str, String)> {
                vec![
                    ("variant", variant.to_string()),
                    ("n", n.to_string()),
                    ("threads", threads.to_string()),
                    ("w", w.to_string()),
                    ("p_n", p_n.to_string()),
                ]
            };
            let scalar_name = format!("frame_fill/scalar/n={n}/threads={threads}");
            if selected(filter, &scalar_name) {
                out.push(measure(
                    "frame_fill",
                    &scalar_name,
                    &params("scalar"),
                    cfg,
                    n as u64,
                    || {
                        let counts =
                            response_counts_reference_with_threads(&tags, w, &plan, threads);
                        let mut noise = SplitMix64::new(42);
                        let frame = BitFrame::sense(&counts, w, &PerfectChannel, &mut noise);
                        let responses: u64 = counts.iter().map(|&c| c as u64).sum();
                        fill_checksum(frame.busy_bitmap(), responses)
                    },
                ));
            }
            let batched_name = format!("frame_fill/batched/n={n}/threads={threads}");
            if selected(filter, &batched_name) {
                out.push(measure(
                    "frame_fill",
                    &batched_name,
                    &params("batched"),
                    cfg,
                    n as u64,
                    || {
                        let fill = response_fill_with_threads(&tags, w, w, &plan, threads);
                        let mut noise = SplitMix64::new(42);
                        let frame =
                            BitFrame::sense_truth(&fill.busy, w, &PerfectChannel, &mut noise);
                        fill_checksum(frame.busy_bitmap(), fill.prefix_responses)
                    },
                ));
            }
        }
    }
    assert_paired_checksums(&out);
    out
}

/// The ZOE single-slot-frame suite: one 512-frame seed batch through the
/// geometric-gap walk, measured three ways — the scalar scratch-buffer
/// path (`ScalarRef` masks the override), the sink-direct batched kernel,
/// and the adaptive dispatch entry point (which, for ZOE's threshold of 0,
/// must pick the batched kernel at every n).
pub fn zoe_slots(cfg: &BenchConfig, filter: Option<&str>) -> Vec<BenchResult> {
    // The grid starts at 10k: one 512-slot batch at n = 1k runs in ~40 us,
    // under the shared-runner timing noise floor, so ratios measured there
    // swing 0.7x-1.2x between runs and carry no information. (ZoeSlotPlan
    // declares a dispatch threshold of 0 on equivalence grounds — its
    // batched path is the same walk with the per-tag scratch Vec removed,
    // so there is no setup cost for a threshold to amortize.)
    let sizes: &[usize] = if cfg.quick {
        &[10_000, 100_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let batch = 512usize;
    let mut out = Vec::new();
    for &n in sizes {
        let tags = synth_tags(n);
        // The production participation at this cardinality (lambda*/n).
        let p = (1.594 / n as f64).min(1.0);
        let plan = ZoeSlotPlan::new(batch, 0x20E_5EED_0000 + n as u64, p);
        let params = |variant: &str| -> Vec<(&str, String)> {
            vec![
                ("variant", variant.to_string()),
                ("n", n.to_string()),
                ("batch", batch.to_string()),
                ("threads", "1".to_string()),
            ]
        };
        let checksum_of = |fill: &rfid_sim::FrameFill| -> u64 {
            fill_checksum(&fill.busy, fill.prefix_responses)
        };
        let scalar_name = format!("zoe_slots/scalar/n={n}");
        if selected(filter, &scalar_name) {
            out.push(measure(
                "zoe_slots",
                &scalar_name,
                &params("scalar"),
                cfg,
                n as u64,
                || {
                    let fill =
                        response_fill_with_threads(&tags, batch, batch, &ScalarRef(&plan), 1);
                    checksum_of(&fill)
                },
            ));
        }
        let batched_name = format!("zoe_slots/batched/n={n}");
        if selected(filter, &batched_name) {
            out.push(measure(
                "zoe_slots",
                &batched_name,
                &params("batched"),
                cfg,
                n as u64,
                || {
                    let fill = response_fill_with_threads(&tags, batch, batch, &plan, 1);
                    checksum_of(&fill)
                },
            ));
        }
        let dispatch_name = format!("zoe_slots/dispatch/n={n}");
        if selected(filter, &dispatch_name) {
            out.push(measure(
                "zoe_slots",
                &dispatch_name,
                &params("dispatch"),
                cfg,
                n as u64,
                || {
                    let fill = response_fill_dispatched(
                        &tags,
                        batch,
                        batch,
                        &plan,
                        FillDispatch::Auto,
                        usize::MAX,
                    );
                    checksum_of(&fill)
                },
            ));
        }
    }
    assert_paired_checksums(&out);
    out
}

/// The tag-hashing suite: batched slot hashing and counter-mode PRNG fill.
///
/// Quick mode runs n = 100k; full mode runs 100k *and* 1M, so every quick
/// case name also appears in a full-mode baseline and the CI checksum gate
/// (`--check-against`) always has overlap. The batched cases stream in
/// cache-sized chunks ([`HASH_CHUNK`]/[`PRNG_CHUNK`]) — the monolithic
/// `8·n`-byte scratch vector the original cases used was DRAM-bound, which
/// is what the committed 0.70–0.96× regressions were measuring.
pub fn tag_hash(cfg: &BenchConfig, filter: Option<&str>) -> Vec<BenchResult> {
    let sizes: &[usize] = if cfg.quick {
        &[100_000]
    } else {
        &[100_000, 1_000_000]
    };
    let w = 8192usize;
    let seed = 0x5EED_CAFEu32;
    let mut out = Vec::new();
    for &n in sizes {
        let identities: Vec<TagIdentity> = synth_tags(n)
            .iter()
            .map(|t| TagIdentity { id: t.id, rn: t.rn })
            .collect();
        for (hasher, hname) in [
            (&XorBitgetHasher as &dyn SlotHasher, "xor-bitget"),
            (&MixHasher as &dyn SlotHasher, "mix64"),
        ] {
            let scalar_name = format!("tag_hash/scalar/hasher={hname}/n={n}");
            if selected(filter, &scalar_name) {
                out.push(measure(
                    "tag_hash",
                    &scalar_name,
                    &[
                        ("variant", "scalar".to_string()),
                        ("hasher", hname.to_string()),
                        ("n", n.to_string()),
                        ("w", w.to_string()),
                    ],
                    cfg,
                    n as u64,
                    || {
                        let mut h = 0u64;
                        for &tag in &identities {
                            let slot = hasher.slot(tag, seed, w);
                            h = h.rotate_left(5) ^ slot as u64;
                        }
                        h
                    },
                ));
            }
            let batched_name = format!("tag_hash/batched/hasher={hname}/n={n}");
            if selected(filter, &batched_name) {
                let mut scratch: Vec<usize> = Vec::with_capacity(HASH_CHUNK);
                out.push(measure(
                    "tag_hash",
                    &batched_name,
                    &[
                        ("variant", "batched".to_string()),
                        ("hasher", hname.to_string()),
                        ("n", n.to_string()),
                        ("w", w.to_string()),
                    ],
                    cfg,
                    n as u64,
                    || {
                        // Chunked: the scratch stays cache-resident and the
                        // fold consumes it while it is still hot.
                        let mut h = 0u64;
                        for chunk in identities.chunks(HASH_CHUNK) {
                            hash_slots_batch(hasher, chunk, seed, w, &mut scratch);
                            for &slot in &scratch {
                                h = h.rotate_left(5) ^ slot as u64;
                            }
                        }
                        h
                    },
                ));
            }
        }
        // SplitMix64 stream: one call per word vs the counter-mode batch
        // fill (chunked; `fill_u64` continues the sequential stream, so the
        // fold over chunks matches the scalar draws bit for bit).
        let words: usize = n;
        let scalar_name = format!("tag_hash/scalar/prng=splitmix64/n={words}");
        if selected(filter, &scalar_name) {
            out.push(measure(
                "tag_hash",
                &scalar_name,
                &[
                    ("variant", "scalar".to_string()),
                    ("prng", "splitmix64".to_string()),
                    ("n", words.to_string()),
                ],
                cfg,
                words as u64,
                || {
                    let mut prng = SplitMix64::new(0xD1CE);
                    let mut h = 0u64;
                    for _ in 0..words {
                        h ^= prng.next_u64().rotate_left(17);
                    }
                    h
                },
            ));
        }
        let batched_name = format!("tag_hash/batched/prng=splitmix64/n={words}");
        if selected(filter, &batched_name) {
            let mut buf = vec![0u64; PRNG_CHUNK];
            out.push(measure(
                "tag_hash",
                &batched_name,
                &[
                    ("variant", "batched".to_string()),
                    ("prng", "splitmix64".to_string()),
                    ("n", words.to_string()),
                ],
                cfg,
                words as u64,
                || {
                    let mut prng = SplitMix64::new(0xD1CE);
                    let mut h = 0u64;
                    let mut left = words;
                    while left > 0 {
                        let take = left.min(PRNG_CHUNK);
                        prng.fill_u64(&mut buf[..take]);
                        for &word in &buf[..take] {
                            h ^= word.rotate_left(17);
                        }
                        left -= take;
                    }
                    h
                },
            ));
        }
    }
    assert_paired_checksums(&out);
    out
}

/// The end-to-end suite: full estimations through the trial engine.
pub fn trial_engine(cfg: &BenchConfig, filter: Option<&str>) -> Vec<BenchResult> {
    let n: usize = if cfg.quick { 10_000 } else { 100_000 };
    let trials = cfg.trials;
    let estimators: Vec<(&str, Box<dyn CardinalityEstimator>)> = vec![
        ("bfce", Box::new(Bfce::paper())),
        ("zoe", Box::new(rfid_baselines::Zoe::default())),
        ("src", Box::new(rfid_baselines::Src::default())),
    ];
    let mut out = Vec::new();
    for (ename, estimator) in &estimators {
        let name = format!("trial_engine/{ename}/n={n}/trials={trials}");
        if !selected(filter, &name) {
            continue;
        }
        out.push(measure(
            "trial_engine",
            &name,
            &[
                ("estimator", ename.to_string()),
                ("n", n.to_string()),
                ("trials", trials.to_string()),
            ],
            cfg,
            trials as u64,
            || {
                let runner = rfid_experiments::TrialRunner::new(trials, 1701).jobs(1);
                let set = runner.run(
                    estimator.as_ref(),
                    rfid_workloads::WorkloadSpec::T1,
                    n,
                    Accuracy::paper_default(),
                );
                set.estimates()
                    .iter()
                    .fold(0u64, |h, e| h.rotate_left(7) ^ e.to_bits())
            },
        ));
    }
    out
}

/// Check that every scalar/batched pair in `results` (same group and
/// params, `variant` aside) produced the same checksum.
fn assert_paired_checksums(results: &[BenchResult]) {
    for a in results {
        for b in results {
            if a.name < b.name && pair_key(a) == pair_key(b) {
                assert_eq!(
                    a.checksum, b.checksum,
                    "{} and {} disagree: the kernels are not equivalent",
                    a.name, b.name
                );
            }
        }
    }
}

/// The pairing key: group plus all params except `variant`.
fn pair_key(r: &BenchResult) -> Vec<String> {
    let mut key = vec![r.group.clone()];
    for (k, v) in &r.params {
        if k != "variant" {
            key.push(format!("{k}={v}"));
        }
    }
    key
}

/// A scalar-vs-contender comparison derived from one report.
#[derive(Debug, Clone)]
pub struct Speedup {
    /// Suite the pair belongs to.
    pub group: String,
    /// The contender measured against the scalar reference: `batched`
    /// (the kernel, forced) or `dispatch` (the adaptive selection layer).
    pub variant: String,
    /// The shared parameters, `variant` excluded (e.g. `n=1000000`).
    pub params: Vec<(String, String)>,
    /// Median time of the scalar reference, milliseconds.
    pub scalar_p50_ms: f64,
    /// Median time of the contender, milliseconds.
    pub batched_p50_ms: f64,
    /// `scalar_p50_ms / batched_p50_ms` (> 1 means the contender is
    /// faster).
    pub speedup: f64,
}

/// Pair up each scalar case with its `batched` and `dispatch` contenders
/// and compute their median-time ratios.
pub fn speedups(results: &[BenchResult]) -> Vec<Speedup> {
    fn variant_of(r: &BenchResult) -> Option<&str> {
        r.params
            .iter()
            .find(|(k, _)| k == "variant")
            .map(|(_, v)| v.as_str())
    }
    let mut out = Vec::new();
    for a in results {
        if variant_of(a) != Some("scalar") {
            continue;
        }
        for b in results {
            let Some(variant) = variant_of(b) else { continue };
            if matches!(variant, "batched" | "dispatch") && pair_key(a) == pair_key(b) {
                out.push(Speedup {
                    group: a.group.clone(),
                    variant: variant.to_string(),
                    params: a
                        .params
                        .iter()
                        .filter(|(k, _)| k != "variant")
                        .cloned()
                        .collect(),
                    scalar_p50_ms: a.p50_ms,
                    batched_p50_ms: b.p50_ms,
                    speedup: a.p50_ms / b.p50_ms,
                });
            }
        }
    }
    out
}

/// The hardware threads this host can actually run in parallel.
pub fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Drop every result whose `threads` parameter exceeds what the host can
/// actually run in parallel, returning the dropped case names.
///
/// A `threads=4` row captured on a 1-core host measures pure scheduling
/// overhead, not the kernel — the committed baseline carried exactly such
/// rows until this gate existed. Full-mode baseline writes call this and
/// refuse to record oversubscribed rows; quick/smoke runs keep everything
/// (their numbers are never committed).
pub fn drop_oversubscribed(results: &mut Vec<BenchResult>, host: usize) -> Vec<String> {
    let threads_of = |r: &BenchResult| -> usize {
        r.params
            .iter()
            .find(|(k, _)| k == "threads")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(1)
    };
    let mut dropped = Vec::new();
    results.retain(|r| {
        if threads_of(r) > host {
            dropped.push(r.name.clone());
            false
        } else {
            true
        }
    });
    dropped
}

/// Run every suite (honouring the name filter) in a fixed order.
pub fn run_all(cfg: &BenchConfig, filter: Option<&str>) -> Vec<BenchResult> {
    let mut results = frame_fill(cfg, filter);
    results.extend(zoe_slots(cfg, filter));
    results.extend(tag_hash(cfg, filter));
    results.extend(trial_engine(cfg, filter));
    results
}

/// Assemble the full JSON report (schema `rfid-bench/v1`, documented in
/// `BENCHMARKS.md`).
pub fn report_to_json(cfg: &BenchConfig, results: &[BenchResult]) -> JsonValue {
    let result_values: Vec<JsonValue> = results
        .iter()
        .map(|r| {
            let params = JsonValue::Object(
                r.params
                    .iter()
                    .map(|(k, v)| (k.clone(), JsonValue::Str(v.clone())))
                    .collect(),
            );
            let throughput = match r.throughput_per_s {
                Some(t) => JsonValue::Float(t),
                None => JsonValue::Str(String::new()),
            };
            JsonValue::object(vec![
                ("group", JsonValue::str(&r.group)),
                ("name", JsonValue::str(&r.name)),
                ("params", params),
                ("warmup", JsonValue::Int(r.warmup as i64)),
                ("reps", JsonValue::Int(r.reps as i64)),
                ("p50_ms", JsonValue::Float(r.p50_ms)),
                ("p95_ms", JsonValue::Float(r.p95_ms)),
                ("min_ms", JsonValue::Float(r.min_ms)),
                ("mean_ms", JsonValue::Float(r.mean_ms)),
                ("throughput_per_s", throughput),
                ("checksum", JsonValue::U64Str(r.checksum)),
            ])
        })
        .collect();
    let speedup_values: Vec<JsonValue> = speedups(results)
        .iter()
        .map(|s| {
            let params = JsonValue::Object(
                s.params
                    .iter()
                    .map(|(k, v)| (k.clone(), JsonValue::Str(v.clone())))
                    .collect(),
            );
            JsonValue::object(vec![
                ("group", JsonValue::str(&s.group)),
                ("variant", JsonValue::str(&s.variant)),
                ("params", params),
                ("scalar_p50_ms", JsonValue::Float(s.scalar_p50_ms)),
                ("batched_p50_ms", JsonValue::Float(s.batched_p50_ms)),
                ("speedup", JsonValue::Float(s.speedup)),
            ])
        })
        .collect();
    let threads = host_threads();
    JsonValue::object(vec![
        ("schema", JsonValue::str("rfid-bench/v1")),
        (
            "mode",
            JsonValue::str(if cfg.quick { "quick" } else { "full" }),
        ),
        ("warmup", JsonValue::Int(cfg.warmup as i64)),
        ("reps", JsonValue::Int(cfg.reps as i64)),
        (
            "host_hardware_threads",
            JsonValue::Int(threads as i64),
        ),
        ("results", JsonValue::Array(result_values)),
        ("speedups", JsonValue::Array(speedup_values)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchConfig {
        BenchConfig {
            warmup: 0,
            reps: 2,
            trials: 1,
            quick: true,
        }
    }

    #[test]
    fn frame_fill_pairs_agree_at_small_scale() {
        let cfg = tiny();
        let results = frame_fill(&cfg, Some("n=1000/"));
        // scalar + batched at threads 1 and 4.
        assert_eq!(results.len(), 4);
        let sp = speedups(&results);
        assert_eq!(sp.len(), 2);
        for s in &sp {
            assert!(s.speedup > 0.0);
        }
    }

    #[test]
    fn tag_hash_pairs_agree() {
        let cfg = tiny();
        let results = tag_hash(&cfg, Some("hasher=xor-bitget"));
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].checksum, results[1].checksum);
    }

    #[test]
    fn filter_prunes_cases() {
        let cfg = tiny();
        assert!(frame_fill(&cfg, Some("no-such-case")).is_empty());
        assert!(zoe_slots(&cfg, Some("no-such-case")).is_empty());
        assert!(tag_hash(&cfg, Some("no-such-case")).is_empty());
        assert!(trial_engine(&cfg, Some("no-such-case")).is_empty());
    }

    #[test]
    fn zoe_slots_variants_share_checksums_and_pair_both_ways() {
        let cfg = tiny();
        // `n=100000` is the largest quick size, so the substring filter
        // matches exactly one population.
        let results = zoe_slots(&cfg, Some("n=100000"));
        // scalar + batched + dispatch.
        assert_eq!(results.len(), 3);
        let checksums: Vec<u64> = results.iter().map(|r| r.checksum).collect();
        assert!(checksums.windows(2).all(|w| w[0] == w[1]));
        let sp = speedups(&results);
        assert_eq!(sp.len(), 2);
        let variants: Vec<&str> = sp.iter().map(|s| s.variant.as_str()).collect();
        assert!(variants.contains(&"batched"));
        assert!(variants.contains(&"dispatch"));
    }

    #[test]
    fn oversubscribed_rows_are_dropped_with_their_names() {
        let cfg = tiny();
        let mut results = frame_fill(&cfg, Some("n=1000/"));
        assert_eq!(results.len(), 4);
        let dropped = drop_oversubscribed(&mut results, 1);
        assert_eq!(dropped.len(), 2);
        assert!(dropped.iter().all(|n| n.contains("threads=4")));
        assert_eq!(results.len(), 2);
        // A big-enough host keeps everything.
        let mut all = frame_fill(&cfg, Some("n=1000/"));
        assert!(drop_oversubscribed(&mut all, 64).is_empty());
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn accurate_p_n_tracks_the_design_load() {
        // At w = 8192 and n = 1M, p ≈ 0.013 → p_n ≈ 13.
        assert_eq!(accurate_p_n(8192, 1_000_000), 13);
        // Tiny populations clamp to the grid ceiling.
        assert_eq!(accurate_p_n(8192, 1_000), 1023);
    }

    #[test]
    fn report_json_contains_schema_and_speedups() {
        let cfg = tiny();
        let results = tag_hash(&cfg, Some("prng=splitmix64"));
        let json = report_to_json(&cfg, &results).render();
        assert!(json.contains("\"schema\": \"rfid-bench/v1\""));
        assert!(json.contains("\"speedups\""));
        assert!(json.contains("\"checksum\""));
    }
}
