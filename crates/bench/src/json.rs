//! A minimal JSON emitter for benchmark reports.
//!
//! The benchmark binary must run in offline environments where the
//! workspace's optional serde stack may be unavailable, so the report
//! format is produced by this dependency-free writer instead. It only
//! covers what the report needs: objects (order-preserving), arrays,
//! strings, integers, and finite floats.

use std::fmt::Write as _;

/// A JSON value tree. Build with the constructors, serialize with
/// [`JsonValue::render`].
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A string (escaped on render).
    Str(String),
    /// An integer, rendered exactly.
    Int(i64),
    /// An unsigned 64-bit value rendered as a *string* — checksums exceed
    /// 2^53 and would silently lose precision in readers that parse JSON
    /// numbers as f64.
    U64Str(u64),
    /// A finite float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An ordered list of key/value pairs.
    Object(Vec<(String, JsonValue)>),
    /// An array.
    Array(Vec<JsonValue>),
}

impl JsonValue {
    /// Object from key/value pairs (insertion order preserved).
    pub fn object(pairs: Vec<(&str, JsonValue)>) -> Self {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// String value.
    pub fn str(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }

    /// Serialize with two-space indentation and a trailing newline, so the
    /// committed report diffs line by line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::U64Str(u) => {
                let _ = write!(out, "\"{u}\"");
            }
            JsonValue::Float(f) => write_float(out, *f),
            JsonValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            JsonValue::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in pairs.iter().enumerate() {
                    pad(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Floats are timings and throughputs: six significant decimals are far
/// below measurement noise, and a fixed format keeps reports diffable.
/// Non-finite values have no JSON representation; they indicate a harness
/// bug, so render as null rather than emit invalid JSON.
fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let _ = write!(out, "{f:.6}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let v = JsonValue::object(vec![
            ("name", JsonValue::str("frame_fill")),
            ("reps", JsonValue::Int(5)),
            ("p50_ms", JsonValue::Float(1.25)),
            (
                "results",
                JsonValue::Array(vec![JsonValue::Bool(true), JsonValue::Int(-3)]),
            ),
        ]);
        let text = v.render();
        assert!(text.contains("\"name\": \"frame_fill\""));
        assert!(text.contains("\"p50_ms\": 1.250000"));
        assert!(text.contains("-3"));
        assert!(text.ends_with("]\n}\n"));
    }

    #[test]
    fn escapes_strings() {
        let v = JsonValue::str("a\"b\\c\nd\te\u{1}");
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"\n");
    }

    #[test]
    fn u64_checksums_render_as_strings() {
        let v = JsonValue::U64Str(u64::MAX);
        assert_eq!(v.render(), format!("\"{}\"\n", u64::MAX));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(JsonValue::Float(f64::NAN).render(), "null\n");
        assert_eq!(JsonValue::Float(f64::INFINITY).render(), "null\n");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(JsonValue::Object(vec![]).render(), "{}\n");
        assert_eq!(JsonValue::Array(vec![]).render(), "[]\n");
    }

    #[test]
    fn output_parses_as_json() {
        // Cross-check against the real serde_json when it is available
        // (dev-dependency); the stub used by the offline harness makes this
        // a no-op parse.
        let v = JsonValue::object(vec![
            ("a", JsonValue::Float(0.5)),
            ("b", JsonValue::Array(vec![JsonValue::U64Str(7)])),
        ]);
        let text = v.render();
        assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
    }
}
