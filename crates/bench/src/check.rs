//! Checksum drift detection against a committed baseline report.
//!
//! The committed `BENCH_frame_fill.json` records, for every benchmark
//! case, the checksum its kernel produced. Those checksums are pure
//! functions of the kernel code and its fixed seeds — *not* of timing, rep
//! counts, or host — so a `--quick` CI run must reproduce the committed
//! value for every case name it shares with the baseline. A mismatch means
//! a kernel's observable output changed (an equivalence break or an
//! intentional redefinition that requires a re-baseline); CI fails on it
//! while perf numbers stay non-blocking.
//!
//! The parser is deliberately a line-oriented scanner rather than a full
//! JSON parser: the report is emitted by [`crate::json`] with one
//! `"name"`/`"checksum"` pair per result object, and the scanner only
//! needs those. It tracks the most recent `"name"` and pairs it with the
//! next `"checksum"`; the speedups section contains neither key, so it is
//! inert.

use crate::measure::BenchResult;

/// Extract `(case name, checksum)` pairs from a committed
/// `rfid-bench/v1` report.
pub fn committed_checksums(text: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let mut current_name: Option<String> = None;
    for line in text.lines() {
        let trimmed = line.trim();
        if let Some(v) = quoted_value(trimmed, "\"name\": \"") {
            current_name = Some(v.to_string());
        } else if let Some(v) = quoted_value(trimmed, "\"checksum\": \"") {
            if let (Some(name), Ok(sum)) = (current_name.take(), v.parse::<u64>()) {
                out.push((name, sum));
            }
        }
    }
    out
}

/// The string between `prefix` and the next `"` on the line, if the line
/// starts with `prefix`.
fn quoted_value<'a>(line: &'a str, prefix: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(prefix)?;
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// One checksum disagreement between a run and the committed baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Drift {
    /// The benchmark case name both sides ran.
    pub name: String,
    /// The checksum recorded in the committed baseline.
    pub committed: u64,
    /// The checksum the current run produced.
    pub measured: u64,
}

/// Compare a run against the committed baseline.
///
/// Returns `(overlap, drifts)`: how many case names appeared on both
/// sides, and the cases whose checksums disagree. Cases present on only
/// one side are ignored — quick mode runs a subset of the full-mode
/// baseline, and that subset is the contract CI checks.
pub fn diff_checksums(
    committed: &[(String, u64)],
    results: &[BenchResult],
) -> (usize, Vec<Drift>) {
    let mut overlap = 0usize;
    let mut drifts = Vec::new();
    for r in results {
        let Some((name, sum)) = committed.iter().find(|(n, _)| *n == r.name) else {
            continue;
        };
        overlap += 1;
        if *sum != r.checksum {
            drifts.push(Drift {
                name: name.clone(),
                committed: *sum,
                measured: r.checksum,
            });
        }
    }
    (overlap, drifts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(name: &str, checksum: u64) -> BenchResult {
        BenchResult {
            group: "g".into(),
            name: name.into(),
            params: Vec::new(),
            warmup: 0,
            reps: 1,
            p50_ms: 1.0,
            p95_ms: 1.0,
            min_ms: 1.0,
            mean_ms: 1.0,
            throughput_per_s: None,
            checksum,
        }
    }

    const SAMPLE: &str = r#"{
  "schema": "rfid-bench/v1",
  "results": [
    {
      "group": "frame_fill",
      "name": "frame_fill/scalar/n=1000/threads=1",
      "p50_ms": 0.5,
      "checksum": "12345"
    },
    {
      "group": "frame_fill",
      "name": "frame_fill/batched/n=1000/threads=1",
      "p50_ms": 0.4,
      "checksum": "12345"
    }
  ],
  "speedups": [
    {
      "group": "frame_fill",
      "speedup": 1.25
    }
  ]
}"#;

    #[test]
    fn scanner_pairs_names_with_checksums() {
        let pairs = committed_checksums(SAMPLE);
        assert_eq!(
            pairs,
            vec![
                ("frame_fill/scalar/n=1000/threads=1".to_string(), 12345u64),
                ("frame_fill/batched/n=1000/threads=1".to_string(), 12345u64),
            ]
        );
    }

    #[test]
    fn matching_checksums_report_no_drift() {
        let committed = committed_checksums(SAMPLE);
        let results = vec![result("frame_fill/scalar/n=1000/threads=1", 12345)];
        let (overlap, drifts) = diff_checksums(&committed, &results);
        assert_eq!(overlap, 1);
        assert!(drifts.is_empty());
    }

    #[test]
    fn drift_is_reported_with_both_values() {
        let committed = committed_checksums(SAMPLE);
        let results = vec![
            result("frame_fill/scalar/n=1000/threads=1", 999),
            result("not/in/the/baseline", 1),
        ];
        let (overlap, drifts) = diff_checksums(&committed, &results);
        assert_eq!(overlap, 1);
        assert_eq!(
            drifts,
            vec![Drift {
                name: "frame_fill/scalar/n=1000/threads=1".into(),
                committed: 12345,
                measured: 999,
            }]
        );
    }

    #[test]
    fn disjoint_runs_have_zero_overlap() {
        let committed = committed_checksums(SAMPLE);
        let results = vec![result("other/case", 7)];
        let (overlap, drifts) = diff_checksums(&committed, &results);
        assert_eq!(overlap, 0);
        assert!(drifts.is_empty());
    }

    #[test]
    fn scanner_ignores_the_speedups_section_and_noise() {
        // A name with no checksum before the next name is dropped.
        let text = "\"name\": \"a\"\n\"name\": \"b\"\n\"checksum\": \"7\"\n\"checksum\": \"8\"";
        assert_eq!(committed_checksums(text), vec![("b".to_string(), 7u64)]);
    }
}
