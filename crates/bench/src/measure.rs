//! The warmup + repetition measurement harness.
//!
//! Each benchmark case is a closure returning a `u64` checksum. The harness
//! runs `warmup` untimed iterations (JIT-free, but page faults, lazy
//! allocation, and frequency scaling are real), then `reps` timed ones, and
//! summarizes the per-repetition wall times with order statistics
//! (`rfid-stats`' type-7 percentiles): p50 for the headline, p95 for tail
//! noise. Checksums from every iteration must agree — a kernel whose output
//! varies across repetitions is broken, not fast.

use std::time::Instant;

/// How hard to drive each benchmark case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchConfig {
    /// Untimed warmup iterations per case.
    pub warmup: u32,
    /// Timed repetitions per case.
    pub reps: u32,
    /// Trials per estimator in the end-to-end suite.
    pub trials: u32,
    /// Skip the expensive (multi-second) cases — the CI smoke mode.
    pub quick: bool,
}

impl BenchConfig {
    /// The full configuration used for committed perf-trajectory points.
    pub fn full() -> Self {
        Self {
            warmup: 2,
            reps: 9,
            trials: 6,
            quick: false,
        }
    }

    /// Reduced iterations for the non-blocking CI smoke job.
    pub fn quick() -> Self {
        Self {
            warmup: 1,
            reps: 3,
            trials: 2,
            quick: true,
        }
    }
}

/// One measured benchmark case.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Suite this case belongs to (`frame_fill`, `tag_hash`, `trial_engine`).
    pub group: String,
    /// Full case name, e.g. `frame_fill/batched/n=1000000/threads=1`.
    pub name: String,
    /// Structured parameters (key, value), mirrored from the name.
    pub params: Vec<(String, String)>,
    /// Untimed warmup iterations that preceded the timed ones.
    pub warmup: u32,
    /// Number of timed repetitions.
    pub reps: u32,
    /// Median wall time per repetition, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile wall time, milliseconds.
    pub p95_ms: f64,
    /// Fastest repetition, milliseconds.
    pub min_ms: f64,
    /// Mean over repetitions, milliseconds.
    pub mean_ms: f64,
    /// Items processed per second at the median time (tags for the kernel
    /// suites, trials for the end-to-end suite); `None` when the case has
    /// no natural item count.
    pub throughput_per_s: Option<f64>,
    /// Checksum of the case's output, identical across repetitions.
    pub checksum: u64,
}

impl BenchResult {
    /// Items per millisecond implied by `throughput_per_s`, for display.
    pub fn items_per_ms(&self) -> Option<f64> {
        self.throughput_per_s.map(|t| t / 1e3)
    }
}

/// Run `f` under warmup + repetition and summarize.
///
/// `items` is the per-iteration work size used for the throughput figure
/// (pass 0 to omit throughput). Panics if `reps == 0` or if two repetitions
/// disagree on the checksum.
pub fn measure(
    group: &str,
    name: &str,
    params: &[(&str, String)],
    cfg: &BenchConfig,
    items: u64,
    mut f: impl FnMut() -> u64,
) -> BenchResult {
    assert!(cfg.reps > 0, "need at least one timed repetition");
    for _ in 0..cfg.warmup {
        std::hint::black_box(f());
    }
    let mut times_ms = Vec::with_capacity(cfg.reps as usize);
    let mut checksum = 0u64;
    for rep in 0..cfg.reps {
        let start = Instant::now();
        let sum = std::hint::black_box(f());
        let elapsed = start.elapsed();
        times_ms.push(elapsed.as_secs_f64() * 1e3);
        if rep == 0 {
            checksum = sum;
        } else {
            assert_eq!(
                sum, checksum,
                "{name}: checksum changed between repetitions ({sum:#x} vs {checksum:#x})"
            );
        }
    }
    let p50_ms = rfid_stats::percentile(&times_ms, 50.0);
    let p95_ms = rfid_stats::percentile(&times_ms, 95.0);
    let min_ms = times_ms.iter().copied().fold(f64::INFINITY, f64::min);
    let mean_ms = rfid_stats::mean(&times_ms);
    let throughput_per_s = if items > 0 {
        Some(items as f64 / (p50_ms / 1e3))
    } else {
        None
    };
    BenchResult {
        group: group.to_string(),
        name: name.to_string(),
        params: params
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
        warmup: cfg.warmup,
        reps: cfg.reps,
        p50_ms,
        p95_ms,
        min_ms,
        mean_ms,
        throughput_per_s,
        checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_runs_warmup_plus_reps_and_keeps_checksum() {
        let mut calls = 0u32;
        let cfg = BenchConfig {
            warmup: 2,
            reps: 5,
            trials: 1,
            quick: true,
        };
        let r = measure("g", "g/case", &[("n", "10".into())], &cfg, 10, || {
            calls += 1;
            42
        });
        assert_eq!(calls, 7);
        assert_eq!(r.checksum, 42);
        assert_eq!(r.reps, 5);
        assert_eq!(r.params, vec![("n".to_string(), "10".to_string())]);
        assert!(r.p50_ms >= 0.0 && r.p95_ms >= r.min_ms);
        let thr = r.throughput_per_s.expect("items > 0");
        assert!(thr > 0.0);
    }

    #[test]
    fn zero_items_omits_throughput() {
        let cfg = BenchConfig::quick();
        let r = measure("g", "g/void", &[], &cfg, 0, || 1);
        assert!(r.throughput_per_s.is_none());
        assert!(r.items_per_ms().is_none());
    }

    #[test]
    #[should_panic(expected = "checksum changed")]
    fn drifting_checksum_panics() {
        let mut x = 0u64;
        let cfg = BenchConfig {
            warmup: 0,
            reps: 3,
            trials: 1,
            quick: true,
        };
        measure("g", "g/drift", &[], &cfg, 0, || {
            x += 1;
            x
        });
    }

    #[test]
    fn configs_are_sane() {
        let full = BenchConfig::full();
        let quick = BenchConfig::quick();
        assert!(full.reps > quick.reps);
        assert!(!full.quick && quick.quick);
    }
}
