//! `rfid-bench` — run the named benchmark suites and emit a JSON report.
//!
//! ```text
//! cargo run --release -p rfid-bench -- [--quick] [--filter SUBSTR] [--json PATH]
//! ```
//!
//! * `--quick`   reduced sizes/iterations (the non-blocking CI smoke job);
//! * `--filter`  only run cases whose name contains the substring;
//! * `--json`    write the `rfid-bench/v1` report to PATH (schema in
//!   `BENCHMARKS.md`); without it the report goes to stdout only as a table.

use rfid_bench::{report_to_json, run_all, speedups, BenchConfig};

fn require_value(value: Option<String>, flag: &str, what: &str) -> String {
    value.unwrap_or_else(|| {
        eprintln!("{flag} requires {what} (try --help)");
        std::process::exit(2);
    })
}

fn main() {
    let mut quick = false;
    let mut filter: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--filter" => {
                filter = Some(require_value(args.next(), "--filter", "a substring"));
            }
            "--json" => {
                json_path = Some(require_value(args.next(), "--json", "a path"));
            }
            "--help" | "-h" => {
                println!(
                    "usage: rfid-bench [--quick] [--filter SUBSTR] [--json PATH]\n\
                     Suites: frame_fill, tag_hash, trial_engine (see BENCHMARKS.md)."
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                std::process::exit(2);
            }
        }
    }

    let cfg = if quick {
        BenchConfig::quick()
    } else {
        BenchConfig::full()
    };
    let results = run_all(&cfg, filter.as_deref());
    if results.is_empty() {
        eprintln!("no benchmark case matches the filter");
        std::process::exit(2);
    }

    println!(
        "{:<44} {:>10} {:>10} {:>14}",
        "benchmark", "p50 ms", "p95 ms", "items/s"
    );
    for r in &results {
        let thr = r
            .throughput_per_s
            .map(|t| format!("{t:.0}"))
            .unwrap_or_else(|| "-".to_string());
        println!("{:<44} {:>10.3} {:>10.3} {:>14}", r.name, r.p50_ms, r.p95_ms, thr);
    }
    let sp = speedups(&results);
    if !sp.is_empty() {
        println!();
        for s in &sp {
            let params: Vec<String> = s.params.iter().map(|(k, v)| format!("{k}={v}")).collect();
            println!(
                "speedup {:<11} {:<36} {:>6.2}x  (scalar {:.3} ms -> batched {:.3} ms)",
                s.group,
                params.join(" "),
                s.speedup,
                s.scalar_p50_ms,
                s.batched_p50_ms
            );
        }
    }

    if let Some(path) = json_path {
        let report = report_to_json(&cfg, &results);
        std::fs::write(&path, report.render()).expect("failed to write the JSON report");
        println!("\nwrote {path}");
    }
}
