//! `rfid-bench` — run the named benchmark suites and emit a JSON report.
//!
//! ```text
//! cargo run --release -p rfid-bench -- [--quick] [--filter SUBSTR] [--json PATH]
//!                                      [--check-against PATH]
//! ```
//!
//! * `--quick`          reduced sizes/iterations (the CI smoke job);
//! * `--filter`         only run cases whose name contains the substring;
//! * `--json`           write the `rfid-bench/v1` report to PATH (schema in
//!   `BENCHMARKS.md`); without it the report goes to stdout only as a table;
//! * `--check-against`  diff this run's checksums against a committed
//!   baseline report and exit non-zero on drift (the blocking CI
//!   kernel-equivalence gate; perf numbers stay non-blocking).
//!
//! Full-mode runs refuse to record rows whose `threads` parameter exceeds
//! the host's hardware threads: a `threads=4` number from a 1-core machine
//! measures scheduling overhead, not the kernel, so such rows are dropped
//! with a diagnostic before the table and the JSON report are produced.

use rfid_bench::{
    committed_checksums, diff_checksums, drop_oversubscribed, host_threads, report_to_json,
    run_all, speedups, BenchConfig,
};

fn require_value(value: Option<String>, flag: &str, what: &str) -> String {
    value.unwrap_or_else(|| {
        eprintln!("{flag} requires {what} (try --help)");
        std::process::exit(2);
    })
}

fn main() {
    let mut quick = false;
    let mut filter: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--filter" => {
                filter = Some(require_value(args.next(), "--filter", "a substring"));
            }
            "--json" => {
                json_path = Some(require_value(args.next(), "--json", "a path"));
            }
            "--check-against" => {
                check_path = Some(require_value(
                    args.next(),
                    "--check-against",
                    "a baseline JSON path",
                ));
            }
            "--help" | "-h" => {
                println!(
                    "usage: rfid-bench [--quick] [--filter SUBSTR] [--json PATH] [--check-against PATH]\n\
                     Suites: frame_fill, zoe_slots, tag_hash, trial_engine (see BENCHMARKS.md)."
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                std::process::exit(2);
            }
        }
    }

    let cfg = if quick {
        BenchConfig::quick()
    } else {
        BenchConfig::full()
    };
    let mut results = run_all(&cfg, filter.as_deref());
    if results.is_empty() {
        eprintln!("no benchmark case matches the filter");
        std::process::exit(2);
    }

    // A full-mode report is baseline material: never record rows the host
    // could not actually run in parallel.
    if !cfg.quick {
        let host = host_threads();
        let dropped = drop_oversubscribed(&mut results, host);
        if !dropped.is_empty() {
            eprintln!(
                "warning: host has {host} hardware thread(s); dropping {} oversubscribed row(s):",
                dropped.len()
            );
            for name in &dropped {
                eprintln!("  - {name}");
            }
        }
        if results.is_empty() {
            eprintln!("every matched case was oversubscribed on this host");
            std::process::exit(2);
        }
    }

    println!(
        "{:<44} {:>10} {:>10} {:>14}",
        "benchmark", "p50 ms", "p95 ms", "items/s"
    );
    for r in &results {
        let thr = r
            .throughput_per_s
            .map(|t| format!("{t:.0}"))
            .unwrap_or_else(|| "-".to_string());
        println!("{:<44} {:>10.3} {:>10.3} {:>14}", r.name, r.p50_ms, r.p95_ms, thr);
    }
    let sp = speedups(&results);
    if !sp.is_empty() {
        println!();
        for s in &sp {
            let params: Vec<String> = s.params.iter().map(|(k, v)| format!("{k}={v}")).collect();
            println!(
                "speedup {:<11} {:<8} {:<32} {:>6.2}x  (scalar {:.3} ms -> {:.3} ms)",
                s.group,
                s.variant,
                params.join(" "),
                s.speedup,
                s.scalar_p50_ms,
                s.batched_p50_ms
            );
        }
    }

    if let Some(path) = json_path {
        let report = report_to_json(&cfg, &results);
        std::fs::write(&path, report.render()).expect("failed to write the JSON report");
        println!("\nwrote {path}");
    }

    if let Some(path) = check_path {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        let committed = committed_checksums(&text);
        let (overlap, drifts) = diff_checksums(&committed, &results);
        if overlap == 0 {
            eprintln!(
                "checksum gate: no case name overlaps between this run and {path} \
                 (wrong baseline file or over-narrow --filter?)"
            );
            std::process::exit(2);
        }
        if drifts.is_empty() {
            println!("\nchecksum gate: {overlap} case(s) match {path}");
        } else {
            eprintln!(
                "\nchecksum gate: {} of {overlap} overlapping case(s) DRIFTED from {path}:",
                drifts.len()
            );
            for d in &drifts {
                eprintln!(
                    "  - {}: committed {} vs measured {}",
                    d.name, d.committed, d.measured
                );
            }
            eprintln!(
                "a kernel's observable output changed; fix the equivalence break \
                 or re-baseline deliberately"
            );
            std::process::exit(1);
        }
    }
}
