//! Benchmark subsystem for the BFCE reproduction.
//!
//! Two layers:
//!
//! * **Named benchmarks with JSON output** — `cargo run --release -p
//!   rfid-bench -- --json BENCH_frame_fill.json` runs the suites in
//!   [`suites`] (frame fill, tag hashing, the end-to-end trial engine)
//!   under the warmup+repetition harness of [`measure`] and writes a
//!   machine-readable report (schema documented in `BENCHMARKS.md`). The
//!   committed `BENCH_frame_fill.json` at the repo root is the first point
//!   of the perf trajectory; refresh it with the command above.
//! * **Criterion micro-benchmarks** — see `benches/` for the
//!   figure-regeneration targets (`cargo bench` runs the full evaluation at
//!   Quick scale; use the `rfid-experiments` binaries with `--paper` for
//!   the full grids).
//!
//! Every timed kernel returns a checksum, and paired scalar/batched cases
//! must produce identical checksums — a benchmark run doubles as an
//! equivalence check, so a kernel that drifts from its reference can never
//! post a (meaningless) speedup.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod json;
pub mod measure;
pub mod suites;

pub use check::{committed_checksums, diff_checksums, Drift};
pub use json::JsonValue;
pub use measure::{measure, BenchConfig, BenchResult};
pub use suites::{
    drop_oversubscribed, host_threads, report_to_json, run_all, speedups, Speedup,
};
