//! Bench-only crate: see `benches/` for the criterion micro-benchmarks
//! and the figure-regeneration targets (`cargo bench` runs the full
//! evaluation at Quick scale; use the `rfid-experiments` binaries with
//! `--paper` for the full grids).
