//! Criterion micro-benchmarks for the hashing substrate: the tag-side
//! operations every frame fill performs `k * n` times.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rfid_hash::tag_hash::TagIdentity;
use rfid_hash::{
    geometric_level, mix64, MixHasher, PersistenceSampler, SlotHasher, SplitMix64,
    XorBitgetHasher,
};

fn bench_mix64(c: &mut Criterion) {
    c.bench_function("mix64", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            black_box(mix64(x))
        })
    });
}

fn bench_slot_hashers(c: &mut Criterion) {
    let tag = TagIdentity {
        id: 0x1234_5678_9ABC,
        rn: 0xDEAD_BEEF,
    };
    let mut group = c.benchmark_group("slot_hash");
    group.bench_function("xor_bitget", |b| {
        let mut seed = 0u32;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            black_box(XorBitgetHasher.slot(tag, seed, 8192))
        })
    });
    group.bench_function("mix64", |b| {
        let mut seed = 0u32;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            black_box(MixHasher.slot(tag, seed, 8192))
        })
    });
    group.finish();
}

fn bench_geometric(c: &mut Criterion) {
    c.bench_function("geometric_level", |b| {
        let mut key = 1u64;
        b.iter(|| {
            key = key.wrapping_add(1);
            black_box(geometric_level(key, 7, 32))
        })
    });
}

fn bench_persistence(c: &mut Criterion) {
    c.bench_function("persistence_sampler_3_draws", |b| {
        let mut rn = 0u32;
        b.iter(|| {
            rn = rn.wrapping_add(1);
            let mut s = PersistenceSampler::new(rn, 42);
            black_box((s.respond(3), s.respond(3), s.respond(3)))
        })
    });
}

fn bench_splitmix_stream(c: &mut Criterion) {
    c.bench_function("splitmix64_next", |b| {
        let mut rng = SplitMix64::new(9);
        b.iter(|| black_box(rng.next_u64()))
    });
}

criterion_group!(
    benches,
    bench_mix64,
    bench_slot_hashers,
    bench_geometric,
    bench_persistence,
    bench_splitmix_stream
);
criterion_main!(benches);
