//! `cargo bench --bench fig07_accuracy` — regenerates Figure 7 (a, b, c).
use rfid_experiments::{fig07, output::emit, Scale};

fn main() {
    emit(&fig07::run_vs_n(Scale::Quick, 42), "fig07a_accuracy_vs_n");
    emit(&fig07::run_vs_epsilon(Scale::Quick, 42), "fig07b_accuracy_vs_epsilon");
    emit(&fig07::run_vs_delta(Scale::Quick, 42), "fig07c_accuracy_vs_delta");
}
