//! `cargo bench --bench fig06_workloads` — regenerates Figure 6.
use rfid_experiments::{fig06, output::emit, Scale};

fn main() {
    emit(&fig06::run(Scale::Quick, 42), "fig06_workloads");
}
