//! `cargo bench --bench ablation_c` — c sweep.
use rfid_experiments::{ablations, output::emit, Scale};

fn main() {
    emit(&ablations::run_c_sweep(Scale::Quick, 42), "ablation_c");
}
