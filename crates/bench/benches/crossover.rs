//! `cargo bench --bench crossover` — inventory-vs-estimation crossover.
use rfid_experiments::{ablations, output::emit, Scale};

fn main() {
    emit(&ablations::run_crossover(Scale::Quick, 42), "crossover");
}
