//! `cargo bench --bench ablation_w` — w sweep.
use rfid_experiments::{ablations, output::emit, Scale};

fn main() {
    emit(&ablations::run_w_sweep(Scale::Quick, 42), "ablation_w");
}
