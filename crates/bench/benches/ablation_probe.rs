//! `cargo bench --bench ablation_probe` — probe-strategy extension.
use rfid_experiments::{ablations, output::emit, Scale};

fn main() {
    emit(&ablations::run_probe_strategy(Scale::Quick, 42), "ablation_probe");
}
