//! `cargo bench --bench trial_engine` — wall-clock scaling of the
//! trial-parallel Monte-Carlo engine.
//!
//! Runs the Figure-7a quick grid with one worker and with one worker per
//! core, prints both wall-clock times, and asserts the results are
//! identical (the engine's determinism contract). On a multi-core machine
//! the pooled run should be visibly faster; on a single core the two
//! should match.

use rfid_experiments::{engine, fig07, Scale};
use std::time::Instant;

fn timed(jobs: usize) -> (std::time::Duration, rfid_experiments::Table) {
    engine::set_default_jobs(jobs);
    let start = Instant::now();
    let table = fig07::run_vs_n(Scale::Quick, 42);
    (start.elapsed(), table)
}

fn main() {
    let auto = {
        engine::set_default_jobs(0);
        engine::default_jobs()
    };
    let (t_lone, lone) = timed(1);
    let (t_pool, pooled) = timed(auto);
    engine::set_default_jobs(0);
    println!("fig07a quick grid, jobs=1    : {t_lone:?}");
    println!("fig07a quick grid, jobs={auto:<4}: {t_pool:?}");
    if auto > 1 {
        println!(
            "speedup: {:.2}x over {} workers",
            t_lone.as_secs_f64() / t_pool.as_secs_f64(),
            auto
        );
    }
    assert_eq!(
        lone.rows, pooled.rows,
        "worker count leaked into the results"
    );
    println!("determinism: rows identical at both worker counts");
}
