//! `cargo bench --bench tag_ops` — tag-side operation counts.
use rfid_experiments::{ablations, output::emit, Scale};

fn main() {
    emit(&ablations::run_tag_ops(Scale::Quick, 42), "tag_ops");
}
