//! `cargo bench --bench guarantee` — (epsilon, delta) guarantee test.
use rfid_experiments::{guarantee, output::emit, Scale};

fn main() {
    emit(&guarantee::run(Scale::Quick, 42), "guarantee");
}
