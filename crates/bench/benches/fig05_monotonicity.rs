//! `cargo bench --bench fig05_monotonicity` — regenerates Figure 5.
use rfid_experiments::{fig05, output::emit, Scale};

fn main() {
    emit(&fig05::run(Scale::Paper, 42), "fig05_monotonicity");
}
