//! Criterion micro-benchmarks for the extension kernels: differential
//! estimation, union merging, and the Q-inventory simulation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_baselines::QInventory;
use rfid_bfce::diff::diff_from_frames;
use rfid_bfce::estimator::standalone_frame;
use rfid_bfce::multiset::estimate_union;
use rfid_bfce::BfceConfig;
use rfid_sim::{
    Accuracy, BitFrame, CardinalityEstimator, RfidSystem, Tag, TagPopulation,
};

fn frame_of(n: usize, seed: u64) -> BitFrame {
    let cfg = BfceConfig::paper();
    let tags: Vec<Tag> = (0..n as u64)
        .map(|i| Tag {
            id: i + 1,
            rn: rfid_hash::mix_pair(i, seed) as u32,
        })
        .collect();
    let mut system = RfidSystem::new(TagPopulation::new(tags));
    let mut rng = StdRng::seed_from_u64(seed);
    standalone_frame(&cfg, &mut system, 45, &mut rng)
}

fn bench_diff_postprocess(c: &mut Criterion) {
    let cfg = BfceConfig::paper();
    let a = frame_of(50_000, 1);
    let b = frame_of(48_000, 1);
    c.bench_function("diff_from_frames_8192", |bch| {
        bch.iter(|| black_box(diff_from_frames(&cfg, &a, &b, 45)))
    });
}

fn bench_union_merge(c: &mut Criterion) {
    let cfg = BfceConfig::paper();
    let frames: Vec<BitFrame> = (0..4).map(|i| frame_of(20_000, i)).collect();
    c.bench_function("estimate_union_4_readers", |bch| {
        bch.iter(|| black_box(estimate_union(&cfg, &frames, 45)))
    });
}

fn bench_inventory(c: &mut Criterion) {
    let mut group = c.benchmark_group("q_inventory");
    group.sample_size(10);
    group.bench_function("identify_5k", |bch| {
        let inv = QInventory::default();
        let mut seed = 0u64;
        bch.iter(|| {
            seed += 1;
            let tags: Vec<Tag> = (0..5_000u64)
                .map(|i| Tag {
                    id: i + 1,
                    rn: i as u32,
                })
                .collect();
            let mut system = RfidSystem::new(TagPopulation::new(tags));
            let mut rng = StdRng::seed_from_u64(seed);
            black_box(inv.estimate(&mut system, Accuracy::paper_default(), &mut rng))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_diff_postprocess,
    bench_union_merge,
    bench_inventory
);
criterion_main!(benches);
