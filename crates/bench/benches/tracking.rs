//! `cargo bench --bench tracking` — churn-monitoring scenario.
use rfid_experiments::{output::emit, tracking, Scale};

fn main() {
    emit(&tracking::run(Scale::Quick, 42), "tracking");
}
