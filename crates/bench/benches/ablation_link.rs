//! `cargo bench --bench ablation_link` — PHY link profile sweep.
use rfid_experiments::{ablations, output::emit, Scale};

fn main() {
    emit(&ablations::run_link_sweep(Scale::Quick, 42), "ablation_link");
}
