//! `cargo bench --bench fig04_gamma` — regenerates Figure 4.
use rfid_experiments::{fig04, output::emit, Scale};

fn main() {
    emit(&fig04::run(Scale::Paper, 42), "fig04_gamma");
}
