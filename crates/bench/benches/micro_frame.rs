//! Criterion micro-benchmarks for frame execution — the simulator's hot
//! path (a Bloom frame touches every tag k times).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rfid_hash::{MixHasher, PersistenceSampler, SlotHasher};
use rfid_sim::frame::{response_counts, response_counts_with_min_chunk};
use rfid_sim::parallel::par_fold;
use rfid_sim::{Bitmap, Tag};

fn tags(n: usize) -> Vec<Tag> {
    (0..n as u64)
        .map(|i| Tag {
            id: i * 7 + 1,
            rn: (i as u32).wrapping_mul(0x9E37_79B9),
        })
        .collect()
}

/// The BFCE accurate-phase plan: 3 hashed slots, persistence 3/1024.
fn bloom_plan(seeds: [u32; 3]) -> impl Fn(&Tag, &mut Vec<usize>) + Sync {
    move |tag, out| {
        let mut sampler = PersistenceSampler::new(tag.rn, seeds[0]);
        for &seed in &seeds {
            let slot = MixHasher.slot(tag.identity(), seed, 8192);
            if sampler.respond(3) {
                out.push(slot);
            }
        }
    }
}

fn bench_frame_fill(c: &mut Criterion) {
    let mut group = c.benchmark_group("bloom_frame_fill");
    group.sample_size(20);
    for n in [10_000usize, 100_000, 1_000_000] {
        let population = tags(n);
        let plan = bloom_plan([1, 2, 3]);
        group.bench_with_input(BenchmarkId::new("parallel", n), &n, |b, _| {
            b.iter(|| black_box(response_counts(&population, 8192, &plan)))
        });
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, _| {
            b.iter(|| {
                black_box(response_counts_with_min_chunk(
                    &population,
                    8192,
                    &plan,
                    usize::MAX,
                ))
            })
        });
    }
    group.finish();
}

fn bench_par_fold_overhead(c: &mut Criterion) {
    let population = tags(200_000);
    c.bench_function("par_fold_sum_200k", |b| {
        b.iter(|| {
            par_fold(
                &population,
                20_000,
                || 0u64,
                |acc, t| *acc += t.id,
                |acc, o| *acc += o,
            )
        })
    });
}

fn bench_bitmap(c: &mut Criterion) {
    let mut bitmap = Bitmap::zeros(8192);
    for i in (0..8192).step_by(3) {
        bitmap.set(i);
    }
    c.bench_function("bitmap_count_ones_8192", |b| {
        b.iter(|| black_box(bitmap.count_ones()))
    });
    c.bench_function("bitmap_count_prefix_1024", |b| {
        b.iter(|| black_box(bitmap.count_ones_prefix(1024)))
    });
}

criterion_group!(benches, bench_frame_fill, bench_par_fold_overhead, bench_bitmap);
criterion_main!(benches);
