//! `cargo bench --bench ablation_hash` — hash ablation.
use rfid_experiments::{ablations, output::emit, Scale};

fn main() {
    emit(&ablations::run_hash_comparison(Scale::Quick, 42), "ablation_hash");
}
