//! `cargo bench --bench ablation_k` — k sweep.
use rfid_experiments::{ablations, output::emit, Scale};

fn main() {
    emit(&ablations::run_k_sweep(Scale::Quick, 42), "ablation_k");
}
