//! `cargo bench --bench ablation_energy` — tag-energy comparison.
use rfid_experiments::{ablations, output::emit, Scale};

fn main() {
    emit(&ablations::run_energy(Scale::Quick, 42), "ablation_energy");
}
