//! `cargo bench --bench fig09_comparison_accuracy` — regenerates Figure 9.
use rfid_experiments::fig09::{run, Sweep};
use rfid_experiments::{output::emit, Scale};

fn main() {
    emit(&run(Sweep::N, Scale::Quick, 42), "fig09a_accuracy_vs_n");
    emit(&run(Sweep::Epsilon, Scale::Quick, 42), "fig09b_accuracy_vs_epsilon");
    emit(&run(Sweep::Delta, Scale::Quick, 42), "fig09c_accuracy_vs_delta");
}
