//! `cargo bench --bench fig08_cdf` — regenerates Figure 8.
use rfid_experiments::{fig08, output::emit, Scale};

fn main() {
    emit(&fig08::run(Scale::Quick, 42), "fig08_cdf");
}
