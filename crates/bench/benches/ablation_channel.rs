//! `cargo bench --bench ablation_channel` — channel-error ablation.
use rfid_experiments::{ablations, output::emit, Scale};

fn main() {
    emit(&ablations::run_channel_sweep(Scale::Quick, 42), "ablation_channel");
}
