//! `cargo bench --bench fig03_linearity` — regenerates Figure 3.
use rfid_experiments::{fig03, output::emit, Scale};

fn main() {
    emit(&fig03::run(Scale::Quick, 42), "fig03_linearity");
}
