//! Criterion micro-benchmarks for the numerics layer: the reader-side
//! computations BFCE performs once per estimation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rfid_bfce::theory::{gamma_bounds, optimal_p};
use rfid_stats::{d_for_delta, erf, erfinv};

fn bench_erf_family(c: &mut Criterion) {
    c.bench_function("erf", |b| {
        let mut x = 0.0f64;
        b.iter(|| {
            x = (x + 0.001) % 4.0;
            black_box(erf(x))
        })
    });
    c.bench_function("erfinv", |b| {
        let mut y = 0.0f64;
        b.iter(|| {
            y = (y + 0.0003) % 0.999;
            black_box(erfinv(y))
        })
    });
    c.bench_function("d_for_delta", |b| {
        b.iter(|| black_box(d_for_delta(black_box(0.05))))
    });
}

fn bench_optimal_p(c: &mut Criterion) {
    let d = d_for_delta(0.05);
    c.bench_function("optimal_p_bruteforce_250k", |b| {
        b.iter(|| black_box(optimal_p(250_000.0, 8192, 3, 0.05, d, 1024)))
    });
    c.bench_function("optimal_p_bruteforce_worstcase", |b| {
        // Tiny n_low scans the whole grid before falling back.
        b.iter(|| black_box(optimal_p(100.0, 8192, 3, 0.05, d, 1024)))
    });
}

fn bench_gamma_bounds(c: &mut Criterion) {
    c.bench_function("gamma_bounds", |b| {
        b.iter(|| black_box(gamma_bounds(3, 1024)))
    });
}

criterion_group!(benches, bench_erf_family, bench_optimal_p, bench_gamma_bounds);
criterion_main!(benches);
