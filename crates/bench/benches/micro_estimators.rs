//! Criterion micro-benchmarks for whole-protocol simulation cost (host
//! CPU time, not simulated air time — Figure 10 measures the latter).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_baselines::{Lof, Src};
use rfid_bfce::Bfce;
use rfid_sim::{Accuracy, CardinalityEstimator, RfidSystem};
use rfid_workloads::WorkloadSpec;

fn fresh_system(n: usize, seed: u64) -> RfidSystem {
    let mut rng = StdRng::seed_from_u64(seed);
    RfidSystem::new(WorkloadSpec::T1.generate(n, &mut rng))
}

fn bench_bfce_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("bfce_estimate");
    group.sample_size(20);
    for n in [10_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let bfce = Bfce::paper();
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut system = fresh_system(n, seed);
                let mut rng = StdRng::seed_from_u64(seed);
                black_box(bfce.estimate(
                    &mut system,
                    Accuracy::paper_default(),
                    &mut rng,
                ))
            })
        });
    }
    group.finish();
}

fn bench_lof_rough(c: &mut Criterion) {
    c.bench_function("lof_rough_estimate_100k", |b| {
        let lof = Lof::default();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut system = fresh_system(100_000, seed);
            let mut rng = StdRng::seed_from_u64(seed);
            black_box(lof.rough_estimate(&mut system, &mut rng))
        })
    });
}

fn bench_src_estimate(c: &mut Criterion) {
    let mut group = c.benchmark_group("src_estimate");
    group.sample_size(10);
    group.bench_function("100k_loose", |b| {
        let src = Src::default();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut system = fresh_system(100_000, seed);
            let mut rng = StdRng::seed_from_u64(seed);
            black_box(src.estimate(&mut system, Accuracy::new(0.1, 0.2), &mut rng))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_bfce_end_to_end,
    bench_lof_rough,
    bench_src_estimate
);
criterion_main!(benches);
