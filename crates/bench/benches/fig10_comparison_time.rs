//! `cargo bench --bench fig10_comparison_time` — regenerates Figure 10.
use rfid_experiments::fig09::Sweep;
use rfid_experiments::{fig10, output::emit, Scale};

fn main() {
    emit(&fig10::run(Sweep::N, Scale::Quick, 42), "fig10a_time_vs_n");
    emit(&fig10::run(Sweep::Epsilon, Scale::Quick, 42), "fig10b_time_vs_epsilon");
    emit(&fig10::run(Sweep::Delta, Scale::Quick, 42), "fig10c_time_vs_delta");
}
