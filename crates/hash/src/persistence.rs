//! The paper's lightweight p-persistence mechanism (Section IV-E3).
//!
//! Instead of virtually extending the frame by `1/p` (too slow when `p` is
//! small), the reader broadcasts only the 10-bit numerator `p_n`; a tag
//! draws 10 pseudo-random bits and responds iff the draw is below `p_n`,
//! realizing `p = p_n / 1024` exactly. (The paper writes the comparison as
//! `< p_n - 1`, an off-by-one that would realize `(p_n - 1)/1024`; we use
//! `< p_n` so the persistence probability equals the broadcast value —
//! see DESIGN.md.)

use crate::mix::mix_pair;
use crate::prng::XorShift32;

/// Number of bits in a persistence draw; the paper fixes the denominator
/// `2^10 = 1024`.
pub const PERSISTENCE_BITS: u32 = 10;

/// Denominator of the persistence probability: `p = p_n / 1024`.
pub const PERSISTENCE_DENOMINATOR: u32 = 1 << PERSISTENCE_BITS;

/// Tag-side persistence sampler: seeded from the tag's pre-stored `RN` and
/// the phase's broadcast seed, then queried once per candidate response.
#[derive(Debug, Clone)]
pub struct PersistenceSampler {
    rng: XorShift32,
}

impl PersistenceSampler {
    /// Derive a sampler for one tag and one phase.
    ///
    /// The tag mixes its pre-stored random number with the phase seed so the
    /// draws differ between phases (the paper re-broadcasts fresh seeds at
    /// the start of each phase). The mix is nonlinear: xorshift32 is linear
    /// over GF(2), so seeding it with a plain XOR of `RN` and the phase seed
    /// would make the draws of one tag under two phases differ by a
    /// *constant*, perfectly correlating its decisions across phases.
    #[inline]
    pub fn new(tag_rn: u32, phase_seed: u32) -> Self {
        Self {
            // analysis:allow(cast-truncation): intentionally keeps the low 32 bits of a full-avalanche mix; golden CSVs pin this exact seed derivation
            rng: XorShift32::new(mix_pair(tag_rn as u64, phase_seed as u64) as u32),
        }
    }

    /// One persistence trial: respond with probability `p_n / 1024`.
    ///
    /// Panics if `p_n > 1024`; `p_n = 0` never responds, `p_n = 1024`
    /// always responds.
    #[inline]
    pub fn respond(&mut self, p_n: u32) -> bool {
        assert!(
            p_n <= PERSISTENCE_DENOMINATOR,
            "persistence numerator {p_n} exceeds denominator {PERSISTENCE_DENOMINATOR}"
        );
        self.rng.next_bits(PERSISTENCE_BITS) < p_n
    }

    /// `k` persistence trials at once: bit `i` of the result is trial `i`'s
    /// decision, drawn in the same order as `k` calls to
    /// [`respond`](Self::respond) — batched frame-fill kernels test the
    /// whole mask against zero to skip silent tags without touching the
    /// per-seed loop. Panics if `k > 32` or `p_n > 1024`.
    #[inline]
    pub fn respond_mask(&mut self, p_n: u32, k: usize) -> u32 {
        assert!(k <= 32, "at most 32 trials fit the mask, got {k}");
        assert!(
            p_n <= PERSISTENCE_DENOMINATOR,
            "persistence numerator {p_n} exceeds denominator {PERSISTENCE_DENOMINATOR}"
        );
        let mut mask = 0u32;
        for i in 0..k {
            mask |= u32::from(self.rng.next_bits(PERSISTENCE_BITS) < p_n) << i;
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Empirical response rate over many tags, one trial each (matching how
    /// the protocol actually uses the sampler).
    fn response_rate(p_n: u32, tags: u32, phase_seed: u32) -> f64 {
        let mut responded = 0u32;
        for rn in 0..tags {
            // Spread tag RNs over the 32-bit space.
            let tag_rn = rn.wrapping_mul(0x9E37_79B9);
            let mut s = PersistenceSampler::new(tag_rn, phase_seed);
            if s.respond(p_n) {
                responded += 1;
            }
        }
        responded as f64 / tags as f64
    }

    #[test]
    fn extreme_numerators() {
        let mut s = PersistenceSampler::new(123, 456);
        for _ in 0..100 {
            assert!(!s.respond(0));
            assert!(s.respond(PERSISTENCE_DENOMINATOR));
        }
    }

    #[test]
    fn rate_matches_numerator() {
        for p_n in [3u32, 8, 64, 256, 512, 1000] {
            let want = p_n as f64 / PERSISTENCE_DENOMINATOR as f64;
            let got = response_rate(p_n, 200_000, 0xDEAD_BEEF);
            let sigma = (want * (1.0 - want) / 200_000.0).sqrt();
            assert!(
                (got - want).abs() < 5.0 * sigma.max(1e-4),
                "p_n = {p_n}: rate {got}, want {want}"
            );
        }
    }

    #[test]
    fn phases_are_decorrelated() {
        // The same tag population under two different phase seeds should make
        // (mostly) independent decisions.
        let tags = 50_000u32;
        let p_n = 512u32;
        let mut both = 0u32;
        for rn in 0..tags {
            let tag_rn = rn.wrapping_mul(0x9E37_79B9);
            let a = PersistenceSampler::new(tag_rn, 1).respond(p_n);
            let b = PersistenceSampler::new(tag_rn, 2).respond(p_n);
            if a && b {
                both += 1;
            }
        }
        // Independence would give 0.25; allow generous slack.
        let frac = both as f64 / tags as f64;
        assert!((frac - 0.25).abs() < 0.02, "joint rate = {frac}");
    }

    #[test]
    fn sampler_is_deterministic() {
        let mut a = PersistenceSampler::new(7, 9);
        let mut b = PersistenceSampler::new(7, 9);
        for _ in 0..64 {
            assert_eq!(a.respond(512), b.respond(512));
        }
    }

    #[test]
    fn successive_trials_vary() {
        let mut s = PersistenceSampler::new(99, 1);
        let outcomes: Vec<bool> = (0..64).map(|_| s.respond(512)).collect();
        assert!(outcomes.iter().any(|&x| x));
        assert!(outcomes.iter().any(|&x| !x));
    }

    #[test]
    #[should_panic(expected = "exceeds denominator")]
    fn rejects_oversized_numerator() {
        PersistenceSampler::new(1, 1).respond(1025);
    }

    #[test]
    fn respond_mask_matches_sequential_respond() {
        for (rn, seed, p_n) in [(7u32, 9u32, 512u32), (123, 456, 13), (0, 1, 1023)] {
            for k in [0usize, 1, 2, 3, 10, 32] {
                let mut a = PersistenceSampler::new(rn, seed);
                let mut b = PersistenceSampler::new(rn, seed);
                let mask = a.respond_mask(p_n, k);
                for i in 0..k {
                    assert_eq!(
                        mask & (1 << i) != 0,
                        b.respond(p_n),
                        "rn {rn} p_n {p_n} k {k} trial {i}"
                    );
                }
                if k < 32 {
                    assert_eq!(mask >> k, 0, "bits beyond trial {k} must be clear");
                }
                // The two samplers are in the same state afterwards.
                assert_eq!(a.respond(512), b.respond(512));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at most 32 trials")]
    fn respond_mask_rejects_oversized_k() {
        PersistenceSampler::new(1, 1).respond_mask(512, 33);
    }
}
