//! Tiny deterministic PRNGs used for tag-side randomness.
//!
//! Real passive tags cannot run a cryptographic RNG; the paper has them
//! derive all per-protocol randomness from the pre-stored 32-bit `RN` and
//! the reader's broadcast seeds. [`XorShift32`] models the tag-side
//! generator (32-bit state, a handful of shifts/XORs — implementable in tag
//! logic), while [`SplitMix64`] is the reader/simulator-side stream used to
//! generate seeds and populations deterministically.

use crate::mix::mix64;

/// Marsaglia xorshift32: the tag-side pseudo-random generator.
///
/// State is a single non-zero 32-bit word; each step is three shift-XOR
/// operations, cheap enough for tag hardware. A zero seed is remapped to a
/// fixed non-zero constant (xorshift has an all-zero fixed point).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorShift32 {
    state: u32,
}

impl XorShift32 {
    /// Create a generator from a seed; zero is remapped to a non-zero value.
    #[inline]
    pub fn new(seed: u32) -> Self {
        Self {
            state: if seed == 0 { 0x6D2B_79F5 } else { seed },
        }
    }

    /// Next 32 pseudo-random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.state = x;
        x
    }

    /// Next `bits` pseudo-random bits (1..=32) as the low bits of a `u32`.
    ///
    /// The paper's persistence test "randomly selects 10 bits from the
    /// prestored random number"; this is the generalized primitive.
    #[inline]
    pub fn next_bits(&mut self, bits: u32) -> u32 {
        assert!((1..=32).contains(&bits), "bits must lie in 1..=32");
        self.next_u32() >> (32 - bits)
    }

    /// Uniform `f64` in `[0, 1)` from two 32-bit draws.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        let hi = (self.next_u32() >> 6) as u64; // 26 bits
        let lo = (self.next_u32() >> 5) as u64; // 27 bits
        ((hi << 27) | lo) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// SplitMix64: the simulator-side 64-bit stream generator.
///
/// One addition and one [`mix64`] per output; passes BigCrush; used for
/// seed generation and anywhere the simulator needs cheap deterministic
/// 64-bit randomness outside the tag model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a stream from any 64-bit seed (all seeds are valid).
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 pseudo-random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state.wrapping_sub(0x9E37_79B9_7F4A_7C15))
    }

    /// Next 32 pseudo-random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        crate::mix::unit_f64(self.next_u64())
    }

    /// Fill `out` with the next `out.len()` outputs of this stream.
    ///
    /// Identical to calling [`next_u64`](Self::next_u64) in a loop — the
    /// generator state advances by exactly `out.len()` steps — but the
    /// counter-mode structure of SplitMix64 (output `i` is
    /// `mix64(state + i·GOLDEN)`) lets the compiler unroll and vectorize
    /// the mixing, which the one-at-a-time form's loop-carried state
    /// dependency prevents. Batched kernels draw whole chunks at once.
    pub fn fill_u64(&mut self, out: &mut [u64]) {
        const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
        let base = self.state;
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = mix64(base.wrapping_add((i as u64).wrapping_mul(GOLDEN)));
        }
        self.state = base.wrapping_add((out.len() as u64).wrapping_mul(GOLDEN));
    }
}

/// The `index`-th output (0-based) of the SplitMix64 stream rooted at
/// `root`: `mix64(root + index * GOLDEN)`.
///
/// This is *stream splitting*: each `(root, index)` pair addresses one
/// well-mixed 64-bit value without generating the preceding ones, so a
/// trial harness can hand trial `i` the seed `stream_seed(base, i)` and the
/// resulting per-trial streams are as independent as SplitMix64 outputs
/// get.
///
/// Unlike affine schemes (`base * prime + index`), nearby roots cannot
/// collide: `mix64` is a bijection, so outputs collide exactly when the
/// inputs `root + i * GOLDEN` do, and for two roots `b1 != b2` that
/// requires `b2 - b1` to be a multiple (mod 2^64) of the odd constant
/// `GOLDEN` — impossible for any realistically small root gap, so the two
/// seed sequences are fully disjoint.
#[inline]
pub fn stream_seed(root: u64, index: u64) -> u64 {
    crate::mix::mix64(root.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_zero_seed_is_remapped() {
        let mut a = XorShift32::new(0);
        // Must not get stuck at zero.
        assert_ne!(a.next_u32(), 0);
        let b = XorShift32::new(0);
        assert_eq!(XorShift32::new(0), b);
    }

    #[test]
    fn xorshift_is_deterministic() {
        let mut a = XorShift32::new(12345);
        let mut b = XorShift32::new(12345);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn xorshift_different_seeds_diverge() {
        let mut a = XorShift32::new(1);
        let mut b = XorShift32::new(2);
        let equal = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(equal < 2, "streams should diverge, {equal} collisions");
    }

    #[test]
    fn next_bits_range_and_mean() {
        let mut rng = XorShift32::new(99);
        let mut sum = 0u64;
        let trials = 100_000;
        for _ in 0..trials {
            let v = rng.next_bits(10);
            assert!(v < 1024);
            sum += v as u64;
        }
        let mean = sum as f64 / trials as f64;
        // Uniform over [0, 1024) has mean 511.5.
        assert!((mean - 511.5).abs() < 5.0, "mean = {mean}");
    }

    #[test]
    #[should_panic(expected = "bits must lie in 1..=32")]
    fn next_bits_rejects_zero() {
        XorShift32::new(1).next_bits(0);
    }

    #[test]
    fn xorshift_f64_in_unit_interval() {
        let mut rng = XorShift32::new(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.01);
    }

    #[test]
    fn splitmix_known_sequence() {
        // Reference values for SplitMix64 seeded with 1234567
        // (from the public-domain reference implementation).
        let mut rng = SplitMix64::new(1234567);
        let first = rng.next_u64();
        let mut again = SplitMix64::new(1234567);
        assert_eq!(first, again.next_u64());
        // Distinct consecutive outputs.
        let second = rng.next_u64();
        assert_ne!(first, second);
    }

    #[test]
    fn splitmix_all_seeds_valid_including_zero() {
        let mut rng = SplitMix64::new(0);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
        assert_ne!(a, 0); // overwhelmingly unlikely to be zero
    }

    #[test]
    fn stream_seed_is_the_indexed_splitmix_output() {
        // stream_seed(root, i) must equal the i-th (0-based) draw from
        // SplitMix64::new(root), so sequential callers and the stream-split
        // form address the same sequence.
        let root = 0xDEAD_BEEF_1234_5678u64;
        let mut rng = SplitMix64::new(root);
        for i in 0..64 {
            assert_eq!(stream_seed(root, i), rng.next_u64(), "index {i}");
        }
    }

    #[test]
    fn stream_seeds_from_nearby_roots_are_disjoint() {
        use std::collections::HashSet;
        // Adjacent experiment base seeds (42, 43, ...) must not share any
        // per-trial seeds — the affine scheme this replaces interleaved
        // them.
        let trials = 10_000u64;
        let mut seen: HashSet<u64> = HashSet::new();
        for root in 40..48u64 {
            for i in 0..trials {
                assert!(
                    seen.insert(stream_seed(root, i)),
                    "collision at root {root}, trial {i}"
                );
            }
        }
    }

    #[test]
    fn stream_seed_handles_extreme_indices() {
        // Wrapping arithmetic: no panic, still deterministic.
        assert_eq!(stream_seed(7, u64::MAX), stream_seed(7, u64::MAX));
        assert_ne!(stream_seed(7, u64::MAX), stream_seed(7, 0));
    }

    #[test]
    fn fill_u64_matches_sequential_draws_and_state() {
        for n in [0usize, 1, 2, 63, 64, 65, 1000] {
            let mut a = SplitMix64::new(0xFEED_F00D);
            let mut b = a;
            let mut batch = vec![0u64; n];
            a.fill_u64(&mut batch);
            let seq: Vec<u64> = (0..n).map(|_| b.next_u64()).collect();
            assert_eq!(batch, seq, "n = {n}");
            // Post-fill state must agree: the next draw is identical.
            assert_eq!(a.next_u64(), b.next_u64(), "n = {n}");
        }
    }

    #[test]
    fn splitmix_uniformity_via_chi_square() {
        let mut rng = SplitMix64::new(42);
        let bins = 64usize;
        let mut counts = vec![0u64; bins];
        for _ in 0..640_000 {
            counts[crate::mix::bucket(rng.next_u64(), bins)] += 1;
        }
        assert!(
            rfid_stats::uniformity_test(&counts, 0.001),
            "SplitMix64 bucket counts failed uniformity"
        );
    }

    #[test]
    fn xorshift_uniformity_via_chi_square() {
        let mut rng = XorShift32::new(2024);
        let bins = 64usize;
        let mut counts = vec![0u64; bins];
        for _ in 0..640_000 {
            counts[(rng.next_bits(6)) as usize] += 1;
        }
        assert!(
            rfid_stats::uniformity_test(&counts, 0.001),
            "XorShift32 top-bit counts failed uniformity"
        );
    }
}
