//! Tag-side operation counting — quantifying Section IV-E2's claim that
//! BFCE "only requires the tags to perform lightweight bitwise XOR
//! computation and bitget operations".
//!
//! The counted functions mirror the real implementations instruction for
//! instruction and are unit-tested to produce **identical outputs**, so
//! the tallies cannot drift from the code they describe. `mul` is the
//! interesting column: passive-tag logic has no multiplier, so a scheme
//! whose per-frame cost includes multiplications (every avalanche hash
//! does) needs hardware the paper's scheme avoids.

use crate::mix::bucket;
use crate::prng::XorShift32;
use crate::tag_hash::TagIdentity;

/// Operation tallies for one tag-side computation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TagOps {
    /// Bitwise XOR / AND / OR operations.
    pub bitwise: u64,
    /// Shifts and rotates.
    pub shift: u64,
    /// Additions/subtractions.
    pub add: u64,
    /// Comparisons.
    pub compare: u64,
    /// Multiplications (wide): absent from passive-tag logic.
    pub mul: u64,
}

impl TagOps {
    /// Total operations of any kind.
    pub fn total(&self) -> u64 {
        self.bitwise + self.shift + self.add + self.compare + self.mul
    }

    /// Component-wise sum.
    pub fn plus(&self, other: &TagOps) -> TagOps {
        TagOps {
            bitwise: self.bitwise + other.bitwise,
            shift: self.shift + other.shift,
            add: self.add + other.add,
            compare: self.compare + other.compare,
            mul: self.mul + other.mul,
        }
    }

    /// Component-wise multiple (`k` repetitions).
    pub fn times(&self, k: u64) -> TagOps {
        TagOps {
            bitwise: self.bitwise * k,
            shift: self.shift * k,
            add: self.add * k,
            compare: self.compare * k,
            mul: self.mul * k,
        }
    }
}

/// Counted mirror of [`crate::XorBitgetHasher`]: `(rn ^ seed) & (w - 1)`.
pub fn counted_xor_bitget(tag: TagIdentity, seed: u32, w: usize, ops: &mut TagOps) -> usize {
    ops.bitwise += 2; // one XOR, one mask
    ((tag.rn ^ seed) as usize) & (w - 1)
}

/// Counted mirror of [`crate::mix64`] (SplitMix64 finalizer).
pub fn counted_mix64(mut z: u64, ops: &mut TagOps) -> u64 {
    ops.add += 1;
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    ops.shift += 1;
    ops.bitwise += 1;
    ops.mul += 1;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    ops.shift += 1;
    ops.bitwise += 1;
    ops.mul += 1;
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ops.shift += 1;
    ops.bitwise += 1;
    z ^ (z >> 31)
}

/// Counted mirror of [`crate::mix_pair`].
pub fn counted_mix_pair(a: u64, b: u64, ops: &mut TagOps) -> u64 {
    let inner = counted_mix64(a, ops);
    ops.shift += 1; // rotate
    ops.bitwise += 1; // xor
    counted_mix64(inner ^ b.rotate_left(32), ops)
}

/// Counted mirror of [`crate::MixHasher`]'s slot computation.
pub fn counted_mix_slot(tag: TagIdentity, seed: u32, w: usize, ops: &mut TagOps) -> usize {
    let h = counted_mix_pair(tag.id, seed as u64, ops);
    ops.mul += 1; // Lemire reduction is a wide multiply
    ops.shift += 1;
    bucket(h, w)
}

/// Counted mirror of one [`XorShift32`] step plus a `bits`-wide draw.
pub fn counted_xorshift_draw(state: &mut XorShift32, bits: u32, ops: &mut TagOps) -> u32 {
    // x ^= x << 13; x ^= x >> 17; x ^= x << 5 — three shift+xor pairs,
    // then the width shift.
    ops.shift += 4;
    ops.bitwise += 3;
    state.next_bits(bits)
}

/// Per-frame tag cost of BFCE with the paper's hash: `k` slot hashes plus
/// `k` persistence draws (each draw: one xorshift step, one compare).
///
/// Excludes the one-time sampler seeding, which a real tag amortizes by
/// folding the broadcast seed into its stored state.
pub fn bfce_frame_ops(k: u64) -> TagOps {
    let mut ops = TagOps::default();
    let tag = TagIdentity { id: 1, rn: 2 };
    let mut state = XorShift32::new(3);
    // Frame seeds are 32-bit on the air, so the per-frame counter is a
    // u32 that wraps exactly as a tag would observe it.
    let mut seed: u32 = 0;
    for _ in 0..k {
        counted_xor_bitget(tag, seed, 8192, &mut ops);
        counted_xorshift_draw(&mut state, 10, &mut ops);
        ops.compare += 1; // draw < p_n
        seed = seed.wrapping_add(1);
    }
    ops
}

/// Per-frame tag cost of BFCE with a full avalanche hash instead.
pub fn bfce_mix_frame_ops(k: u64) -> TagOps {
    let mut ops = TagOps::default();
    let tag = TagIdentity { id: 1, rn: 2 };
    let mut state = XorShift32::new(3);
    let mut seed: u32 = 0;
    for _ in 0..k {
        counted_mix_slot(tag, seed, 8192, &mut ops);
        counted_xorshift_draw(&mut state, 10, &mut ops);
        ops.compare += 1;
        seed = seed.wrapping_add(1);
    }
    ops
}

/// Per-slot tag cost of ZOE: one full hash of `(id, seed)` plus the
/// participation compare — paid for **every** of its thousands of slots.
pub fn zoe_slot_ops() -> TagOps {
    let mut ops = TagOps::default();
    counted_mix_pair(1, 2, &mut ops);
    ops.shift += 1; // top-53 extraction for the unit-interval compare
    ops.compare += 1;
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::{mix64, mix_pair};
    use crate::tag_hash::{MixHasher, SlotHasher, XorBitgetHasher};

    #[test]
    fn counted_functions_match_the_real_ones() {
        let tag = TagIdentity {
            id: 0xABCD_EF01_2345,
            rn: 0xDEAD_BEEF,
        };
        let mut ops = TagOps::default();
        for seed in [0u32, 1, 0xFFFF_FFFF, 0x1234_5678] {
            assert_eq!(
                counted_xor_bitget(tag, seed, 8192, &mut ops),
                XorBitgetHasher.slot(tag, seed, 8192)
            );
            assert_eq!(
                counted_mix_slot(tag, seed, 8192, &mut ops),
                MixHasher.slot(tag, seed, 8192)
            );
            assert_eq!(counted_mix64(seed as u64, &mut ops), mix64(seed as u64));
            assert_eq!(
                counted_mix_pair(tag.id, seed as u64, &mut ops),
                mix_pair(tag.id, seed as u64)
            );
        }
        let mut a = XorShift32::new(7);
        let mut b = XorShift32::new(7);
        for _ in 0..16 {
            assert_eq!(counted_xorshift_draw(&mut a, 10, &mut ops), b.next_bits(10));
        }
    }

    #[test]
    fn the_papers_hash_needs_no_multiplier() {
        let bfce = bfce_frame_ops(3);
        assert_eq!(bfce.mul, 0, "{bfce:?}");
        // And the whole frame is a couple dozen gate-level ops.
        assert!(bfce.total() < 40, "{bfce:?}");
    }

    #[test]
    fn avalanche_hashing_needs_multipliers() {
        let mix = bfce_mix_frame_ops(3);
        assert!(mix.mul >= 3 * 5, "{mix:?}");
        assert!(mix.total() > bfce_frame_ops(3).total() * 2);
    }

    #[test]
    fn zoe_pays_per_slot_what_bfce_pays_per_frame() {
        let zoe_per_slot = zoe_slot_ops();
        let bfce_per_frame = bfce_frame_ops(3);
        assert!(
            zoe_per_slot.total() > bfce_per_frame.total() / 3,
            "zoe {zoe_per_slot:?} vs bfce {bfce_per_frame:?}"
        );
        assert!(zoe_per_slot.mul > 0);
    }

    #[test]
    fn tag_ops_arithmetic() {
        let a = TagOps {
            bitwise: 1,
            shift: 2,
            add: 3,
            compare: 4,
            mul: 5,
        };
        assert_eq!(a.total(), 15);
        assert_eq!(a.plus(&a), a.times(2));
        assert_eq!(a.times(0), TagOps::default());
    }
}
