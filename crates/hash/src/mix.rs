//! 64-bit finalizer-style mixing functions.
//!
//! [`mix64`] is the SplitMix64 / MurmurHash3 `fmix64` finalizer: an
//! invertible permutation of `u64` with full avalanche (every input bit
//! flips every output bit with probability ~1/2). It is the root primitive
//! for the full-quality hashes and PRNG streams in this workspace.

/// SplitMix64 finalizer: a bijective full-avalanche permutation of `u64`.
///
/// ```
/// use rfid_hash::mix64;
/// assert_ne!(mix64(0), 0);
/// assert_ne!(mix64(1), mix64(2));
/// ```
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash a pair of values into one well-mixed 64-bit word.
///
/// Used wherever the simulator needs a deterministic hash of
/// `(tag identity, reader seed)` — e.g. ZOE's per-slot participation draws.
#[inline]
pub fn mix_pair(a: u64, b: u64) -> u64 {
    mix64(mix64(a) ^ b.rotate_left(32))
}

/// Map a 64-bit hash to a bucket in `[0, n)` without modulo bias, using the
/// multiply-shift (Lemire) reduction.
///
/// ```
/// use rfid_hash::mix::bucket;
/// assert!(bucket(u64::MAX, 10) < 10);
/// assert_eq!(bucket(0, 10), 0);
/// ```
#[inline]
pub fn bucket(hash: u64, n: usize) -> usize {
    debug_assert!(n > 0, "bucket count must be positive");
    ((hash as u128 * n as u128) >> 64) as usize
}

/// Turn a 64-bit hash into a uniform `f64` in `[0, 1)` using the top 53 bits.
#[inline]
pub fn unit_f64(hash: u64) -> f64 {
    (hash >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_injective_on_a_sample() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0..100_000u64 {
            assert!(seen.insert(mix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn mix64_avalanche() {
        // Flipping a single input bit should flip ~32 of 64 output bits.
        let mut total_flips = 0u32;
        let trials = 64 * 100;
        for i in 0..100u64 {
            let base = mix64(i.wrapping_mul(0x1234_5678_9ABC_DEF1));
            for bit in 0..64 {
                let flipped = mix64(
                    i.wrapping_mul(0x1234_5678_9ABC_DEF1) ^ (1u64 << bit),
                );
                total_flips += (base ^ flipped).count_ones();
            }
        }
        let avg = total_flips as f64 / trials as f64;
        assert!(
            (avg - 32.0).abs() < 1.0,
            "avalanche average {avg}, want ~32"
        );
    }

    #[test]
    fn mix_pair_depends_on_both_inputs() {
        assert_ne!(mix_pair(1, 2), mix_pair(2, 1));
        assert_ne!(mix_pair(1, 2), mix_pair(1, 3));
        assert_ne!(mix_pair(1, 2), mix_pair(4, 2));
    }

    #[test]
    fn bucket_bounds() {
        for n in [1usize, 2, 3, 7, 8192, 1_000_003] {
            for h in [0u64, 1, u64::MAX / 2, u64::MAX - 1, u64::MAX] {
                assert!(bucket(h, n) < n, "bucket({h}, {n}) out of range");
            }
        }
        assert_eq!(bucket(u64::MAX, 1), 0);
    }

    #[test]
    fn bucket_is_roughly_uniform() {
        let n = 16usize;
        let mut counts = vec![0u64; n];
        for i in 0..160_000u64 {
            counts[bucket(mix64(i), n)] += 1;
        }
        let expected = 10_000.0;
        for (b, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "bin {b} deviates by {dev}");
        }
    }

    #[test]
    fn unit_f64_range_and_spread() {
        let mut min = 1.0f64;
        let mut max = 0.0f64;
        let mut sum = 0.0;
        let trials = 100_000u64;
        for i in 0..trials {
            let u = unit_f64(mix64(i));
            assert!((0.0..1.0).contains(&u));
            min = min.min(u);
            max = max.max(u);
            sum += u;
        }
        assert!(min < 0.001);
        assert!(max > 0.999);
        let mean = sum / trials as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean = {mean}");
    }
}
