//! Deterministic hashing and lightweight PRNG substrate for the BFCE
//! reproduction.
//!
//! The BFCE paper (Section IV-E) is explicit that RFID tags are too
//! resource-constrained for real hash functions, so it prescribes:
//!
//! * each tag pre-stores a 32-bit random number `RN`;
//! * the reader broadcasts `k = 3` random 32-bit seeds `RS[i]` per phase;
//! * a tag's i-th Bloom-filter slot is `bitget(RN ^ RS[i], 13:1)` — the
//!   lowest 13 bits of a bitwise XOR (13 bits because `w = 8192 = 2^13`);
//! * p-persistence is implemented by comparing a 10-bit pseudo-random draw
//!   against the broadcast numerator `p_n` (so `p = p_n / 1024`).
//!
//! This crate implements that scheme ([`XorBitgetHasher`],
//! [`PersistenceSampler`]) plus a full-avalanche alternative
//! ([`MixHasher`], used by the hash ablation), geometric-level hashes for the
//! LOF/PET baselines ([`geometric`]), and the tiny deterministic PRNGs the
//! simulator uses for tag-side randomness ([`prng`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod geometric;
pub mod mix;
pub mod opcount;
pub mod persistence;
pub mod prng;
pub mod register;
pub mod tag_hash;

pub use geometric::geometric_level;
pub use mix::{mix64, mix_pair};
pub use register::register_hash;
pub use opcount::TagOps;
pub use persistence::PersistenceSampler;
pub use prng::{stream_seed, SplitMix64, XorShift32};
pub use tag_hash::{hash_slots_batch, MixHasher, SlotHasher, TagIdentity, XorBitgetHasher};
