//! 64-bit register hashing for LogLog-family sketches.
//!
//! HyperLogLog++ and LogLog-β both split one well-mixed 64-bit hash of a
//! tag's identity into a **register index** (the top `p` bits, addressing
//! one of `m = 2^p` registers) and a **rank** (the position of the first
//! set bit in the remaining `64 - p` bits, 1-based). The 64-bit width is
//! what makes HyperLogLog++'s "no large-range correction" property hold:
//! with 32-bit hashes, collisions distort estimates past ~10^8, while a
//! 64-bit hash keeps the geometric rank law exact far beyond any RFID
//! deployment size.
//!
//! The hash root is [`mix_pair`](crate::mix::mix_pair) over
//! `(tag identity, reader seed)`, the same primitive the simulator's other
//! full-avalanche draws use, so sketches are deterministic per
//! `(tag, seed)` — the property that makes per-reader sketches of a shared
//! tag *identical* and therefore mergeable by `max` without double
//! counting.

use crate::mix::mix_pair;

/// Inclusive bounds on the register-index precision `p` (`m = 2^p`
/// registers). The lower bound keeps the bias-corrected estimators'
/// constants meaningful; the upper bound keeps register indices in `u16`
/// for the tiered sparse representations.
pub const PRECISION_RANGE: std::ops::RangeInclusive<u8> = 4..=16;

/// Maximum representable rank: first-set-bit position in the `64 - p`
/// hash bits left after the widest supported register index, plus one
/// for the "all zero" overflow position.
pub const MAX_RANK: u8 = 61;

/// Split a 64-bit hash of `(identity, seed)` into `(register, rank)`.
///
/// * `register` is the top `p` bits of the hash, in `[0, 2^p)`.
/// * `rank` is the 1-based position of the first set bit among the
///   remaining `64 - p` bits, clamped to `levels` (so a frame with
///   `levels` rank slots per register can carry it). The all-zero
///   remainder — probability `2^-(64-p)` — also clamps to `levels`.
///
/// Panics if `p` is outside [`PRECISION_RANGE`] or `levels` is zero;
/// both are configuration errors, checked once at protocol setup.
#[inline]
pub fn register_hash(identity: u64, seed: u32, p: u8, levels: u8) -> (u32, u8) {
    debug_assert!(
        PRECISION_RANGE.contains(&p),
        "precision {p} outside {PRECISION_RANGE:?}"
    );
    debug_assert!(levels >= 1, "need at least one rank level");
    let h = mix_pair(identity, seed as u64);
    // analysis:allow(cast-truncation): the shift leaves only the top p <= 16 bits, which fit u32 by construction
    let register = (h >> (64 - p as u32)) as u32;
    // Shift the register bits out; the rank is counted over what is left.
    // `leading_zeros` of the shifted value is exact because the low `p`
    // bits vacated by the shift are zero-filled (they can only lower the
    // rank *beyond* 64 - p, which the clamp absorbs anyway).
    // analysis:allow(cast-truncation): a u64 shift count is in [4, 16]; nothing narrows here, the cast only widens p
    let rest = h << (p as u32);
    // analysis:allow(cast-truncation): leading_zeros is at most 64, which fits u8 with room to spare
    let rank = (rest.leading_zeros() as u8).saturating_add(1);
    (register, rank.min(levels))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_stays_in_range() {
        for p in [4u8, 8, 12, 16] {
            let m = 1u32 << p;
            for i in 0..10_000u64 {
                let (r, q) = register_hash(i, 7, p, 32);
                assert!(r < m, "p={p}: register {r} >= {m}");
                assert!((1..=32).contains(&q), "p={p}: rank {q}");
            }
        }
    }

    #[test]
    fn deterministic_per_identity_and_seed() {
        assert_eq!(register_hash(42, 7, 12, 32), register_hash(42, 7, 12, 32));
        assert_ne!(register_hash(42, 7, 12, 32), register_hash(43, 7, 12, 32));
        // A different seed re-randomizes both coordinates for most tags.
        let moved = (0..1000u64)
            .filter(|&i| register_hash(i, 1, 12, 32) != register_hash(i, 2, 12, 32))
            .count();
        assert!(moved > 990, "only {moved}/1000 tags moved under a new seed");
    }

    #[test]
    fn registers_are_roughly_uniform() {
        let p = 8u8;
        let m = 1usize << p;
        let mut counts = vec![0u32; m];
        let trials = 256_000u64;
        for i in 0..trials {
            counts[register_hash(i, 99, p, 32).0 as usize] += 1;
        }
        let expected = trials as f64 / m as f64;
        for (r, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.15, "register {r} deviates by {dev}");
        }
    }

    #[test]
    fn ranks_follow_the_geometric_law() {
        // P(rank = q) = 2^-q, so the sample mean of rank is ~2.
        let trials = 200_000u64;
        let mut sum = 0u64;
        let mut hist = [0u64; 8];
        for i in 0..trials {
            let (_, q) = register_hash(i, 3, 12, 61);
            sum += q as u64;
            if (q as usize) <= hist.len() {
                hist[q as usize - 1] += 1;
            }
        }
        let mean = sum as f64 / trials as f64;
        assert!((mean - 2.0).abs() < 0.02, "mean rank {mean}, want ~2");
        for (i, &c) in hist.iter().enumerate() {
            let p_hat = c as f64 / trials as f64;
            let p_want = 0.5f64.powi(i as i32 + 1);
            assert!(
                (p_hat - p_want).abs() < 0.01,
                "P(rank = {}) = {p_hat}, want {p_want}",
                i + 1
            );
        }
    }

    #[test]
    fn rank_clamps_to_levels() {
        for i in 0..50_000u64 {
            let (_, q) = register_hash(i, 11, 12, 4);
            assert!((1..=4).contains(&q));
        }
        // With a generous cap the same hashes spread past 4.
        let deep = (0..50_000u64)
            .filter(|&i| register_hash(i, 11, 12, 32).1 > 4)
            .count();
        assert!(deep > 1000, "only {deep} ranks above 4");
    }
}
