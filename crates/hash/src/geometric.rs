//! Geometric-distribution hashing for the LOF and PET baselines.
//!
//! LOF (Qian et al., TPDS 2011) has every tag hash itself to a frame
//! position `j` with probability `2^(-j)` — position 1 with probability 1/2,
//! position 2 with 1/4, and so on. The natural implementation counts
//! trailing zeros of a uniform hash word.

use crate::mix::mix_pair;

/// Geometric level of a tag under a seed: returns `j >= 1` with probability
/// `2^(-j)`, capped at `max_level` (the residual mass collapses onto the
/// cap, matching a finite LOF frame).
///
/// ```
/// use rfid_hash::geometric_level;
/// let level = geometric_level(42, 7, 32);
/// assert!((1..=32).contains(&level));
/// ```
pub fn geometric_level(tag_key: u64, seed: u32, max_level: u32) -> u32 {
    assert!(max_level >= 1, "max_level must be at least 1");
    let h = mix_pair(tag_key, seed as u64);
    // trailing_zeros of a uniform word is geometric(1/2) starting at 0.
    let level = h.trailing_zeros() + 1;
    level.min(max_level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prng::SplitMix64;

    #[test]
    fn levels_within_bounds() {
        for i in 0..10_000u64 {
            let l = geometric_level(i, 3, 16);
            assert!((1..=16).contains(&l));
        }
    }

    #[test]
    fn level_distribution_is_geometric() {
        let mut rng = SplitMix64::new(11);
        let trials = 1_000_000u64;
        let mut counts = [0u64; 12];
        for _ in 0..trials {
            let l = geometric_level(rng.next_u64(), 77, 64) as usize;
            if l <= 12 {
                counts[l - 1] += 1;
            }
        }
        // P(level = j) = 2^-j; check the first 8 levels to ~3 sigma.
        for j in 1..=8usize {
            let p = 0.5f64.powi(j as i32);
            let expected = trials as f64 * p;
            let sigma = (trials as f64 * p * (1.0 - p)).sqrt();
            let got = counts[j - 1] as f64;
            assert!(
                (got - expected).abs() < 4.0 * sigma,
                "level {j}: got {got}, expected {expected} +/- {sigma}"
            );
        }
    }

    #[test]
    fn cap_collapses_tail_mass() {
        // With max_level = 2, P(level = 2) = 1/2 (all of levels >= 2).
        let mut rng = SplitMix64::new(5);
        let trials = 100_000u64;
        let mut at_cap = 0u64;
        for _ in 0..trials {
            if geometric_level(rng.next_u64(), 9, 2) == 2 {
                at_cap += 1;
            }
        }
        let frac = at_cap as f64 / trials as f64;
        assert!((frac - 0.5).abs() < 0.01, "cap mass = {frac}");
    }

    #[test]
    fn deterministic_per_tag_and_seed() {
        assert_eq!(geometric_level(9, 1, 32), geometric_level(9, 1, 32));
    }

    #[test]
    fn different_seeds_resample() {
        // Across seeds the level of one tag should vary.
        let distinct: std::collections::HashSet<u32> =
            (0..64u32).map(|s| geometric_level(12345, s, 32)).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    #[should_panic(expected = "max_level must be at least 1")]
    fn rejects_zero_cap() {
        geometric_level(1, 1, 0);
    }
}
