//! Tag-side slot-selection hashes.
//!
//! A [`SlotHasher`] maps a tag's identity and a reader-broadcast seed to a
//! bit-slot index in `[0, w)`. Two implementations:
//!
//! * [`XorBitgetHasher`] — the paper's Section IV-E2 scheme:
//!   `H(id) = bitget(RN ^ RS[i], log2(w) : 1)`, i.e. XOR the tag's
//!   pre-stored 32-bit random number with the broadcast seed and keep the
//!   lowest `log2(w)` bits. Requires `w` to be a power of two (the paper
//!   fixes `w = 8192 = 2^13`). Note that for a single tag the k slots are
//!   rigid XOR-translates of each other (see DESIGN.md), which is exactly
//!   the behaviour of the published design.
//! * [`MixHasher`] — a full-avalanche alternative hashing
//!   `(tag id, seed)` through SplitMix64 finalizers, valid for any `w`.
//!   Used by the hash ablation study to quantify what (if anything) the
//!   lightweight scheme costs.

use crate::mix::{bucket, mix_pair};

/// Identity material a hash can draw on: the EPC-style tag ID and the
/// pre-stored 32-bit random number `RN` of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TagIdentity {
    /// Unique tag identifier (the paper draws these from up to `10^15`).
    pub id: u64,
    /// Pre-stored 32-bit random number (Section IV-E2).
    pub rn: u32,
}

/// Maps (tag, seed) to a slot index in `[0, w)`.
pub trait SlotHasher: Send + Sync {
    /// Slot index for this tag under this seed; must lie in `[0, w)`.
    fn slot(&self, tag: TagIdentity, seed: u32, w: usize) -> usize;

    /// Hash a batch of tags under one seed, appending one slot per tag to
    /// `out` in input order.
    ///
    /// Must be element-wise identical to calling [`slot`](Self::slot) per
    /// tag; implementations override it to hoist per-call validation and
    /// dispatch out of the inner loop. The default is the scalar loop.
    ///
    /// Hidden from docs deliberately: benchmarked at 0.6–0.9× the scalar
    /// fold for mix64 because it materializes a buffer the fold never
    /// writes, and no production call site needs that buffer. It survives
    /// only as the measurement surface for the `tag_hash` bench suite and
    /// the kernel-checksum CI harness — do not grow new callers; fold over
    /// [`slot`](Self::slot) instead.
    #[doc(hidden)]
    fn slot_batch(&self, tags: &[TagIdentity], seed: u32, w: usize, out: &mut Vec<usize>) {
        out.reserve(tags.len());
        for &tag in tags {
            out.push(self.slot(tag, seed, w));
        }
    }

    /// Short human-readable name (used in ablation output).
    fn name(&self) -> &'static str;
}

/// Hash `tags` under `seed` into `out` through a dynamically chosen hasher.
///
/// One virtual call per batch instead of one per tag: the caller keeps a
/// `&dyn SlotHasher` (e.g. resolved from a config enum) and the batch
/// method monomorphizes the inner loop on the concrete hasher. `out` is a
/// caller-provided scratch buffer; it is cleared first so it can be reused
/// across seeds without reallocating.
///
/// Hidden from docs deliberately (ROADMAP item 1 leftover): the frame-fill
/// kernels fold slots directly and never need the materialized slot
/// buffer, and for mix64 this path measures 0.6–0.9× the scalar fold. It
/// is kept — not removed — because the `tag_hash` bench suite tracks that
/// gap and the kernel-checksums CI job pins its output; `kernel-parity`
/// exempts `#[doc(hidden)]` kernels, so no equivalence proptest is
/// demanded for this dead-in-production surface.
#[doc(hidden)]
pub fn hash_slots_batch(
    hasher: &dyn SlotHasher,
    tags: &[TagIdentity],
    seed: u32,
    w: usize,
    out: &mut Vec<usize>,
) {
    out.clear();
    hasher.slot_batch(tags, seed, w, out);
}

/// The paper's lightweight hash: `bitget(RN ^ RS, log2(w) : 1)`.
///
/// Only bitwise XOR and a mask — implementable on passive tags. Panics if
/// `w` is not a power of two or exceeds `2^32`.
#[derive(Debug, Clone, Copy, Default)]
pub struct XorBitgetHasher;

impl SlotHasher for XorBitgetHasher {
    #[inline]
    fn slot(&self, tag: TagIdentity, seed: u32, w: usize) -> usize {
        assert!(
            w.is_power_of_two() && w <= (1usize << 32),
            "XorBitgetHasher requires w to be a power of two <= 2^32, got {w}"
        );
        ((tag.rn ^ seed) as usize) & (w - 1)
    }

    #[inline]
    fn slot_batch(&self, tags: &[TagIdentity], seed: u32, w: usize, out: &mut Vec<usize>) {
        // Hoist the power-of-two check and the mask out of the loop; the
        // remaining per-tag work is one XOR and one AND. `extend` over a
        // slice iterator reserves once and writes without per-element
        // capacity checks (the TrustedLen specialization), which is what
        // lets the loop auto-vectorize.
        assert!(
            w.is_power_of_two() && w <= (1usize << 32),
            "XorBitgetHasher requires w to be a power of two <= 2^32, got {w}"
        );
        let mask = w - 1;
        out.extend(tags.iter().map(|tag| ((tag.rn ^ seed) as usize) & mask));
    }

    fn name(&self) -> &'static str {
        "xor-bitget"
    }
}

/// Full-avalanche hash of `(tag id, seed)`; any `w >= 1` is valid.
#[derive(Debug, Clone, Copy, Default)]
pub struct MixHasher;

impl SlotHasher for MixHasher {
    #[inline]
    fn slot(&self, tag: TagIdentity, seed: u32, w: usize) -> usize {
        assert!(w >= 1, "w must be positive");
        bucket(mix_pair(tag.id, seed as u64), w)
    }

    #[inline]
    fn slot_batch(&self, tags: &[TagIdentity], seed: u32, w: usize, out: &mut Vec<usize>) {
        assert!(w >= 1, "w must be positive");
        let seed = seed as u64;
        out.extend(tags.iter().map(|tag| bucket(mix_pair(tag.id, seed), w)));
    }

    fn name(&self) -> &'static str {
        "mix64"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prng::SplitMix64;

    fn sample_tags(n: usize, seed: u64) -> Vec<TagIdentity> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| TagIdentity {
                id: rng.next_u64() % 1_000_000_000_000_000,
                rn: rng.next_u32(),
            })
            .collect()
    }

    #[test]
    fn xor_bitget_matches_the_paper_formula() {
        let tag = TagIdentity {
            id: 42,
            rn: 0b1010_1100_0011_0101_1111_0000_1010_0101,
        };
        let seed = 0b0101_0011_1100_1010_0000_1111_0101_1010u32;
        let w = 8192; // 2^13
        let expect = ((tag.rn ^ seed) & 0x1FFF) as usize;
        assert_eq!(XorBitgetHasher.slot(tag, seed, w), expect);
    }

    #[test]
    fn xor_bitget_translate_structure() {
        // For a fixed pair of seeds, the two slots of any tag differ by the
        // same XOR constant — the documented structural property.
        let (s1, s2) = (0xDEAD_BEEFu32, 0x1234_5678u32);
        let w = 8192usize;
        let delta = ((s1 ^ s2) as usize) & (w - 1);
        for tag in sample_tags(100, 1) {
            let a = XorBitgetHasher.slot(tag, s1, w);
            let b = XorBitgetHasher.slot(tag, s2, w);
            assert_eq!(a ^ b, delta);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn xor_bitget_rejects_non_power_of_two_w() {
        XorBitgetHasher.slot(TagIdentity { id: 1, rn: 2 }, 3, 1000);
    }

    #[test]
    fn mix_hasher_accepts_any_w() {
        let tag = TagIdentity { id: 7, rn: 9 };
        for w in [1usize, 2, 3, 1000, 8192, 1 << 20] {
            assert!(MixHasher.slot(tag, 5, w) < w);
        }
    }

    #[test]
    fn both_hashers_fill_uniformly() {
        // Theorem 1's core assumption: hash values uniform over [0, w).
        let w = 64usize;
        let tags = sample_tags(64_000, 99);
        for hasher in [&XorBitgetHasher as &dyn SlotHasher, &MixHasher] {
            let mut counts = vec![0u64; w];
            let seed = 0xABCD_EF01u32;
            for &tag in &tags {
                counts[hasher.slot(tag, seed, w)] += 1;
            }
            assert!(
                rfid_stats::uniformity_test(&counts, 0.001),
                "{} failed uniformity",
                hasher.name()
            );
        }
    }

    #[test]
    fn seeds_decorrelate_across_tags() {
        // Across tags, slots under two different seeds should be
        // independent-ish: the joint (slot1, slot2) histogram over a coarse
        // grid should be uniform for the mix hasher.
        let g = 8usize;
        let w = 8192usize;
        let tags = sample_tags(64_000, 5);
        let mut joint = vec![0u64; g * g];
        for &tag in &tags {
            let a = MixHasher.slot(tag, 1, w) * g / w;
            let b = MixHasher.slot(tag, 2, w) * g / w;
            joint[a * g + b] += 1;
        }
        assert!(rfid_stats::uniformity_test(&joint, 0.001));
    }

    #[test]
    fn hashers_are_deterministic() {
        let tag = TagIdentity { id: 123, rn: 456 };
        assert_eq!(
            XorBitgetHasher.slot(tag, 9, 8192),
            XorBitgetHasher.slot(tag, 9, 8192)
        );
        assert_eq!(MixHasher.slot(tag, 9, 8192), MixHasher.slot(tag, 9, 8192));
    }

    #[test]
    fn names_are_distinct() {
        assert_ne!(XorBitgetHasher.name(), MixHasher.name());
    }

    #[test]
    fn slot_batch_matches_scalar_for_both_hashers() {
        let tags = sample_tags(1_000, 7);
        for (hasher, w) in [
            (&XorBitgetHasher as &dyn SlotHasher, 8192usize),
            (&MixHasher, 8192),
            (&MixHasher, 1000), // non-power-of-two only valid for mix64
        ] {
            let seed = 0x5EED_CAFEu32;
            let mut batched = Vec::new();
            hash_slots_batch(hasher, &tags, seed, w, &mut batched);
            let scalar: Vec<usize> =
                tags.iter().map(|&t| hasher.slot(t, seed, w)).collect();
            assert_eq!(batched, scalar, "{} w={w}", hasher.name());
        }
    }

    #[test]
    fn hash_slots_batch_clears_the_scratch_buffer() {
        let tags = sample_tags(16, 3);
        let mut out = vec![usize::MAX; 100];
        hash_slots_batch(&XorBitgetHasher, &tags, 1, 64, &mut out);
        assert_eq!(out.len(), tags.len());
        assert!(out.iter().all(|&s| s < 64));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn xor_bitget_batch_rejects_non_power_of_two_w() {
        let mut out = Vec::new();
        XorBitgetHasher.slot_batch(&sample_tags(2, 1), 3, 1000, &mut out);
    }
}
