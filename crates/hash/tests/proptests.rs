//! Property-based tests for the hashing substrate.

use proptest::prelude::*;
use rfid_hash::mix::{bucket, unit_f64};
use rfid_hash::tag_hash::TagIdentity;
use rfid_hash::*;

proptest! {
    #[test]
    fn mix64_is_deterministic_and_spreads(x in any::<u64>()) {
        prop_assert_eq!(mix64(x), mix64(x));
        // A single increment must change the output (bijectivity implies
        // inequality).
        prop_assert_ne!(mix64(x), mix64(x.wrapping_add(1)));
    }

    #[test]
    fn bucket_is_in_range(h in any::<u64>(), n in 1usize..1_000_000) {
        prop_assert!(bucket(h, n) < n);
    }

    #[test]
    fn unit_f64_is_in_unit_interval(h in any::<u64>()) {
        let u = unit_f64(h);
        prop_assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn xor_bitget_slots_in_range(
        id in any::<u64>(),
        rn in any::<u32>(),
        seed in any::<u32>(),
        log_w in 1u32..16,
    ) {
        let w = 1usize << log_w;
        let tag = TagIdentity { id, rn };
        prop_assert!(XorBitgetHasher.slot(tag, seed, w) < w);
    }

    #[test]
    fn mix_hasher_slots_in_range(
        id in any::<u64>(),
        rn in any::<u32>(),
        seed in any::<u32>(),
        w in 1usize..100_000,
    ) {
        let tag = TagIdentity { id, rn };
        prop_assert!(MixHasher.slot(tag, seed, w) < w);
    }

    #[test]
    fn geometric_level_is_in_range(
        key in any::<u64>(),
        seed in any::<u32>(),
        cap in 1u32..64,
    ) {
        let l = geometric_level(key, seed, cap);
        prop_assert!((1..=cap).contains(&l));
    }

    #[test]
    fn xorshift_never_sticks_at_zero(seed in any::<u32>()) {
        let mut rng = XorShift32::new(seed);
        for _ in 0..64 {
            prop_assert_ne!(rng.next_u32(), 0);
        }
    }

    #[test]
    fn xorshift_bits_respect_width(seed in any::<u32>(), bits in 1u32..=32) {
        let mut rng = XorShift32::new(seed);
        for _ in 0..16 {
            let v = rng.next_bits(bits) as u64;
            prop_assert!(v < (1u64 << bits));
        }
    }

    #[test]
    fn splitmix_streams_diverge(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        let mut ra = SplitMix64::new(a);
        let mut rb = SplitMix64::new(b);
        // Two distinct seeds agreeing on 4 consecutive outputs would imply
        // a catastrophic state collision.
        let same = (0..4).all(|_| ra.next_u64() == rb.next_u64());
        prop_assert!(!same);
    }

    #[test]
    fn persistence_extremes_hold_for_all_tags(
        rn in any::<u32>(),
        seed in any::<u32>(),
    ) {
        let mut s = PersistenceSampler::new(rn, seed);
        prop_assert!(!s.respond(0));
        prop_assert!(s.respond(1024));
    }

    #[test]
    fn persistence_is_monotone_in_numerator(
        rn in any::<u32>(),
        seed in any::<u32>(),
        pn in 0u32..1024,
    ) {
        // The same draw compared against a larger threshold can only flip
        // from silent to responding.
        let a = PersistenceSampler::new(rn, seed).respond(pn);
        let b = PersistenceSampler::new(rn, seed).respond(pn + 1);
        prop_assert!(!a || b, "respond({pn}) but not respond({})", pn + 1);
    }
}

proptest! {
    /// The batched slot kernel must be element-wise identical to the
    /// scalar `slot` call for both hasher families, including widths
    /// below one word and non-powers of two (MixHasher).
    #[test]
    fn slot_batch_matches_scalar_slots(
        raw_tags in prop::collection::vec((any::<u64>(), any::<u32>()), 0..300),
        seed in any::<u32>(),
        log2_w in 0u32..20,
        odd_w in 1usize..100_000,
    ) {
        let tags: Vec<TagIdentity> =
            raw_tags.iter().map(|&(id, rn)| TagIdentity { id, rn }).collect();
        let mut out = Vec::new();
        for (hasher, w) in [
            (&XorBitgetHasher as &dyn SlotHasher, 1usize << log2_w),
            (&MixHasher as &dyn SlotHasher, odd_w),
        ] {
            hash_slots_batch(hasher, &tags, seed, w, &mut out);
            prop_assert_eq!(out.len(), tags.len());
            for (tag, &got) in tags.iter().zip(out.iter()) {
                prop_assert_eq!(got, hasher.slot(*tag, seed, w));
                prop_assert!(got < w);
            }
        }
    }

    /// The chunked SplitMix64 word fill must reproduce the sequential
    /// stream exactly and leave the generator in the same state.
    #[test]
    fn fill_u64_matches_sequential_draws(
        state in any::<u64>(),
        len in 0usize..200,
        tail in 1usize..8,
    ) {
        let mut chunked = SplitMix64::new(state);
        let mut sequential = SplitMix64::new(state);
        let mut words = vec![0u64; len];
        chunked.fill_u64(&mut words);
        for (i, &w) in words.iter().enumerate() {
            prop_assert_eq!(w, sequential.next_u64(), "word {} diverged", i);
        }
        // Same state afterwards: the streams stay aligned.
        for _ in 0..tail {
            prop_assert_eq!(chunked.next_u64(), sequential.next_u64());
        }
    }
}
