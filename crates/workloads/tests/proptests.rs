//! Property-based tests for the workload generators.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_workloads::{WorkloadSpec, ID_SPACE_MAX};
use std::collections::HashSet;

fn spec_strategy() -> impl Strategy<Value = WorkloadSpec> {
    prop_oneof![
        Just(WorkloadSpec::T1),
        Just(WorkloadSpec::T2),
        Just(WorkloadSpec::T3),
        Just(WorkloadSpec::Sequential),
        (1usize..500).prop_map(|block| WorkloadSpec::Clustered { block }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generators_produce_exactly_n_unique_ids_in_range(
        spec in spec_strategy(),
        n in 0usize..3_000,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pop = spec.generate(n, &mut rng);
        prop_assert_eq!(pop.cardinality(), n);
        let mut ids = HashSet::with_capacity(n);
        for tag in pop.tags() {
            prop_assert!((1..=ID_SPACE_MAX).contains(&tag.id));
            prop_assert!(ids.insert(tag.id), "duplicate id {}", tag.id);
        }
    }

    #[test]
    fn generation_is_a_pure_function_of_the_seed(
        spec in spec_strategy(),
        n in 1usize..1_000,
        seed in any::<u64>(),
    ) {
        let a = spec.generate(n, &mut StdRng::seed_from_u64(seed));
        let b = spec.generate(n, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(a.tags(), b.tags());
    }

    #[test]
    fn rn_assignment_is_not_constant(
        spec in spec_strategy(),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pop = spec.generate(64, &mut rng);
        let distinct: HashSet<u32> = pop.tags().iter().map(|t| t.rn).collect();
        // 64 draws of a u32: all-equal would indicate a broken assignment.
        prop_assert!(distinct.len() > 1);
    }
}
