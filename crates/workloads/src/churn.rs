//! Population churn: arrivals and departures between inventory epochs.
//!
//! The monitoring applications that motivate cardinality estimation
//! (stock control, shrinkage detection) watch a population that *changes*
//! between estimation rounds. [`ChurnProcess`] models that: per step,
//! every tag independently departs with `departure_rate`, and a
//! `Binomial(n, arrival_rate)`-sized batch of new tags (drawn from a
//! workload spec) arrives.

use crate::WorkloadSpec;
use rand::Rng;
use rfid_sim::{Tag, TagPopulation};
use std::collections::HashSet;

/// A per-epoch arrival/departure process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnProcess {
    /// Per-tag probability of departing in one step, in `[0, 1]`.
    pub departure_rate: f64,
    /// Expected arrivals per current tag in one step, in `[0, 1]`.
    pub arrival_rate: f64,
    /// Distribution the arriving tags' IDs are drawn from.
    pub arrivals_from: WorkloadSpec,
}

impl ChurnProcess {
    /// Validating constructor.
    pub fn new(departure_rate: f64, arrival_rate: f64, arrivals_from: WorkloadSpec) -> Self {
        assert!(
            (0.0..=1.0).contains(&departure_rate),
            "departure rate must lie in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&arrival_rate),
            "arrival rate must lie in [0, 1]"
        );
        Self {
            departure_rate,
            arrival_rate,
            arrivals_from,
        }
    }

    /// One epoch step: returns the new population and the true
    /// `(departed, arrived)` counts (ground truth for evaluating change
    /// detectors).
    pub fn step<R: Rng + ?Sized>(
        &self,
        population: &TagPopulation,
        rng: &mut R,
    ) -> (TagPopulation, usize, usize) {
        let mut survivors: Vec<Tag> = Vec::with_capacity(population.cardinality());
        let mut departed = 0usize;
        for &tag in population.tags() {
            if rng.gen::<f64>() < self.departure_rate {
                departed += 1;
            } else {
                survivors.push(tag);
            }
        }
        // Arrivals: binomial count via direct Bernoulli draws (population
        // sizes here are modest), IDs fresh w.r.t. the survivors.
        let mut arrivals = 0usize;
        for _ in 0..population.cardinality() {
            if rng.gen::<f64>() < self.arrival_rate {
                arrivals += 1;
            }
        }
        if arrivals > 0 {
            let existing: HashSet<u64> = survivors.iter().map(|t| t.id).collect();
            let mut added = 0usize;
            while added < arrivals {
                let batch = self.arrivals_from.generate(arrivals - added, rng);
                for &tag in batch.tags() {
                    if !existing.contains(&tag.id)
                        // analysis:allow(panic-path): added counts pushes onto survivors this round, so len() >= added always
                        && !survivors[survivors.len() - added..]
                            .iter()
                            .any(|t| t.id == tag.id)
                    {
                        survivors.push(tag);
                        added += 1;
                    }
                }
            }
        }
        (TagPopulation::new(survivors), departed, arrivals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn base_population(n: usize, seed: u64) -> TagPopulation {
        let mut rng = StdRng::seed_from_u64(seed);
        WorkloadSpec::T1.generate(n, &mut rng)
    }

    #[test]
    fn rates_are_respected_in_expectation() {
        let pop = base_population(50_000, 1);
        let churn = ChurnProcess::new(0.1, 0.05, WorkloadSpec::T1);
        let mut rng = StdRng::seed_from_u64(2);
        let (next, departed, arrived) = churn.step(&pop, &mut rng);
        let dep_rate = departed as f64 / 50_000.0;
        let arr_rate = arrived as f64 / 50_000.0;
        assert!((dep_rate - 0.1).abs() < 0.01, "departures {dep_rate}");
        assert!((arr_rate - 0.05).abs() < 0.01, "arrivals {arr_rate}");
        assert_eq!(next.cardinality(), 50_000 - departed + arrived);
    }

    #[test]
    fn zero_rates_are_the_identity() {
        let pop = base_population(1_000, 3);
        let churn = ChurnProcess::new(0.0, 0.0, WorkloadSpec::T1);
        let mut rng = StdRng::seed_from_u64(4);
        let (next, departed, arrived) = churn.step(&pop, &mut rng);
        assert_eq!(departed, 0);
        assert_eq!(arrived, 0);
        assert_eq!(next.tags(), pop.tags());
    }

    #[test]
    fn full_departure_empties_the_population() {
        let pop = base_population(500, 5);
        let churn = ChurnProcess::new(1.0, 0.0, WorkloadSpec::T1);
        let mut rng = StdRng::seed_from_u64(6);
        let (next, departed, _) = churn.step(&pop, &mut rng);
        assert_eq!(departed, 500);
        assert_eq!(next.cardinality(), 0);
    }

    #[test]
    fn arrivals_never_collide_with_survivors() {
        // TagPopulation::new would panic on duplicates, so surviving the
        // constructor is the assertion; run several steps to be sure.
        let mut pop = base_population(2_000, 7);
        let churn = ChurnProcess::new(0.2, 0.2, WorkloadSpec::T1);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..5 {
            let (next, _, _) = churn.step(&pop, &mut rng);
            pop = next;
        }
        assert!(pop.cardinality() > 500);
    }

    #[test]
    #[should_panic(expected = "departure rate")]
    fn invalid_rate_rejected() {
        ChurnProcess::new(1.5, 0.0, WorkloadSpec::T1);
    }
}
