//! Tag-ID population generators for the BFCE evaluation.
//!
//! Section V-A of the paper evaluates on three tag-ID sets (its Figure 6):
//!
//! * **T1** — IDs uniform between 1 and 10^15;
//! * **T2** — an *approximate* normal distribution (we realize it as an
//!   Irwin–Hall sum of four uniforms, which is the standard cheap
//!   approximation and matches the paper's "approximate normal" histogram
//!   shape);
//! * **T3** — a true normal distribution over the same ID space
//!   (Box–Muller, clamped to `[1, 10^15]`).
//!
//! Two extra generators model common EPC deployments for the extension
//! studies: [`WorkloadSpec::Sequential`] (one contiguous serial range) and
//! [`WorkloadSpec::Clustered`] (pallets of consecutive serials at random
//! offsets). Every generator guarantees unique IDs and assigns each tag the
//! pre-stored 32-bit `RN` the BFCE hash scheme requires.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;

pub use churn::ChurnProcess;

use rand::Rng;
use rfid_sim::{Tag, TagPopulation};
use std::collections::HashSet;

/// Upper end of the paper's tag-ID space: 10^15.
pub const ID_SPACE_MAX: u64 = 1_000_000_000_000_000;

/// A named tag-ID distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadSpec {
    /// Uniform IDs in `[1, 10^15]` (the paper's T1).
    T1,
    /// Approximately normal IDs — Irwin–Hall sum of 4 uniforms (T2).
    T2,
    /// Normal IDs, mean `5*10^14`, sigma `1.2*10^14`, clamped (T3).
    T3,
    /// One contiguous run of serial numbers starting at a random offset.
    Sequential,
    /// Pallets: blocks of `block` consecutive serials at random offsets.
    Clustered {
        /// Number of consecutive IDs per pallet/block.
        block: usize,
    },
}

impl WorkloadSpec {
    /// The three distributions used in the paper's figures.
    pub const PAPER_SET: [WorkloadSpec; 3] =
        [WorkloadSpec::T1, WorkloadSpec::T2, WorkloadSpec::T3];

    /// Figure-label name.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadSpec::T1 => "T1",
            WorkloadSpec::T2 => "T2",
            WorkloadSpec::T3 => "T3",
            WorkloadSpec::Sequential => "sequential",
            WorkloadSpec::Clustered { .. } => "clustered",
        }
    }

    /// Generate a population of exactly `n` tags with unique IDs.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> TagPopulation {
        let ids = match self {
            WorkloadSpec::T1 => draw_unique(n, rng, uniform_id),
            WorkloadSpec::T2 => draw_unique(n, rng, irwin_hall_id),
            WorkloadSpec::T3 => draw_unique(n, rng, normal_id),
            WorkloadSpec::Sequential => sequential_ids(n, rng),
            WorkloadSpec::Clustered { block } => clustered_ids(n, *block, rng),
        };
        let tags = ids
            .into_iter()
            .map(|id| Tag {
                id,
                rn: rng.gen::<u32>(),
            })
            .collect();
        TagPopulation::new(tags)
    }
}

/// Rejection-sample `n` unique IDs from `sample`.
fn draw_unique<R: Rng + ?Sized>(
    n: usize,
    rng: &mut R,
    sample: fn(&mut R) -> u64,
) -> Vec<u64> {
    let mut seen = HashSet::with_capacity(n * 2);
    let mut ids = Vec::with_capacity(n);
    // The ID space (10^15) dwarfs any realistic n, so rejection terminates
    // almost immediately; the attempt cap only guards against misuse.
    let mut attempts: u64 = 0;
    let max_attempts = 20 * n as u64 + 1000;
    while ids.len() < n {
        attempts += 1;
        // analysis:allow(panic-path): the cap converts a pathological-distribution hang into a loud, named failure
        assert!(
            attempts <= max_attempts,
            "could not draw {n} unique IDs (space too small for distribution?)"
        );
        let id = sample(rng);
        if seen.insert(id) {
            ids.push(id);
        }
    }
    ids
}

/// T1: uniform over `[1, 10^15]`.
fn uniform_id<R: Rng + ?Sized>(rng: &mut R) -> u64 {
    rng.gen_range(1..=ID_SPACE_MAX)
}

/// T2: Irwin–Hall sum of 4 uniforms over the ID space, rescaled. The sum of
/// 4 U(0,1) has mean 2, variance 1/3; we map it to `[1, 10^15]` linearly,
/// giving a bell shape (an *approximate* normal) centered at 5*10^14.
fn irwin_hall_id<R: Rng + ?Sized>(rng: &mut R) -> u64 {
    let s: f64 = (0..4).map(|_| rng.gen::<f64>()).sum();
    let unit = s / 4.0; // mean 0.5, on [0, 1]
    let id = (unit * ID_SPACE_MAX as f64).round() as u64;
    id.clamp(1, ID_SPACE_MAX)
}

/// T3: Box–Muller normal, mean 5*10^14, sigma 1.2*10^14, clamped.
fn normal_id<R: Rng + ?Sized>(rng: &mut R) -> u64 {
    const MEAN: f64 = 5.0e14;
    const SIGMA: f64 = 1.2e14;
    // Box–Muller: u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let id = (MEAN + SIGMA * z).round();
    (id.max(1.0).min(ID_SPACE_MAX as f64)) as u64
}

/// A single contiguous serial range at a random offset.
fn sequential_ids<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<u64> {
    if n == 0 {
        return Vec::new();
    }
    let start = rng.gen_range(1..=ID_SPACE_MAX - n as u64);
    (start..start + n as u64).collect()
}

/// Pallets of `block` consecutive serials at distinct random offsets.
fn clustered_ids<R: Rng + ?Sized>(n: usize, block: usize, rng: &mut R) -> Vec<u64> {
    assert!(block >= 1, "block size must be at least 1");
    let mut ids = Vec::with_capacity(n);
    let mut seen: HashSet<u64> = HashSet::with_capacity(n * 2);
    while ids.len() < n {
        let want = (n - ids.len()).min(block);
        let start = rng.gen_range(1..=ID_SPACE_MAX - block as u64);
        // Skip overlapping pallets entirely (cheap and keeps blocks intact).
        if (start..start + want as u64).any(|id| seen.contains(&id)) {
            continue;
        }
        for id in start..start + want as u64 {
            seen.insert(id);
            ids.push(id);
        }
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn all_specs_generate_exactly_n_unique_in_range() {
        let specs = [
            WorkloadSpec::T1,
            WorkloadSpec::T2,
            WorkloadSpec::T3,
            WorkloadSpec::Sequential,
            WorkloadSpec::Clustered { block: 100 },
        ];
        for spec in specs {
            let pop = spec.generate(5_000, &mut rng(1));
            assert_eq!(pop.cardinality(), 5_000, "{}", spec.name());
            for tag in pop.tags() {
                assert!(
                    (1..=ID_SPACE_MAX).contains(&tag.id),
                    "{}: id {} out of range",
                    spec.name(),
                    tag.id
                );
            }
            // TagPopulation::new already asserts uniqueness; double-check.
            let ids: HashSet<u64> = pop.tags().iter().map(|t| t.id).collect();
            assert_eq!(ids.len(), 5_000);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for spec in WorkloadSpec::PAPER_SET {
            let a = spec.generate(1_000, &mut rng(7));
            let b = spec.generate(1_000, &mut rng(7));
            assert_eq!(a.tags(), b.tags(), "{}", spec.name());
            let c = spec.generate(1_000, &mut rng(8));
            assert_ne!(a.tags(), c.tags(), "{}", spec.name());
        }
    }

    #[test]
    fn t1_is_uniform_over_deciles() {
        let pop = WorkloadSpec::T1.generate(100_000, &mut rng(2));
        let mut counts = [0u64; 10];
        for tag in pop.tags() {
            let decile = ((tag.id - 1) / (ID_SPACE_MAX / 10)).min(9) as usize;
            counts[decile] += 1;
        }
        assert!(
            rfid_stats::uniformity_test(&counts, 0.001),
            "T1 deciles {counts:?}"
        );
    }

    #[test]
    fn t2_and_t3_concentrate_around_the_center() {
        for spec in [WorkloadSpec::T2, WorkloadSpec::T3] {
            let pop = spec.generate(50_000, &mut rng(3));
            let mean: f64 = pop.tags().iter().map(|t| t.id as f64).sum::<f64>()
                / pop.cardinality() as f64;
            assert!(
                (mean - 5.0e14).abs() < 0.02e15,
                "{} mean = {mean:e}",
                spec.name()
            );
            // The central half of the ID space should hold far more than the
            // uniform 50%.
            let central = pop
                .tags()
                .iter()
                .filter(|t| t.id > 25e13 as u64 && t.id < 75e13 as u64)
                .count() as f64
                / pop.cardinality() as f64;
            assert!(
                central > 0.8,
                "{} central mass = {central}",
                spec.name()
            );
        }
    }

    #[test]
    fn t2_is_broader_than_t3() {
        // Irwin–Hall(4) rescaled has sigma ~ 0.144 * 1e15 = 1.44e14 vs
        // T3's 1.2e14 — both bells, different spreads.
        let std_of = |spec: WorkloadSpec| {
            let pop = spec.generate(50_000, &mut rng(4));
            let xs: Vec<f64> = pop.tags().iter().map(|t| t.id as f64).collect();
            rfid_stats::sample_std(&xs)
        };
        let s2 = std_of(WorkloadSpec::T2);
        let s3 = std_of(WorkloadSpec::T3);
        assert!(s2 > s3, "s2 = {s2:e}, s3 = {s3:e}");
        assert!((s2 - 1.44e14).abs() < 0.1e14, "s2 = {s2:e}");
        assert!((s3 - 1.2e14).abs() < 0.1e14, "s3 = {s3:e}");
    }

    #[test]
    fn sequential_ids_are_contiguous() {
        let pop = WorkloadSpec::Sequential.generate(1_000, &mut rng(5));
        let mut ids: Vec<u64> = pop.tags().iter().map(|t| t.id).collect();
        ids.sort_unstable();
        for w in ids.windows(2) {
            assert_eq!(w[1], w[0] + 1);
        }
    }

    #[test]
    fn clustered_ids_form_blocks() {
        let pop = WorkloadSpec::Clustered { block: 50 }.generate(1_000, &mut rng(6));
        let mut ids: Vec<u64> = pop.tags().iter().map(|t| t.id).collect();
        ids.sort_unstable();
        // Count adjacency: in 20 blocks of 50, 980 of 999 gaps are 1.
        let adjacent = ids.windows(2).filter(|w| w[1] == w[0] + 1).count();
        assert!(adjacent >= 980, "only {adjacent} adjacent pairs");
    }

    #[test]
    fn zero_tags_is_fine() {
        for spec in WorkloadSpec::PAPER_SET {
            assert_eq!(spec.generate(0, &mut rng(9)).cardinality(), 0);
        }
        assert_eq!(
            WorkloadSpec::Sequential.generate(0, &mut rng(9)).cardinality(),
            0
        );
    }

    #[test]
    fn names_match_the_paper() {
        assert_eq!(WorkloadSpec::T1.name(), "T1");
        assert_eq!(WorkloadSpec::T2.name(), "T2");
        assert_eq!(WorkloadSpec::T3.name(), "T3");
    }

    #[test]
    fn paper_set_contains_the_three_figures_sets() {
        assert_eq!(WorkloadSpec::PAPER_SET.len(), 3);
    }
}
