//! Figure 8 — the cumulative distribution of BFCE's estimates over 100
//! independent rounds (`n = 500 000`, `(0.05, 0.05)`), per tag-ID
//! distribution. The paper reads off that the estimates are "tightly
//! concentrated around the actual cardinality" for all three sets.

use crate::engine::TrialRunner;
use crate::output::{fnum, Table};
use crate::runner::Scale;
use rfid_bfce::Bfce;
use rfid_hash::stream_seed;
use rfid_sim::Accuracy;
use rfid_stats::Ecdf;
use rfid_workloads::WorkloadSpec;

/// Quantiles reported per distribution.
const QUANTILES: [f64; 7] = [0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95];

/// Run the experiment.
pub fn run(scale: Scale, seed: u64) -> Table {
    let n = scale.pick(100_000usize, 500_000);
    let rounds = scale.pick(20u32, 100);
    let mut table = Table::new(
        format!("Figure 8: CDF of n_hat over {rounds} rounds (n={n}, eps=delta=0.05)"),
        &["quantile", "T1", "T2", "T3"],
    );
    let bfce = Bfce::paper();
    let acc = Accuracy::paper_default();
    let mut ecdfs = Vec::new();
    for (wi, spec) in WorkloadSpec::PAPER_SET.iter().enumerate() {
        // One trial-parallel run per distribution; each gets a disjoint
        // stream of per-trial seeds rooted at stream_seed(seed, wi).
        let set = TrialRunner::new(rounds, stream_seed(seed, wi as u64))
            .run(&bfce, *spec, n, acc);
        ecdfs.push(Ecdf::new(set.estimates()));
    }
    for &q in &QUANTILES {
        table.push_row(vec![
            fnum(q),
            fnum(ecdfs[0].quantile(q)),
            fnum(ecdfs[1].quantile(q)),
            fnum(ecdfs[2].quantile(q)),
        ]);
    }
    for (wi, e) in ecdfs.iter().enumerate() {
        let inside = e
            .sorted_values()
            .iter()
            .filter(|&&v| (v - n as f64).abs() <= 0.05 * n as f64)
            .count() as f64
            / e.len() as f64;
        table.note(format!(
            "{}: fraction of rounds within +/-5% of n: {inside:.2}",
            WorkloadSpec::PAPER_SET[wi].name()
        ));
    }
    // The paper's visual claim, tested: the three estimate distributions
    // coincide (two-sample KS at 1%).
    for (a, b) in [(0usize, 1usize), (0, 2), (1, 2)] {
        let same = rfid_stats::ks_same_distribution(
            ecdfs[a].sorted_values(),
            ecdfs[b].sorted_values(),
            0.01,
        );
        table.note(format!(
            "KS({} vs {}): distributions indistinguishable at 1%: {same}",
            WorkloadSpec::PAPER_SET[a].name(),
            WorkloadSpec::PAPER_SET[b].name()
        ));
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_concentrate_around_truth() {
        let t = run(Scale::Quick, 5);
        // Median row: all three distributions within 5% of 100k.
        let median = t.rows.iter().find(|r| r[0] == "0.5000").unwrap();
        for cell in &median[1..] {
            let v: f64 = cell.parse().unwrap();
            assert!(
                (v - 100_000.0).abs() < 5_000.0,
                "median {v} far from truth"
            );
        }
        // Coverage notes: at least 90% within 5%.
        for note in t.notes.iter().filter(|n| n.contains("fraction")) {
            let frac: f64 = note.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(frac >= 0.9, "{note}");
        }
        // KS notes: the three distributions must be indistinguishable.
        let ks_notes: Vec<&String> =
            t.notes.iter().filter(|n| n.contains("KS(")).collect();
        assert_eq!(ks_notes.len(), 3);
        for note in ks_notes {
            assert!(note.ends_with("true"), "{note}");
        }
    }

    #[test]
    fn quantiles_are_nondecreasing() {
        let t = run(Scale::Quick, 6);
        for col in 1..=3 {
            let vals: Vec<f64> = t
                .rows
                .iter()
                .map(|r| r[col].parse::<f64>().unwrap())
                .collect();
            for w in vals.windows(2) {
                assert!(w[1] >= w[0], "quantiles decreasing: {vals:?}");
            }
        }
    }
}
