//! Robustness ablation: estimator accuracy under deterministic fault
//! injection.
//!
//! The paper evaluates every protocol on a perfect, always-up channel.
//! This sweep turns each fault class the simulator models — frame aborts
//! with bounded retry, slot-burst corruption, desynchronized reader
//! offsets, mid-frame reader dropout, and the three noisy channels — up
//! from intensity λ = 0 (clean) towards 1, and reports how each
//! estimator's error and degradation accounting respond. Fault schedules
//! come from [`FaultPlan`] seed streams, so every cell is bitwise
//! reproducible at any `--jobs` setting.

use crate::engine::TrialRunner;
use crate::output::{fnum, Table};
use crate::runner::Scale;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_baselines::all_baselines;
use rfid_bfce::Bfce;
use rfid_hash::stream_seed;
use rfid_sim::{
    Accuracy, BitErrorChannel, CaptureChannel, CardinalityEstimator, FaultPlan, FaultSpec,
    ImperfectHashChannel, MultiReaderDeployment, RfidSystem, Tag, TagPopulation,
};
use rfid_workloads::WorkloadSpec;

/// One class of injected fault, tuned by an intensity λ ∈ [0, 1].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Frame aborts with bounded retry (λ scales the abort probability).
    Abort,
    /// Slot-burst corruption (λ is the per-frame burst probability).
    Burst,
    /// Desynchronized reader offsets (λ is the per-frame probability).
    Desync,
    /// Mid-frame reader dropout (λ scales how many readers die).
    Dropout,
    /// Capture effect: collisions misread as singletons (λ is the
    /// capture probability).
    Capture,
    /// Imperfect tag-side hashing: missed responses and ghost replies.
    ImperfectHash,
    /// Channel bit errors (λ scales the BER).
    BitError,
}

impl FaultClass {
    /// Every fault class, in sweep order.
    pub fn all() -> &'static [FaultClass] {
        &[
            FaultClass::Abort,
            FaultClass::Burst,
            FaultClass::Desync,
            FaultClass::Dropout,
            FaultClass::Capture,
            FaultClass::ImperfectHash,
            FaultClass::BitError,
        ]
    }

    /// Stable name used in tables and on the CLI.
    pub fn name(&self) -> &'static str {
        match self {
            FaultClass::Abort => "abort",
            FaultClass::Burst => "burst",
            FaultClass::Desync => "desync",
            FaultClass::Dropout => "dropout",
            FaultClass::Capture => "capture",
            FaultClass::ImperfectHash => "imperfect-hash",
            FaultClass::BitError => "bit-error",
        }
    }

    /// Parse a CLI name; `None` for an unknown class.
    pub fn parse(name: &str) -> Option<FaultClass> {
        FaultClass::all().iter().copied().find(|c| c.name() == name)
    }

    /// The [`FaultSpec`] this class injects at intensity λ (identity for
    /// channel-level classes, which degrade sensing rather than frames).
    pub fn spec(&self, lambda: f64) -> FaultSpec {
        match self {
            FaultClass::Abort => FaultSpec {
                p_frame_abort: 0.8 * lambda,
                max_retries: 3,
                ..FaultSpec::none()
            },
            FaultClass::Burst => FaultSpec {
                p_slot_burst: lambda,
                burst_len: 64,
                ..FaultSpec::none()
            },
            FaultClass::Desync => FaultSpec {
                p_desync: lambda,
                max_offset_frac: 0.25,
                ..FaultSpec::none()
            },
            _ => FaultSpec::none(),
        }
    }

    /// Build the faulted system this class describes, deterministically
    /// from `seed`: population from stream 0 (matching
    /// [`crate::runner::build_system`]), fault schedule from stream 2.
    pub fn build_system(&self, n: usize, lambda: f64, seed: u64) -> RfidSystem {
        let mut rng = StdRng::seed_from_u64(stream_seed(seed, 0));
        let population = WorkloadSpec::T1.generate(n, &mut rng);
        let fault_seed = stream_seed(seed, 2);
        let mut system = match self {
            FaultClass::Capture => RfidSystem::with_channel(
                population,
                Box::new(CaptureChannel::new(lambda.clamp(0.0, 1.0))),
            ),
            FaultClass::ImperfectHash => RfidSystem::with_channel(
                population,
                Box::new(ImperfectHashChannel::new(0.3 * lambda, 0.05 * lambda)),
            ),
            FaultClass::BitError => RfidSystem::with_channel(
                population,
                Box::new(BitErrorChannel::new(0.2 * lambda)),
            ),
            FaultClass::Dropout => {
                let deployment = four_reader_deployment(&population);
                let failed: Vec<usize> = (0..dropped_readers(lambda)).collect();
                let dropout = deployment
                    .dropout(&failed, 1, 0.5)
                    // analysis:allow(unwrap): the deployment is built above from slices of one population, so RN conflicts and bad indices are impossible
                    .expect("constructed deployment is consistent");
                let mut system = RfidSystem::new(population);
                system.inject_faults(
                    FaultPlan::new(FaultSpec::none(), fault_seed).with_dropout(dropout),
                );
                return system;
            }
            _ => RfidSystem::new(population),
        };
        system.inject_faults(FaultPlan::new(self.spec(lambda), fault_seed));
        system
    }
}

/// How many of the four readers die at intensity λ: none when clean, at
/// most three so one reader always survives.
fn dropped_readers(lambda: f64) -> usize {
    ((2.0 * lambda).ceil() as usize).min(3)
}

/// Split a population across four readers with pairwise overlap, so
/// dropout removes coverage without partitioning the union.
fn four_reader_deployment(population: &TagPopulation) -> MultiReaderDeployment {
    let tags = population.tags();
    let n = tags.len();
    let quarter = n.div_ceil(4);
    let mut deployment = MultiReaderDeployment::new();
    for reader in 0..4 {
        let start = reader * quarter;
        // Half-quarter overlap into the next zone keeps shared tags alive
        // when a single reader dies.
        let end = ((reader + 1) * quarter + quarter / 2).min(n);
        let coverage: Vec<Tag> = tags[start.min(n)..end].to_vec();
        deployment.add_reader(coverage);
    }
    deployment
}

/// The estimators a robustness sweep covers at each scale: the full
/// shoot-out family at paper scale, a frame-mode-diverse subset (bit-slot,
/// Aloha, counting, uncharged) for smoke runs.
fn estimators(scale: Scale) -> Vec<Box<dyn CardinalityEstimator>> {
    let mut all: Vec<Box<dyn CardinalityEstimator>> = vec![Box::new(Bfce::paper())];
    all.extend(all_baselines());
    match scale {
        Scale::Paper => all,
        Scale::Quick => {
            let keep = ["BFCE", "ZOE", "UPE", "FNEB"];
            all.retain(|e| keep.contains(&e.name()));
            all
        }
    }
}

/// Fault intensity × estimator sweep. Every `(class, λ, estimator)` cell
/// runs `rounds` trials through [`TrialRunner`], so results are identical
/// at any worker count.
pub fn run_robustness(scale: Scale, seed: u64) -> Table {
    let n = scale.pick(8_000usize, 60_000);
    let rounds = scale.pick(3u32, 8);
    let lambdas: &[f64] = match scale {
        Scale::Quick => &[0.25, 0.75],
        Scale::Paper => &[0.1, 0.3, 0.5, 0.7, 0.9],
    };
    let estimators = estimators(scale);
    let accuracy = Accuracy::paper_default();
    let mut table = Table::new(
        format!("Robustness: fault intensity x estimator (n={n}, T1)"),
        &[
            "class",
            "lambda",
            "estimator",
            "mean_err",
            "max_err",
            "degraded",
            "eps_eff",
            "retries",
        ],
    );
    for (class_idx, class) in FaultClass::all().iter().enumerate() {
        for (lambda_idx, &lambda) in lambdas.iter().enumerate() {
            for (est_idx, estimator) in estimators.iter().enumerate() {
                let cell = (class_idx as u64) << 16 | (lambda_idx as u64) << 8 | est_idx as u64;
                let outcomes = TrialRunner::new(rounds, stream_seed(seed, cell)).map(|ctx| {
                    let mut system = class.build_system(n, lambda, ctx.seed);
                    system.set_noise_seed(ctx.seed);
                    system.set_frame_min_chunk(ctx.frame_min_chunk);
                    let mut rng = ctx.rng();
                    let report = estimator.estimate(&mut system, accuracy, &mut rng);
                    let quality = system.quality();
                    (
                        report.relative_error(n),
                        quality.degraded(),
                        quality.widened(accuracy).epsilon,
                        quality.retries,
                    )
                });
                let trials = outcomes.len() as f64;
                let mean_err = outcomes.iter().map(|o| o.0).sum::<f64>() / trials;
                let max_err = outcomes.iter().map(|o| o.0).fold(0.0, f64::max);
                let degraded = outcomes.iter().filter(|o| o.1).count() as f64 / trials;
                let eps_eff = outcomes.iter().map(|o| o.2).sum::<f64>() / trials;
                let retries = outcomes.iter().map(|o| o.3 as f64).sum::<f64>() / trials;
                table.push_row(vec![
                    class.name().to_string(),
                    fnum(lambda),
                    estimator.name().to_string(),
                    fnum(mean_err),
                    fnum(max_err),
                    fnum(degraded),
                    fnum(eps_eff),
                    fnum(retries),
                ]);
            }
        }
    }
    table.note(
        "beyond the paper: degradation-aware estimation — degraded cells report the \
         widened effective epsilon, clean cells must match fault-free runs bitwise",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_class_names_round_trip() {
        for &class in FaultClass::all() {
            assert_eq!(FaultClass::parse(class.name()), Some(class));
        }
        assert_eq!(FaultClass::parse("gremlins"), None);
    }

    #[test]
    fn dropout_always_leaves_a_survivor() {
        assert_eq!(dropped_readers(0.0), 0);
        assert_eq!(dropped_readers(0.4), 1);
        assert_eq!(dropped_readers(0.9), 2);
        assert_eq!(dropped_readers(1.0), 2);
        assert!(dropped_readers(10.0) <= 3);
    }

    #[test]
    fn built_systems_expose_the_requested_fault() {
        let system = FaultClass::Abort.build_system(500, 0.5, 9);
        let plan = system.fault_plan().expect("plan armed");
        assert!(plan.spec().p_frame_abort > 0.0);
        let system = FaultClass::Dropout.build_system(500, 0.9, 9);
        let plan = system.fault_plan().expect("plan armed");
        assert!(plan.dropout().is_some());
        let system = FaultClass::BitError.build_system(500, 0.5, 9);
        assert!(system.quality().noisy_channel);
    }

    #[test]
    fn quick_sweep_produces_full_grid() {
        let table = run_robustness(Scale::Quick, 13);
        // 7 classes x 2 intensities x 4 estimators.
        assert_eq!(table.rows.len(), 7 * 2 * 4);
    }

    #[test]
    fn sweep_is_reproducible() {
        let a = run_robustness(Scale::Quick, 21);
        let b = run_robustness(Scale::Quick, 21);
        assert_eq!(a.rows, b.rows);
    }
}
