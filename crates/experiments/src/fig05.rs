//! Figure 5 — the monotonicity of `f1` (decreasing) and `f2` (increasing)
//! as functions of the cardinality `n`, for a small persistence
//! probability (`p = 3/1024`, `w = 8192`, `k = 3`, `epsilon = 0.05`) —
//! the property Theorem 4 rests on.

use crate::output::{fnum, Table};
use crate::runner::Scale;
use rfid_bfce::theory::{f1, f2};

/// Run the experiment (analytic).
pub fn run(scale: Scale, _seed: u64) -> Table {
    let (w, k, eps) = (8192usize, 3usize, 0.05);
    let p = 3.0 / 1024.0;
    let step = scale.pick(100_000usize, 25_000);
    let max_n = 1_000_000usize;
    let mut table = Table::new(
        "Figure 5: f1/f2 vs n (w=8192, k=3, eps=0.05, p=3/1024)",
        &["n", "f1", "f2"],
    );
    let mut prev: Option<(f64, f64)> = None;
    let mut monotone = true;
    let mut n = step;
    while n <= max_n {
        let a = f1(n as f64, w, k, p, eps);
        let b = f2(n as f64, w, k, p, eps);
        if let Some((pa, pb)) = prev {
            monotone &= a < pa && b > pb;
        }
        prev = Some((a, b));
        table.push_row(vec![n.to_string(), fnum(a), fnum(b)]);
        n += step;
    }
    table.note(format!(
        "f1 strictly decreasing and f2 strictly increasing over the sweep: {monotone}"
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonicity_holds() {
        let t = run(Scale::Paper, 0);
        assert!(t.notes[0].ends_with("true"), "{}", t.notes[0]);
    }

    #[test]
    fn f1_negative_f2_positive() {
        let t = run(Scale::Quick, 0);
        for row in &t.rows {
            let a: f64 = row[1].parse().unwrap();
            let b: f64 = row[2].parse().unwrap();
            assert!(a <= 0.0 && b >= 0.0, "{row:?}");
        }
    }
}
