//! Regenerate the committed golden-figure CSVs under `tests/golden/`.
//!
//! Run from the workspace root after any intentional change to a figure
//! pipeline, then commit the updated files:
//!
//! ```text
//! cargo run -p rfid-experiments --bin golden
//! ```

use rfid_experiments::golden;
use std::path::Path;

fn main() {
    let dir = Path::new("tests/golden");
    std::fs::create_dir_all(dir).expect("failed to create tests/golden");
    for (stem, table) in golden::artifacts() {
        let path = dir.join(format!("{stem}.csv"));
        std::fs::write(&path, golden::render(&table)).expect("failed to write golden CSV");
        println!("wrote {}", path.display());
    }
}
