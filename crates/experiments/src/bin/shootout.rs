//! The full related-work shootout: all ten estimators side by side.
use rfid_experiments::{ablations, output::emit, Scale};

fn main() {
    let scale = Scale::from_args();
    emit(&ablations::run_shootout(scale, 42), "shootout");
}
