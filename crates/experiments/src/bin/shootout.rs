//! The full related-work shootout: all ten estimators side by side.
use rfid_experiments::{ablations, output::emit, configure};

fn main() {
    let scale = configure(std::env::args().skip(1)).scale;
    emit(&ablations::run_shootout(scale, 42), "shootout");
}
