//! Robustness ablation: fault intensity x estimator sweep.
use rfid_experiments::{configure, output::emit, robustness};

fn main() {
    let scale = configure(std::env::args().skip(1)).scale;
    emit(&robustness::run_robustness(scale, 42), "robustness");
}
