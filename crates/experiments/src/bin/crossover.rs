//! Extension: exact Q-inventory vs BFCE estimation across cardinalities.
use rfid_experiments::{ablations, output::emit, configure};

fn main() {
    let scale = configure(std::env::args().skip(1)).scale;
    emit(&ablations::run_crossover(scale, 42), "crossover");
}
