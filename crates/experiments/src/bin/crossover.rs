//! Extension: exact Q-inventory vs BFCE estimation across cardinalities.
use rfid_experiments::{ablations, output::emit, Scale};

fn main() {
    let scale = Scale::from_args();
    emit(&ablations::run_crossover(scale, 42), "crossover");
}
