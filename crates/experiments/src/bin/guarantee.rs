//! Statistical validation of the (epsilon, delta) guarantee.
use rfid_experiments::{guarantee, output::emit, configure};

fn main() {
    let scale = configure(std::env::args().skip(1)).scale;
    emit(&guarantee::run(scale, 42), "guarantee");
}
