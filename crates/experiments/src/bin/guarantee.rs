//! Statistical validation of the (epsilon, delta) guarantee.
use rfid_experiments::{guarantee, output::emit, Scale};

fn main() {
    let scale = Scale::from_args();
    emit(&guarantee::run(scale, 42), "guarantee");
}
