//! Regenerate Figure 8 (CDF of 100 estimation rounds).
use rfid_experiments::{fig08, output::emit, Scale};

fn main() {
    let scale = Scale::from_args();
    emit(&fig08::run(scale, 42), "fig08_cdf");
}
