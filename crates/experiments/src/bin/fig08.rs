//! Regenerate Figure 8 (CDF of 100 estimation rounds).
use rfid_experiments::{fig08, output::emit, configure};

fn main() {
    let scale = configure(std::env::args().skip(1)).scale;
    emit(&fig08::run(scale, 42), "fig08_cdf");
}
