//! Regenerate Figure 6 (the T1/T2/T3 tag-ID distributions).
use rfid_experiments::{fig06, output::emit, configure};

fn main() {
    let scale = configure(std::env::args().skip(1)).scale;
    emit(&fig06::run(scale, 42), "fig06_workloads");
}
