//! Run every experiment in sequence (quick grids by default, `--paper`
//! for the full evaluation) — the one-command reproduction.
use rfid_experiments::fig09::Sweep;
use rfid_experiments::{
    ablations, fig03, fig04, fig05, fig06, fig07, fig08, fig09, fig10,
    guarantee, output::emit, plots, summary, tracking, configure,
};

fn main() {
    let scale = configure(std::env::args().skip(1)).scale;
    emit(&summary::run(scale, 42), "summary_headline_claims");
    emit(&fig03::run(scale, 42), "fig03_linearity");
    emit(&fig04::run(scale, 42), "fig04_gamma");
    emit(&fig05::run(scale, 42), "fig05_monotonicity");
    emit(&fig06::run(scale, 42), "fig06_workloads");
    emit(&fig07::run_vs_n(scale, 42), "fig07a_accuracy_vs_n");
    emit(&fig07::run_vs_epsilon(scale, 42), "fig07b_accuracy_vs_epsilon");
    emit(&fig07::run_vs_delta(scale, 42), "fig07c_accuracy_vs_delta");
    emit(&fig08::run(scale, 42), "fig08_cdf");
    for (sweep, acc_name, time_name) in [
        (Sweep::N, "fig09a_accuracy_vs_n", "fig10a_time_vs_n"),
        (Sweep::Epsilon, "fig09b_accuracy_vs_epsilon", "fig10b_time_vs_epsilon"),
        (Sweep::Delta, "fig09c_accuracy_vs_delta", "fig10c_time_vs_delta"),
    ] {
        emit(&fig09::run(sweep, scale, 42), acc_name);
        emit(&fig10::run(sweep, scale, 42), time_name);
    }
    emit(&guarantee::run(scale, 42), "guarantee");
    emit(&ablations::run_k_sweep(scale, 42), "ablation_k");
    emit(&ablations::run_w_sweep(scale, 42), "ablation_w");
    emit(&ablations::run_c_sweep(scale, 42), "ablation_c");
    emit(&ablations::run_hash_comparison(scale, 42), "ablation_hash");
    emit(&ablations::run_channel_sweep(scale, 42), "ablation_channel");
    emit(&ablations::run_probe_strategy(scale, 42), "ablation_probe");
    emit(&ablations::run_link_sweep(scale, 42), "ablation_link");
    emit(&ablations::run_energy(scale, 42), "ablation_energy");
    emit(&ablations::run_tag_ops(scale, 42), "tag_ops");
    emit(&ablations::run_crossover(scale, 42), "crossover");
    emit(&ablations::run_shootout(scale, 42), "shootout");
    emit(&tracking::run(scale, 42), "tracking");
    match plots::write_all(std::path::Path::new("results/plots")) {
        Ok(paths) => eprintln!("(wrote {} gnuplot scripts)", paths.len()),
        Err(e) => eprintln!("warning: plots: {e}"),
    }
}
