//! Write gnuplot scripts for every figure into results/plots/.
use rfid_experiments::plots;

fn main() {
    match plots::write_all(std::path::Path::new("results/plots")) {
        Ok(paths) => {
            for p in paths {
                println!("wrote {}", p.display());
            }
            println!("render with: gnuplot results/plots/*.gnuplot");
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
