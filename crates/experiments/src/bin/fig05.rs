//! Regenerate Figure 5 (f1/f2 monotonicity in n).
use rfid_experiments::{fig05, output::emit, configure};

fn main() {
    let scale = configure(std::env::args().skip(1)).scale;
    emit(&fig05::run(scale, 42), "fig05_monotonicity");
}
