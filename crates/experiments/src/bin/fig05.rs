//! Regenerate Figure 5 (f1/f2 monotonicity in n).
use rfid_experiments::{fig05, output::emit, Scale};

fn main() {
    let scale = Scale::from_args();
    emit(&fig05::run(scale, 42), "fig05_monotonicity");
}
