//! Regenerate Figure 9 (accuracy comparison BFCE/ZOE/SRC on T2).
use rfid_experiments::fig09::{run, Sweep};
use rfid_experiments::{output::emit, configure};

fn main() {
    let scale = configure(std::env::args().skip(1)).scale;
    emit(&run(Sweep::N, scale, 42), "fig09a_accuracy_vs_n");
    emit(&run(Sweep::Epsilon, scale, 42), "fig09b_accuracy_vs_epsilon");
    emit(&run(Sweep::Delta, scale, 42), "fig09c_accuracy_vs_delta");
}
