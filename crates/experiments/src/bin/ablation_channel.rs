//! Ablation: channel bit-error sensitivity.
use rfid_experiments::{ablations, output::emit, Scale};

fn main() {
    let scale = Scale::from_args();
    emit(&ablations::run_channel_sweep(scale, 42), "ablation_channel");
}
