//! Ablation: channel bit-error sensitivity.
use rfid_experiments::{ablations, output::emit, configure};

fn main() {
    let scale = configure(std::env::args().skip(1)).scale;
    emit(&ablations::run_channel_sweep(scale, 42), "ablation_channel");
}
