//! Regenerate Figure 3 (0s/1s vs n). `--paper` for the full grid.
use rfid_experiments::{fig03, output::emit, configure};

fn main() {
    let scale = configure(std::env::args().skip(1)).scale;
    emit(&fig03::run(scale, 42), "fig03_linearity");
}
