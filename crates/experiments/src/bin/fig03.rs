//! Regenerate Figure 3 (0s/1s vs n). `--paper` for the full grid.
use rfid_experiments::{fig03, output::emit, Scale};

fn main() {
    let scale = Scale::from_args();
    emit(&fig03::run(scale, 42), "fig03_linearity");
}
