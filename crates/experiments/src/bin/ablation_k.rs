//! Ablation: number of hash functions k.
use rfid_experiments::{ablations, output::emit, Scale};

fn main() {
    let scale = Scale::from_args();
    emit(&ablations::run_k_sweep(scale, 42), "ablation_k");
}
