//! Regenerate Figure 4 (gamma surface and scalability bounds).
use rfid_experiments::{fig04, output::emit, configure};

fn main() {
    let scale = configure(std::env::args().skip(1)).scale;
    emit(&fig04::run(scale, 42), "fig04_gamma");
}
