//! Regenerate Figure 4 (gamma surface and scalability bounds).
use rfid_experiments::{fig04, output::emit, Scale};

fn main() {
    let scale = Scale::from_args();
    emit(&fig04::run(scale, 42), "fig04_gamma");
}
