//! Ablation: rough lower-bound coefficient c.
use rfid_experiments::{ablations, output::emit, configure};

fn main() {
    let scale = configure(std::env::args().skip(1)).scale;
    emit(&ablations::run_c_sweep(scale, 42), "ablation_c");
}
