//! Ablation: rough lower-bound coefficient c.
use rfid_experiments::{ablations, output::emit, Scale};

fn main() {
    let scale = Scale::from_args();
    emit(&ablations::run_c_sweep(scale, 42), "ablation_c");
}
