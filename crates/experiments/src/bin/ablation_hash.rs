//! Ablation: XOR-bitget vs full-avalanche tag hashing.
use rfid_experiments::{ablations, output::emit, configure};

fn main() {
    let scale = configure(std::env::args().skip(1)).scale;
    emit(&ablations::run_hash_comparison(scale, 42), "ablation_hash");
}
