//! Ablation: XOR-bitget vs full-avalanche tag hashing.
use rfid_experiments::{ablations, output::emit, Scale};

fn main() {
    let scale = Scale::from_args();
    emit(&ablations::run_hash_comparison(scale, 42), "ablation_hash");
}
