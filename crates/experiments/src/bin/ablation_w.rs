//! Ablation: Bloom vector length w.
use rfid_experiments::{ablations, output::emit, Scale};

fn main() {
    let scale = Scale::from_args();
    emit(&ablations::run_w_sweep(scale, 42), "ablation_w");
}
