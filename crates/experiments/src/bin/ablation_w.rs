//! Ablation: Bloom vector length w.
use rfid_experiments::{ablations, output::emit, configure};

fn main() {
    let scale = configure(std::env::args().skip(1)).scale;
    emit(&ablations::run_w_sweep(scale, 42), "ablation_w");
}
