//! Extension: per-tag energy (transmission counts) across estimators.
use rfid_experiments::{ablations, output::emit, Scale};

fn main() {
    let scale = Scale::from_args();
    emit(&ablations::run_energy(scale, 42), "ablation_energy");
}
