//! Extension: per-tag energy (transmission counts) across estimators.
use rfid_experiments::{ablations, output::emit, configure};

fn main() {
    let scale = configure(std::env::args().skip(1)).scale;
    emit(&ablations::run_energy(scale, 42), "ablation_energy");
}
