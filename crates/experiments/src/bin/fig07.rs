//! Regenerate Figure 7 (BFCE accuracy vs n / epsilon / delta).
use rfid_experiments::{fig07, output::emit, configure};

fn main() {
    let scale = configure(std::env::args().skip(1)).scale;
    emit(&fig07::run_vs_n(scale, 42), "fig07a_accuracy_vs_n");
    emit(&fig07::run_vs_epsilon(scale, 42), "fig07b_accuracy_vs_epsilon");
    emit(&fig07::run_vs_delta(scale, 42), "fig07c_accuracy_vs_delta");
}
