//! Check the paper's headline claims in one table.
use rfid_experiments::{output::emit, summary, Scale};

fn main() {
    let scale = Scale::from_args();
    emit(&summary::run(scale, 42), "summary_headline_claims");
}
