//! Check the paper's headline claims in one table.
use rfid_experiments::{output::emit, summary, configure};

fn main() {
    let scale = configure(std::env::args().skip(1)).scale;
    emit(&summary::run(scale, 42), "summary_headline_claims");
}
