//! Continuous monitoring under churn: level vs differential detectors.
use rfid_experiments::{output::emit, tracking, Scale};

fn main() {
    let scale = Scale::from_args();
    emit(&tracking::run(scale, 42), "tracking");
}
