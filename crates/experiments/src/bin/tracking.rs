//! Continuous monitoring under churn: level vs differential detectors.
use rfid_experiments::{output::emit, tracking, configure};

fn main() {
    let scale = configure(std::env::args().skip(1)).scale;
    emit(&tracking::run(scale, 42), "tracking");
}
