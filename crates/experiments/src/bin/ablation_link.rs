//! Ablation: PHY link profile (Tari / BLF / Miller).
use rfid_experiments::{ablations, output::emit, Scale};

fn main() {
    let scale = Scale::from_args();
    emit(&ablations::run_link_sweep(scale, 42), "ablation_link");
}
