//! Ablation: PHY link profile (Tari / BLF / Miller).
use rfid_experiments::{ablations, output::emit, configure};

fn main() {
    let scale = configure(std::env::args().skip(1)).scale;
    emit(&ablations::run_link_sweep(scale, 42), "ablation_link");
}
