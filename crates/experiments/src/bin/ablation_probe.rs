//! Extension: additive (paper) vs geometric probe adjustment.
use rfid_experiments::{ablations, output::emit, Scale};

fn main() {
    let scale = Scale::from_args();
    emit(&ablations::run_probe_strategy(scale, 42), "ablation_probe");
}
