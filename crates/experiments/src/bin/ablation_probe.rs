//! Extension: additive (paper) vs geometric probe adjustment.
use rfid_experiments::{ablations, output::emit, configure};

fn main() {
    let scale = configure(std::env::args().skip(1)).scale;
    emit(&ablations::run_probe_strategy(scale, 42), "ablation_probe");
}
