//! Extension: tag-side operation counts per scheme.
use rfid_experiments::{ablations, output::emit, configure};

fn main() {
    let scale = configure(std::env::args().skip(1)).scale;
    emit(&ablations::run_tag_ops(scale, 42), "tag_ops");
}
