//! Extension: tag-side operation counts per scheme.
use rfid_experiments::{ablations, output::emit, Scale};

fn main() {
    let scale = Scale::from_args();
    emit(&ablations::run_tag_ops(scale, 42), "tag_ops");
}
