//! Regenerate Figure 10 (execution-time comparison BFCE/ZOE/SRC on T2).
use rfid_experiments::fig09::Sweep;
use rfid_experiments::{fig10, output::emit, configure};

fn main() {
    let scale = configure(std::env::args().skip(1)).scale;
    emit(&fig10::run(Sweep::N, scale, 42), "fig10a_time_vs_n");
    emit(&fig10::run(Sweep::Epsilon, scale, 42), "fig10b_time_vs_epsilon");
    emit(&fig10::run(Sweep::Delta, scale, 42), "fig10c_time_vs_delta");
}
