//! Golden-figure regression support.
//!
//! Small, fixed-seed renderings of the figure tables are committed under
//! `tests/golden/`; `tests/golden.rs` regenerates them on every test run
//! and asserts the output is **bitwise** identical. Any change to the
//! estimator, the simulator, the trial engine, or the CSV writer that
//! moves a single byte of a figure therefore fails loudly and must be
//! accompanied by a regenerated golden (run
//! `cargo run -p rfid-experiments --bin golden`).
//!
//! The figure pipelines draw from `rand::rngs::StdRng`, whose stream is a
//! property of the `rand` crate, not of this workspace. Each golden file
//! therefore starts with a fingerprint of the local `StdRng` stream: when
//! the fingerprint matches, the committed bytes are authoritative; when
//! it does not (a different `rand` build), the byte comparison is
//! meaningless and the regression test falls back to asserting that two
//! fresh regenerations agree bitwise — the determinism property the
//! golden file exists to guard.

use crate::fig03;
use crate::guarantee;
use crate::output::Table;
use crate::runner::Scale;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Header prefix carrying the `rand`-stream fingerprint.
pub const FINGERPRINT_PREFIX: &str = "# rand-stream: ";

/// Fingerprint of the local `StdRng` stream: the first two draws from a
/// fixed seed, hex-encoded. Identical `rand` builds produce identical
/// golden bytes; different builds are detected before any comparison.
pub fn rand_fingerprint() -> String {
    let mut rng = StdRng::seed_from_u64(rfid_hash::stream_seed(0xF1D0, 0));
    format!("{:016x}{:016x}", rng.next_u64(), rng.next_u64())
}

/// The golden artifact set: `(file stem, table)` at `Scale::Quick` with
/// the same fixed seeds the figure binaries use.
pub fn artifacts() -> Vec<(&'static str, Table)> {
    vec![
        ("fig03_quick", fig03::run(Scale::Quick, 42)),
        ("guarantee_quick", guarantee::run(Scale::Quick, 42)),
    ]
}

/// Render one golden file: fingerprint line, then the table's CSV.
pub fn render(table: &Table) -> String {
    format!("{}{}\n{}", FINGERPRINT_PREFIX, rand_fingerprint(), table.to_csv())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_within_a_build() {
        assert_eq!(rand_fingerprint(), rand_fingerprint());
        assert_eq!(rand_fingerprint().len(), 32);
    }

    #[test]
    fn render_starts_with_the_fingerprint_line() {
        let mut t = Table::new("t", &["a"]);
        t.push_row(vec!["1".into()]);
        let r = render(&t);
        let first = r.lines().next().unwrap_or("");
        assert!(first.starts_with(FINGERPRINT_PREFIX));
        assert!(r.ends_with("a\n1\n"), "csv body follows the header: {r:?}");
    }
}
