//! Figure 9 — accuracy comparison of BFCE against ZOE and SRC on the T2
//! tag-ID distribution, across `n`, `epsilon`, and `delta`.
//!
//! The paper's reading: all three usually meet the requirement, but ZOE
//! and SRC show occasional exceptions tied to their rough-estimation
//! phases (SRC missed by 0.068 at `n = 50 000`; ZOE missed at
//! `delta = 0.3`), while BFCE, which only needs a *lower bound* rather
//! than an accurate rough estimate, never does.

use crate::output::{fnum, Table};
use crate::runner::{run_repeated, Scale};
use rfid_baselines::{Src, Zoe};
use rfid_bfce::Bfce;
use rfid_sim::{Accuracy, CardinalityEstimator};
use rfid_workloads::WorkloadSpec;

/// Which sweep of the figure to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sweep {
    /// (a): vary `n`, fixed `(0.05, 0.05)`.
    N,
    /// (b): vary `epsilon`, fixed `n`, `delta = 0.05`.
    Epsilon,
    /// (c): vary `delta`, fixed `n`, `epsilon = 0.05`.
    Delta,
}

/// The comparison estimators: BFCE, ZOE, SRC.
fn contenders() -> Vec<Box<dyn CardinalityEstimator>> {
    vec![
        Box::new(Bfce::paper()),
        Box::new(Zoe::default()),
        Box::new(Src::default()),
    ]
}

/// Grid of `(x-label, n, accuracy)` cells for a sweep.
pub(crate) fn grid(sweep: Sweep, scale: Scale) -> Vec<(String, usize, Accuracy)> {
    let n_fixed = scale.pick(100_000usize, 500_000);
    match sweep {
        Sweep::N => {
            let ns: &[usize] = match scale {
                Scale::Quick => &[10_000, 100_000],
                Scale::Paper => &[50_000, 100_000, 500_000, 1_000_000],
            };
            ns.iter()
                .map(|&n| (n.to_string(), n, Accuracy::paper_default()))
                .collect()
        }
        Sweep::Epsilon => {
            let es: &[f64] = match scale {
                Scale::Quick => &[0.05, 0.2],
                Scale::Paper => &[0.05, 0.1, 0.15, 0.2, 0.25, 0.3],
            };
            es.iter()
                .map(|&e| (fnum(e), n_fixed, Accuracy::new(e, 0.05)))
                .collect()
        }
        Sweep::Delta => {
            let ds: &[f64] = match scale {
                Scale::Quick => &[0.05, 0.2],
                Scale::Paper => &[0.05, 0.1, 0.15, 0.2, 0.25, 0.3],
            };
            ds.iter()
                .map(|&d| (fnum(d), n_fixed, Accuracy::new(0.05, d)))
                .collect()
        }
    }
}

/// Run one sweep of the accuracy comparison.
pub fn run(sweep: Sweep, scale: Scale, seed: u64) -> Table {
    let rounds = scale.pick(1u32, 3);
    let sub = match sweep {
        Sweep::N => "a (vs n)",
        Sweep::Epsilon => "b (vs epsilon)",
        Sweep::Delta => "c (vs delta)",
    };
    let mut table = Table::new(
        format!("Figure 9{sub}: accuracy comparison on T2"),
        &["x", "BFCE", "ZOE", "SRC"],
    );
    let estimators = contenders();
    let mut violations: Vec<String> = Vec::new();
    for (label, n, acc) in grid(sweep, scale) {
        let mut row = vec![label.clone()];
        for est in &estimators {
            let out =
                run_repeated(est.as_ref(), WorkloadSpec::T2, n, acc, rounds, seed);
            row.push(fnum(out.mean_error));
            if out.max_error > acc.epsilon {
                violations.push(format!(
                    "{} exceeded eps={} at x={label} (worst {:.4}; delta={} \
                     permits a {:.0}% miss rate, so isolated misses are \
                     within spec)",
                    est.name(),
                    acc.epsilon,
                    out.max_error,
                    acc.delta,
                    acc.delta * 100.0
                ));
            }
        }
        table.push_row(row);
    }
    if violations.is_empty() {
        table.note("no requirement violations observed in this run");
    }
    for v in violations {
        table.note(v);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfce_meets_requirement_on_quick_grid() {
        // (0.05, 0.05) permits up to 5% of rounds to miss; a single quick
        // round can land just outside. Require every cell to stay close
        // and the grid mean to stay inside epsilon.
        let t = run(Sweep::N, Scale::Quick, 1);
        let mut sum = 0.0;
        for row in &t.rows {
            let bfce_err: f64 = row[1].parse().unwrap();
            assert!(bfce_err < 0.10, "BFCE err {bfce_err} in {row:?}");
            sum += bfce_err;
        }
        assert!(
            sum / t.rows.len() as f64 <= 0.05,
            "BFCE grid-mean error too high: {}",
            sum / t.rows.len() as f64
        );
    }

    #[test]
    fn grid_shapes() {
        assert_eq!(grid(Sweep::N, Scale::Paper).len(), 4);
        assert_eq!(grid(Sweep::Epsilon, Scale::Paper).len(), 6);
        assert_eq!(grid(Sweep::Delta, Scale::Quick).len(), 2);
    }
}
