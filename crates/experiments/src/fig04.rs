//! Figure 4 — the scalability kernel `gamma = -ln(rho) / (k p)` over the
//! `(p, rho)` grid, and the paper's bounds `0.000326 <= gamma <= 2365.9`
//! (which give the ">19 million tags at w = 8192" headline).

use crate::output::{fnum, Table};
use crate::runner::Scale;
use rfid_bfce::theory::{gamma, gamma_bounds, max_cardinality};

/// Run the experiment (analytic; `scale` controls grid sampling density,
/// `_seed` unused).
pub fn run(scale: Scale, _seed: u64) -> Table {
    let k = 3usize;
    let grid = 1024u32;
    let samples = scale.pick(5usize, 9);
    let mut table = Table::new(
        "Figure 4: gamma = -ln(rho)/(k p) over the (p, rho) grid (k=3)",
        &["p", "rho", "gamma"],
    );
    // Sample a coarse sub-grid for the CSV (the full 1023x1023 surface is
    // cheap to recompute; the plot only needs the shape).
    for i in 1..=samples {
        for j in 1..=samples {
            let p = i as f64 / (samples + 1) as f64;
            let rho = j as f64 / (samples + 1) as f64;
            table.push_row(vec![fnum(p), fnum(rho), fnum(gamma(rho, k, p))]);
        }
    }
    let (min, max) = gamma_bounds(k, grid);
    let cap = max_cardinality(8192, k, grid);
    table.note(format!(
        "gamma bounds on the 1/1024 grid: {min:.6} <= gamma <= {max:.1} (paper: 0.000326 .. 2365.9)"
    ));
    table.note(format!(
        "max estimable cardinality at w=8192: {cap:.0} (paper: exceeds 19 million)"
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_match_paper() {
        let t = run(Scale::Quick, 0);
        assert!(t.notes[0].contains("0.000326"));
        assert!(t.notes[1].contains("19"));
    }

    #[test]
    fn surface_is_monotone_decreasing_in_both_axes() {
        let t = run(Scale::Paper, 0);
        // For fixed p (consecutive rho at same p), gamma decreases.
        for pair in t.rows.windows(2) {
            if pair[0][0] == pair[1][0] {
                let g0: f64 = pair[0][2].parse().unwrap();
                let g1: f64 = pair[1][2].parse().unwrap();
                assert!(g1 < g0, "gamma not decreasing in rho: {pair:?}");
            }
        }
    }

    #[test]
    fn grid_size_matches_scale() {
        assert_eq!(run(Scale::Quick, 0).rows.len(), 25);
        assert_eq!(run(Scale::Paper, 0).rows.len(), 81);
    }
}
