//! Trial-parallel Monte-Carlo engine.
//!
//! Every figure of the paper's evaluation aggregates hundreds of
//! *independent* estimation trials; [`TrialRunner`] fans those trials over a
//! worker pool using the same fold/merge idiom as the intra-frame
//! parallelism in `rfid-sim` (`par_fold_with_threads`), one contiguous chunk
//! of trial indices per worker.
//!
//! **Determinism contract.** Trial `i` of a run with base seed `b` is a pure
//! function of `stream_seed(b, i)` ([`rfid_hash::stream_seed`]) — never of
//! the worker that executed it. Workers return per-trial records which are
//! concatenated in trial order (chunks are contiguous and merge
//! left-to-right), and every aggregate is then computed in one sequential
//! pass over that ordered list (Welford [`RunningStats`] + percentiles), so
//! a [`TrialSet`] and everything derived from it is **bitwise identical**
//! for `--jobs 1` and `--jobs N`.
//!
//! **Nested-parallelism rule.** When the trial pool uses more than one
//! worker, each worker's [`RfidSystem`] is built with
//! `set_frame_min_chunk(usize::MAX)`, disabling the frame-level fork/join —
//! two stacked pools would oversubscribe the machine. Frame fills are exact
//! integer aggregation, so the observation (and therefore the estimate) is
//! bitwise identical either way.

use crate::runner::{build_system, RepeatedOutcome};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_hash::stream_seed;
use rfid_sim::frame::MIN_TAGS_PER_THREAD;
use rfid_sim::parallel::par_fold_with_threads;
use rfid_sim::{Accuracy, AirTime, CardinalityEstimator, EstimationReport, RfidSystem};
use rfid_stats::{percentile, RunningStats};
use rfid_workloads::WorkloadSpec;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide default worker count for trial-parallel runs.
/// 0 means "auto": use `std::thread::available_parallelism`.
static DEFAULT_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Set the process-wide default worker count (`0` restores auto).
/// Binaries call this once after parsing `--jobs`.
pub fn set_default_jobs(jobs: usize) {
    DEFAULT_JOBS.store(jobs, Ordering::Relaxed);
}

/// The worker count a [`TrialRunner`] without an explicit override uses:
/// the value from [`set_default_jobs`], or `available_parallelism` when
/// unset.
pub fn default_jobs() -> usize {
    let configured = DEFAULT_JOBS.load(Ordering::Relaxed);
    if configured > 0 {
        return configured;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Everything a trial closure may depend on. Handed to the closure instead
/// of raw loop variables so a trial cannot accidentally depend on worker
/// identity.
#[derive(Debug, Clone, Copy)]
pub struct TrialCtx {
    /// Trial index in `[0, trials)`.
    pub trial: u32,
    /// This trial's private seed: `stream_seed(base_seed, trial)`.
    pub seed: u64,
    /// The intra-frame split threshold systems built for this trial must
    /// use (`usize::MAX` whenever the trial pool itself is parallel).
    pub frame_min_chunk: usize,
}

impl TrialCtx {
    /// Build the standard system for this trial — [`build_system`] with the
    /// nested-parallelism rule applied.
    pub fn system(&self, workload: WorkloadSpec, n: usize) -> RfidSystem {
        let mut system = build_system(workload, n, self.seed);
        system.set_frame_min_chunk(self.frame_min_chunk);
        system
    }

    /// The reader-side RNG for this trial (same derivation as
    /// [`crate::runner::run_once`]).
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }
}

/// The per-trial result the standard estimation harness records.
#[derive(Debug, Clone, Copy)]
pub struct TrialRecord {
    /// Trial index.
    pub trial: u32,
    /// The seed the trial ran under.
    pub seed: u64,
    /// The estimate.
    pub n_hat: f64,
    /// Relative error `|n_hat - n| / n`.
    pub error: f64,
    /// Total air time in seconds.
    pub seconds: f64,
    /// Full air-time breakdown.
    pub air: AirTime,
    /// Reader rounds the estimator executed.
    pub rounds: u64,
}

/// A configured trial-parallel run: `(trials, base_seed, jobs)`.
#[derive(Debug, Clone, Copy)]
pub struct TrialRunner {
    trials: u32,
    base_seed: u64,
    jobs: Option<usize>,
}

impl TrialRunner {
    /// A runner for `trials` independent trials seeded from `base_seed`,
    /// using the process-default worker count.
    pub fn new(trials: u32, base_seed: u64) -> Self {
        assert!(trials >= 1, "need at least one trial");
        Self {
            trials,
            base_seed,
            jobs: None,
        }
    }

    /// Override the worker count for this run (`--jobs N`). `0` means the
    /// process default.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = if jobs == 0 { None } else { Some(jobs) };
        self
    }

    /// Number of trials.
    pub fn trials(&self) -> u32 {
        self.trials
    }

    /// The seed trial `i` will receive.
    pub fn trial_seed(&self, trial: u32) -> u64 {
        stream_seed(self.base_seed, trial as u64)
    }

    /// The worker count this run will actually use.
    pub fn effective_jobs(&self) -> usize {
        self.jobs.unwrap_or_else(default_jobs).max(1)
    }

    fn frame_min_chunk(&self) -> usize {
        if self.effective_jobs() > 1 {
            usize::MAX
        } else {
            MIN_TAGS_PER_THREAD
        }
    }

    /// Run an arbitrary per-trial function across the pool and return its
    /// results **in trial order**. This is the primitive the estimation
    /// harnesses build on; experiments with bespoke per-trial logic
    /// (tracking epochs, probe-strategy comparisons, …) use it directly.
    pub fn map<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&TrialCtx) -> T + Sync,
    {
        let indices: Vec<u32> = (0..self.trials).collect();
        let frame_min_chunk = self.frame_min_chunk();
        let mut results: Vec<(u32, T)> = par_fold_with_threads(
            &indices,
            self.effective_jobs(),
            Vec::new,
            |acc: &mut Vec<(u32, T)>, &trial| {
                let ctx = TrialCtx {
                    trial,
                    seed: self.trial_seed(trial),
                    frame_min_chunk,
                };
                acc.push((trial, f(&ctx)));
            },
            |acc, mut other| acc.append(&mut other),
        );
        // Contiguous chunks merged left-to-right are already in trial
        // order; the sort is a cheap guarantee that aggregation order can
        // never depend on the scheduler.
        results.sort_by_key(|(trial, _)| *trial);
        results.into_iter().map(|(_, value)| value).collect()
    }

    /// Run one estimation per trial with a caller-supplied closure (the
    /// closure builds its own system — e.g. with a custom channel — runs
    /// the estimator, and returns the report) and record the standard
    /// accuracy/air-time metrics against `truth`.
    pub fn run_with<F>(&self, truth: usize, accuracy: Accuracy, run: F) -> TrialSet
    where
        F: Fn(&TrialCtx) -> EstimationReport + Sync,
    {
        let records = self.map(|ctx| {
            let report = run(ctx);
            TrialRecord {
                trial: ctx.trial,
                seed: ctx.seed,
                n_hat: report.n_hat,
                error: report.relative_error(truth),
                seconds: report.air.total_seconds(),
                air: report.air,
                rounds: report.rounds,
            }
        });
        TrialSet {
            records,
            epsilon: accuracy.epsilon,
        }
    }

    /// The standard harness: fresh population + protocol seed per trial,
    /// one full estimation each.
    pub fn run(
        &self,
        estimator: &dyn CardinalityEstimator,
        workload: WorkloadSpec,
        n: usize,
        accuracy: Accuracy,
    ) -> TrialSet {
        self.run_with(n, accuracy, |ctx| {
            let mut system = ctx.system(workload, n);
            let mut rng = ctx.rng();
            estimator.estimate(&mut system, accuracy, &mut rng)
        })
    }
}

/// The ordered per-trial records of one run, plus sequential aggregation.
#[derive(Debug, Clone)]
pub struct TrialSet {
    records: Vec<TrialRecord>,
    epsilon: f64,
}

impl TrialSet {
    /// Per-trial records, in trial order.
    pub fn records(&self) -> &[TrialRecord] {
        &self.records
    }

    /// The epsilon trials were judged against.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The estimates, in trial order (Figure 8 feeds these to an ECDF).
    pub fn estimates(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.n_hat).collect()
    }

    /// The relative errors, in trial order.
    pub fn errors(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.error).collect()
    }

    /// The per-trial air times in seconds, in trial order.
    pub fn seconds(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.seconds).collect()
    }

    /// Number of trials whose error exceeded epsilon (the guarantee
    /// harness's binomial-test statistic).
    pub fn misses(&self) -> u32 {
        self.records
            .iter()
            .filter(|r| r.error > self.epsilon)
            .count() as u32
    }

    /// Aggregate into a [`RepeatedOutcome`].
    ///
    /// Always a single sequential pass over the trial-ordered records —
    /// Welford accumulation plus sorted-percentile extraction — so the
    /// result is bitwise identical no matter how many workers produced the
    /// records.
    pub fn outcome(&self) -> RepeatedOutcome {
        let mut err = RunningStats::new();
        let mut secs = RunningStats::new();
        for r in &self.records {
            err.push(r.error);
            secs.push(r.seconds);
        }
        let errors = self.errors();
        let seconds = self.seconds();
        RepeatedOutcome {
            trials: self.records.len() as u32,
            mean_error: err.mean(),
            max_error: err.max(),
            within_epsilon: (self.records.len() as u32 - self.misses()) as f64
                / self.records.len() as f64,
            mean_seconds: secs.mean(),
            max_seconds: secs.max(),
            p50_error: percentile(&errors, 50.0),
            p95_error: percentile(&errors, 95.0),
            p99_error: percentile(&errors, 99.0),
            p50_seconds: percentile(&seconds, 50.0),
            p95_seconds: percentile(&seconds, 95.0),
            p99_seconds: percentile(&seconds, 99.0),
        }
    }
}

/// Standard experiment flags shared by every figure binary, parsed from an
/// explicit argument list (env reading stays in `main`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentArgs {
    /// `--paper` versus quick grids.
    pub scale: crate::Scale,
    /// `--jobs N` worker-count override, if given.
    pub jobs: Option<usize>,
    /// `--trials N` trial-count override, if given.
    pub trials: Option<u32>,
}

/// Parse `--paper`, `--jobs N`, and `--trials N` from an argument list.
/// Unknown arguments are ignored (each binary may have extras).
pub fn parse_experiment_args<I>(args: I) -> ExperimentArgs
where
    I: IntoIterator,
    I::Item: AsRef<str>,
{
    let args: Vec<String> = args.into_iter().map(|a| a.as_ref().to_string()).collect();
    let lookup = |flag: &str| -> Option<&str> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(|s| s.as_str())
    };
    let jobs = lookup("--jobs").map(|v| {
        v.parse::<usize>()
            .unwrap_or_else(|_| panic!("--jobs expects a non-negative integer, got '{v}'"))
    });
    let trials = lookup("--trials").map(|v| {
        let t = v
            .parse::<u32>()
            .unwrap_or_else(|_| panic!("--trials expects a positive integer, got '{v}'"));
        assert!(t >= 1, "--trials must be at least 1");
        t
    });
    ExperimentArgs {
        scale: crate::Scale::from_args(args),
        jobs,
        trials,
    }
}

/// Parse the standard flags and apply the `--jobs` override to the process
/// default. The one-liner every figure binary calls at the top of `main`.
pub fn configure<I>(args: I) -> ExperimentArgs
where
    I: IntoIterator,
    I::Item: AsRef<str>,
{
    let parsed = parse_experiment_args(args);
    if let Some(jobs) = parsed.jobs {
        set_default_jobs(jobs);
    }
    parsed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_once;
    use rfid_bfce::Bfce;

    const N: usize = 20_000;

    fn run_with_jobs(jobs: usize) -> TrialSet {
        TrialRunner::new(8, 42).jobs(jobs).run(
            &Bfce::paper(),
            WorkloadSpec::T1,
            N,
            Accuracy::paper_default(),
        )
    }

    #[test]
    fn aggregates_are_bitwise_identical_for_one_vs_many_jobs() {
        let lone = run_with_jobs(1);
        for jobs in [2, 3, 8] {
            let pooled = run_with_jobs(jobs);
            for (a, b) in lone.records().iter().zip(pooled.records().iter()) {
                assert_eq!(a.trial, b.trial);
                assert_eq!(a.seed, b.seed);
                assert_eq!(a.n_hat.to_bits(), b.n_hat.to_bits(), "jobs = {jobs}");
                assert_eq!(a.error.to_bits(), b.error.to_bits());
                assert_eq!(a.seconds.to_bits(), b.seconds.to_bits());
                assert_eq!(a.air, b.air);
            }
            let (lo, po) = (lone.outcome(), pooled.outcome());
            assert_eq!(lo.mean_error.to_bits(), po.mean_error.to_bits());
            assert_eq!(lo.max_error.to_bits(), po.max_error.to_bits());
            assert_eq!(lo.within_epsilon.to_bits(), po.within_epsilon.to_bits());
            assert_eq!(lo.mean_seconds.to_bits(), po.mean_seconds.to_bits());
            assert_eq!(lo.p50_error.to_bits(), po.p50_error.to_bits());
            assert_eq!(lo.p95_error.to_bits(), po.p95_error.to_bits());
            assert_eq!(lo.p99_error.to_bits(), po.p99_error.to_bits());
            assert_eq!(lo.p99_seconds.to_bits(), po.p99_seconds.to_bits());
        }
    }

    #[test]
    fn trial_records_match_run_once() {
        // A pooled trial must equal the plain sequential harness run under
        // the same seed: parallelism may not leak into results.
        let set = run_with_jobs(4);
        let acc = Accuracy::paper_default();
        for record in set.records().iter().take(3) {
            let report = run_once(&Bfce::paper(), WorkloadSpec::T1, N, acc, record.seed);
            assert_eq!(report.n_hat.to_bits(), record.n_hat.to_bits());
            assert_eq!(report.air, record.air);
        }
    }

    #[test]
    fn map_returns_results_in_trial_order() {
        let values = TrialRunner::new(64, 7)
            .jobs(5)
            .map(|ctx| (ctx.trial, ctx.seed));
        for (i, &(trial, seed)) in values.iter().enumerate() {
            assert_eq!(trial, i as u32);
            assert_eq!(seed, rfid_hash::stream_seed(7, i as u64));
        }
    }

    #[test]
    fn nested_parallelism_is_disabled_only_in_pooled_runs() {
        let pooled = TrialRunner::new(2, 1).jobs(4);
        assert_eq!(pooled.frame_min_chunk(), usize::MAX);
        let lone = TrialRunner::new(2, 1).jobs(1);
        assert_eq!(
            lone.frame_min_chunk(),
            rfid_sim::frame::MIN_TAGS_PER_THREAD
        );
    }

    #[test]
    fn trial_set_percentiles_and_misses_are_consistent() {
        let set = run_with_jobs(2);
        let out = set.outcome();
        assert_eq!(out.trials, 8);
        assert!(out.p50_error <= out.p95_error);
        assert!(out.p95_error <= out.p99_error);
        assert!(out.p99_error <= out.max_error);
        assert!(out.p50_seconds <= out.p99_seconds);
        assert!(out.p99_seconds <= out.max_seconds);
        let misses = set
            .errors()
            .iter()
            .filter(|&&e| e > set.epsilon())
            .count() as u32;
        assert_eq!(set.misses(), misses);
        assert!((out.within_epsilon - (8 - misses) as f64 / 8.0).abs() < 1e-15);
    }

    #[test]
    fn parse_experiment_args_extracts_flags() {
        let args = ["--paper", "--jobs", "4", "--trials", "250"];
        let parsed = parse_experiment_args(args);
        assert_eq!(parsed.scale, crate::Scale::Paper);
        assert_eq!(parsed.jobs, Some(4));
        assert_eq!(parsed.trials, Some(250));

        let bare: [&str; 0] = [];
        let parsed = parse_experiment_args(bare);
        assert_eq!(parsed.scale, crate::Scale::Quick);
        assert_eq!(parsed.jobs, None);
        assert_eq!(parsed.trials, None);
    }

    #[test]
    #[should_panic(expected = "--jobs expects a non-negative integer")]
    fn parse_experiment_args_rejects_bad_jobs() {
        parse_experiment_args(["--jobs", "many"]);
    }

    #[test]
    fn default_jobs_override_round_trips() {
        let before = default_jobs();
        set_default_jobs(3);
        assert_eq!(default_jobs(), 3);
        assert_eq!(TrialRunner::new(1, 0).effective_jobs(), 3);
        assert_eq!(TrialRunner::new(1, 0).jobs(7).effective_jobs(), 7);
        set_default_jobs(0);
        assert!(default_jobs() >= 1);
        let _ = before;
    }
}
