//! The paper's headline claims, checked in one table.

use crate::output::{fnum, Table};
use crate::runner::{build_system, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_bfce::overhead::{nominal_total_seconds, total_bit_slots};
use rfid_bfce::theory::{gamma_bounds, max_cardinality};
use rfid_bfce::{Bfce, BfceConfig};
use rfid_sim::{Accuracy, Timing};
use rfid_workloads::WorkloadSpec;

/// Run the headline-claims check.
pub fn run(scale: Scale, seed: u64) -> Table {
    let cfg = BfceConfig::paper();
    let timing = Timing::c1g2();
    let mut table = Table::new(
        "Headline claims of the BFCE paper vs this reproduction",
        &["claim", "paper", "measured"],
    );

    table.push_row(vec![
        "constant bit-slot budget (rough + accurate)".into(),
        "1024 + 8192".into(),
        format!("{}", total_bit_slots(&cfg)),
    ]);
    table.push_row(vec![
        "nominal execution time".into(),
        "< 0.19 s".into(),
        format!("{:.4} s", nominal_total_seconds(&timing, &cfg)),
    ]);
    let (gmin, gmax) = gamma_bounds(cfg.k, 1024);
    table.push_row(vec![
        "gamma bounds (k=3, 1/1024 grid)".into(),
        "0.000326 .. 2365.9".into(),
        format!("{gmin:.6} .. {gmax:.1}"),
    ]);
    table.push_row(vec![
        "max estimable cardinality (w=8192)".into(),
        "> 19 million".into(),
        fnum(max_cardinality(cfg.w, cfg.k, 1024)),
    ]);

    // Measured end-to-end run at the paper's showcase point.
    let n = scale.pick(100_000usize, 500_000);
    let mut system = build_system(WorkloadSpec::T2, n, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let run = Bfce::paper().run(&mut system, Accuracy::paper_default(), &mut rng);
    table.push_row(vec![
        format!("one-round accuracy at n={n}, (0.05, 0.05)"),
        "|err| <= 0.05".into(),
        fnum(run.report.relative_error(n)),
    ]);
    table.push_row(vec![
        "measured execution time incl. probe".into(),
        "~0.19 s".into(),
        format!("{:.4} s", run.report.air.total_seconds()),
    ]);
    table.push_row(vec![
        format!(
            "minimal provable persistence (measured n_low = {:.0})",
            run.rough.n_low
        ),
        "small, e.g. 3/1024 at n_low=250k".into(),
        format!(
            "p = {}/1024{}",
            run.accurate.as_ref().map(|a| a.p_n).unwrap_or(0),
            if run.accurate.as_ref().is_some_and(|a| a.provable) {
                " (provable)"
            } else {
                ""
            }
        ),
    ]);
    // The paper's exact worked example, independent of the measured run.
    let example = rfid_bfce::theory::optimal_p(
        250_000.0,
        cfg.w,
        cfg.k,
        0.05,
        rfid_stats::d_for_delta(0.05),
        1024,
    );
    table.push_row(vec![
        "optimal persistence at n_low=250k (paper example)".into(),
        "p = 3/1024".into(),
        format!("p = {}/1024", example.numerator()),
    ]);
    table.note("speedup ratios vs ZOE/SRC: see Figure 10 tables");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_values_hold() {
        let t = run(Scale::Quick, 1);
        assert_eq!(t.rows[0][2], "9216");
        let nominal: f64 = t.rows[1][2].trim_end_matches(" s").parse().unwrap();
        assert!(nominal < 0.19);
        let cap: f64 = t.rows[3][2].parse().unwrap();
        assert!(cap > 19_000_000.0);
        let err: f64 = t.rows[4][2].parse().unwrap();
        assert!(err <= 0.05, "accuracy row: {err}");
    }
}
