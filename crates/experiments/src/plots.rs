//! Gnuplot script generation: turn the `results/*.csv` tables into the
//! paper's actual plots.
//!
//! Each script is self-contained (`gnuplot results/plots/figNN.gnuplot`
//! renders `results/plots/figNN.png`) and reads the CSV its experiment
//! binary wrote, so the pipeline is: run the binary (or bench), run
//! gnuplot, compare against the paper's figure.

/// The figures we generate scripts for, with their CSV base names.
pub const FIGURES: &[&str] = &[
    "fig03_linearity",
    "fig05_monotonicity",
    "fig07a_accuracy_vs_n",
    "fig07b_accuracy_vs_epsilon",
    "fig07c_accuracy_vs_delta",
    "fig08_cdf",
    "fig09a_accuracy_vs_n",
    "fig10a_time_vs_n",
    "fig10b_time_vs_epsilon",
    "fig10c_time_vs_delta",
    "crossover",
];

fn preamble(name: &str, title: &str) -> String {
    format!(
        "set datafile separator comma\n\
         set terminal pngcairo size 900,600\n\
         set output 'results/plots/{name}.png'\n\
         set title '{title}'\n\
         set key outside right\n\
         set grid\n"
    )
}

/// The gnuplot script for one figure, or `None` for unknown names.
pub fn gnuplot_script(name: &str) -> Option<String> {
    let body = match name {
        "fig03_linearity" => {
            "set xlabel 'cardinality n'\nset ylabel 'slots'\n\
             plot 'results/fig03_linearity.csv' skip 1 using 1:2 with linespoints title 'zeros p=0.1', \\\n\
             '' skip 1 using 1:3 with linespoints title 'ones p=0.1', \\\n\
             '' skip 1 using 1:5 with linespoints title 'zeros p=0.2', \\\n\
             '' skip 1 using 1:6 with linespoints title 'ones p=0.2'\n"
        }
        "fig05_monotonicity" => {
            "set xlabel 'cardinality n'\nset ylabel 'f1 / f2'\n\
             plot 'results/fig05_monotonicity.csv' skip 1 using 1:2 with lines title 'f1', \\\n\
             '' skip 1 using 1:3 with lines title 'f2'\n"
        }
        "fig07a_accuracy_vs_n" => {
            "set logscale x\nset xlabel 'cardinality n'\nset ylabel 'accuracy |n_hat - n| / n'\nset yrange [0:0.06]\n\
             plot 'results/fig07a_accuracy_vs_n.csv' skip 1 using 1:2 with linespoints title 'T1', \\\n\
             '' skip 1 using 1:3 with linespoints title 'T2', \\\n\
             '' skip 1 using 1:4 with linespoints title 'T3'\n"
        }
        "fig07b_accuracy_vs_epsilon" => {
            "set xlabel 'epsilon'\nset ylabel 'accuracy'\nset yrange [0:0.06]\n\
             plot 'results/fig07b_accuracy_vs_epsilon.csv' skip 1 using 1:2 with linespoints title 'T1', \\\n\
             '' skip 1 using 1:3 with linespoints title 'T2', \\\n\
             '' skip 1 using 1:4 with linespoints title 'T3'\n"
        }
        "fig07c_accuracy_vs_delta" => {
            "set xlabel 'delta'\nset ylabel 'accuracy'\nset yrange [0:0.06]\n\
             plot 'results/fig07c_accuracy_vs_delta.csv' skip 1 using 1:2 with linespoints title 'T1', \\\n\
             '' skip 1 using 1:3 with linespoints title 'T2', \\\n\
             '' skip 1 using 1:4 with linespoints title 'T3'\n"
        }
        "fig08_cdf" => {
            "set xlabel 'quantile'\nset ylabel 'estimate n_hat'\n\
             plot 'results/fig08_cdf.csv' skip 1 using 1:2 with linespoints title 'T1', \\\n\
             '' skip 1 using 1:3 with linespoints title 'T2', \\\n\
             '' skip 1 using 1:4 with linespoints title 'T3'\n"
        }
        "fig09a_accuracy_vs_n" => {
            "set logscale x\nset xlabel 'cardinality n'\nset ylabel 'accuracy'\n\
             plot 'results/fig09a_accuracy_vs_n.csv' skip 1 using 1:2 with linespoints title 'BFCE', \\\n\
             '' skip 1 using 1:3 with linespoints title 'ZOE', \\\n\
             '' skip 1 using 1:4 with linespoints title 'SRC'\n"
        }
        "fig10a_time_vs_n" => {
            "set logscale xy\nset xlabel 'cardinality n'\nset ylabel 'execution time (s)'\n\
             plot 'results/fig10a_time_vs_n.csv' skip 1 using 1:2 with linespoints title 'BFCE', \\\n\
             '' skip 1 using 1:3 with linespoints title 'ZOE', \\\n\
             '' skip 1 using 1:4 with linespoints title 'SRC'\n"
        }
        "fig10b_time_vs_epsilon" => {
            "set logscale y\nset xlabel 'epsilon'\nset ylabel 'execution time (s)'\n\
             plot 'results/fig10b_time_vs_epsilon.csv' skip 1 using 1:2 with linespoints title 'BFCE', \\\n\
             '' skip 1 using 1:3 with linespoints title 'ZOE', \\\n\
             '' skip 1 using 1:4 with linespoints title 'SRC'\n"
        }
        "fig10c_time_vs_delta" => {
            "set logscale y\nset xlabel 'delta'\nset ylabel 'execution time (s)'\n\
             plot 'results/fig10c_time_vs_delta.csv' skip 1 using 1:2 with linespoints title 'BFCE', \\\n\
             '' skip 1 using 1:3 with linespoints title 'ZOE', \\\n\
             '' skip 1 using 1:4 with linespoints title 'SRC'\n"
        }
        "crossover" => {
            "set logscale xy\nset xlabel 'cardinality n'\nset ylabel 'execution time (s)'\n\
             plot 'results/crossover.csv' skip 1 using 1:2 with linespoints title 'Q-inventory (exact)', \\\n\
             '' skip 1 using 1:3 with linespoints title 'BFCE (0.05, 0.05)'\n"
        }
        _ => return None,
    };
    let title = name.replace('_', " ");
    Some(format!("{}{}", preamble(name, &title), body))
}

/// Write every known script into `dir`, returning the written paths.
pub fn write_all(dir: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    for name in FIGURES {
        // `every_registered_figure_has_a_script` pins FIGURES ⊆ the match
        // in `gnuplot_script`, so this skip can never fire.
        let Some(script) = gnuplot_script(name) else {
            continue;
        };
        let path = dir.join(format!("{name}.gnuplot"));
        std::fs::write(&path, script)?;
        written.push(path);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_figure_has_a_script() {
        for name in FIGURES {
            let script = gnuplot_script(name).unwrap_or_else(|| panic!("{name}"));
            assert!(script.contains("set datafile separator comma"));
            assert!(
                script.contains(&format!("results/{name}.csv")),
                "{name} script must read its own CSV"
            );
            assert!(script.contains(&format!("results/plots/{name}.png")));
            assert!(script.contains("plot "));
        }
    }

    #[test]
    fn unknown_figures_are_none() {
        assert!(gnuplot_script("fig99").is_none());
    }

    #[test]
    fn comparison_plots_show_all_three_contenders() {
        for name in ["fig09a_accuracy_vs_n", "fig10a_time_vs_n"] {
            let s = gnuplot_script(name).unwrap();
            for contender in ["BFCE", "ZOE", "SRC"] {
                assert!(s.contains(contender), "{name} missing {contender}");
            }
        }
    }

    #[test]
    fn write_all_creates_every_script() {
        let dir = std::env::temp_dir().join("rfid_plots_test");
        let _ = std::fs::remove_dir_all(&dir);
        let written = write_all(&dir).unwrap();
        assert_eq!(written.len(), FIGURES.len());
        for path in &written {
            assert!(path.exists());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
