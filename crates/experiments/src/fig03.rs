//! Figure 3 — the feasibility study: the number of 0s (busy) and 1s
//! (idle) in the Bloom vector `B` against the cardinality `n`, at
//! `w = 8192`, `k = 3`, `p in {0.1, 0.2}`.
//!
//! The paper reads an (approximately) linear relationship off this plot in
//! its operating regime; the table reports the measured counts next to the
//! Theorem-1 expectations and quantifies linearity with the R^2 of a
//! least-squares line through the busy counts.

use crate::output::{fnum, Table};
use crate::runner::{build_system, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_bfce::estimator::standalone_frame;
use rfid_bfce::BfceConfig;
use rfid_workloads::WorkloadSpec;

/// The two persistence numerators: `p ~ 0.1` and `p ~ 0.2` on the 1/1024
/// grid.
const P_NUMERATORS: [u32; 2] = [102, 205];

/// Coefficient of determination of the best straight line through
/// `(x, y)`.
fn r_squared(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let syy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    if sxx == 0.0 || syy == 0.0 {
        return 1.0;
    }
    (sxy * sxy) / (sxx * syy)
}

/// Run the experiment.
pub fn run(scale: Scale, seed: u64) -> Table {
    let cfg = BfceConfig::paper();
    let step = scale.pick(2_000usize, 500);
    let max_n = 12_000usize;
    let mut table = Table::new(
        "Figure 3: 0s/1s in B vs n (w=8192, k=3, T1 tag IDs)",
        &[
            "n",
            "zeros(p=0.1)",
            "ones(p=0.1)",
            "E[zeros](p=0.1)",
            "zeros(p=0.2)",
            "ones(p=0.2)",
            "E[zeros](p=0.2)",
        ],
    );
    let mut xs = Vec::new();
    let mut zeros_by_p: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    let mut n = step;
    while n <= max_n {
        let mut cells = vec![n.to_string()];
        for (pi, &p_n) in P_NUMERATORS.iter().enumerate() {
            let mut system = build_system(WorkloadSpec::T1, n, seed + n as u64);
            let mut rng =
                StdRng::seed_from_u64(rfid_hash::stream_seed(seed, (n as u64) << 2 | pi as u64));
            let frame = standalone_frame(&cfg, &mut system, p_n, &mut rng);
            let zeros = frame.busy_count();
            let ones = frame.idle_count();
            let p = p_n as f64 / 1024.0;
            let lambda = cfg.k as f64 * p * n as f64 / cfg.w as f64;
            let expect_zeros = cfg.w as f64 * (1.0 - (-lambda).exp());
            cells.push(zeros.to_string());
            cells.push(ones.to_string());
            cells.push(fnum(expect_zeros));
            zeros_by_p[pi].push(zeros as f64);
        }
        xs.push(n as f64);
        table.push_row(cells);
        n += step;
    }
    for (pi, zeros) in zeros_by_p.iter().enumerate() {
        let r2 = r_squared(&xs, zeros);
        table.note(format!(
            "R^2 of linear fit, zeros at p={}: {:.4} (paper: ~linear in the small-lambda regime)",
            [0.1, 0.2][pi],
            r2
        ));
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r_squared_perfect_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((r_squared(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn counts_are_monotone_and_near_linear() {
        let t = run(Scale::Quick, 1);
        assert!(t.rows.len() >= 5);
        // zeros at p=0.1 strictly increase with n.
        let zeros: Vec<f64> = t
            .rows
            .iter()
            .map(|r| r[1].parse::<f64>().unwrap())
            .collect();
        for w in zeros.windows(2) {
            assert!(w[1] > w[0], "busy count not increasing: {zeros:?}");
        }
        // Linearity note present with high R^2.
        assert!(t.notes[0].contains("R^2"));
        let r2: f64 = t.notes[0]
            .split(": ")
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(r2 > 0.98, "R^2 = {r2}");
    }

    #[test]
    fn zeros_plus_ones_is_w() {
        let t = run(Scale::Quick, 2);
        for row in &t.rows {
            let zeros: usize = row[1].parse().unwrap();
            let ones: usize = row[2].parse().unwrap();
            assert_eq!(zeros + ones, 8192);
        }
    }
}
