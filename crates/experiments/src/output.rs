//! Tabular output: aligned console printing and CSV files under `results/`.

use serde::Serialize;
use std::io::Write;
use std::path::Path;

/// A rectangular result table, the common currency of every experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Human-readable title (includes the paper artifact it reproduces).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows; each must match `headers` in length.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes appended below the table (observations, checks).
    pub notes: Vec<String>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (checked against the header count).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// CSV serialization (headers + rows; notes as trailing comments).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(
                &row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","),
            );
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("# {note}\n"));
        }
        out
    }

    /// Write CSV into `dir/<name>.csv`, creating the directory if needed.
    pub fn write_csv(&self, dir: &Path, name: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut file = std::fs::File::create(dir.join(format!("{name}.csv")))?;
        file.write_all(self.to_csv().as_bytes())
    }

    /// Write the whole table (title, headers, rows, notes) as pretty JSON
    /// into `dir/<name>.json` for downstream tooling.
    pub fn write_json(&self, dir: &Path, name: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let json = serde_json::to_string_pretty(self).map_err(std::io::Error::other)?;
        std::fs::write(dir.join(format!("{name}.json")), json)
    }
}

/// Print a table and persist it as `results/<name>.csv` and
/// `results/<name>.json` — the standard tail of every experiment binary
/// and figure bench.
pub fn emit(table: &Table, name: &str) {
    table.print();
    let dir = Path::new("results");
    match table.write_csv(dir, name) {
        Ok(()) => eprintln!("(wrote results/{name}.csv)"),
        Err(e) => eprintln!("warning: could not write results/{name}.csv: {e}"),
    }
    if let Err(e) = table.write_json(dir, name) {
        eprintln!("warning: could not write results/{name}.json: {e}");
    }
}

/// Format a float with a sensible number of digits for tables.
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 10_000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["n", "err"]);
        t.push_row(vec!["1000".into(), "0.01".into()]);
        t.push_row(vec!["500000".into(), "0.002".into()]);
        t.note("all good");
        t
    }

    #[test]
    fn render_aligns_and_includes_notes() {
        let s = sample().render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("note: all good"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn csv_round_trip_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "n,err");
        assert_eq!(lines[1], "1000,0.01");
        assert_eq!(lines[3], "# all good");
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("x", &["a"]);
        t.push_row(vec!["hello, \"world\"".into()]);
        assert!(t.to_csv().contains("\"hello, \"\"world\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("rfid_experiments_test_out");
        let _ = std::fs::remove_dir_all(&dir);
        sample().write_csv(&dir, "demo").unwrap();
        let content = std::fs::read_to_string(dir.join("demo.csv")).unwrap();
        assert!(content.starts_with("n,err"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_json_round_trips_structure() {
        let dir = std::env::temp_dir().join("rfid_experiments_json_out");
        let _ = std::fs::remove_dir_all(&dir);
        sample().write_json(&dir, "demo").unwrap();
        let content = std::fs::read_to_string(dir.join("demo.json")).unwrap();
        let value: serde_json::Value = serde_json::from_str(&content).unwrap();
        assert_eq!(value["title"], "demo");
        assert_eq!(value["rows"].as_array().unwrap().len(), 2);
        assert_eq!(value["notes"][0], "all good");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(0.1234567), "0.1235");
        assert_eq!(fnum(42.1234), "42.12");
        assert_eq!(fnum(123456.7), "123457");
    }
}
