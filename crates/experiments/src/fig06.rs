//! Figure 6 — the three tag-ID sets used in the simulation: T1 (uniform),
//! T2 (approximate normal), T3 (normal), shown as histograms over the
//! `[1, 10^15]` ID space.

use crate::output::Table;
use crate::runner::{build_system, Scale};
use rfid_workloads::{WorkloadSpec, ID_SPACE_MAX};

/// Number of histogram bins across the ID space.
const BINS: usize = 20;

/// Run the experiment.
pub fn run(scale: Scale, seed: u64) -> Table {
    let n = scale.pick(20_000usize, 200_000);
    let mut table = Table::new(
        format!("Figure 6: tag-ID distributions ({n} IDs per set, {BINS} bins)"),
        &["bin_low(1e13)", "T1", "T2", "T3"],
    );
    let mut histos = Vec::new();
    for spec in WorkloadSpec::PAPER_SET {
        let system = build_system(spec, n, seed);
        let mut counts = vec![0u64; BINS];
        for tag in system.population().tags() {
            let bin = ((tag.id - 1) as u128 * BINS as u128 / ID_SPACE_MAX as u128)
                .min(BINS as u128 - 1) as usize;
            counts[bin] += 1;
        }
        histos.push(counts);
    }
    for (b, ((&h1, &h2), &h3)) in histos[0]
        .iter()
        .zip(&histos[1])
        .zip(&histos[2])
        .enumerate()
    {
        let low = b as u64 * (ID_SPACE_MAX / BINS as u64) / 10_000_000_000_000;
        table.push_row(vec![
            low.to_string(),
            h1.to_string(),
            h2.to_string(),
            h3.to_string(),
        ]);
    }
    // Shape checks the paper's plots show at a glance.
    let center_mass = |h: &[u64]| -> f64 {
        let total: u64 = h.iter().sum();
        let central: u64 = h[BINS / 4..3 * BINS / 4].iter().sum();
        central as f64 / total as f64
    };
    table.note(format!(
        "central-half mass: T1 {:.2}, T2 {:.2}, T3 {:.2} (uniform ~0.50; bells >0.80)",
        center_mass(&histos[0]),
        center_mass(&histos[1]),
        center_mass(&histos[2]),
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_shapes_match_the_figure() {
        let t = run(Scale::Quick, 3);
        assert_eq!(t.rows.len(), BINS);
        let note = &t.notes[0];
        // Parse the three masses out of the note.
        let nums: Vec<f64> = note
            .split(|c: char| !c.is_ascii_digit() && c != '.')
            .filter(|s| s.contains('.'))
            .map(|s| s.parse().unwrap())
            .collect();
        let (t1, t2, t3) = (nums[0], nums[1], nums[2]);
        assert!((t1 - 0.5).abs() < 0.05, "T1 mass {t1}");
        assert!(t2 > 0.8, "T2 mass {t2}");
        assert!(t3 > 0.8, "T3 mass {t3}");
    }

    #[test]
    fn per_bin_totals_match_n() {
        let t = run(Scale::Quick, 4);
        for col in 1..=3 {
            let total: u64 = t.rows.iter().map(|r| r[col].parse::<u64>().unwrap()).sum();
            assert_eq!(total, 20_000);
        }
    }
}
