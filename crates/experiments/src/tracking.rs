//! Continuous monitoring under churn — the application study the paper's
//! introduction gestures at (inventory management, theft detection).
//!
//! A population evolves for `E` epochs with ~1 % routine churn; one epoch
//! carries an injected shrinkage burst. Two detectors watch it:
//!
//! * **level detector** — one BFCE estimate per epoch; alarm when the
//!   estimate drops by more than `2 * epsilon` since the previous epoch
//!   (beyond the combined estimation noise);
//! * **differential detector** — a same-seed frame pair per epoch through
//!   `rfid_bfce::diff`, alarming on the *departure* estimate directly,
//!   which sees the burst even when balanced arrivals mask the level.

use crate::output::{fnum, Table};
use crate::runner::Scale;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use rfid_bfce::diff::estimate_changes;
use rfid_bfce::{Bfce, BfceConfig};
use rfid_sim::{Accuracy, CardinalityEstimator, RfidSystem};
use rfid_workloads::{ChurnProcess, WorkloadSpec};

/// Run the monitoring scenario.
pub fn run(scale: Scale, seed: u64) -> Table {
    let n0 = scale.pick(30_000usize, 100_000);
    let epochs = scale.pick(6u32, 10);
    let burst_epoch = epochs / 2;
    let burst_rate = 0.08;
    let routine = ChurnProcess::new(0.01, 0.01, WorkloadSpec::T1);
    let burst = ChurnProcess::new(0.01 + burst_rate, 0.01, WorkloadSpec::T1);
    let accuracy = Accuracy::paper_default();
    let cfg = BfceConfig::paper();
    let bfce = Bfce::new(cfg);

    let mut table = Table::new(
        format!(
            "Monitoring under churn: {n0} tags, 1% routine churn, \
             {:.0}% departure burst at epoch {burst_epoch}",
            burst_rate * 100.0
        ),
        &[
            "epoch",
            "true_n",
            "true_departed",
            "estimate",
            "level_alarm",
            "diff_departures",
            "diff_alarm",
        ],
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let mut population = WorkloadSpec::T1.generate(n0, &mut rng);
    let mut previous_estimate: Option<f64> = None;
    let mut level_detected_at: Option<u32> = None;
    let mut diff_detected_at: Option<u32> = None;
    let mut false_alarms = 0u32;

    // Differential persistence: lambda ~ 1 at the initial level.
    let p_n = ((cfg.w as f64 / (cfg.k as f64 * n0 as f64) * 1024.0).round() as u32)
        .clamp(1, 1023);

    for epoch in 1..=epochs {
        let process = if epoch == burst_epoch { &burst } else { &routine };
        let (next, departed, _arrived) = process.step(&population, &mut rng);

        // Level detector: fresh BFCE estimate on the new population.
        let mut system = RfidSystem::new(next.clone());
        let report = bfce.estimate(&mut system, accuracy, &mut rng);
        let level_alarm = previous_estimate
            .map(|prev| (prev - report.n_hat) / prev > 2.0 * accuracy.epsilon)
            .unwrap_or(false);

        // Differential detector: same-seed frames before/after the step.
        let mut before = RfidSystem::new(population.clone());
        let mut after = RfidSystem::new(next.clone());
        // Per-epoch seed via stream splitting (disjoint across nearby base
        // seeds, unlike the previous ad-hoc XOR scheme).
        let mut diff_rng = StdRng::seed_from_u64(rfid_hash::stream_seed(seed, epoch as u64));
        let diff = estimate_changes(
            &cfg,
            &mut before,
            &mut after,
            p_n,
            &mut diff_rng as &mut dyn RngCore,
        );
        // Alarm when estimated departures exceed 3x the routine level.
        let diff_alarm = diff.departures > 3.0 * 0.01 * n0 as f64;

        if level_alarm && level_detected_at.is_none() {
            level_detected_at = Some(epoch);
        }
        if diff_alarm && diff_detected_at.is_none() {
            diff_detected_at = Some(epoch);
        }
        if epoch != burst_epoch && (level_alarm || diff_alarm) {
            false_alarms += 1;
        }

        table.push_row(vec![
            epoch.to_string(),
            next.cardinality().to_string(),
            departed.to_string(),
            fnum(report.n_hat),
            level_alarm.to_string(),
            fnum(diff.departures),
            diff_alarm.to_string(),
        ]);

        previous_estimate = Some(report.n_hat);
        population = next;
    }

    table.note(format!(
        "burst at epoch {burst_epoch}: level detector fired at {:?}, \
         differential detector at {:?}, false alarms: {false_alarms}",
        level_detected_at, diff_detected_at
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_burst_is_detected_without_false_alarms() {
        let t = run(Scale::Quick, 5);
        let note = &t.notes[0];
        // The differential detector must fire exactly at the burst epoch.
        assert!(
            note.contains("differential detector at Some(3)"),
            "{note}"
        );
        assert!(note.ends_with("false alarms: 0"), "{note}");
    }

    #[test]
    fn table_tracks_every_epoch() {
        let t = run(Scale::Quick, 6);
        assert_eq!(t.rows.len(), 6);
        // True n stays in the right ballpark throughout.
        for row in &t.rows {
            let true_n: f64 = row[1].parse().unwrap();
            let estimate: f64 = row[3].parse().unwrap();
            assert!((estimate - true_n).abs() / true_n < 0.06, "{row:?}");
        }
    }
}
