//! Shared experiment plumbing: scales, system construction, repeated runs.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_sim::{Accuracy, CardinalityEstimator, EstimationReport, RfidSystem};
use rfid_workloads::WorkloadSpec;

/// How big an experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small sweeps and few repetitions — used by `cargo bench` smoke
    /// targets and CI; finishes in seconds.
    Quick,
    /// The paper's full grids and repetition counts.
    Paper,
}

impl Scale {
    /// Parse from an explicit argument list: `--paper` selects
    /// [`Scale::Paper`], anything else (or nothing) stays Quick.
    ///
    /// Library code never reads the process environment; binaries pass
    /// `std::env::args().skip(1)` (or call
    /// [`crate::engine::configure`], which also handles `--jobs` /
    /// `--trials`).
    pub fn from_args<I>(args: I) -> Scale
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        if args.into_iter().any(|a| a.as_ref() == "--paper") {
            Scale::Paper
        } else {
            Scale::Quick
        }
    }

    /// Pick between the quick and paper variants of a parameter.
    pub fn pick<T: Copy>(&self, quick: T, paper: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Paper => paper,
        }
    }
}

/// Build a fresh system for a workload of `n` tags, deterministically from
/// `seed`.
///
/// The population draws from stream 0 of `seed`; the protocol RNG in
/// [`run_once`] uses `seed` directly, so the two streams never overlap.
pub fn build_system(workload: WorkloadSpec, n: usize, seed: u64) -> RfidSystem {
    let mut rng = StdRng::seed_from_u64(rfid_hash::stream_seed(seed, 0));
    RfidSystem::new(workload.generate(n, &mut rng))
}

/// One estimation run on a fresh system; returns the report.
pub fn run_once(
    estimator: &dyn CardinalityEstimator,
    workload: WorkloadSpec,
    n: usize,
    accuracy: Accuracy,
    seed: u64,
) -> EstimationReport {
    let mut system = build_system(workload, n, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    estimator.estimate(&mut system, accuracy, &mut rng)
}

/// Aggregated accuracy/time over independent trials (fresh population and
/// protocol seeds each trial).
///
/// Produced by [`crate::engine::TrialSet::outcome`]; aggregation is a
/// single sequential pass over trial-ordered records, so the same
/// `(estimator, workload, n, base_seed)` yields a bitwise-identical
/// outcome at any worker count.
#[derive(Debug, Clone, Copy)]
pub struct RepeatedOutcome {
    /// Number of trials aggregated.
    pub trials: u32,
    /// Mean relative error `|n_hat - n| / n`.
    pub mean_error: f64,
    /// Worst relative error seen.
    pub max_error: f64,
    /// Fraction of trials meeting the requested epsilon.
    pub within_epsilon: f64,
    /// Mean execution (air) time in seconds.
    pub mean_seconds: f64,
    /// Worst execution time in seconds.
    pub max_seconds: f64,
    /// Median relative error.
    pub p50_error: f64,
    /// 95th-percentile relative error.
    pub p95_error: f64,
    /// 99th-percentile relative error.
    pub p99_error: f64,
    /// Median execution time in seconds.
    pub p50_seconds: f64,
    /// 95th-percentile execution time in seconds.
    pub p95_seconds: f64,
    /// 99th-percentile execution time in seconds.
    pub p99_seconds: f64,
}

/// Run an estimator `rounds` times and aggregate.
///
/// Delegates to the trial-parallel engine: trial `r` runs under the seed
/// `rfid_hash::stream_seed(base_seed, r)` (nearby base seeds share no
/// trial seeds — the affine `base * prime + r` scheme this replaces let
/// adjacent base seeds interleave), and trials fan out across
/// [`crate::engine::default_jobs`] workers.
pub fn run_repeated(
    estimator: &dyn CardinalityEstimator,
    workload: WorkloadSpec,
    n: usize,
    accuracy: Accuracy,
    rounds: u32,
    base_seed: u64,
) -> RepeatedOutcome {
    crate::engine::TrialRunner::new(rounds, base_seed)
        .run(estimator, workload, n, accuracy)
        .outcome()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_bfce::Bfce;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Paper.pick(1, 2), 2);
    }

    #[test]
    fn scale_from_args_recognises_both_scales() {
        assert_eq!(Scale::from_args(["--paper"]), Scale::Paper);
        assert_eq!(Scale::from_args(["fig07", "--paper", "--jobs"]), Scale::Paper);
        assert_eq!(Scale::from_args(["--quick"]), Scale::Quick);
        let none: [&str; 0] = [];
        assert_eq!(Scale::from_args(none), Scale::Quick);
    }

    #[test]
    fn build_system_is_deterministic() {
        let a = build_system(WorkloadSpec::T1, 100, 7);
        let b = build_system(WorkloadSpec::T1, 100, 7);
        assert_eq!(a.population().tags(), b.population().tags());
        assert_eq!(a.true_cardinality(), 100);
    }

    #[test]
    fn repeated_runs_aggregate_sensibly() {
        let out = run_repeated(
            &Bfce::paper(),
            WorkloadSpec::T1,
            20_000,
            Accuracy::paper_default(),
            3,
            11,
        );
        assert_eq!(out.trials, 3);
        assert!(out.mean_error <= out.max_error);
        assert!(out.mean_error < 0.05, "mean err = {}", out.mean_error);
        assert!(out.within_epsilon > 0.5);
        assert!(out.mean_seconds > 0.0 && out.mean_seconds <= out.max_seconds);
        assert!(out.p50_error <= out.p95_error && out.p95_error <= out.p99_error);
        assert!(out.p99_error <= out.max_error);
        assert!(out.p50_seconds > 0.0 && out.p99_seconds <= out.max_seconds);
    }

    #[test]
    fn run_repeated_uses_stream_split_seeds() {
        // Trial r of base seed b must be run_once under stream_seed(b, r).
        let acc = Accuracy::paper_default();
        let out = run_repeated(&Bfce::paper(), WorkloadSpec::T1, 20_000, acc, 2, 42);
        let r0 = run_once(
            &Bfce::paper(),
            WorkloadSpec::T1,
            20_000,
            acc,
            rfid_hash::stream_seed(42, 0),
        );
        let r1 = run_once(
            &Bfce::paper(),
            WorkloadSpec::T1,
            20_000,
            acc,
            rfid_hash::stream_seed(42, 1),
        );
        let want_mean = (r0.relative_error(20_000) + r1.relative_error(20_000)) / 2.0;
        assert!((out.mean_error - want_mean).abs() < 1e-12);
    }
}
