//! Shared experiment plumbing: scales, system construction, repeated runs.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_sim::{Accuracy, CardinalityEstimator, EstimationReport, RfidSystem};
use rfid_workloads::WorkloadSpec;

/// How big an experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small sweeps and few repetitions — used by `cargo bench` smoke
    /// targets and CI; finishes in seconds.
    Quick,
    /// The paper's full grids and repetition counts.
    Paper,
}

impl Scale {
    /// Parse from CLI args: `--paper` selects [`Scale::Paper`], anything
    /// else (or nothing) stays Quick.
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--paper") {
            Scale::Paper
        } else {
            Scale::Quick
        }
    }

    /// Pick between the quick and paper variants of a parameter.
    pub fn pick<T: Copy>(&self, quick: T, paper: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Paper => paper,
        }
    }
}

/// Build a fresh system for a workload of `n` tags, deterministically from
/// `seed`.
pub fn build_system(workload: WorkloadSpec, n: usize, seed: u64) -> RfidSystem {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    RfidSystem::new(workload.generate(n, &mut rng))
}

/// One estimation run on a fresh system; returns the report.
pub fn run_once(
    estimator: &dyn CardinalityEstimator,
    workload: WorkloadSpec,
    n: usize,
    accuracy: Accuracy,
    seed: u64,
) -> EstimationReport {
    let mut system = build_system(workload, n, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    estimator.estimate(&mut system, accuracy, &mut rng)
}

/// Aggregated accuracy/time over `rounds` independent runs (fresh
/// population and protocol seeds each round).
#[derive(Debug, Clone, Copy)]
pub struct RepeatedOutcome {
    /// Mean relative error `|n_hat - n| / n`.
    pub mean_error: f64,
    /// Worst relative error seen.
    pub max_error: f64,
    /// Fraction of rounds meeting the requested epsilon.
    pub within_epsilon: f64,
    /// Mean execution (air) time in seconds.
    pub mean_seconds: f64,
    /// Worst execution time in seconds.
    pub max_seconds: f64,
}

/// Run an estimator `rounds` times and aggregate.
pub fn run_repeated(
    estimator: &dyn CardinalityEstimator,
    workload: WorkloadSpec,
    n: usize,
    accuracy: Accuracy,
    rounds: u32,
    base_seed: u64,
) -> RepeatedOutcome {
    assert!(rounds >= 1, "need at least one round");
    let mut mean_error = 0.0;
    let mut max_error = 0.0f64;
    let mut hits = 0u32;
    let mut mean_seconds = 0.0;
    let mut max_seconds = 0.0f64;
    for r in 0..rounds {
        let seed = base_seed
            .wrapping_mul(0x100_0000_01B3)
            .wrapping_add(r as u64 + 1);
        let report = run_once(estimator, workload, n, accuracy, seed);
        let err = report.relative_error(n);
        mean_error += err;
        max_error = max_error.max(err);
        if err <= accuracy.epsilon {
            hits += 1;
        }
        let secs = report.air.total_seconds();
        mean_seconds += secs;
        max_seconds = max_seconds.max(secs);
    }
    RepeatedOutcome {
        mean_error: mean_error / rounds as f64,
        max_error,
        within_epsilon: hits as f64 / rounds as f64,
        mean_seconds: mean_seconds / rounds as f64,
        max_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_bfce::Bfce;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Paper.pick(1, 2), 2);
    }

    #[test]
    fn build_system_is_deterministic() {
        let a = build_system(WorkloadSpec::T1, 100, 7);
        let b = build_system(WorkloadSpec::T1, 100, 7);
        assert_eq!(a.population().tags(), b.population().tags());
        assert_eq!(a.true_cardinality(), 100);
    }

    #[test]
    fn repeated_runs_aggregate_sensibly() {
        let out = run_repeated(
            &Bfce::paper(),
            WorkloadSpec::T1,
            20_000,
            Accuracy::paper_default(),
            3,
            11,
        );
        assert!(out.mean_error <= out.max_error);
        assert!(out.mean_error < 0.05, "mean err = {}", out.mean_error);
        assert!(out.within_epsilon > 0.5);
        assert!(out.mean_seconds > 0.0 && out.mean_seconds <= out.max_seconds);
    }
}
