//! Experiment harness: regenerates every figure of the BFCE paper plus the
//! ablation studies listed in DESIGN.md.
//!
//! Each `figNN` module exposes `run(scale, seed) -> Table`; the `Table` can
//! be pretty-printed and written as CSV under `results/`. Binaries in
//! `src/bin` wrap each module (`cargo run --release -p rfid-experiments
//! --bin fig07 -- --paper`), and the `bench` crate exposes the same
//! entry points to `cargo bench` so the whole evaluation regenerates with
//! one command.
//!
//! | module | paper artifact |
//! |---|---|
//! | [`fig03`] | Fig. 3 — 0s/1s in `B` vs `n` (w=8192, k=3, p∈{0.1,0.2}) |
//! | [`fig04`] | Fig. 4 — `gamma` over `(p, rho)`, scalability bounds |
//! | [`fig05`] | Fig. 5 — monotonicity of `f1`/`f2` in `n` |
//! | [`fig06`] | Fig. 6 — the T1/T2/T3 tag-ID distributions |
//! | [`fig07`] | Fig. 7 — BFCE accuracy vs `n`, `epsilon`, `delta` |
//! | [`fig08`] | Fig. 8 — CDF of 100 estimation rounds |
//! | [`fig09`] | Fig. 9 — accuracy comparison BFCE/ZOE/SRC (T2) |
//! | [`fig10`] | Fig. 10 — execution-time comparison BFCE/ZOE/SRC (T2) |
//! | [`engine`] | trial-parallel Monte-Carlo runner (stream-split seeding, bitwise-deterministic aggregation) |
//! | [`ablations`] | k/w/c sweeps, hash & channel robustness, probe strategy, energy, crossover, shootout |
//! | [`guarantee`] | exact binomial test of the `(epsilon, delta)` claim |
//! | [`summary`] | headline claims (0.19 s, 9216 slots, >19 M, speedups) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod engine;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod golden;
pub mod guarantee;
pub mod output;
pub mod plots;
pub mod robustness;
pub mod runner;
pub mod summary;
pub mod tracking;

pub use engine::{configure, ExperimentArgs, TrialRunner, TrialSet};
pub use output::Table;
pub use runner::Scale;
