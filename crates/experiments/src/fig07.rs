//! Figure 7 — BFCE's estimation accuracy under different settings, for
//! all three tag-ID distributions:
//!
//! * (a) accuracy vs cardinality `n` at `(0.05, 0.05)`, `c = 0.5`;
//! * (b) accuracy vs `epsilon` at `n = 500 000`, `delta = 0.05`;
//! * (c) accuracy vs `delta` at `n = 500 000`, `epsilon = 0.05`.
//!
//! The paper's observation: accuracy stays near zero for every `n` and
//! distribution (a), always beats the requested `epsilon` by a wide margin
//! (b), and is insensitive to `delta` (c).

use crate::output::{fnum, Table};
use crate::runner::{run_repeated, Scale};
use rfid_bfce::Bfce;
use rfid_sim::Accuracy;
use rfid_workloads::WorkloadSpec;

/// Accuracy-vs-n sweep (subfigure a).
pub fn run_vs_n(scale: Scale, seed: u64) -> Table {
    let ns: &[usize] = match scale {
        Scale::Quick => &[1_000, 10_000, 100_000],
        Scale::Paper => &[1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000],
    };
    let rounds = scale.pick(2, 5);
    let mut table = Table::new(
        "Figure 7a: BFCE accuracy vs n (eps=0.05, delta=0.05, c=0.5)",
        &["n", "T1", "T2", "T3"],
    );
    let bfce = Bfce::paper();
    let acc = Accuracy::paper_default();
    let mut worst = 0.0f64;
    for &n in ns {
        let mut row = vec![n.to_string()];
        for (wi, spec) in WorkloadSpec::PAPER_SET.iter().enumerate() {
            let out = run_repeated(&bfce, *spec, n, acc, rounds, seed + wi as u64);
            worst = worst.max(out.mean_error);
            row.push(fnum(out.mean_error));
        }
        table.push_row(row);
    }
    table.note(format!(
        "worst mean accuracy across the grid: {worst:.4} (paper: 'very close to 0 regardless of n')"
    ));
    table
}

/// Accuracy-vs-epsilon sweep (subfigure b).
pub fn run_vs_epsilon(scale: Scale, seed: u64) -> Table {
    sweep_requirement(scale, seed, true)
}

/// Accuracy-vs-delta sweep (subfigure c).
pub fn run_vs_delta(scale: Scale, seed: u64) -> Table {
    sweep_requirement(scale, seed, false)
}

fn sweep_requirement(scale: Scale, seed: u64, vary_epsilon: bool) -> Table {
    let values: &[f64] = match scale {
        Scale::Quick => &[0.05, 0.2],
        Scale::Paper => &[0.05, 0.1, 0.15, 0.2, 0.25, 0.3],
    };
    let n = scale.pick(100_000usize, 500_000);
    let rounds = scale.pick(2, 5);
    let (which, fixed) = if vary_epsilon {
        ("epsilon", "delta=0.05")
    } else {
        ("delta", "eps=0.05")
    };
    let mut table = Table::new(
        format!("Figure 7{}: BFCE accuracy vs {which} (n={n}, {fixed})",
                if vary_epsilon { 'b' } else { 'c' }),
        &[which, "T1", "T2", "T3"],
    );
    let bfce = Bfce::paper();
    let mut worst = 0.0f64;
    for &v in values {
        let acc = if vary_epsilon {
            Accuracy::new(v, 0.05)
        } else {
            Accuracy::new(0.05, v)
        };
        let mut row = vec![fnum(v)];
        for (wi, spec) in WorkloadSpec::PAPER_SET.iter().enumerate() {
            // Decorrelate rounds across sweep points: with loose
            // requirements the optimizer often lands on the same p_n, and
            // identical seeds would then repeat rows verbatim.
            let cell_seed = seed + 31 * wi as u64 + (v * 1e4) as u64;
            let out = run_repeated(&bfce, *spec, n, acc, rounds, cell_seed);
            worst = worst.max(out.mean_error);
            row.push(fnum(out.mean_error));
        }
        table.push_row(row);
    }
    table.note(format!(
        "worst mean accuracy: {worst:.4} (paper: 'always below 0.04' across the sweep)"
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_vs_n_is_small_everywhere() {
        let t = run_vs_n(Scale::Quick, 1);
        for row in &t.rows {
            for cell in &row[1..] {
                let err: f64 = cell.parse().unwrap();
                assert!(err < 0.08, "accuracy {err} in {row:?}");
            }
        }
    }

    #[test]
    fn accuracy_beats_requested_epsilon() {
        let t = run_vs_epsilon(Scale::Quick, 2);
        for row in &t.rows {
            let eps: f64 = row[0].parse().unwrap();
            for cell in &row[1..] {
                let err: f64 = cell.parse().unwrap();
                assert!(err < eps.max(0.05), "err {err} at eps {eps}");
            }
        }
    }

    #[test]
    fn delta_sweep_runs() {
        let t = run_vs_delta(Scale::Quick, 3);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.headers[0], "delta");
    }
}
