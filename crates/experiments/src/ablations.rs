//! Ablation studies for the design choices the BFCE paper fixes
//! empirically (Section IV-B), plus extension studies beyond the paper:
//! hash quality, channel errors, and the related-work shootout.

use crate::engine::TrialRunner;
use crate::output::{fnum, Table};
use crate::runner::{run_repeated, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_hash::stream_seed;
use rfid_baselines::all_baselines;
use rfid_bfce::overhead::nominal_total_seconds;
use rfid_bfce::theory::max_cardinality;
use rfid_bfce::{Bfce, BfceConfig, HasherKind};
use rfid_sim::{Accuracy, BitErrorChannel, CardinalityEstimator, RfidSystem, Timing};
use rfid_workloads::WorkloadSpec;

/// Why k = 3: accuracy and overhead across k = 1..=8 (Section IV-B's
/// "reasonable tradeoff between overhead and accuracy").
pub fn run_k_sweep(scale: Scale, seed: u64) -> Table {
    let n = scale.pick(50_000usize, 500_000);
    let rounds = scale.pick(3u32, 10);
    let ks: &[usize] = match scale {
        Scale::Quick => &[1, 3, 6],
        Scale::Paper => &[1, 2, 3, 4, 5, 6, 7, 8],
    };
    let mut table = Table::new(
        format!("Ablation: number of hash functions k (n={n}, T1)"),
        &["k", "mean_err", "max_err", "mean_seconds"],
    );
    for &k in ks {
        let cfg = BfceConfig {
            k,
            ..BfceConfig::paper()
        };
        let out = run_repeated(
            &Bfce::new(cfg),
            WorkloadSpec::T1,
            n,
            Accuracy::paper_default(),
            rounds,
            seed + k as u64,
        );
        table.push_row(vec![
            k.to_string(),
            fnum(out.mean_error),
            fnum(out.max_error),
            fnum(out.mean_seconds),
        ]);
    }
    table.note("paper: k=3 balances hash-count variance against per-tag work");
    table
}

/// Why w = 8192: accuracy, nominal air time, and the scalability ceiling
/// across Bloom vector sizes.
pub fn run_w_sweep(scale: Scale, seed: u64) -> Table {
    let n = scale.pick(50_000usize, 200_000);
    let rounds = scale.pick(3u32, 10);
    let ws: &[usize] = match scale {
        Scale::Quick => &[2_048, 8_192, 32_768],
        Scale::Paper => &[1_024, 2_048, 4_096, 8_192, 16_384, 32_768, 65_536],
    };
    let mut table = Table::new(
        format!("Ablation: Bloom vector length w (n={n}, T1)"),
        &["w", "mean_err", "nominal_s", "max_cardinality"],
    );
    for &w in ws {
        let cfg = BfceConfig {
            w,
            rough_observe: (w / 8).max(1),
            ..BfceConfig::paper()
        };
        let out = run_repeated(
            &Bfce::new(cfg),
            WorkloadSpec::T1,
            n,
            Accuracy::paper_default(),
            rounds,
            seed + w as u64,
        );
        table.push_row(vec![
            w.to_string(),
            fnum(out.mean_error),
            fnum(nominal_total_seconds(&Timing::c1g2(), &cfg)),
            fnum(max_cardinality(w, cfg.k, 1024)),
        ]);
    }
    table.note("paper: w=8192 scales past 19M tags while keeping air time < 0.19 s");
    table
}

/// Why c = 0.5: how often the rough lower bound actually lower-bounds `n`
/// across the coefficient range the paper allows (`[0.1, 0.9]`).
pub fn run_c_sweep(scale: Scale, seed: u64) -> Table {
    let n = scale.pick(50_000usize, 500_000);
    let rounds = scale.pick(5u32, 20);
    let cs: &[f64] = match scale {
        Scale::Quick => &[0.1, 0.5, 0.9],
        Scale::Paper => &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
    };
    let mut table = Table::new(
        format!("Ablation: lower-bound coefficient c (n={n}, T1)"),
        &["c", "P(n_low<=n)", "provable_frac", "mean_err"],
    );
    for &c in cs {
        let cfg = BfceConfig {
            c,
            ..BfceConfig::paper()
        };
        let bfce = Bfce::new(cfg);
        let trials = TrialRunner::new(rounds, stream_seed(seed, (c * 1000.0) as u64))
            .map(|ctx| {
                let mut system = ctx.system(WorkloadSpec::T1, n);
                let mut rng = ctx.rng();
                let run = bfce.run(&mut system, Accuracy::paper_default(), &mut rng);
                (
                    run.rough.n_low <= n as f64,
                    run.accurate.as_ref().is_some_and(|a| a.provable),
                    run.report.relative_error(n),
                )
            });
        let lower_holds = trials.iter().filter(|t| t.0).count();
        let provable = trials.iter().filter(|t| t.1).count();
        let err_sum: f64 = trials.iter().map(|t| t.2).sum();
        table.push_row(vec![
            fnum(c),
            fnum(lower_holds as f64 / rounds as f64),
            fnum(provable as f64 / rounds as f64),
            fnum(err_sum / rounds as f64),
        ]);
    }
    table.note("paper: c=0.5 'can guarantee n_low <= n hold in most cases'");
    table
}

/// XOR-bitget vs full-avalanche hashing, across benign and adversarial
/// (sequential / clustered) tag-ID layouts.
pub fn run_hash_comparison(scale: Scale, seed: u64) -> Table {
    let n = scale.pick(50_000usize, 200_000);
    let rounds = scale.pick(3u32, 10);
    let workloads = [
        WorkloadSpec::T1,
        WorkloadSpec::T2,
        WorkloadSpec::T3,
        WorkloadSpec::Sequential,
        WorkloadSpec::Clustered { block: 1000 },
    ];
    let mut table = Table::new(
        format!("Ablation: tag-side hash (n={n}, mean relative error)"),
        &["workload", "xor-bitget", "mix64"],
    );
    for spec in workloads {
        let mut row = vec![spec.name().to_string()];
        for hasher in [HasherKind::XorBitget, HasherKind::Mix64] {
            let cfg = BfceConfig {
                hasher,
                ..BfceConfig::paper()
            };
            let out = run_repeated(
                &Bfce::new(cfg),
                spec,
                n,
                Accuracy::paper_default(),
                rounds,
                seed,
            );
            row.push(fnum(out.mean_error));
        }
        table.push_row(row);
    }
    table.note(
        "the paper's lightweight hash draws on the pre-stored RN, not the tag ID, \
         so even adversarial ID layouts stay uniform",
    );
    table
}

/// BFCE accuracy under channel bit errors (the paper assumes a perfect
/// channel; this quantifies the sensitivity of the idle-ratio inversion).
pub fn run_channel_sweep(scale: Scale, seed: u64) -> Table {
    let n = scale.pick(50_000usize, 200_000);
    let rounds = scale.pick(3u32, 10);
    // The quick variant keeps only the endpoints of the paper grid: with
    // 3 trials the mid-grid BERs sit inside trial-to-trial variance, so a
    // smoke test on them is a seed lottery rather than a signal check.
    let bers: &[f64] = match scale {
        Scale::Quick => &[0.0, 0.05],
        Scale::Paper => &[0.0, 0.001, 0.005, 0.01, 0.02, 0.05],
    };
    let mut table = Table::new(
        format!("Ablation: channel bit-error rate (n={n}, T1)"),
        &["ber", "mean_err", "max_err"],
    );
    let bfce = Bfce::paper();
    for &ber in bers {
        let out = TrialRunner::new(rounds, stream_seed(seed, (ber * 1e4) as u64))
            .run_with(n, Accuracy::paper_default(), |ctx| {
                let mut rng = StdRng::seed_from_u64(stream_seed(ctx.seed, 1));
                let population = WorkloadSpec::T1.generate(n, &mut rng);
                let mut system = if ber > 0.0 {
                    RfidSystem::with_channel(
                        population,
                        Box::new(BitErrorChannel::new(ber)),
                    )
                } else {
                    RfidSystem::new(population)
                };
                system.set_noise_seed(ctx.seed);
                system.set_frame_min_chunk(ctx.frame_min_chunk);
                bfce.estimate(&mut system, Accuracy::paper_default(), &mut rng)
            })
            .outcome();
        table.push_row(vec![
            fnum(ber),
            fnum(out.mean_error),
            fnum(out.max_error),
        ]);
    }
    table.note("beyond the paper: sensitivity of the idle-ratio inversion to slot misreads");
    table
}

/// Probe-strategy extension: the paper's additive `+2/-1` numerator steps
/// versus geometric doubling/halving. Small populations expose the
/// additive rule's linear walk (the probe cost is the only non-constant
/// term in BFCE's execution time).
pub fn run_probe_strategy(scale: Scale, seed: u64) -> Table {
    let rounds = scale.pick(3u32, 10);
    let ns: &[usize] = match scale {
        Scale::Quick => &[1_500, 10_000, 100_000],
        Scale::Paper => &[1_000, 1_500, 2_000, 5_000, 10_000, 50_000, 500_000],
    };
    let mut table = Table::new(
        "Extension: probe adjustment strategy (additive per the paper vs geometric)",
        &[
            "n",
            "probe_windows_additive",
            "probe_windows_geometric",
            "total_s_additive",
            "total_s_geometric",
        ],
    );
    for &n in ns {
        let mut cells = vec![n.to_string()];
        let mut windows = Vec::new();
        let mut seconds = Vec::new();
        for geometric in [false, true] {
            let cfg = BfceConfig {
                probe_geometric: geometric,
                ..BfceConfig::paper()
            };
            let bfce = Bfce::new(cfg);
            let trials = TrialRunner::new(rounds, stream_seed(seed, n as u64 * 31))
                .map(|ctx| {
                    let mut system = ctx.system(WorkloadSpec::T1, n);
                    let mut rng = ctx.rng();
                    let run = bfce.run(&mut system, Accuracy::paper_default(), &mut rng);
                    (run.probe.rounds as f64, run.report.air.total_seconds())
                });
            windows.push(trials.iter().map(|t| t.0).sum::<f64>() / rounds as f64);
            seconds.push(trials.iter().map(|t| t.1).sum::<f64>() / rounds as f64);
        }
        cells.push(fnum(windows[0]));
        cells.push(fnum(windows[1]));
        cells.push(fnum(seconds[0]));
        cells.push(fnum(seconds[1]));
        table.push_row(cells);
    }
    table.note(
        "the paper's overhead analysis omits the probe; at n ~ 1000 the additive \
         walk dominates execution time, geometric probing restores the constant",
    );
    table
}

/// PHY-link ablation: the execution-time comparison under different C1G2
/// link profiles (Tari / BLF / Miller). BFCE's constant-time property and
/// the protocol ranking must be robust to the physical rates, not an
/// artifact of the paper's nominal numbers.
pub fn run_link_sweep(scale: Scale, seed: u64) -> Table {
    use rfid_sim::LinkParams;
    let n = scale.pick(20_000usize, 100_000);
    let acc = Accuracy::paper_default();
    let profiles: [(&str, LinkParams); 3] = [
        ("paper-nominal", LinkParams::paper_nominal()),
        ("fast (Tari 6.25, BLF 640)", LinkParams::fast()),
        ("robust (Miller-8)", LinkParams::robust()),
    ];
    let mut table = Table::new(
        format!("Ablation: PHY link profile (n={n}, T2, eps=delta=0.05)"),
        &["profile", "BFCE_s", "ZOE_s", "SRC_s", "ZOE/BFCE"],
    );
    let bfce = Bfce::paper();
    let zoe = rfid_baselines::Zoe::default();
    let src = rfid_baselines::Src::default();
    for (name, link) in profiles {
        let timing = Timing::from_link(&link);
        let mut row = vec![name.to_string()];
        let mut times = Vec::new();
        for est in [&bfce as &dyn CardinalityEstimator, &zoe, &src] {
            let mut system = crate::runner::build_system(WorkloadSpec::T2, n, seed);
            system.set_timing(timing);
            let mut rng = StdRng::seed_from_u64(stream_seed(seed, 1));
            let report = est.estimate(&mut system, acc, &mut rng);
            times.push(report.air.total_seconds());
        }
        row.push(fnum(times[0]));
        row.push(fnum(times[1]));
        row.push(fnum(times[2]));
        row.push(fnum(times[1] / times[0]));
        table.push_row(row);
    }
    table.note("the ranking (BFCE < SRC < ZOE at tight accuracy) holds on every profile");
    table
}

/// Tag-side computation cost (Section IV-E2's lightweight-hash claim,
/// quantified): operation counts per tag per protocol unit, from the
/// instrumented mirrors in `rfid_hash::opcount`.
pub fn run_tag_ops(_scale: Scale, _seed: u64) -> Table {
    use rfid_hash::opcount::{bfce_frame_ops, bfce_mix_frame_ops, zoe_slot_ops};
    let mut table = Table::new(
        "Extension: tag-side operations (per tag, per protocol unit)",
        &["scheme", "unit", "bitwise", "shift", "add", "compare", "mul", "total"],
    );
    let rows: [(&str, &str, rfid_hash::TagOps); 3] = [
        ("BFCE (xor-bitget)", "frame (k=3)", bfce_frame_ops(3)),
        ("BFCE (mix64)", "frame (k=3)", bfce_mix_frame_ops(3)),
        ("ZOE", "single slot", zoe_slot_ops()),
    ];
    for (scheme, unit, ops) in rows {
        table.push_row(vec![
            scheme.into(),
            unit.into(),
            ops.bitwise.to_string(),
            ops.shift.to_string(),
            ops.add.to_string(),
            ops.compare.to_string(),
            ops.mul.to_string(),
            ops.total().to_string(),
        ]);
    }
    table.note(
        "the paper's hash runs a BFCE frame with zero multiplications — \
         implementable in passive-tag logic; ZOE re-pays a full hash with \
         multiplies on every one of its thousands of slots",
    );
    table
}

/// Where exact identification stops being "easy and fast": Q-protocol
/// inventory vs BFCE estimation across cardinalities (the paper's Section
/// III-A scoping argument, quantified).
pub fn run_crossover(scale: Scale, seed: u64) -> Table {
    let ns: &[usize] = match scale {
        Scale::Quick => &[100, 1_000, 10_000],
        Scale::Paper => &[100, 300, 1_000, 3_000, 10_000, 30_000, 100_000],
    };
    let mut table = Table::new(
        "Extension: exact Q-inventory vs BFCE estimation (T1)",
        &["n", "inventory_s", "bfce_s", "bfce_err", "winner"],
    );
    let bfce = Bfce::paper();
    let inventory = rfid_baselines::QInventory::default();
    let mut crossover: Option<usize> = None;
    for &n in ns {
        let inv = run_repeated(
            &inventory,
            WorkloadSpec::T1,
            n,
            Accuracy::paper_default(),
            scale.pick(1, 3),
            seed,
        );
        let est = run_repeated(
            &bfce,
            WorkloadSpec::T1,
            n,
            Accuracy::paper_default(),
            scale.pick(1, 3),
            seed + 1,
        );
        let winner = if inv.mean_seconds < est.mean_seconds {
            "inventory"
        } else {
            if crossover.is_none() {
                crossover = Some(n);
            }
            "BFCE"
        };
        table.push_row(vec![
            n.to_string(),
            fnum(inv.mean_seconds),
            fnum(est.mean_seconds),
            fnum(est.mean_error),
            winner.into(),
        ]);
    }
    if let Some(n) = crossover {
        table.note(format!(
            "estimation overtakes exact counting by n = {n} — consistent with the \
             paper's 'more than 1000 tags' scoping"
        ));
    }
    table.note("inventory returns the exact count; BFCE returns an (0.05, 0.05) estimate");
    table
}

/// Tag energy (total transmissions) per estimator — the active-tag metric
/// the MLE line of work optimizes.
pub fn run_energy(scale: Scale, seed: u64) -> Table {
    let n = scale.pick(20_000usize, 100_000);
    let rounds = scale.pick(1u32, 3);
    let acc = Accuracy::new(0.1, 0.1);
    let mut table = Table::new(
        format!("Extension: tag energy (transmissions) at n={n}, (0.1, 0.1)"),
        &["estimator", "tag_responses", "responses_per_tag", "air_s"],
    );
    let mut estimators: Vec<Box<dyn CardinalityEstimator>> = vec![Box::new(Bfce::paper())];
    estimators.extend(all_baselines());
    estimators.push(Box::new(rfid_baselines::QInventory::default()));
    for est in &estimators {
        let set = TrialRunner::new(rounds, seed).run(est.as_ref(), WorkloadSpec::T1, n, acc);
        let responses: u64 = set.records().iter().map(|r| r.air.tag_responses).sum();
        let secs: f64 = set.seconds().iter().sum();
        let mean_responses = responses as f64 / rounds as f64;
        table.push_row(vec![
            est.name().to_string(),
            fnum(mean_responses),
            fnum(mean_responses / n as f64),
            fnum(secs / rounds as f64),
        ]);
    }
    table.note(
        "responses_per_tag is the per-tag radio-activation count: the battery \
         drain proxy for active-tag deployments",
    );
    table
}

/// The full related-work shootout: every estimator in the workspace on one
/// population, accuracy and air time side by side.
pub fn run_shootout(scale: Scale, seed: u64) -> Table {
    let n = scale.pick(20_000usize, 100_000);
    let rounds = scale.pick(1u32, 3);
    let acc = Accuracy::new(0.1, 0.1);
    let mut table = Table::new(
        format!("Shootout: all estimators (n={n}, T1, eps=delta=0.1)"),
        &["estimator", "mean_err", "mean_seconds"],
    );
    let mut estimators: Vec<Box<dyn CardinalityEstimator>> = vec![Box::new(Bfce::paper())];
    estimators.extend(all_baselines());
    for est in &estimators {
        let out = run_repeated(est.as_ref(), WorkloadSpec::T1, n, acc, rounds, seed);
        table.push_row(vec![
            est.name().to_string(),
            fnum(out.mean_error),
            fnum(out.mean_seconds),
        ]);
    }
    table.note("LOF and PET are rough (constant-factor) estimators by design");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_sweep_shows_k1_worse_than_k3() {
        let t = run_k_sweep(Scale::Quick, 1);
        assert_eq!(t.rows[0][0], "1");
        assert_eq!(t.rows[1][0], "3");
        // Not a strict guarantee per run, but with 3 rounds k=1's max
        // error should not beat k=3's by a wide margin; just check shape.
        assert_eq!(t.rows.len(), 3);
    }

    #[test]
    fn w_sweep_caps_scale_with_w() {
        let t = run_w_sweep(Scale::Quick, 2);
        let caps: Vec<f64> = t
            .rows
            .iter()
            .map(|r| r[3].parse::<f64>().unwrap())
            .collect();
        assert!(caps.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn c_sweep_small_c_always_lower_bounds() {
        let t = run_c_sweep(Scale::Quick, 3);
        // c = 0.1 row: P(n_low <= n) should be 1.
        let p: f64 = t.rows[0][1].parse().unwrap();
        assert!((p - 1.0).abs() < 1e-9, "P = {p}");
    }

    #[test]
    fn hash_comparison_covers_adversarial_workloads() {
        let t = run_hash_comparison(Scale::Quick, 4);
        assert_eq!(t.rows.len(), 5);
        for row in &t.rows {
            for cell in &row[1..] {
                let err: f64 = cell.parse().unwrap();
                assert!(err < 0.1, "{row:?}");
            }
        }
    }

    #[test]
    fn link_sweep_preserves_the_ranking() {
        let t = run_link_sweep(Scale::Quick, 7);
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            let bfce: f64 = row[1].parse().unwrap();
            let zoe: f64 = row[2].parse().unwrap();
            let src: f64 = row[3].parse().unwrap();
            assert!(bfce < src && src < zoe, "{row:?}");
        }
        // The fast profile must actually be faster.
        let nominal_bfce: f64 = t.rows[0][1].parse().unwrap();
        let fast_bfce: f64 = t.rows[1][1].parse().unwrap();
        assert!(fast_bfce < nominal_bfce / 3.0);
    }

    #[test]
    fn channel_errors_degrade_accuracy() {
        let t = run_channel_sweep(Scale::Quick, 5);
        let clean: f64 = t.rows[0][1].parse().unwrap();
        let noisy: f64 = t.rows[1][1].parse().unwrap();
        assert!(noisy > clean, "clean {clean} vs noisy {noisy}");
    }

    #[test]
    fn shootout_includes_every_estimator() {
        let t = run_shootout(Scale::Quick, 6);
        // BFCE + every registered baseline; derived so growing the
        // baseline family can't silently shrink the shootout grid.
        assert_eq!(t.rows.len(), 1 + all_baselines().len());
        assert_eq!(t.rows[0][0], "BFCE");
        assert!(t.rows.iter().any(|r| r[0] == "A3"));
        assert!(t.rows.iter().any(|r| r[0] == "HLL++"));
        assert!(t.rows.iter().any(|r| r[0] == "LLBETA"));
    }
}
