//! Figure 10 — overall execution-time comparison of BFCE, ZOE and SRC on
//! the T2 distribution, across `n`, `epsilon` and `delta`.
//!
//! The paper's reading: ZOE costs seconds (up to ~18 s when its rough
//! estimate misleads the slot budget) because every slot carries a 32-bit
//! seed broadcast; SRC is sub-second but varies with the rough estimate;
//! BFCE is constant at < 0.19 s — "30 times faster than ZOE and 2 times
//! faster than SRC in average". The exact ratios depend on the modelling
//! choices documented in DESIGN.md; the *shape* (BFCE constant and
//! fastest at tight accuracy, ZOE slowest by an order of magnitude) is the
//! reproduction target.

use crate::fig09::{grid, Sweep};
use crate::output::{fnum, Table};
use crate::runner::{run_repeated, Scale};
use rfid_baselines::{Src, Zoe};
use rfid_bfce::Bfce;
use rfid_sim::CardinalityEstimator;
use rfid_workloads::WorkloadSpec;

/// Run one sweep of the execution-time comparison.
pub fn run(sweep: Sweep, scale: Scale, seed: u64) -> Table {
    let rounds = scale.pick(1u32, 3);
    let sub = match sweep {
        Sweep::N => "a (vs n)",
        Sweep::Epsilon => "b (vs epsilon)",
        Sweep::Delta => "c (vs delta)",
    };
    let mut table = Table::new(
        format!("Figure 10{sub}: execution time (seconds) on T2"),
        &["x", "BFCE", "ZOE", "SRC", "ZOE/BFCE", "SRC/BFCE"],
    );
    let bfce = Bfce::paper();
    let zoe = Zoe::default();
    let src = Src::default();
    let mut ratio_zoe = Vec::new();
    let mut ratio_src = Vec::new();
    let mut worst_bfce = 0.0f64;
    let mut worst_bfce_p95 = 0.0f64;
    for (label, n, acc) in grid(sweep, scale) {
        let b = run_repeated(&bfce, WorkloadSpec::T2, n, acc, rounds, seed);
        let z = run_repeated(&zoe, WorkloadSpec::T2, n, acc, rounds, seed + 1);
        let s = run_repeated(&src, WorkloadSpec::T2, n, acc, rounds, seed + 2);
        worst_bfce = worst_bfce.max(b.max_seconds);
        worst_bfce_p95 = worst_bfce_p95.max(b.p95_seconds);
        let rz = z.mean_seconds / b.mean_seconds;
        let rs = s.mean_seconds / b.mean_seconds;
        ratio_zoe.push(rz);
        ratio_src.push(rs);
        table.push_row(vec![
            label,
            fnum(b.mean_seconds),
            fnum(z.mean_seconds),
            fnum(s.mean_seconds),
            fnum(rz),
            fnum(rs),
        ]);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    table.note(format!(
        "mean speedup over this sweep: ZOE/BFCE {:.1}x, SRC/BFCE {:.1}x \
         (paper: 30x and 2x on average)",
        mean(&ratio_zoe),
        mean(&ratio_src)
    ));
    table.note(format!(
        "worst BFCE execution time: {worst_bfce:.4} s, p95 {worst_bfce_p95:.4} s \
         (paper: constant, < 0.19 s excluding the probe stage)"
    ));
    table
}

/// Names of the three contenders, in column order (used by callers that
/// post-process tables).
pub fn contender_names() -> [&'static str; 3] {
    [
        Bfce::paper().name(),
        Zoe::default().name(),
        Src::default().name(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfce_is_constant_and_zoe_is_slowest_at_tight_accuracy() {
        let t = run(Sweep::N, Scale::Quick, 1);
        let mut bfce_times = Vec::new();
        for row in &t.rows {
            let b: f64 = row[1].parse().unwrap();
            let z: f64 = row[2].parse().unwrap();
            let s: f64 = row[3].parse().unwrap();
            assert!(z > s, "ZOE {z} not slower than SRC {s}");
            assert!(z > 10.0 * b, "ZOE {z} not >>10x BFCE {b}");
            bfce_times.push(b);
        }
        // BFCE "constant": spread within 25% across n (probe rounds vary
        // slightly at the small end).
        let min = bfce_times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = bfce_times.iter().cloned().fold(0.0f64, f64::max);
        assert!(max / min < 1.25, "BFCE not constant: {bfce_times:?}");
    }

    #[test]
    fn contender_names_match_figure_legend() {
        assert_eq!(contender_names(), ["BFCE", "ZOE", "SRC"]);
    }
}
