//! Statistical validation of the `(epsilon, delta)` guarantee itself.
//!
//! Figures 7–9 eyeball accuracy; this module *tests* the probabilistic
//! claim: over `R` independent rounds, the number of rounds whose error
//! exceeds `epsilon` is `Binomial(R, q)` with `q <= delta` if the
//! guarantee holds. We reject the guarantee only if the observed miss
//! count is so large that `Pr{misses >= observed | q = delta}` falls below
//! a small significance level — a proper one-sided binomial test, so the
//! harness neither cries wolf on lucky/unlucky runs nor rubber-stamps a
//! broken estimator.

use crate::engine::TrialRunner;
use crate::output::{fnum, Table};
use crate::runner::Scale;
use rfid_bfce::Bfce;
use rfid_sim::{Accuracy, CardinalityEstimator};
use rfid_stats::binomial_tail_ge;
use rfid_workloads::WorkloadSpec;

/// Outcome of one guarantee check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuaranteeCheck {
    /// Rounds run.
    pub rounds: u32,
    /// Rounds whose relative error exceeded epsilon.
    pub misses: u32,
    /// `Pr{misses >= observed}` under the hypothesis `miss rate = delta`.
    pub p_value: f64,
    /// Whether the guarantee survives at the given significance.
    pub holds: bool,
}

/// Run `rounds` independent estimations and test the miss count against
/// `delta` at one-sided significance `alpha`.
pub fn check_guarantee(
    estimator: &dyn CardinalityEstimator,
    workload: WorkloadSpec,
    n: usize,
    accuracy: Accuracy,
    rounds: u32,
    alpha: f64,
    base_seed: u64,
) -> GuaranteeCheck {
    assert!(rounds >= 1, "need at least one round");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must lie in (0, 1)");
    // Trial-parallel: round r runs under stream_seed(base_seed, r), and the
    // miss count is aggregated from trial-ordered records, so the check is
    // reproducible at any worker count.
    let misses = TrialRunner::new(rounds, base_seed)
        .run(estimator, workload, n, accuracy)
        .misses();
    // One-sided exact binomial test: how surprising is this many misses if
    // the true miss probability were exactly delta (the worst allowed)?
    let p_value = binomial_tail_ge(rounds as u64, misses as u64, accuracy.delta);
    GuaranteeCheck {
        rounds,
        misses,
        p_value,
        holds: p_value >= alpha,
    }
}

/// The guarantee table: BFCE at several `(epsilon, delta)` points across
/// the paper's workloads.
pub fn run(scale: Scale, seed: u64) -> Table {
    let rounds = scale.pick(40u32, 200);
    let n = scale.pick(20_000usize, 100_000);
    let alpha = 0.01;
    let grid: &[(f64, f64)] = &[(0.05, 0.05), (0.05, 0.2), (0.1, 0.05), (0.2, 0.1)];
    let mut table = Table::new(
        format!(
            "Guarantee validation: BFCE miss rates over {rounds} rounds (n={n}, \
             one-sided binomial test at alpha={alpha})"
        ),
        &["epsilon", "delta", "workload", "misses", "miss_rate", "p_value", "holds"],
    );
    let bfce = Bfce::paper();
    let mut all_hold = true;
    for &(eps, delta) in grid {
        for (wi, spec) in WorkloadSpec::PAPER_SET.iter().enumerate() {
            let check = check_guarantee(
                &bfce,
                *spec,
                n,
                Accuracy::new(eps, delta),
                rounds,
                alpha,
                seed + wi as u64 * 7919 + (eps * 1e3 + delta * 10.0) as u64,
            );
            all_hold &= check.holds;
            table.push_row(vec![
                fnum(eps),
                fnum(delta),
                spec.name().into(),
                check.misses.to_string(),
                fnum(check.misses as f64 / rounds as f64),
                fnum(check.p_value),
                check.holds.to_string(),
            ]);
        }
    }
    table.note(format!(
        "guarantee {} at every grid point",
        if all_hold { "holds" } else { "REJECTED" }
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfce_guarantee_holds_on_a_quick_grid() {
        let t = run(Scale::Quick, 17);
        assert!(t.notes[0].contains("holds"), "{}", t.notes[0]);
        // Miss rates must be plausible (not NaN, within [0, 1]).
        for row in &t.rows {
            let rate: f64 = row[4].parse().unwrap();
            assert!((0.0..=1.0).contains(&rate));
        }
    }

    #[test]
    fn the_test_rejects_a_knowingly_broken_estimator() {
        // LOF ignores (epsilon, delta); at (0.05, 0.05) its constant-factor
        // errors must blow the binomial bound.
        let check = check_guarantee(
            &rfid_baselines::Lof::default(),
            WorkloadSpec::T1,
            20_000,
            Accuracy::new(0.05, 0.05),
            40,
            0.01,
            3,
        );
        assert!(!check.holds, "{check:?}");
        assert!(check.misses > 10);
    }

    #[test]
    fn p_value_is_consistent_with_the_binomial_tail() {
        // At (0.2, 0.2) BFCE tunes p to sit right at the requirement edge,
        // so some misses are expected and allowed; the p-value must equal
        // the exact binomial tail at the observed count and the guarantee
        // must hold at this loose operating point.
        let check = check_guarantee(
            &Bfce::paper(),
            WorkloadSpec::T1,
            50_000,
            Accuracy::new(0.2, 0.2),
            10,
            0.01,
            5,
        );
        let expect = binomial_tail_ge(10, check.misses as u64, 0.2);
        assert!((check.p_value - expect).abs() < 1e-12, "{check:?}");
        assert!(check.holds, "{check:?}");
    }
}
