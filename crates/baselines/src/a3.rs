//! A³ — the Arbitrarily Accurate Approximation scheme of Gong et al.
//! (INFOCOM 2014), the fourth state-of-the-art estimator the BFCE paper
//! cites (its reference \[16\]).
//!
//! A³'s idea is *composable accuracy*: run balanced frames round by
//! round, re-tuning the persistence from the running estimate, and
//! combine the per-round estimates by inverse-variance weighting until
//! the accumulated information reaches the `(epsilon, delta)` target —
//! however tight that target is. The per-round relative variance of the
//! idle-ratio inversion at load `lambda` over `f` slots is
//! `(e^lambda - 1) / (lambda^2 f)`, so each round contributes a known
//! amount of information even when its load is off-optimal (early rounds,
//! when the running estimate is still rough).

use crate::common::{clamped_rho, uniform_frame_plan, ZOE_OPTIMAL_LAMBDA};
use crate::lof::Lof;
use rand::RngCore;
use rfid_sim::{
    Accuracy, CardinalityEstimator, EstimationReport, PhaseReport, RfidSystem,
};
use rfid_stats::d_for_delta;

/// Relative variance of one balanced-frame estimate at realized load
/// `lambda` over `f` slots: `(e^lambda - 1) / (lambda^2 f)`.
pub fn round_relative_variance(lambda: f64, f: usize) -> f64 {
    assert!(lambda > 0.0, "lambda must be positive");
    assert!(f > 0, "frame must be non-empty");
    (lambda.exp() - 1.0) / (lambda * lambda * f as f64)
}

/// The A³ estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct A3 {
    /// Frame size per round (bit-slots).
    pub frame: usize,
    /// Hard cap on rounds.
    pub max_rounds: u64,
}

impl Default for A3 {
    fn default() -> Self {
        Self {
            frame: 512,
            max_rounds: 512,
        }
    }
}

// analysis:allow(snapshot-surface): one-shot A3 protocol re-runs ALOHA frames per trial; no mergeable per-reader state to export (ROADMAP item 2 burndown)
impl CardinalityEstimator for A3 {
    fn name(&self) -> &'static str {
        "A3"
    }

    fn estimate(
        &self,
        system: &mut RfidSystem,
        accuracy: Accuracy,
        rng: &mut dyn RngCore,
    ) -> EstimationReport {
        let mut warnings = Vec::new();
        let start = system.air_time();
        let f = self.frame;

        // Bootstrap the running estimate with one geometric frame.
        let mut n_hat = Lof {
            rounds: 1,
            frame: 32,
        }
        .rough_estimate(system, rng)
        .max(1.0);
        let after_boot = system.air_time();

        // Accumulate inverse-variance-weighted estimates until the
        // combined relative variance clears the (epsilon, delta) target.
        let d = d_for_delta(accuracy.delta);
        let target_var = (accuracy.epsilon / d).powi(2);
        let mut weight_sum = 0.0f64;
        let mut weighted_estimate = 0.0f64;
        let mut rounds = 0u64;
        while rounds < self.max_rounds {
            rounds += 1;
            let p = (ZOE_OPTIMAL_LAMBDA * f as f64 / n_hat).min(1.0);
            let seed = rng.next_u32();
            system.turnaround();
            system.broadcast(64);
            let frame = system.run_bitslot_frame(f, &uniform_frame_plan(seed, f, p));
            let idle = frame.idle_count();
            if idle == 0 || idle == f {
                warnings.push("degenerate A3 frame; rho clamped".into());
            }
            let rho = clamped_rho(idle, f);
            let round_estimate = -(f as f64) * rho.ln() / p;
            let lambda_realized = (-rho.ln()).max(1e-6);
            let variance = round_relative_variance(lambda_realized, f);
            let weight = 1.0 / variance;
            weighted_estimate += weight * round_estimate;
            weight_sum += weight;
            n_hat = (weighted_estimate / weight_sum).max(1.0);
            // Combined relative variance of the weighted mean.
            if 1.0 / weight_sum <= target_var {
                break;
            }
        }
        if rounds == self.max_rounds {
            warnings.push(format!("round budget capped at {}", self.max_rounds));
        }

        let end = system.air_time();
        EstimationReport {
            n_hat,
            air: end.since(&start),
            phases: vec![
                PhaseReport {
                    name: "bootstrap (LOF)".into(),
                    air: after_boot.since(&start),
                },
                PhaseReport {
                    name: format!("adaptive frames x{rounds}"),
                    air: end.since(&after_boot),
                },
            ],
            rounds: 1 + rounds,
            warnings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rfid_sim::{Tag, TagPopulation};

    fn system_with(n: usize) -> RfidSystem {
        let tags = (0..n as u64)
            .map(|i| Tag {
                id: i * 41 + 17,
                rn: i as u32,
            })
            .collect();
        RfidSystem::new(TagPopulation::new(tags))
    }

    #[test]
    fn variance_formula_is_minimized_near_the_optimal_load() {
        let at_opt = round_relative_variance(ZOE_OPTIMAL_LAMBDA, 512);
        assert!(round_relative_variance(0.3, 512) > at_opt);
        assert!(round_relative_variance(4.0, 512) > at_opt);
    }

    #[test]
    fn estimates_meet_the_requirement_usually() {
        for (seed, truth) in [(1u64, 10_000usize), (2, 100_000), (3, 500_000)] {
            let mut sys = system_with(truth);
            let mut rng = StdRng::seed_from_u64(seed);
            let report =
                A3::default().estimate(&mut sys, Accuracy::paper_default(), &mut rng);
            let rel = report.relative_error(truth);
            assert!(rel < 0.06, "n = {truth}: rel = {rel}");
        }
    }

    #[test]
    fn tighter_accuracy_runs_more_rounds() {
        let mut sys = system_with(50_000);
        let mut rng = StdRng::seed_from_u64(4);
        let tight =
            A3::default().estimate(&mut sys, Accuracy::new(0.03, 0.05), &mut rng);
        sys.reset_ledger();
        let loose =
            A3::default().estimate(&mut sys, Accuracy::new(0.2, 0.2), &mut rng);
        assert!(tight.rounds > loose.rounds, "{} vs {}", tight.rounds, loose.rounds);
    }

    #[test]
    fn arbitrary_accuracy_really_is_arbitrary() {
        // The defining property: even a very tight epsilon converges.
        let truth = 200_000usize;
        let mut sys = system_with(truth);
        let mut rng = StdRng::seed_from_u64(5);
        let report =
            A3::default().estimate(&mut sys, Accuracy::new(0.02, 0.05), &mut rng);
        assert!(report.relative_error(truth) < 0.025);
        assert!(report.warnings.iter().all(|w| !w.contains("capped")));
    }

    #[test]
    fn early_rounds_with_bad_estimates_are_downweighted() {
        // Feed a system whose LOF bootstrap will be off; the final
        // estimate must still land (weights handle off-optimal loads).
        let truth = 64_000usize;
        let mut sys = system_with(truth);
        let mut rng = StdRng::seed_from_u64(6);
        let report =
            A3::default().estimate(&mut sys, Accuracy::paper_default(), &mut rng);
        assert!(report.relative_error(truth) < 0.05);
    }
}
