//! PET — the Probabilistic Estimating Tree of Zheng & Li (TMC 2012).
//!
//! PET hashes every tag to a geometric *level* and walks the implicit
//! binary tree with single-slot probes: "is any tag at level >= L?". A
//! binary search over levels needs `O(log log n)` probes to find the
//! highest occupied level `L*`, whose expectation tracks `log2(n)` — the
//! same Flajolet–Martin statistic LOF reads from a whole frame, collected
//! with exponentially fewer slots. Averaging `L*` over independent rounds
//! sharpens the constant-factor estimate.
//!
//! Like LOF, PET is a rough estimator: it powers rough phases and is
//! benchmarked here for the historical record, not for `(epsilon, delta)`
//! guarantees.

use rand::RngCore;
use rfid_hash::geometric_level;
use rfid_sim::{
    Accuracy, CardinalityEstimator, EstimationReport, PhaseReport, RfidSystem, Tag,
};

/// The PET estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pet {
    /// Independent estimating trees to average.
    pub rounds: u32,
    /// Depth of each tree (32 levels cover n up to ~2^31).
    pub max_level: u32,
}

impl Default for Pet {
    fn default() -> Self {
        Self {
            rounds: 24,
            max_level: 32,
        }
    }
}

impl Pet {
    /// One single-slot probe: does any tag sit at `level >= threshold`
    /// under `seed`? Charges one (seed + level) broadcast and one bit-slot.
    fn probe(
        &self,
        system: &mut RfidSystem,
        seed: u32,
        threshold: u32,
        first: bool,
    ) -> bool {
        if !first {
            system.turnaround();
        }
        // 32-bit seed + 8-bit level threshold.
        system.broadcast(40);
        let max_level = self.max_level;
        let plan = move |tag: &Tag, out: &mut Vec<usize>| {
            if geometric_level(tag.id, seed, max_level) >= threshold {
                out.push(0);
            }
        };
        let frame = system.run_bitslot_frame(1, &plan);
        frame.is_busy(0)
    }

    /// Binary-search the highest occupied level of one tree; 0 when even
    /// level 1 is unoccupied (empty population).
    fn highest_occupied(
        &self,
        system: &mut RfidSystem,
        seed: u32,
        first_round: bool,
    ) -> (u32, u32) {
        if !self.probe(system, seed, 1, first_round) {
            return (0, 1);
        }
        let mut probes = 1u32;
        // Invariant: level `lo` is occupied, level `hi + 1` is not.
        let mut lo = 1u32;
        let mut hi = self.max_level;
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            probes += 1;
            if self.probe(system, seed, mid, false) {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        (lo, probes)
    }
}

// analysis:allow(snapshot-surface): one-shot PET protocol estimates from collision trees of fresh frames; no mergeable per-reader state to export (ROADMAP item 2 burndown)
impl CardinalityEstimator for Pet {
    fn name(&self) -> &'static str {
        "PET"
    }

    fn estimate(
        &self,
        system: &mut RfidSystem,
        _accuracy: Accuracy,
        rng: &mut dyn RngCore,
    ) -> EstimationReport {
        assert!(self.rounds >= 1, "PET needs at least one round");
        let start = system.air_time();
        let mut level_sum = 0.0f64;
        let mut total_probes = 0u64;
        let mut any_occupied = false;
        for round in 0..self.rounds {
            let seed = rng.next_u32();
            let (level, probes) = self.highest_occupied(system, seed, round == 0);
            any_occupied |= level > 0;
            level_sum += level as f64;
            total_probes += probes as u64;
        }
        let mean_level = level_sum / self.rounds as f64;
        // The highest occupied geometric level is the same FM statistic as
        // LOF's first-idle position (shifted by one): E[L*] ~ log2(phi n).
        let n_hat = if any_occupied {
            crate::lof::FM_CORRECTION * 2f64.powf(mean_level - 1.0)
        } else {
            0.0
        };
        let air = system.air_time().since(&start);
        EstimationReport {
            n_hat,
            air,
            phases: vec![PhaseReport {
                name: format!("tree probes x{total_probes}"),
                air,
            }],
            rounds: self.rounds as u64,
            warnings: vec![
                "PET is a rough (constant-factor) estimator; the accuracy \
                 requirement is not enforced"
                    .into(),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rfid_sim::TagPopulation;

    fn system_with(n: usize) -> RfidSystem {
        let tags = (0..n as u64)
            .map(|i| Tag {
                id: i * 37 + 13,
                rn: i as u32,
            })
            .collect();
        RfidSystem::new(TagPopulation::new(tags))
    }

    #[test]
    fn rough_estimate_within_a_constant_factor() {
        for truth in [1_000usize, 30_000, 300_000] {
            let mut sys = system_with(truth);
            let mut rng = StdRng::seed_from_u64(truth as u64 + 1);
            let report =
                Pet::default().estimate(&mut sys, Accuracy::paper_default(), &mut rng);
            let ratio = report.n_hat / truth as f64;
            assert!(
                (0.3..3.0).contains(&ratio),
                "n = {truth}: n_hat = {} (ratio {ratio})",
                report.n_hat
            );
        }
    }

    #[test]
    fn probe_count_is_logarithmic_not_linear() {
        let mut sys = system_with(100_000);
        let mut rng = StdRng::seed_from_u64(2);
        let pet = Pet::default();
        let report = pet.estimate(&mut sys, Accuracy::paper_default(), &mut rng);
        // Binary search over 32 levels: <= 6 probes per round.
        let max_probes = pet.rounds as u64 * 7;
        assert!(
            report.air.bitslots <= max_probes,
            "{} probes for {} rounds",
            report.air.bitslots,
            pet.rounds
        );
    }

    #[test]
    fn empty_population_estimates_zero_quickly() {
        let mut sys = system_with(0);
        let mut rng = StdRng::seed_from_u64(3);
        let report =
            Pet::default().estimate(&mut sys, Accuracy::paper_default(), &mut rng);
        assert_eq!(report.n_hat, 0.0);
        // One probe per round suffices when level 1 is empty.
        assert_eq!(report.air.bitslots, Pet::default().rounds as u64);
    }

    #[test]
    fn pet_is_cheaper_than_lof_per_information() {
        // Same FM statistic, but PET's binary search touches ~6 slots per
        // round vs LOF's 32.
        let mut rng = StdRng::seed_from_u64(4);
        let mut sys = system_with(50_000);
        let pet = Pet {
            rounds: 10,
            max_level: 32,
        }
        .estimate(&mut sys, Accuracy::paper_default(), &mut rng);
        let mut sys2 = system_with(50_000);
        let lof = crate::lof::Lof::default().estimate(
            &mut sys2,
            Accuracy::paper_default(),
            &mut rng,
        );
        assert!(pet.air.bitslots < lof.air.bitslots);
    }
}
