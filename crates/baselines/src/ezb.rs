//! EZB — the Enhanced Zero-Based estimator of Kodialam, Nandagopal & Lau
//! (INFOCOM 2007).
//!
//! EZB improves on UPE by using only the *number of empty slots* across
//! multiple frames — a statistic the reader can collect from 1-bit
//! busy/idle observations, with no need to distinguish singletons from
//! collisions (and hence no anonymity leak, the paper's motivation). Each
//! round is a balanced frame; the averaged empty fraction inverts through
//! `rho = e^(-p n / f)`.

use crate::common::{clamped_rho, required_trials, uniform_frame_plan, ZOE_OPTIMAL_LAMBDA};
use crate::lof::Lof;
use rand::RngCore;
use rfid_sim::{
    Accuracy, CardinalityEstimator, EstimationReport, PhaseReport, RfidSystem,
};
use rfid_stats::d_for_delta;

/// The EZB estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ezb {
    /// Frame size per round (bit-slots).
    pub frame: usize,
}

impl Default for Ezb {
    fn default() -> Self {
        Self { frame: 1024 }
    }
}

// analysis:allow(snapshot-surface): one-shot EZB protocol estimates from empty/busy counts of fresh frames; no mergeable per-reader state to export (ROADMAP item 2 burndown)
impl CardinalityEstimator for Ezb {
    fn name(&self) -> &'static str {
        "EZB"
    }

    fn estimate(
        &self,
        system: &mut RfidSystem,
        accuracy: Accuracy,
        rng: &mut dyn RngCore,
    ) -> EstimationReport {
        let mut warnings = Vec::new();
        let start = system.air_time();
        let f = self.frame;

        let n_r = Lof {
            rounds: 1,
            frame: 32,
        }
        .rough_estimate(system, rng)
        .max(1.0);
        let after_rough = system.air_time();

        let p = (ZOE_OPTIMAL_LAMBDA * f as f64 / n_r).min(1.0);
        let d = d_for_delta(accuracy.delta);
        let trials = required_trials(accuracy.epsilon, d, ZOE_OPTIMAL_LAMBDA);
        let rounds = trials.div_ceil(f as u64).max(1);

        let mut idle = 0usize;
        for _ in 0..rounds {
            let seed = rng.next_u32();
            system.turnaround();
            system.broadcast(64);
            let frame = system.run_bitslot_frame(f, &uniform_frame_plan(seed, f, p));
            idle += frame.idle_count();
        }
        let total = rounds as usize * f;
        if idle == 0 || idle == total {
            warnings.push("degenerate EZB observations; rho clamped".into());
        }
        let rho = clamped_rho(idle, total);
        let n_hat = -(f as f64) * rho.ln() / p;

        let end = system.air_time();
        EstimationReport {
            n_hat,
            air: end.since(&start),
            phases: vec![
                PhaseReport {
                    name: "rough (LOF)".into(),
                    air: after_rough.since(&start),
                },
                PhaseReport {
                    name: format!("zero frames x{rounds}"),
                    air: end.since(&after_rough),
                },
            ],
            rounds: 1 + rounds,
            warnings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rfid_sim::{Tag, TagPopulation};

    fn system_with(n: usize) -> RfidSystem {
        let tags = (0..n as u64)
            .map(|i| Tag {
                id: i * 19 + 11,
                rn: i as u32,
            })
            .collect();
        RfidSystem::new(TagPopulation::new(tags))
    }

    #[test]
    fn estimates_meet_paper_default_accuracy_usually() {
        for (seed, truth) in [(1u64, 5_000usize), (2, 50_000), (3, 500_000)] {
            let mut sys = system_with(truth);
            let mut rng = StdRng::seed_from_u64(seed);
            let report =
                Ezb::default().estimate(&mut sys, Accuracy::paper_default(), &mut rng);
            let rel = report.relative_error(truth);
            assert!(rel < 0.08, "n = {truth}: rel = {rel}");
        }
    }

    #[test]
    fn uses_bitslots_not_aloha() {
        let mut sys = system_with(10_000);
        let mut rng = StdRng::seed_from_u64(4);
        let report =
            Ezb::default().estimate(&mut sys, Accuracy::paper_default(), &mut rng);
        assert_eq!(report.air.aloha_slots, 0);
        assert!(report.air.bitslots > 1024);
    }

    #[test]
    fn much_cheaper_than_upe() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut sys = system_with(10_000);
        let ezb =
            Ezb::default().estimate(&mut sys, Accuracy::paper_default(), &mut rng);
        let mut sys2 = system_with(10_000);
        let upe = crate::upe::Upe::default().estimate(
            &mut sys2,
            Accuracy::paper_default(),
            &mut rng,
        );
        assert!(ezb.air.total_us() < upe.air.total_us() / 4.0);
    }

    #[test]
    fn empty_population_warns_and_returns_small() {
        let mut sys = system_with(0);
        let mut rng = StdRng::seed_from_u64(6);
        let report =
            Ezb::default().estimate(&mut sys, Accuracy::paper_default(), &mut rng);
        // p clamps to 1, all slots idle -> clamped rho -> tiny estimate.
        assert!(report.n_hat < 5.0, "n_hat = {}", report.n_hat);
        assert!(!report.warnings.is_empty());
    }
}
