//! Exact counting by identification: the EPCglobal C1G2 Q-protocol.
//!
//! The BFCE paper scopes itself to large systems because "it is easy and
//! fast to get the exact number of tags by using traditional
//! identification protocols when the cardinality is small" (Section
//! III-A). This module implements that tradition — slotted Aloha with the
//! C1G2 slot-by-slot Q-algorithm — so the evaluation can show *where* the
//! crossover between exact inventory and probabilistic estimation lies.
//!
//! Protocol model (C1G2 §6.3.2.4, QueryAdjust variant): the reader keeps a
//! floating-point `Q_fp`; each slot, every unidentified tag independently
//! answers with probability `2^-Q`. An empty slot nudges `Q_fp` down, a
//! collision nudges it up, a singleton identifies its tag (RN16 handshake,
//! 18-bit ACK, 112-bit EPC+PC/CRC payload). `Q_fp` self-stabilizes near
//! `log2(pending)`, so identification costs ~`e` slots per tag and total
//! air time grows linearly in `n` — which is exactly why estimation wins
//! for large populations.
//!
//! Simulation note: slot occupancy is `Binomial(pending, 2^-Q)` and the
//! identified tag is a uniformly random pending one; we sample those
//! directly instead of hashing every tag every slot (statistically
//! identical observable, O(1) host work per slot — see DESIGN.md).

use rand::Rng;
use rand::RngCore;
use rfid_sim::{
    Accuracy, CardinalityEstimator, EstimationReport, PhaseReport, RfidSystem,
};

/// C1G2 Q-algorithm adjustment weight (the standard suggests 0.1–0.5).
const Q_ADJUST: f64 = 0.35;

/// Reader bits per QueryAdjust/QueryRep command sequencing a slot.
const QUERY_BITS: u64 = 9;

/// Tag bits in the RN16 reply that opens an occupied slot.
const RN16_BITS: u64 = 16;

/// Reader bits in the ACK that elicits the EPC.
const ACK_BITS: u64 = 18;

/// Tag bits in the identification payload (EPC-96 + PC/CRC).
const EPC_BITS: u64 = 112;

/// Sample `Binomial(n, p)` using the provided RNG: exact Bernoulli
/// counting for small expected counts, normal approximation (rounded and
/// clamped) when `n·p` is large. Accuracy of the tail is irrelevant here —
/// only the empty/single/collision classification feeds the protocol.
fn sample_binomial(n: u64, p: f64, rng: &mut dyn RngCore) -> u64 {
    debug_assert!((0.0..=1.0).contains(&p));
    if n == 0 || p <= 0.0 {
        return 0;
    }
    let mean = n as f64 * p;
    if mean <= 32.0 && n <= 4096 {
        let mut hits = 0u64;
        for _ in 0..n {
            if rng.gen::<f64>() < p {
                hits += 1;
            }
        }
        return hits;
    }
    if mean <= 32.0 {
        // Poisson-style inversion for rare events over a huge n.
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut prob = 1.0;
        loop {
            prob *= rng.gen::<f64>();
            if prob <= l || k > n {
                return k.min(n);
            }
            k += 1;
        }
    }
    // Normal approximation.
    let sigma = (mean * (1.0 - p)).sqrt();
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    ((mean + sigma * z).round().max(0.0) as u64).min(n)
}

/// The exact-counting "estimator": identifies every tag, one by one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QInventory {
    /// Initial `Q` (slot-answer probability `2^-Q`).
    pub initial_q: f64,
    /// Safety cap on total slots before aborting.
    pub max_slots: u64,
}

impl Default for QInventory {
    fn default() -> Self {
        Self {
            initial_q: 4.0,
            max_slots: 100_000_000,
        }
    }
}

// analysis:allow(snapshot-surface): full Q-inventory identifies tags by re-running frames; exact IDs could merge but the protocol keeps no sketch (ROADMAP item 2 burndown)
impl CardinalityEstimator for QInventory {
    fn name(&self) -> &'static str {
        "Q-inventory"
    }

    fn estimate(
        &self,
        system: &mut RfidSystem,
        _accuracy: Accuracy,
        rng: &mut dyn RngCore,
    ) -> EstimationReport {
        let start = system.air_time();
        let mut warnings = Vec::new();
        let mut pending = system.population().cardinality() as u64;
        let mut identified = 0u64;
        let mut q_fp = self.initial_q;
        let mut slots = 0u64;
        let mut empty_streak = 0u32;

        // Tallies charged to the ledger in bulk at the end (identical
        // totals, far fewer ledger calls).
        let mut singles = 0u64;
        let mut collisions = 0u64;
        let mut colliding_tags = 0u64;
        let mut empties = 0u64;

        while pending > 0 {
            slots += 1;
            if slots > self.max_slots {
                warnings.push(format!(
                    "aborted after {slots} slots with {pending} tags unidentified"
                ));
                break;
            }
            let q = q_fp.round().clamp(0.0, 15.0);
            let answer_p = 0.5f64.powf(q);
            let occupants = sample_binomial(pending, answer_p, rng);
            match occupants {
                0 => {
                    q_fp = (q_fp - Q_ADJUST).max(0.0);
                    empties += 1;
                    // Termination heuristic: at Q = 0 every pending tag
                    // answers with probability 1, so an empty slot at
                    // Q = 0 proves the population is exhausted; a long
                    // empty streak at higher Q walks Q down first.
                    // analysis:allow(float-sanity): Q is a protocol register stepped in exact ±1.0 increments; 0.0 is hit exactly
                    if q == 0.0 {
                        empty_streak += 1;
                        if empty_streak > 2 {
                            break;
                        }
                    }
                }
                1 => {
                    identified += 1;
                    pending -= 1;
                    singles += 1;
                    empty_streak = 0;
                }
                k => {
                    q_fp = (q_fp + Q_ADJUST).min(15.0);
                    collisions += 1;
                    colliding_tags += k;
                    empty_streak = 0;
                }
            }
        }

        // Air time: every slot is sequenced by a Query command (+gap);
        // occupied slots carry an RN16; singletons add ACK (+gaps) and the
        // EPC payload.
        system.charge_broadcasts(QUERY_BITS, slots);
        system.charge_bitslots(RN16_BITS * (singles + collisions));
        system.charge_broadcasts(ACK_BITS, singles);
        system.charge_bitslots(EPC_BITS * singles);
        system.charge_turnarounds(singles + collisions);
        // Energy: an RN16 per answering tag, plus the EPC per identified.
        system.charge_tag_responses(singles + colliding_tags + singles);
        let _ = empties;

        let air = system.air_time().since(&start);
        EstimationReport {
            n_hat: identified as f64,
            air,
            phases: vec![PhaseReport {
                name: format!("inventory, {slots} slots"),
                air,
            }],
            rounds: slots,
            warnings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rfid_sim::{Tag, TagPopulation};

    fn system_with(n: usize) -> RfidSystem {
        let tags = (0..n as u64)
            .map(|i| Tag {
                id: i * 43 + 19,
                rn: i as u32,
            })
            .collect();
        RfidSystem::new(TagPopulation::new(tags))
    }

    #[test]
    fn sample_binomial_matches_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        for (n, p) in [(100u64, 0.3), (10_000, 0.001), (1_000_000, 0.2)] {
            let trials = 300;
            let total: u64 =
                (0..trials).map(|_| sample_binomial(n, p, &mut rng)).sum();
            let mean = total as f64 / trials as f64;
            let want = n as f64 * p;
            let sigma = (want * (1.0 - p) / trials as f64).sqrt();
            assert!(
                (mean - want).abs() < 6.0 * sigma.max(0.05),
                "n={n} p={p}: mean {mean} vs {want}"
            );
        }
        assert_eq!(sample_binomial(0, 0.5, &mut rng), 0);
        assert_eq!(sample_binomial(100, 0.0, &mut rng), 0);
    }

    #[test]
    fn identifies_every_tag_exactly() {
        for n in [0usize, 1, 10, 500, 5_000] {
            let mut sys = system_with(n);
            let mut rng = StdRng::seed_from_u64(n as u64 + 1);
            let report = QInventory::default().estimate(
                &mut sys,
                Accuracy::paper_default(),
                &mut rng,
            );
            assert_eq!(report.n_hat, n as f64, "n = {n}");
            assert!(report.warnings.is_empty(), "{:?}", report.warnings);
        }
    }

    #[test]
    fn inventory_time_scales_linearly_with_n() {
        let time_for = |n: usize| {
            let mut sys = system_with(n);
            let mut rng = StdRng::seed_from_u64(3);
            QInventory::default()
                .estimate(&mut sys, Accuracy::paper_default(), &mut rng)
                .air
                .total_seconds()
        };
        let t1k = time_for(1_000);
        let t4k = time_for(4_000);
        let ratio = t4k / t1k;
        assert!(
            (3.0..5.5).contains(&ratio),
            "t(4k)/t(1k) = {ratio} (t1k = {t1k}, t4k = {t4k})"
        );
    }

    #[test]
    fn estimation_beats_inventory_well_before_50k_tags() {
        // The motivating fact of the whole estimation literature.
        let mut sys = system_with(50_000);
        let mut rng = StdRng::seed_from_u64(4);
        let inventory = QInventory::default()
            .estimate(&mut sys, Accuracy::paper_default(), &mut rng)
            .air
            .total_seconds();
        assert!(
            inventory > 10.0 * 0.19,
            "inventory only took {inventory}s at 50k tags"
        );
    }

    #[test]
    fn slot_efficiency_is_near_the_aloha_optimum() {
        // A healthy Q walk identifies a tag roughly every e slots.
        let n = 20_000usize;
        let mut sys = system_with(n);
        let mut rng = StdRng::seed_from_u64(5);
        let report = QInventory::default().estimate(
            &mut sys,
            Accuracy::paper_default(),
            &mut rng,
        );
        let slots_per_tag = report.rounds as f64 / n as f64;
        assert!(
            (2.0..5.0).contains(&slots_per_tag),
            "slots per tag = {slots_per_tag}"
        );
    }

    #[test]
    fn energy_scales_with_identifications() {
        let n = 5_000usize;
        let mut sys = system_with(n);
        let mut rng = StdRng::seed_from_u64(6);
        let report = QInventory::default().estimate(
            &mut sys,
            Accuracy::paper_default(),
            &mut rng,
        );
        // At least one RN16 + one EPC per tag; collisions add more.
        assert!(report.air.tag_responses >= 2 * n as u64);
        assert!(report.air.tag_responses < 10 * n as u64);
    }
}
