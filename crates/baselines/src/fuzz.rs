//! Must-not-panic differential fuzz body for the frame-fill kernels.
//!
//! Mirrors the pattern of `rfid_bfce::sketch::fuzz`: the out-of-tree
//! cargo-fuzz target `fuzz/fuzz_targets/fill_kernels_diff.rs` is a thin
//! wrapper around [`fill_kernels_diff`], and the in-tree
//! `crates/baselines/tests/fuzz_smoke.rs` replays the same body over the
//! seed corpus plus deterministic mutations on every `cargo test` — so a
//! divergence found by the nightly fuzzer reproduces as a plain unit-test
//! call.
//!
//! The property under test is the plan contract the dispatch layer rests
//! on: for *arbitrary* tags, frame widths, thread counts, and dispatch
//! modes, the batched `fill_chunk` kernels (Bloom and ZOE — the two plans
//! with real overrides) must agree **bitwise** with the retained scalar
//! reference path `response_counts_reference_with_threads`, and every
//! `response_fill_dispatched` mode must derive the same busy bitmap and
//! observed-prefix response count from that ground truth.

use crate::ZoeSlotPlan;
use rfid_bfce::{BfceConfig, BloomPlan, HasherKind};
use rfid_sim::frame::{
    response_counts_reference_with_threads, response_counts_with_threads,
    response_fill_dispatched, ResponsePlan,
};
use rfid_sim::{FillDispatch, Tag};

/// Cap on the fuzz-chosen frame width so one iteration stays sub-second.
const MAX_W: usize = 2048;

/// Cap on the fuzz-built population for the same reason.
const MAX_TAGS: usize = 256;

/// Fuzz body: decode `(w, observe, plan, threads, p_n, tags…)` from the
/// bytes, then hold the batched kernels to the scalar reference.
///
/// Byte layout (all little-endian, remainder ignored):
/// `[w: u16][observe: u16][selector: u8][threads: u8][p_n: u16]` followed
/// by 8-byte tags (`id: u32`-widened, `rn: u32`). Duplicate tag IDs are
/// deliberately allowed — the kernels take raw slices; ID uniqueness is a
/// population-level rule enforced elsewhere.
pub fn fill_kernels_diff(data: &[u8]) {
    let Some((header, rest)) = data.split_first_chunk::<8>() else {
        return;
    };
    let w = 1 + u16::from_le_bytes([header[0], header[1]]) as usize % MAX_W;
    let observe = u16::from_le_bytes([header[2], header[3]]) as usize % (w + 1);
    let selector = header[4];
    let threads = 1 + header[5] as usize % 8;
    let p_n = 1 + u16::from_le_bytes([header[6], header[7]]) as u32 % 1023;
    let tags: Vec<Tag> = rest
        .chunks_exact(8)
        .take(MAX_TAGS)
        .filter_map(|c| {
            let (id_bytes, rn_rest) = c.split_first_chunk::<4>()?;
            let rn_bytes = rn_rest.first_chunk::<4>()?;
            Some(Tag {
                id: u64::from(u32::from_le_bytes(*id_bytes)),
                rn: u32::from_le_bytes(*rn_bytes),
            })
        })
        .collect();

    if selector & 1 == 0 {
        // Bloom kernel. Both hashers are exercised: Mix64 takes any w;
        // XorBitget requires a power of two, so the width is rounded.
        let mut cfg = BfceConfig::paper();
        let seed_base = u32::from(selector) << 8 | p_n;
        // k spans 1..=4: k = 3 hits the unrolled pair loop (and its
        // remainder arm on odd populations), the others the generic loop.
        let k = 1 + (selector >> 1) as usize % 4;
        let seeds: Vec<u32> = (0..k as u32).map(|i| seed_base ^ (i << 16)).collect();
        cfg.hasher = HasherKind::Mix64;
        cfg.w = w;
        check_plan(&tags, w, observe, threads, &BloomPlan::new(&cfg, &seeds, p_n));
        let mut pow2_cfg = cfg;
        pow2_cfg.hasher = HasherKind::XorBitget;
        pow2_cfg.w = w.next_power_of_two();
        check_plan(
            &tags,
            pow2_cfg.w,
            observe.min(pow2_cfg.w),
            threads,
            &BloomPlan::new(&pow2_cfg, &seeds, p_n),
        );
    } else {
        // ZOE kernel: a batch of w single-slot frames with participation
        // p_n/1024, rooted at a seed mixed from the population bytes.
        let batch_root = tags.iter().fold(u64::from(selector), |acc, t| {
            acc.wrapping_mul(0x100_0000_01B3).wrapping_add(t.id ^ u64::from(t.rn))
        });
        let p = f64::from(p_n) / 1024.0;
        check_plan(&tags, w, observe, threads, &ZoeSlotPlan::new(w, batch_root, p));
    }
}

/// Hold one plan to the reference: batched counts, then every dispatch
/// mode of the bitmap fill, must reproduce the scalar per-tag truth.
fn check_plan<P: ResponsePlan>(tags: &[Tag], w: usize, observe: usize, threads: usize, plan: &P) {
    let reference = response_counts_reference_with_threads(tags, w, plan, threads);
    let batched = response_counts_with_threads(tags, w, plan, threads);
    assert_eq!(
        reference, batched,
        "batched fill_chunk counts diverge from the scalar reference"
    );
    let prefix_truth: u64 = reference
        .iter()
        .take(observe)
        .map(|&c| u64::from(c))
        .sum();
    for (mode, min_chunk) in [
        (FillDispatch::Scalar, usize::MAX),
        (FillDispatch::Batched, 1),
        (FillDispatch::Auto, usize::MAX),
        (FillDispatch::Threshold(tags.len() / 2 + 1), 1),
    ] {
        let fill = response_fill_dispatched(tags, w, observe, plan, mode, min_chunk);
        for (slot, &count) in reference.iter().enumerate() {
            // analysis:allow(panic-path): fuzz oracle — the panic is the crash report
            assert_eq!(
                fill.busy.get(slot),
                count > 0,
                "{mode:?}: busy bit for slot {slot} disagrees with the reference count"
            );
        }
        // analysis:allow(panic-path): fuzz oracle — the panic is the crash report
        assert_eq!(
            fill.prefix_responses, prefix_truth,
            "{mode:?}: observed-prefix responses diverge from the reference"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_inputs_are_ignored() {
        fill_kernels_diff(&[]);
        fill_kernels_diff(&[1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn both_plan_families_run_on_a_dense_input() {
        // Even selector byte → Bloom (both hashers), odd → ZOE. 8-byte
        // header then three tags.
        let mut bloom = vec![0x40, 0x00, 0x10, 0x00, 0x06, 0x03, 0x20, 0x00];
        let mut zoe = vec![0x40, 0x00, 0x10, 0x00, 0x07, 0x03, 0x20, 0x00];
        for t in 0u8..3 {
            let tag = [t + 1, 0, 0, 0, 0xA0 ^ t, 0x55, 0, 0];
            bloom.extend_from_slice(&tag);
            zoe.extend_from_slice(&tag);
        }
        fill_kernels_diff(&bloom);
        fill_kernels_diff(&zoe);
    }
}
