//! Baseline RFID cardinality estimators, re-implemented from their
//! published designs for comparison with BFCE.
//!
//! The BFCE paper's evaluation (Section V-C) compares against **ZOE**
//! (Zheng & Li, INFOCOM 2013) and **SRC** (Chen, Zhou & Yu, MobiCom 2013),
//! using **LOF** (Qian et al., TPDS 2011) as ZOE's rough-estimation
//! front-end — all three live here, with the modifications the paper
//! describes (LOF x10 for ZOE's rough phase; SRC's second phase repeated
//! `m` times with a majority/median vote, `m` from the binomial-tail rule).
//!
//! The wider related-work family from Section II is implemented as well,
//! one module per scheme, so the extension benches can put BFCE in its full
//! historical context:
//!
//! * [`upe`] — UPE, framed-slotted-Aloha zero/collision estimators (2006);
//! * [`ezb`] — EZB, multi-frame averaged zero estimator (2007);
//! * [`fneb`] — FNEB, first-non-empty-slot estimator (2010);
//! * [`mle`] — MLE, maximum-likelihood estimation for active tags (2010);
//! * [`art`] — ART, average-run-size-of-1s estimator (2012);
//! * [`pet`] — PET, probabilistic estimating tree (2012);
//! * [`a3`] — A³, arbitrarily accurate approximation (2014);
//! * [`inventory`] — exact counting via the C1G2 Q-protocol, the
//!   "traditional identification" the paper scopes itself away from
//!   (used by the crossover experiment).
//!
//! Two *modern* (non-RFID-literature) mergeable-sketch baselines round
//! out the family for the multi-reader roadmap: [`hllpp`] (HyperLogLog++)
//! and [`llbeta`] (LogLog-β), both run over the honest
//! register-collection air protocol in [`registers`] and both producing
//! snapshots that checkpoint/restore/merge via [`rfid_bfce::Snapshot`].
//!
//! Every estimator implements [`rfid_sim::CardinalityEstimator`] and pays
//! for its traffic through the same air-time ledger as BFCE, so execution
//! times are directly comparable (Figure 10).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod a3;
pub mod art;
pub mod common;
pub mod ezb;
pub mod fneb;
pub mod fuzz;
pub mod hllpp;
pub mod inventory;
pub mod llbeta;
pub mod lof;
pub mod mle;
pub mod pet;
pub mod registers;
pub mod src;
pub mod upe;
pub mod zoe;

pub use a3::A3;
pub use art::Art;
pub use ezb::Ezb;
pub use fneb::Fneb;
pub use hllpp::HllPp;
pub use inventory::QInventory;
pub use llbeta::LogLogBeta;
pub use lof::Lof;
pub use mle::Mle;
pub use pet::Pet;
pub use src::Src;
pub use upe::Upe;
pub use zoe::{Zoe, ZoeSlotPlan};

/// Every baseline estimator, boxed, for shoot-out sweeps.
pub fn all_baselines() -> Vec<Box<dyn rfid_sim::CardinalityEstimator>> {
    vec![
        Box::new(Lof::default()),
        Box::new(Zoe::default()),
        Box::new(Src::default()),
        Box::new(Upe::default()),
        Box::new(Ezb::default()),
        Box::new(Fneb::default()),
        Box::new(Art::default()),
        Box::new(Mle::default()),
        Box::new(Pet::default()),
        Box::new(A3::default()),
        Box::new(HllPp::default()),
        Box::new(LogLogBeta::default()),
    ]
}
