//! FNEB — the First-Non-Empty-Based estimator of Han et al.
//! (INFOCOM 2010).
//!
//! Every tag picks a uniform slot in a large frame; the reader senses
//! slots in order and stops at the **first busy slot**. That position is
//! geometric with success probability `q = 1 - (1 - 1/f)^n`, so the mean
//! position over many frames inverts to `n`. The frame size is tuned from
//! a rough estimate so `q` stays small (positions carry information);
//! tight accuracy needs many repetitions — FNEB trades simplicity for
//! air time, like its contemporaries.
//!
//! Implementation note: the reader never observes slots past the first
//! busy one, so instead of materializing a potentially multi-million-slot
//! frame the estimator computes each tag's slot and takes the minimum
//! (exactly the same observable), then senses the watched prefix through
//! the channel model.

use crate::common::uniform_slot;
use crate::lof::Lof;
use rand::RngCore;
use rfid_sim::parallel::par_fold;
use rfid_sim::{
    Accuracy, CardinalityEstimator, EstimationReport, PhaseReport, RfidSystem,
};
use rfid_stats::d_for_delta;

/// The FNEB estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fneb {
    /// Target mean first-busy position (frame size ~ target * n_rough).
    pub target_position: f64,
    /// Upper bound on repetition rounds.
    pub max_rounds: u64,
}

impl Default for Fneb {
    fn default() -> Self {
        Self {
            target_position: 20.0,
            max_rounds: 2_048,
        }
    }
}

// analysis:allow(snapshot-surface): one-shot FNEB protocol estimates from first-nonempty-slot positions; no mergeable per-reader state to export (ROADMAP item 2 burndown)
impl CardinalityEstimator for Fneb {
    fn name(&self) -> &'static str {
        "FNEB"
    }

    fn estimate(
        &self,
        system: &mut RfidSystem,
        accuracy: Accuracy,
        rng: &mut dyn RngCore,
    ) -> EstimationReport {
        let mut warnings = Vec::new();
        let start = system.air_time();

        let n_r = Lof {
            rounds: 1,
            frame: 32,
        }
        .rough_estimate(system, rng)
        .max(1.0);
        let after_rough = system.air_time();

        // Frame sized so E[first busy] ~ target_position.
        let f = ((self.target_position * n_r).ceil() as usize).max(64);
        // Relative error of the mean-position inversion is ~ 1/sqrt(rounds);
        // meet (epsilon, delta) via rounds = (d / epsilon)^2, capped.
        let d = d_for_delta(accuracy.delta);
        let rounds = (((d / accuracy.epsilon).powi(2)).ceil() as u64)
            .clamp(8, self.max_rounds);
        if rounds == self.max_rounds {
            warnings.push(format!(
                "round budget capped at {}; accuracy not guaranteed",
                self.max_rounds
            ));
        }

        let mut position_sum = 0.0f64;
        for _ in 0..rounds {
            let seed = rng.next_u32();
            system.turnaround();
            system.broadcast(32);
            // True first-responder slot = min over tags; also count how
            // many tags share it (they all transmit before the reader
            // terminates the frame — the round's energy cost).
            let (true_min, responders_at_min) = par_fold(
                system.population().tags(),
                20_000,
                || (usize::MAX, 0u64),
                |acc, tag| {
                    let slot = uniform_slot(tag, seed, f);
                    match slot.cmp(&acc.0) {
                        std::cmp::Ordering::Less => *acc = (slot, 1),
                        std::cmp::Ordering::Equal => acc.1 += 1,
                        std::cmp::Ordering::Greater => {}
                    }
                },
                |acc, other| match other.0.cmp(&acc.0) {
                    std::cmp::Ordering::Less => *acc = other,
                    std::cmp::Ordering::Equal => acc.1 += other.1,
                    std::cmp::Ordering::Greater => {}
                },
            );
            system.charge_tag_responses(responders_at_min);
            // Sense the watched prefix through the channel (a noisy channel
            // can fire early or push the stop later).
            let watched = true_min.saturating_add(1).min(f);
            let mut counts = vec![0u32; watched];
            if true_min < f {
                // analysis:allow(panic-path): guarded by true_min < f, and watched = true_min + 1 on that branch
                counts[true_min] = 1;
            }
            let sensed = system.sense_counts(&counts);
            let observed_pos = (0..sensed.observed())
                .find(|&i| sensed.is_busy(i))
                .map(|i| i + 1)
                .unwrap_or(f + 1);
            system.charge_bitslots(observed_pos.min(f) as u64);
            position_sum += observed_pos as f64;
        }

        let mean_pos = position_sum / rounds as f64;
        // Invert E[pos] = 1/q, q = 1 - (1 - 1/f)^n.
        let q_hat = (1.0 / mean_pos).min(1.0 - 1e-12);
        // ln(1 - x) via ln_1p(-x): q_hat can sit next to 0 (huge frames)
        // where 1.0 - q_hat would round away the whole signal.
        let n_hat = (-q_hat).ln_1p() / (-1.0 / f as f64).ln_1p();

        let end = system.air_time();
        EstimationReport {
            n_hat,
            air: end.since(&start),
            phases: vec![
                PhaseReport {
                    name: "rough (LOF)".into(),
                    air: after_rough.since(&start),
                },
                PhaseReport {
                    name: format!("first-busy probes x{rounds}"),
                    air: end.since(&after_rough),
                },
            ],
            rounds: 1 + rounds,
            warnings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rfid_sim::{Tag, TagPopulation};

    fn system_with(n: usize) -> RfidSystem {
        let tags = (0..n as u64)
            .map(|i| Tag {
                id: i * 23 + 2,
                rn: i as u32,
            })
            .collect();
        RfidSystem::new(TagPopulation::new(tags))
    }

    #[test]
    fn estimates_track_truth() {
        for (seed, truth) in [(1u64, 2_000usize), (2, 20_000)] {
            let mut sys = system_with(truth);
            let mut rng = StdRng::seed_from_u64(seed);
            let report =
                Fneb::default().estimate(&mut sys, Accuracy::new(0.1, 0.1), &mut rng);
            let rel = report.relative_error(truth);
            assert!(rel < 0.15, "n = {truth}: rel = {rel}");
        }
    }

    #[test]
    fn observed_slots_stay_near_target_position() {
        let mut sys = system_with(10_000);
        let mut rng = StdRng::seed_from_u64(3);
        let report =
            Fneb::default().estimate(&mut sys, Accuracy::new(0.2, 0.2), &mut rng);
        let probes = report.rounds - 1;
        let mean_watched = report.phases[1].air.bitslots as f64 / probes as f64;
        assert!(
            (5.0..60.0).contains(&mean_watched),
            "mean watched = {mean_watched}"
        );
    }

    #[test]
    fn rounds_cap_produces_warning() {
        let fneb = Fneb {
            target_position: 20.0,
            max_rounds: 16,
        };
        let mut sys = system_with(5_000);
        let mut rng = StdRng::seed_from_u64(4);
        let report = fneb.estimate(&mut sys, Accuracy::new(0.05, 0.05), &mut rng);
        assert!(report.warnings.iter().any(|w| w.contains("capped")));
    }

    #[test]
    fn empty_population_returns_near_zero() {
        let mut sys = system_with(0);
        let mut rng = StdRng::seed_from_u64(5);
        let report =
            Fneb::default().estimate(&mut sys, Accuracy::new(0.2, 0.2), &mut rng);
        // Every probe runs off the end of the frame: q_hat ~ 1/(f+1).
        assert!(report.n_hat < 5.0, "n_hat = {}", report.n_hat);
    }
}
