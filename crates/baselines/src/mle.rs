//! MLE — the Maximum Likelihood Estimator of Li et al. (INFOCOM 2010),
//! designed for energy-constrained active tags.
//!
//! The reader runs several balanced frames with *decreasing* persistence
//! probabilities (saving tag transmissions, the scheme's goal) and fits
//! `n` by maximizing the joint likelihood of the observed busy counts:
//! with `lambda_i = p_i n / f`, each frame contributes
//! `b_i ln(1 - e^-lambda_i) - (f - b_i) lambda_i` to the log-likelihood.
//! The score is strictly decreasing in `n`, so the MLE is found by
//! bisection on the score function ([`mle_solve`]).

use crate::common::{uniform_frame_plan, ZOE_OPTIMAL_LAMBDA};
use crate::lof::Lof;
use rand::RngCore;
use rfid_sim::{
    Accuracy, CardinalityEstimator, EstimationReport, PhaseReport, RfidSystem,
};
use rfid_stats::d_for_delta;

/// One frame's sufficient statistics: persistence, frame size, busy count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameObservation {
    /// Persistence probability the frame ran with.
    pub p: f64,
    /// Frame size in slots.
    pub f: usize,
    /// Observed busy slots.
    pub busy: usize,
}

/// Score (derivative of the joint log-likelihood w.r.t. `n`, up to the
/// positive factor `1/f`):
/// `sum_i p_i * ( b_i * e^-lambda_i / (1 - e^-lambda_i) - (f_i - b_i) )`.
fn score(observations: &[FrameObservation], n: f64) -> f64 {
    observations
        .iter()
        .map(|o| {
            let lambda = o.p * n / o.f as f64;
            let e = (-lambda).exp();
            let occupied_term = if o.busy == 0 {
                0.0
            } else {
                o.busy as f64 * e / (1.0 - e).max(1e-300)
            };
            o.p * (occupied_term - (o.f - o.busy) as f64)
        })
        .sum()
}

/// Maximum-likelihood `n` for a set of frame observations, by bisection on
/// the (strictly decreasing) score. Returns `None` when every frame was
/// empty (likelihood maximized at `n = 0`) or every slot of every frame
/// was busy (no finite maximizer).
pub fn mle_solve(observations: &[FrameObservation], n_max: f64) -> Option<f64> {
    assert!(!observations.is_empty(), "no observations");
    assert!(n_max > 1.0, "n_max must exceed 1");
    if observations.iter().all(|o| o.busy == 0) {
        return None;
    }
    if observations.iter().all(|o| o.busy == o.f) {
        return None;
    }
    let (mut lo, mut hi) = (1e-9, n_max);
    if score(observations, hi) > 0.0 {
        // Maximizer beyond the bracket: saturated in practice.
        return None;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if score(observations, mid) > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

/// The MLE estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mle {
    /// Frame size per round (bit-slots).
    pub frame: usize,
    /// Upper bound on rounds.
    pub max_rounds: u64,
}

impl Default for Mle {
    fn default() -> Self {
        Self {
            frame: 256,
            max_rounds: 256,
        }
    }
}

// analysis:allow(snapshot-surface): one-shot MLE protocol maximizes likelihood over fresh frame outcomes; no mergeable per-reader state to export (ROADMAP item 2 burndown)
impl CardinalityEstimator for Mle {
    fn name(&self) -> &'static str {
        "MLE"
    }

    fn estimate(
        &self,
        system: &mut RfidSystem,
        accuracy: Accuracy,
        rng: &mut dyn RngCore,
    ) -> EstimationReport {
        let mut warnings = Vec::new();
        let start = system.air_time();
        let f = self.frame;

        let n_r = Lof {
            rounds: 1,
            frame: 32,
        }
        .rough_estimate(system, rng)
        .max(1.0);
        let after_rough = system.air_time();

        // Total Bernoulli observations needed at the optimal load; the ML
        // fit extracts the same information as the zero estimator.
        let d = d_for_delta(accuracy.delta);
        let trials =
            crate::common::required_trials(accuracy.epsilon, d, ZOE_OPTIMAL_LAMBDA);
        let rounds = trials.div_ceil(f as u64).clamp(2, self.max_rounds);
        if rounds == self.max_rounds {
            warnings.push(format!("round budget capped at {}", self.max_rounds));
        }

        let p0 = (ZOE_OPTIMAL_LAMBDA * f as f64 / n_r).min(1.0);
        let mut observations = Vec::with_capacity(rounds as usize);
        for i in 0..rounds {
            // Energy-saving schedule: alternate full / half / quarter
            // persistence.
            let p = (p0 / 2f64.powi((i % 3) as i32)).max(1e-9);
            let seed = rng.next_u32();
            system.turnaround();
            system.broadcast(64);
            let frame = system.run_bitslot_frame(f, &uniform_frame_plan(seed, f, p));
            observations.push(FrameObservation {
                p,
                f,
                busy: frame.busy_count(),
            });
        }

        let n_hat = match mle_solve(&observations, 1e10) {
            Some(n) => n,
            None => {
                warnings.push("likelihood degenerate; falling back to 0".into());
                0.0
            }
        };

        let end = system.air_time();
        EstimationReport {
            n_hat,
            air: end.since(&start),
            phases: vec![
                PhaseReport {
                    name: "rough (LOF)".into(),
                    air: after_rough.since(&start),
                },
                PhaseReport {
                    name: format!("ML frames x{rounds}"),
                    air: end.since(&after_rough),
                },
            ],
            rounds: 1 + rounds,
            warnings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rfid_sim::{Tag, TagPopulation};

    fn system_with(n: usize) -> RfidSystem {
        let tags = (0..n as u64)
            .map(|i| Tag {
                id: i * 31 + 3,
                rn: i as u32,
            })
            .collect();
        RfidSystem::new(TagPopulation::new(tags))
    }

    #[test]
    fn solver_recovers_n_from_exact_expectations() {
        // Feed the solver busy counts equal to their expectations; the MLE
        // must sit at the true n.
        let n = 40_000.0;
        let f = 512usize;
        let obs: Vec<FrameObservation> = [0.01, 0.005, 0.0025]
            .iter()
            .map(|&p| {
                let lambda = p * n / f as f64;
                FrameObservation {
                    p,
                    f,
                    busy: ((1.0 - (-lambda).exp()) * f as f64).round() as usize,
                }
            })
            .collect();
        let got = mle_solve(&obs, 1e9).unwrap();
        assert!(
            ((got - n) / n).abs() < 0.01,
            "MLE {got} vs truth {n}"
        );
    }

    #[test]
    fn solver_degenerate_cases() {
        let all_empty = [FrameObservation {
            p: 0.1,
            f: 64,
            busy: 0,
        }];
        assert_eq!(mle_solve(&all_empty, 1e6), None);
        let all_busy = [FrameObservation {
            p: 0.1,
            f: 64,
            busy: 64,
        }];
        assert_eq!(mle_solve(&all_busy, 1e6), None);
    }

    #[test]
    fn estimates_track_truth() {
        for (seed, truth) in [(1u64, 5_000usize), (2, 50_000)] {
            let mut sys = system_with(truth);
            let mut rng = StdRng::seed_from_u64(seed);
            let report =
                Mle::default().estimate(&mut sys, Accuracy::new(0.1, 0.1), &mut rng);
            let rel = report.relative_error(truth);
            assert!(rel < 0.15, "n = {truth}: rel = {rel}");
        }
    }

    #[test]
    fn persistence_schedule_halves() {
        // The schedule must actually save tag energy: later frames use
        // smaller p. Verified indirectly: the estimator still converges
        // with the mixed schedule (covered above) and the schedule
        // generator is deterministic.
        let p0 = 0.8f64;
        let ps: Vec<f64> = (0..6).map(|i| p0 / 2f64.powi(i % 3)).collect();
        assert_eq!(ps[0], 0.8);
        assert_eq!(ps[1], 0.4);
        assert_eq!(ps[2], 0.2);
        assert_eq!(ps[3], 0.8);
    }

    #[test]
    fn empty_population_estimates_zero() {
        let mut sys = system_with(0);
        let mut rng = StdRng::seed_from_u64(3);
        let report =
            Mle::default().estimate(&mut sys, Accuracy::new(0.1, 0.1), &mut rng);
        assert_eq!(report.n_hat, 0.0);
    }
}
