//! LOF — the Lottery-Frame estimator (Qian et al., TPDS 2011).
//!
//! Each tag hashes itself to frame position `j` with probability `2^-j`
//! (a geometric distribution), so the length of the initial run of busy
//! slots encodes `log2(n)`: the first idle position `R` satisfies
//! `E[2^(R-1)] ~ n / 1.2897`. LOF is a fast *rough* estimator (constant
//! factor, a few frames); the BFCE paper uses it, run 10 times, as ZOE's
//! rough-estimation front-end (Section V-C).

use crate::common::geometric_frame_plan;
use rand::RngCore;
use rfid_sim::{
    Accuracy, CardinalityEstimator, EstimationReport, PhaseReport, RfidSystem,
};

/// The Flajolet–Martin-style bias correction used by LOF:
/// `n_hat = 1.2897 * 2^(R-1)` for a (1-based) first-idle position `R`.
pub const FM_CORRECTION: f64 = 1.2897;

/// The LOF estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lof {
    /// Number of independent frames to average (the BFCE paper runs 10
    /// when feeding ZOE).
    pub rounds: u32,
    /// Frame length in bit-slots; 32 levels cover cardinalities far beyond
    /// the estimator's design range (`2^31`).
    pub frame: usize,
}

impl Default for Lof {
    fn default() -> Self {
        Self {
            rounds: 10,
            frame: 32,
        }
    }
}

impl Lof {
    /// Run the protocol and return the rough estimate.
    ///
    /// Air-time per round: one 32-bit seed broadcast plus `frame`
    /// bit-slots; rounds are separated by turnarounds. The caller is
    /// responsible for any turnaround separating LOF from surrounding
    /// protocol phases.
    pub fn rough_estimate(&self, system: &mut RfidSystem, rng: &mut dyn RngCore) -> f64 {
        assert!(self.rounds >= 1, "LOF needs at least one round");
        assert!(self.frame >= 2, "LOF frame must have at least 2 slots");
        let mut r_sum = 0.0f64;
        for round in 0..self.rounds {
            if round > 0 {
                system.turnaround();
            }
            let seed = rng.next_u32();
            system.broadcast(32);
            let plan = geometric_frame_plan(seed, self.frame);
            let frame = system.run_bitslot_frame(self.frame, &plan);
            // 1-based position of the first idle slot; all-busy caps at
            // frame + 1 (cardinality beyond this frame's resolution).
            let first_idle = (0..frame.observed())
                .find(|&i| !frame.is_busy(i))
                .map(|i| i + 1)
                .unwrap_or(self.frame + 1);
            r_sum += first_idle as f64;
        }
        let r_mean = r_sum / self.rounds as f64;
        FM_CORRECTION * 2f64.powf(r_mean - 1.0)
    }
}

// analysis:allow(snapshot-surface): one-shot LoF protocol estimates from leading-one positions of fresh frames; no mergeable per-reader state to export (ROADMAP item 2 burndown)
impl CardinalityEstimator for Lof {
    fn name(&self) -> &'static str {
        "LOF"
    }

    fn estimate(
        &self,
        system: &mut RfidSystem,
        _accuracy: Accuracy,
        rng: &mut dyn RngCore,
    ) -> EstimationReport {
        let start = system.air_time();
        let n_hat = self.rough_estimate(system, rng);
        let air = system.air_time().since(&start);
        EstimationReport {
            n_hat,
            air,
            phases: vec![PhaseReport {
                name: "lof".into(),
                air,
            }],
            rounds: self.rounds as u64,
            warnings: vec![
                "LOF is a rough (constant-factor) estimator; the accuracy \
                 requirement is not enforced"
                    .into(),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rfid_sim::{Tag, TagPopulation};

    fn system_with(n: usize) -> RfidSystem {
        let tags = (0..n as u64)
            .map(|i| Tag {
                id: i * 7 + 3,
                rn: i as u32,
            })
            .collect();
        RfidSystem::new(TagPopulation::new(tags))
    }

    #[test]
    fn rough_estimate_within_a_constant_factor() {
        for truth in [1_000usize, 10_000, 100_000, 1_000_000] {
            let mut sys = system_with(truth);
            let mut rng = StdRng::seed_from_u64(truth as u64);
            let n_hat = Lof::default().rough_estimate(&mut sys, &mut rng);
            let ratio = n_hat / truth as f64;
            assert!(
                (0.4..2.5).contains(&ratio),
                "n = {truth}: n_hat = {n_hat} (ratio {ratio})"
            );
        }
    }

    #[test]
    fn more_rounds_tighten_the_estimate() {
        // Relative error averaged over several seeds should shrink with
        // rounds.
        let truth = 50_000usize;
        let avg_err = |rounds: u32, seeds: std::ops::Range<u64>| {
            let lof = Lof { rounds, frame: 32 };
            let mut total = 0.0;
            let count = seeds.clone().count() as f64;
            for s in seeds {
                let mut sys = system_with(truth);
                let mut rng = StdRng::seed_from_u64(s);
                let n_hat = lof.rough_estimate(&mut sys, &mut rng);
                total += (n_hat - truth as f64).abs() / truth as f64;
            }
            total / count
        };
        let err_1 = avg_err(1, 0..20);
        let err_16 = avg_err(16, 0..20);
        assert!(
            err_16 < err_1,
            "1 round: {err_1}, 16 rounds: {err_16}"
        );
    }

    #[test]
    fn air_time_structure() {
        let mut sys = system_with(10_000);
        let mut rng = StdRng::seed_from_u64(1);
        let lof = Lof::default();
        lof.rough_estimate(&mut sys, &mut rng);
        let air = sys.air_time();
        assert_eq!(air.reader_bits, 10 * 32);
        assert_eq!(air.bitslots, 10 * 32);
        // One trailing gap per broadcast + one separator between rounds.
        assert_eq!(air.gaps, 10 + 9);
    }

    #[test]
    fn empty_population_estimates_near_one() {
        let mut sys = system_with(0);
        let mut rng = StdRng::seed_from_u64(2);
        let n_hat = Lof::default().rough_estimate(&mut sys, &mut rng);
        // First idle position is always 1 -> n_hat = 1.2897 * 2^0.
        assert!((n_hat - FM_CORRECTION).abs() < 1e-12);
    }

    #[test]
    fn trait_report_carries_warning() {
        let mut sys = system_with(5_000);
        let mut rng = StdRng::seed_from_u64(3);
        let report =
            Lof::default().estimate(&mut sys, Accuracy::paper_default(), &mut rng);
        assert_eq!(report.rounds, 10);
        assert!(!report.warnings.is_empty());
        assert!(report.n_hat > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_rejected() {
        let mut sys = system_with(10);
        let mut rng = StdRng::seed_from_u64(4);
        Lof { rounds: 0, frame: 32 }.rough_estimate(&mut sys, &mut rng);
    }
}
