//! Shared machinery for the baseline estimators.
//!
//! All legacy protocols hash the *tag ID* with a reader-broadcast seed
//! (none of them have BFCE's pre-stored `RN` trick), and most implement
//! p-persistence by comparing a second hash against the probability — the
//! classic "virtual frame extension" realization. The sizing helper
//! [`required_trials`] is the conservative sigma_max bound the BFCE paper
//! quotes for ZOE: the number of independent Bernoulli slot observations
//! needed so the idle-ratio inversion is an `(epsilon, delta)` estimate at
//! load `lambda`.

use rfid_hash::mix::{bucket, mix_pair, unit_f64};
use rfid_sim::Tag;

/// ZOE's variance-optimal per-slot load: `lambda* ~ 1.594` (the root of
/// the first-order condition for minimizing `(e^lambda - 1)/lambda^2`).
pub const ZOE_OPTIMAL_LAMBDA: f64 = 1.594;

/// Whether a tag participates in a Bernoulli experiment keyed by `seed`
/// with probability `p` — deterministic per (tag, seed).
#[inline]
pub fn participates(tag: &Tag, seed: u32, p: f64) -> bool {
    unit_f64(mix_pair(tag.id, seed as u64)) < p
}

/// The uniform slot a tag selects in an `f`-slot frame keyed by `seed`.
#[inline]
pub fn uniform_slot(tag: &Tag, seed: u32, f: usize) -> usize {
    // Decorrelate from the participation draw with a distinct stream tag.
    bucket(mix_pair(tag.id ^ 0x5EED_0000_0000_0001, seed as u64), f)
}

/// Response plan: every tag responds in slot 0 of a single-slot frame with
/// probability `p` (ZOE's per-slot experiment).
pub fn single_slot_plan(seed: u32, p: f64) -> impl Fn(&Tag, &mut Vec<usize>) + Sync {
    move |tag, out| {
        if participates(tag, seed, p) {
            out.push(0);
        }
    }
}

/// Response plan: uniform slot in `[0, f)` with persistence `p`
/// (SRC/UPE/EZB-style balanced frame).
pub fn uniform_frame_plan(
    seed: u32,
    f: usize,
    p: f64,
) -> impl Fn(&Tag, &mut Vec<usize>) + Sync {
    move |tag, out| {
        if participates(tag, seed, p) {
            out.push(uniform_slot(tag, seed, f));
        }
    }
}

/// Response plan: geometric slot — slot `j` (0-based) with probability
/// `2^-(j+1)`, capped at `f - 1` (LOF/PET frames).
pub fn geometric_frame_plan(seed: u32, f: usize) -> impl Fn(&Tag, &mut Vec<usize>) + Sync {
    move |tag, out| {
        let level = rfid_hash::geometric_level(tag.id, seed, f as u32);
        out.push((level - 1) as usize);
    }
}

/// Conservative number of independent slot observations for an
/// `(epsilon, ·)` estimate at load `lambda`, with the two-sided normal
/// bound `d` and the sigma_max = 0.5 worst case — the formula the BFCE
/// paper quotes for ZOE's slot budget:
/// `ceil( (d * 0.5 / (e^-lambda (1 - e^(-eps*lambda))))^2 )`.
pub fn required_trials(epsilon: f64, d: f64, lambda: f64) -> u64 {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon out of range");
    assert!(d > 0.0, "d must be positive");
    assert!(lambda > 0.0, "lambda must be positive");
    let denom = (-lambda).exp() * (1.0 - (-epsilon * lambda).exp());
    assert!(denom > 0.0, "degenerate sizing denominator");
    let root = d * 0.5 / denom;
    (root * root).ceil() as u64
}

/// Clamp an idle-slot count away from the degenerate 0 / total endpoints
/// so `ln` stays finite: 0 becomes 0.5 and `total` becomes `total - 0.5`
/// (the standard continuity correction).
pub fn clamped_rho(idle: usize, total: usize) -> f64 {
    assert!(total > 0, "no observations");
    let idle = (idle as f64).clamp(0.5, total as f64 - 0.5);
    idle / total as f64
}

/// Median of a non-empty slice (average of the middle pair for even
/// lengths).
pub fn median(xs: &mut [f64]) -> f64 {
    assert!(!xs.is_empty(), "median of empty slice");
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    if n % 2 == 1 {
        // analysis:allow(panic-path): n = xs.len() > 0 asserted at entry, so n/2 < n
        xs[n / 2]
    } else {
        // analysis:allow(panic-path): even branch means n >= 2, so n/2 - 1 and n/2 are in range
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_stats::d_for_delta;

    fn tag(id: u64) -> Tag {
        Tag { id, rn: 0 }
    }

    #[test]
    fn participation_rate_tracks_p() {
        for p in [0.1, 0.5, 0.9] {
            let hits = (0..100_000u64)
                .filter(|&i| participates(&tag(i), 7, p))
                .count() as f64
                / 100_000.0;
            assert!((hits - p).abs() < 0.01, "p = {p}: rate {hits}");
        }
    }

    #[test]
    fn participation_is_deterministic_and_seed_sensitive() {
        let t = tag(42);
        assert_eq!(participates(&t, 1, 0.5), participates(&t, 1, 0.5));
        let flips = (0..64u32)
            .filter(|&s| participates(&t, s, 0.5) != participates(&t, s + 64, 0.5))
            .count();
        assert!(flips > 10, "seeds barely change outcomes");
    }

    #[test]
    fn uniform_slots_are_uniform() {
        let f = 64usize;
        let mut counts = vec![0u64; f];
        for i in 0..64_000u64 {
            counts[uniform_slot(&tag(i), 3, f)] += 1;
        }
        assert!(rfid_stats::uniformity_test(&counts, 0.001));
    }

    #[test]
    fn slot_and_participation_are_decorrelated() {
        // Among participants at p = 0.5, slots must still be uniform.
        let f = 32usize;
        let mut counts = vec![0u64; f];
        for i in 0..200_000u64 {
            let t = tag(i);
            if participates(&t, 9, 0.5) {
                counts[uniform_slot(&t, 9, f)] += 1;
            }
        }
        assert!(rfid_stats::uniformity_test(&counts, 0.001));
    }

    #[test]
    fn zoe_slot_budget_matches_hand_computation() {
        // (0.05, 0.05) at lambda*: d = 1.95996, denominator
        // e^-1.594 * (1 - e^-0.0797) = 0.203..*0.0766.. -> ~3966 slots.
        let d = d_for_delta(0.05);
        let m = required_trials(0.05, d, ZOE_OPTIMAL_LAMBDA);
        assert!((3800..4100).contains(&m), "m = {m}");
        // Looser epsilon needs ~quadratically fewer slots.
        let m_loose = required_trials(0.2, d, ZOE_OPTIMAL_LAMBDA);
        assert!(m_loose < m / 10, "m_loose = {m_loose}");
    }

    #[test]
    fn required_trials_grows_off_the_optimal_load() {
        let d = d_for_delta(0.05);
        let at_opt = required_trials(0.05, d, ZOE_OPTIMAL_LAMBDA);
        let overloaded = required_trials(0.05, d, 2.0 * ZOE_OPTIMAL_LAMBDA);
        let underloaded = required_trials(0.05, d, 0.3 * ZOE_OPTIMAL_LAMBDA);
        assert!(overloaded > 2 * at_opt, "overloaded = {overloaded}");
        assert!(underloaded > at_opt, "underloaded = {underloaded}");
    }

    #[test]
    fn clamped_rho_stays_interior() {
        assert_eq!(clamped_rho(0, 100), 0.005);
        assert_eq!(clamped_rho(100, 100), 0.995);
        assert_eq!(clamped_rho(50, 100), 0.5);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(median(&mut [7.0]), 7.0);
    }

    #[test]
    fn geometric_plan_levels_decay() {
        let f = 32usize;
        let plan = geometric_frame_plan(5, f);
        let mut counts = vec![0u64; f];
        let mut out = Vec::new();
        for i in 0..100_000u64 {
            out.clear();
            plan(&tag(i), &mut out);
            counts[out[0]] += 1;
        }
        // Slot 0 gets ~half, slot 1 ~quarter.
        assert!((counts[0] as f64 / 100_000.0 - 0.5).abs() < 0.01);
        assert!((counts[1] as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }
}
