//! ZOE — the Zero-One Estimator (Zheng & Li, INFOCOM 2013), with the
//! modifications the BFCE paper applies for its comparison (Section V-C).
//!
//! ZOE runs a sequence of **single-slot frames**: for each frame the reader
//! broadcasts a fresh 32-bit seed, every tag participates with probability
//! `p` (tuned so the load `lambda = p*n` sits at the variance-optimal
//! `lambda* ~ 1.594`), and the reader senses one bit. The idle fraction
//! over `m` frames inverts to `n_hat = -ln(rho) / p`.
//!
//! Because *every slot* costs a full seed broadcast (1510 µs) plus the
//! slot and its turnaround (~321 µs), ZOE's reader-to-tag traffic dominates
//! its execution time — the observation that motivates BFCE. Two further
//! behaviours from the BFCE paper are reproduced:
//!
//! * the rough estimate comes from LOF run 10 times;
//! * the slot budget depends on the realized load: after the nominal `m`
//!   slots (computed at `lambda*` with the conservative sigma_max = 0.5
//!   bound), ZOE re-checks the budget at the *measured* `lambda_hat` and
//!   keeps extending the run while under-provisioned — a rough estimate
//!   that "fairly deviates from the actual cardinality \[leads\] to a sharp
//!   growth of the required time slots".
//!
//! The *simulation* of those single-slot frames is batched: each
//! [`ZoeSlotPlan`] covers a whole seed batch, deriving per-frame seeds
//! counter-mode from one batch root and walking each tag's participating
//! slots by geometric gaps instead of testing every (tag, seed) pair —
//! see the plan's docs for why this is distribution- and charge-exact.

use crate::common::{clamped_rho, required_trials, ZOE_OPTIMAL_LAMBDA};
use crate::lof::Lof;
use rand::RngCore;
use rfid_hash::mix::{mix_pair, unit_f64};
use rfid_hash::{stream_seed, SplitMix64};
use rfid_sim::{
    Accuracy, CardinalityEstimator, EstimationReport, PhaseReport, ResponsePlan, RfidSystem,
    SlotSink, Tag,
};
use rfid_stats::d_for_delta;

/// The ZOE estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Zoe {
    /// LOF rounds for the rough phase (the BFCE paper uses 10).
    pub rough_rounds: u32,
    /// Hard cap on total single-slot frames, bounding the worst case when
    /// the rough estimate is badly off (the paper observed up to ~18 s).
    pub max_slots: u64,
    /// Re-check the slot budget against the realized load and extend
    /// (the adaptive behaviour described above). Disable to run exactly
    /// the nominal budget.
    pub adaptive: bool,
}

impl Default for Zoe {
    fn default() -> Self {
        Self {
            rough_rounds: 10,
            max_slots: 16_384,
            adaptive: true,
        }
    }
}

/// Size of the observation batches used to amortize the per-frame
/// simulation overhead (purely an implementation detail: the ledger is
/// charged per-slot exactly as the real schedule would be).
const SLOT_BATCH: usize = 512;

/// One batch of ZOE single-slot frames as a [`ResponsePlan`].
///
/// A batch of `batch` logical frames shares one 64-bit `batch_root`; the
/// 32-bit seed the reader logically broadcasts for frame `i` is derived
/// from it counter-mode ([`slot_seed`](Self::slot_seed), the same
/// [`stream_seed`] stream [`SplitMix64::fill_u64`] produces). A tag's
/// participation across the batch is one per-tag draw stream: seeded from
/// `mix_pair(tag.id, batch_root)`, the tag walks its participating slots
/// by **geometric gaps** — `gap = floor(ln(1-u) / ln(1-p))` slots are
/// skipped between responses, which is exactly the run-length of a
/// per-slot i.i.d. Bernoulli(`p`) sequence. The walk touches `O(p·batch)`
/// slots per tag instead of evaluating all `batch` seeds, which is what
/// removes the per-(tag, slot) hot spot the benchmark baseline flagged.
///
/// The scalar `responses()` path and the batched `fill_chunk` override run
/// the *same* walk, so the two kernels are bitwise-identical by
/// construction and the proptest suite holds them to it.
#[derive(Debug, Clone, Copy)]
pub struct ZoeSlotPlan {
    batch: usize,
    batch_root: u64,
    p: f64,
    /// `ln(1 - p)`, precomputed once per batch (strictly negative; `-inf`
    /// at `p = 1`, where every gap collapses to zero and every tag answers
    /// every slot).
    ln1mp: f64,
}

impl ZoeSlotPlan {
    /// A batch of `batch` single-slot frames with participation `p`,
    /// seeded from `batch_root`.
    pub fn new(batch: usize, batch_root: u64, p: f64) -> Self {
        assert!(batch >= 1, "batch must have at least one slot");
        assert!(p > 0.0 && p <= 1.0, "participation must lie in (0, 1]");
        Self {
            batch,
            batch_root,
            p,
            ln1mp: (-p).ln_1p(),
        }
    }

    /// Number of logical single-slot frames in this batch.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The participation probability per frame.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The 32-bit seed the reader logically broadcasts for frame `i` of
    /// the batch (the high word of the counter-mode [`stream_seed`] draw,
    /// matching what [`SplitMix64::fill_u64`] would emit).
    pub fn slot_seed(&self, i: usize) -> u32 {
        (stream_seed(self.batch_root, i as u64) >> 32) as u32
    }

    /// Visit every slot of the batch this tag responds in, in increasing
    /// order. `u ∈ [0, 1)` strictly, so `ln(1-u)` is finite; the remaining-
    /// slot guard runs before the cast, so the cast never truncates.
    #[inline]
    fn walk(&self, tag: &Tag, mut visit: impl FnMut(usize)) {
        let mut draws = SplitMix64::new(mix_pair(tag.id, self.batch_root));
        let mut slot = 0usize;
        while slot < self.batch {
            let u = unit_f64(draws.next_u64());
            let gap = (-u).ln_1p() / self.ln1mp;
            if gap >= (self.batch - slot) as f64 {
                return;
            }
            slot += gap as usize;
            visit(slot);
            slot += 1;
        }
    }
}

impl ResponsePlan for ZoeSlotPlan {
    fn responses(&self, tag: &Tag, out: &mut Vec<usize>) {
        self.walk(tag, |slot| out.push(slot));
    }

    fn fill_chunk(&self, tags: &[Tag], sink: &mut SlotSink<'_>) {
        for tag in tags {
            self.walk(tag, |slot| sink.record(slot));
        }
    }

    /// The geometric walk has no setup cost to amortize — recording
    /// straight into the sink beats the scratch-buffer loop at every
    /// population size — so batched dispatch is always on.
    fn batched_fill_threshold(&self) -> usize {
        0
    }
}

impl Zoe {
    /// Run `count` single-slot frames, returning how many were idle.
    /// Charges per slot: one 32-bit seed broadcast (with its trailing
    /// turnaround), the 1-bit slot, and the turnaround back to the reader.
    fn run_slots(
        &self,
        system: &mut RfidSystem,
        p: f64,
        count: u64,
        rng: &mut dyn RngCore,
    ) -> u64 {
        if count == 0 {
            return 0;
        }
        // One estimator-stream draw per call seeds every batch root
        // deterministically (chunked counter-mode generation, PR-4 style).
        let batches = count.div_ceil(SLOT_BATCH as u64) as usize;
        let mut roots = vec![0u64; batches];
        SplitMix64::new(rng.next_u64()).fill_u64(&mut roots);
        let mut idle = 0u64;
        let mut remaining = count;
        for &root in &roots {
            let batch = remaining.min(SLOT_BATCH as u64) as usize;
            let plan = ZoeSlotPlan::new(batch, root, p);
            // One logical single-slot frame per derived seed; simulated as
            // one observation pass with per-slot charging below.
            let frame = system.run_uncharged_bitslot_frame(batch, &plan);
            idle += frame.idle_count() as u64;
            system.charge_broadcasts(32, batch as u64);
            system.charge_bitslots(batch as u64);
            system.charge_turnarounds(batch as u64);
            remaining -= batch as u64;
        }
        idle
    }
}

// analysis:allow(snapshot-surface): one-shot ZOE protocol re-runs singleton frames per trial; no mergeable per-reader state to export (ROADMAP item 2 burndown)
impl CardinalityEstimator for Zoe {
    fn name(&self) -> &'static str {
        "ZOE"
    }

    fn estimate(
        &self,
        system: &mut RfidSystem,
        accuracy: Accuracy,
        rng: &mut dyn RngCore,
    ) -> EstimationReport {
        let mut warnings = Vec::new();
        let start = system.air_time();

        // Phase 1: rough estimation via LOF x rough_rounds.
        let lof = Lof {
            rounds: self.rough_rounds,
            frame: 32,
        };
        let n_r = lof.rough_estimate(system, rng).max(1.0);
        let after_rough = system.air_time();

        // Phase 2: single-slot frames at the tuned participation.
        let p = (ZOE_OPTIMAL_LAMBDA / n_r).min(1.0);
        let d = d_for_delta(accuracy.delta);
        let nominal = required_trials(accuracy.epsilon, d, ZOE_OPTIMAL_LAMBDA);
        let mut target = nominal.min(self.max_slots);

        system.turnaround();
        let mut slots = 0u64;
        let mut idle = 0u64;
        loop {
            idle += self.run_slots(system, p, target - slots, rng);
            slots = target;
            let rho = clamped_rho(idle as usize, slots as usize);
            let lambda_hat = -rho.ln();
            if !self.adaptive {
                break;
            }
            let required = required_trials(accuracy.epsilon, d, lambda_hat)
                .min(self.max_slots);
            if required <= slots {
                break;
            }
            target = required;
        }
        if slots >= self.max_slots {
            warnings.push(format!(
                "slot budget capped at {} (realized load far from lambda*)",
                self.max_slots
            ));
        }
        if idle == 0 || idle == slots {
            warnings.push("degenerate slot observations; rho clamped".into());
        }

        let rho = clamped_rho(idle as usize, slots as usize);
        let n_hat = -rho.ln() / p;
        let end = system.air_time();

        EstimationReport {
            n_hat,
            air: end.since(&start),
            phases: vec![
                PhaseReport {
                    name: "rough (LOF x10)".into(),
                    air: after_rough.since(&start),
                },
                PhaseReport {
                    name: "single-slot frames".into(),
                    air: end.since(&after_rough),
                },
            ],
            rounds: self.rough_rounds as u64 + slots,
            warnings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rfid_sim::TagPopulation;

    fn system_with(n: usize) -> RfidSystem {
        let tags = (0..n as u64)
            .map(|i| Tag {
                id: i * 11 + 5,
                rn: i as u32,
            })
            .collect();
        RfidSystem::new(TagPopulation::new(tags))
    }

    #[test]
    fn estimates_land_within_epsilon_usually() {
        // One seeded run per cardinality; these seeds are in the 95% mass.
        for (seed, truth) in [(1u64, 10_000usize), (2, 100_000)] {
            let mut sys = system_with(truth);
            let mut rng = StdRng::seed_from_u64(seed);
            let report =
                Zoe::default().estimate(&mut sys, Accuracy::paper_default(), &mut rng);
            let rel = report.relative_error(truth);
            assert!(rel < 0.07, "n = {truth}: rel = {rel}");
        }
    }

    #[test]
    fn slot_budget_matches_the_papers_formula_scale() {
        // (0.05, 0.05): ~4k slots, each costing ~1831 us -> several seconds.
        let mut sys = system_with(50_000);
        let mut rng = StdRng::seed_from_u64(3);
        let report =
            Zoe::default().estimate(&mut sys, Accuracy::paper_default(), &mut rng);
        let secs = report.air.total_seconds();
        assert!(secs > 4.0, "ZOE too fast: {secs}s");
        assert!(secs < 40.0, "ZOE absurdly slow: {secs}s");
        // Reader time dominates (the BFCE paper's central observation).
        assert!(report.air.reader_us > 2.0 * report.air.tag_us);
    }

    #[test]
    fn loose_accuracy_needs_far_fewer_slots() {
        let mut sys = system_with(50_000);
        let mut rng = StdRng::seed_from_u64(4);
        let tight =
            Zoe::default().estimate(&mut sys, Accuracy::new(0.05, 0.05), &mut rng);
        sys.reset_ledger();
        let loose =
            Zoe::default().estimate(&mut sys, Accuracy::new(0.3, 0.3), &mut rng);
        assert!(
            loose.air.total_us() < tight.air.total_us() / 10.0,
            "tight {} vs loose {}",
            tight.air.total_us(),
            loose.air.total_us()
        );
    }

    #[test]
    fn per_slot_charging_matches_the_paper_arithmetic() {
        let zoe = Zoe {
            rough_rounds: 1,
            max_slots: 100,
            adaptive: false,
        };
        let mut sys = system_with(1_000);
        let mut rng = StdRng::seed_from_u64(5);
        let report = zoe.estimate(&mut sys, Accuracy::new(0.3, 0.3), &mut rng);
        let phase2 = &report.phases[1];
        let slots = phase2.air.bitslots;
        // Each slot: 32*37.76 + 302 (seed broadcast) + 18.88 + 302.
        let per_slot = 32.0 * 37.76 + 302.0 + 18.88 + 302.0;
        // Phase 2 also opens with one turnaround.
        let expect = slots as f64 * per_slot + 302.0;
        assert!(
            (phase2.air.total_us() - expect).abs() < 1e-6,
            "phase2 = {}, expect {expect}",
            phase2.air.total_us()
        );
    }

    #[test]
    fn cap_produces_warning() {
        let zoe = Zoe {
            rough_rounds: 1,
            max_slots: 64,
            adaptive: true,
        };
        let mut sys = system_with(100_000);
        let mut rng = StdRng::seed_from_u64(6);
        let report = zoe.estimate(&mut sys, Accuracy::new(0.05, 0.05), &mut rng);
        assert!(report
            .warnings
            .iter()
            .any(|w| w.contains("capped")));
    }

    #[test]
    fn name_is_zoe() {
        assert_eq!(Zoe::default().name(), "ZOE");
    }

    // ------------------------------------------------------------------
    // ZoeSlotPlan: the batched single-slot-frame kernel.
    // ------------------------------------------------------------------

    fn tags(n: usize) -> Vec<Tag> {
        (0..n as u64)
            .map(|i| Tag {
                id: i * 7 + 3,
                rn: i as u32,
            })
            .collect()
    }

    #[test]
    fn walk_visits_increasing_in_range_slots() {
        let plan = ZoeSlotPlan::new(512, 0xDEAD_BEEF, 0.05);
        for tag in tags(200) {
            let mut seen = Vec::new();
            plan.walk(&tag, |slot| seen.push(slot));
            assert!(seen.iter().all(|&s| s < 512), "slot out of range");
            assert!(seen.windows(2).all(|w| w[0] < w[1]), "not increasing");
        }
    }

    #[test]
    fn walk_matches_bernoulli_rate() {
        // Mean participation over many (tag, slot) pairs tracks p.
        let p = 0.03;
        let plan = ZoeSlotPlan::new(512, 42, p);
        let mut responses = 0u64;
        let population = tags(2_000);
        for tag in &population {
            plan.walk(tag, |_| responses += 1);
        }
        let pairs = (population.len() * plan.batch()) as f64;
        let rate = responses as f64 / pairs;
        // Binomial sd over ~1M pairs is ~1.7e-4; allow 6 sigma.
        assert!((rate - p).abs() < 1e-3, "rate = {rate}, p = {p}");
    }

    #[test]
    fn full_participation_answers_every_slot() {
        // p = 1: ln(1-p) = -inf collapses every gap to zero.
        let plan = ZoeSlotPlan::new(64, 7, 1.0);
        for tag in tags(5) {
            let mut seen = Vec::new();
            plan.walk(&tag, |slot| seen.push(slot));
            assert_eq!(seen, (0..64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn scalar_and_batched_kernels_fill_identically() {
        use rfid_sim::frame::{response_fill, ScalarRef};
        let plan = ZoeSlotPlan::new(512, 0x5EED, 0.01);
        let population = tags(3_000);
        let batched = response_fill(&population, 512, 512, &plan);
        let scalar = response_fill(&population, 512, 512, &ScalarRef(&plan));
        assert_eq!(batched, scalar);
    }

    #[test]
    fn slot_seeds_follow_the_counter_stream() {
        use rfid_hash::{stream_seed, SplitMix64};
        let plan = ZoeSlotPlan::new(16, 99, 0.5);
        let mut words = vec![0u64; 16];
        SplitMix64::new(99).fill_u64(&mut words);
        for (i, &w) in words.iter().enumerate() {
            assert_eq!(plan.slot_seed(i), (w >> 32) as u32);
            assert_eq!(w, stream_seed(99, i as u64));
        }
        // Distinct across the batch (the reader really does broadcast a
        // fresh seed per frame).
        let seeds: std::collections::BTreeSet<u32> =
            (0..16).map(|i| plan.slot_seed(i)).collect();
        assert_eq!(seeds.len(), 16);
    }

    #[test]
    fn batched_dispatch_is_always_on_for_zoe() {
        assert_eq!(ZoeSlotPlan::new(1, 0, 0.5).batched_fill_threshold(), 0);
    }
}
