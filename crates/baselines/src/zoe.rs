//! ZOE — the Zero-One Estimator (Zheng & Li, INFOCOM 2013), with the
//! modifications the BFCE paper applies for its comparison (Section V-C).
//!
//! ZOE runs a sequence of **single-slot frames**: for each frame the reader
//! broadcasts a fresh 32-bit seed, every tag participates with probability
//! `p` (tuned so the load `lambda = p*n` sits at the variance-optimal
//! `lambda* ~ 1.594`), and the reader senses one bit. The idle fraction
//! over `m` frames inverts to `n_hat = -ln(rho) / p`.
//!
//! Because *every slot* costs a full seed broadcast (1510 µs) plus the
//! slot and its turnaround (~321 µs), ZOE's reader-to-tag traffic dominates
//! its execution time — the observation that motivates BFCE. Two further
//! behaviours from the BFCE paper are reproduced:
//!
//! * the rough estimate comes from LOF run 10 times;
//! * the slot budget depends on the realized load: after the nominal `m`
//!   slots (computed at `lambda*` with the conservative sigma_max = 0.5
//!   bound), ZOE re-checks the budget at the *measured* `lambda_hat` and
//!   keeps extending the run while under-provisioned — a rough estimate
//!   that "fairly deviates from the actual cardinality \[leads\] to a sharp
//!   growth of the required time slots".

use crate::common::{clamped_rho, required_trials, ZOE_OPTIMAL_LAMBDA};
use crate::lof::Lof;
use rand::RngCore;
use rfid_sim::{
    Accuracy, CardinalityEstimator, EstimationReport, PhaseReport, RfidSystem, Tag,
};
use rfid_stats::d_for_delta;

/// The ZOE estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Zoe {
    /// LOF rounds for the rough phase (the BFCE paper uses 10).
    pub rough_rounds: u32,
    /// Hard cap on total single-slot frames, bounding the worst case when
    /// the rough estimate is badly off (the paper observed up to ~18 s).
    pub max_slots: u64,
    /// Re-check the slot budget against the realized load and extend
    /// (the adaptive behaviour described above). Disable to run exactly
    /// the nominal budget.
    pub adaptive: bool,
}

impl Default for Zoe {
    fn default() -> Self {
        Self {
            rough_rounds: 10,
            max_slots: 16_384,
            adaptive: true,
        }
    }
}

/// Size of the observation batches used to amortize the per-frame
/// simulation overhead (purely an implementation detail: the ledger is
/// charged per-slot exactly as the real schedule would be).
const SLOT_BATCH: usize = 512;

impl Zoe {
    /// Run `count` single-slot frames, returning how many were idle.
    /// Charges per slot: one 32-bit seed broadcast (with its trailing
    /// turnaround), the 1-bit slot, and the turnaround back to the reader.
    fn run_slots(
        &self,
        system: &mut RfidSystem,
        p: f64,
        count: u64,
        rng: &mut dyn RngCore,
    ) -> u64 {
        let mut idle = 0u64;
        let mut remaining = count;
        while remaining > 0 {
            let batch = remaining.min(SLOT_BATCH as u64) as usize;
            let seeds: Vec<u32> = (0..batch).map(|_| rng.next_u32()).collect();
            // One logical single-slot frame per seed; simulated as one
            // observation pass with per-slot charging below.
            let plan = move |tag: &Tag, out: &mut Vec<usize>| {
                for (i, &seed) in seeds.iter().enumerate() {
                    if crate::common::participates(tag, seed, p) {
                        out.push(i);
                    }
                }
            };
            let frame = system.run_uncharged_bitslot_frame(batch, &plan);
            idle += frame.idle_count() as u64;
            system.charge_broadcasts(32, batch as u64);
            system.charge_bitslots(batch as u64);
            system.charge_turnarounds(batch as u64);
            remaining -= batch as u64;
        }
        idle
    }
}

impl CardinalityEstimator for Zoe {
    fn name(&self) -> &'static str {
        "ZOE"
    }

    fn estimate(
        &self,
        system: &mut RfidSystem,
        accuracy: Accuracy,
        rng: &mut dyn RngCore,
    ) -> EstimationReport {
        let mut warnings = Vec::new();
        let start = system.air_time();

        // Phase 1: rough estimation via LOF x rough_rounds.
        let lof = Lof {
            rounds: self.rough_rounds,
            frame: 32,
        };
        let n_r = lof.rough_estimate(system, rng).max(1.0);
        let after_rough = system.air_time();

        // Phase 2: single-slot frames at the tuned participation.
        let p = (ZOE_OPTIMAL_LAMBDA / n_r).min(1.0);
        let d = d_for_delta(accuracy.delta);
        let nominal = required_trials(accuracy.epsilon, d, ZOE_OPTIMAL_LAMBDA);
        let mut target = nominal.min(self.max_slots);

        system.turnaround();
        let mut slots = 0u64;
        let mut idle = 0u64;
        loop {
            idle += self.run_slots(system, p, target - slots, rng);
            slots = target;
            let rho = clamped_rho(idle as usize, slots as usize);
            let lambda_hat = -rho.ln();
            if !self.adaptive {
                break;
            }
            let required = required_trials(accuracy.epsilon, d, lambda_hat)
                .min(self.max_slots);
            if required <= slots {
                break;
            }
            target = required;
        }
        if slots >= self.max_slots {
            warnings.push(format!(
                "slot budget capped at {} (realized load far from lambda*)",
                self.max_slots
            ));
        }
        if idle == 0 || idle == slots {
            warnings.push("degenerate slot observations; rho clamped".into());
        }

        let rho = clamped_rho(idle as usize, slots as usize);
        let n_hat = -rho.ln() / p;
        let end = system.air_time();

        EstimationReport {
            n_hat,
            air: end.since(&start),
            phases: vec![
                PhaseReport {
                    name: "rough (LOF x10)".into(),
                    air: after_rough.since(&start),
                },
                PhaseReport {
                    name: "single-slot frames".into(),
                    air: end.since(&after_rough),
                },
            ],
            rounds: self.rough_rounds as u64 + slots,
            warnings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rfid_sim::TagPopulation;

    fn system_with(n: usize) -> RfidSystem {
        let tags = (0..n as u64)
            .map(|i| Tag {
                id: i * 11 + 5,
                rn: i as u32,
            })
            .collect();
        RfidSystem::new(TagPopulation::new(tags))
    }

    #[test]
    fn estimates_land_within_epsilon_usually() {
        // One seeded run per cardinality; these seeds are in the 95% mass.
        for (seed, truth) in [(1u64, 10_000usize), (2, 100_000)] {
            let mut sys = system_with(truth);
            let mut rng = StdRng::seed_from_u64(seed);
            let report =
                Zoe::default().estimate(&mut sys, Accuracy::paper_default(), &mut rng);
            let rel = report.relative_error(truth);
            assert!(rel < 0.07, "n = {truth}: rel = {rel}");
        }
    }

    #[test]
    fn slot_budget_matches_the_papers_formula_scale() {
        // (0.05, 0.05): ~4k slots, each costing ~1831 us -> several seconds.
        let mut sys = system_with(50_000);
        let mut rng = StdRng::seed_from_u64(3);
        let report =
            Zoe::default().estimate(&mut sys, Accuracy::paper_default(), &mut rng);
        let secs = report.air.total_seconds();
        assert!(secs > 4.0, "ZOE too fast: {secs}s");
        assert!(secs < 40.0, "ZOE absurdly slow: {secs}s");
        // Reader time dominates (the BFCE paper's central observation).
        assert!(report.air.reader_us > 2.0 * report.air.tag_us);
    }

    #[test]
    fn loose_accuracy_needs_far_fewer_slots() {
        let mut sys = system_with(50_000);
        let mut rng = StdRng::seed_from_u64(4);
        let tight =
            Zoe::default().estimate(&mut sys, Accuracy::new(0.05, 0.05), &mut rng);
        sys.reset_ledger();
        let loose =
            Zoe::default().estimate(&mut sys, Accuracy::new(0.3, 0.3), &mut rng);
        assert!(
            loose.air.total_us() < tight.air.total_us() / 10.0,
            "tight {} vs loose {}",
            tight.air.total_us(),
            loose.air.total_us()
        );
    }

    #[test]
    fn per_slot_charging_matches_the_paper_arithmetic() {
        let zoe = Zoe {
            rough_rounds: 1,
            max_slots: 100,
            adaptive: false,
        };
        let mut sys = system_with(1_000);
        let mut rng = StdRng::seed_from_u64(5);
        let report = zoe.estimate(&mut sys, Accuracy::new(0.3, 0.3), &mut rng);
        let phase2 = &report.phases[1];
        let slots = phase2.air.bitslots;
        // Each slot: 32*37.76 + 302 (seed broadcast) + 18.88 + 302.
        let per_slot = 32.0 * 37.76 + 302.0 + 18.88 + 302.0;
        // Phase 2 also opens with one turnaround.
        let expect = slots as f64 * per_slot + 302.0;
        assert!(
            (phase2.air.total_us() - expect).abs() < 1e-6,
            "phase2 = {}, expect {expect}",
            phase2.air.total_us()
        );
    }

    #[test]
    fn cap_produces_warning() {
        let zoe = Zoe {
            rough_rounds: 1,
            max_slots: 64,
            adaptive: true,
        };
        let mut sys = system_with(100_000);
        let mut rng = StdRng::seed_from_u64(6);
        let report = zoe.estimate(&mut sys, Accuracy::new(0.05, 0.05), &mut rng);
        assert!(report
            .warnings
            .iter()
            .any(|w| w.contains("capped")));
    }

    #[test]
    fn name_is_zoe() {
        assert_eq!(Zoe::default().name(), "ZOE");
    }
}
