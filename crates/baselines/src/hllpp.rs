//! HLL++ — HyperLogLog++ (Heule, Nunkesser & Hall, EDBT 2013) over the
//! register-collection air protocol.
//!
//! A modern mergeable-sketch baseline rather than an RFID-literature
//! scheme: its register file snapshots, restores, and merges through
//! [`rfid_bfce::Snapshot`], which is what the multi-reader continuous
//! estimation north star needs and what the one-shot paper protocols
//! (ZOE/BFCE/SRC) cannot do without re-running frames.
//!
//! This implementation keeps the two HLL++ refinements that matter at
//! RFID scale — the 64-bit hash (no large-range correction, exact far
//! past 10^9 tags) and the small-range linear-counting fallback — and
//! drops the empirical bias-correction tables, which only sharpen the
//! narrow band around `2.5 m` by a few percent. The sparse-to-dense
//! storage idea from the paper survives as the Small → Array → Dense
//! tiers of [`rfid_bfce::sketch::repr::Registers`].

use crate::registers::run_register_estimator;
use rand::RngCore;
use rfid_bfce::{RegisterFlavor, RegisterSketch};
use rfid_sim::{Accuracy, CardinalityEstimator, EstimationReport, RfidSystem};

/// The HyperLogLog++ estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HllPp {
    /// Register-index precision `p` (`m = 2^p` registers); the default 12
    /// gives a ~1.6% standard error at 4096 registers.
    pub precision: u8,
    /// Rank cells per register in the collection frame; 32 covers loads
    /// up to `2^32` tags per register.
    pub levels: u8,
}

impl Default for HllPp {
    fn default() -> Self {
        Self {
            precision: 12,
            levels: 32,
        }
    }
}

impl HllPp {
    /// Run the register-collection protocol with an explicit broadcast
    /// `seed` and return the mergeable sketch (air time charged).
    ///
    /// Per-reader snapshots taken with the same seed merge exactly; see
    /// [`crate::registers::collect_register_sketch`].
    pub fn sketch(&self, system: &mut RfidSystem, seed: u32) -> RegisterSketch {
        crate::registers::collect_register_sketch(
            RegisterFlavor::HllPp,
            self.precision,
            self.levels,
            system,
            seed,
        )
    }
}

impl CardinalityEstimator for HllPp {
    fn name(&self) -> &'static str {
        "HLL++"
    }

    fn estimate(
        &self,
        system: &mut RfidSystem,
        accuracy: Accuracy,
        rng: &mut dyn RngCore,
    ) -> EstimationReport {
        run_register_estimator(
            "hllpp-frame",
            RegisterFlavor::HllPp,
            self.precision,
            self.levels,
            system,
            accuracy,
            rng,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rfid_sim::{Tag, TagPopulation};

    fn system_with(n: usize) -> RfidSystem {
        let tags = (0..n as u64)
            .map(|i| Tag {
                id: i * 3 + 1,
                rn: i as u32,
            })
            .collect();
        RfidSystem::new(TagPopulation::new(tags))
    }

    #[test]
    fn estimates_across_the_design_range() {
        for truth in [50usize, 5_000, 100_000, 1_000_000] {
            let mut sys = system_with(truth);
            let mut rng = StdRng::seed_from_u64(truth as u64 ^ 0xA5);
            let report =
                HllPp::default().estimate(&mut sys, Accuracy::paper_default(), &mut rng);
            let rel = report.relative_error(truth);
            // sigma ~ 1.6% at p = 12; 5 sigma headroom for fixed seeds.
            assert!(rel < 0.08, "n = {truth}: n_hat = {} (rel {rel})", report.n_hat);
        }
    }

    #[test]
    fn warns_when_precision_cannot_meet_the_accuracy() {
        let mut sys = system_with(10_000);
        let mut rng = StdRng::seed_from_u64(1);
        let coarse = HllPp {
            precision: 6,
            levels: 32,
        };
        let report = coarse.estimate(&mut sys, Accuracy::new(0.01, 0.01), &mut rng);
        assert!(!report.warnings.is_empty());

        let mut sys = system_with(10_000);
        let report = HllPp::default().estimate(&mut sys, Accuracy::new(0.1, 0.1), &mut rng);
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    }

    #[test]
    fn report_structure_and_constant_air() {
        let mut rng = StdRng::seed_from_u64(2);
        let air_of = |n: usize, rng: &mut StdRng| {
            let mut sys = system_with(n);
            let report = HllPp::default().estimate(&mut sys, Accuracy::paper_default(), rng);
            assert_eq!(report.rounds, 1);
            assert_eq!(report.phases.len(), 1);
            assert_eq!(report.phases[0].name, "hllpp-frame");
            report.air
        };
        let a = air_of(100, &mut rng);
        let b = air_of(500_000, &mut rng);
        assert_eq!(a.bitslots, b.bitslots);
        assert_eq!(a.bitslots, 4096 * 32);
    }

    #[test]
    fn empty_system_estimates_zero() {
        let mut sys = system_with(0);
        let mut rng = StdRng::seed_from_u64(3);
        let report = HllPp::default().estimate(&mut sys, Accuracy::paper_default(), &mut rng);
        assert_eq!(report.n_hat, 0.0);
    }

    #[test]
    fn trait_object_usage() {
        let est: Box<dyn CardinalityEstimator> = Box::new(HllPp::default());
        assert_eq!(est.name(), "HLL++");
        let mut sys = system_with(30_000);
        let mut rng = StdRng::seed_from_u64(4);
        let report = est.estimate(&mut sys, Accuracy::new(0.1, 0.1), &mut rng);
        assert!(report.relative_error(30_000) < 0.1);
    }
}
