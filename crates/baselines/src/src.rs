//! SRC — the enhanced two-phase counting protocol of Chen, Zhou & Yu
//! ("Understanding RFID Counting Protocols", MobiCom 2013), as set up by
//! the BFCE paper's comparison (Section V-C).
//!
//! Phase 1 obtains a constant-factor rough estimate with `O(log log n)`
//! slots (realized here as one LOF geometric frame). Phase 2 runs a
//! *balanced frame*: the reader announces a frame of `s = Theta(1/eps^2)`
//! bit-slots and a persistence probability chosen so the expected per-slot
//! load is the variance-optimal `lambda* ~ 1.594` given the rough estimate;
//! the idle fraction inverts to a per-round estimate that is
//! `(epsilon, 0.2)`-accurate. To reach error probability `delta < 0.2` the
//! BFCE paper repeats phase 2 `m` times — the smallest (odd) `m` with
//! `sum_{i=(m+1)/2}^m C(m,i) 0.8^i 0.2^(m-i) >= 1 - delta` — and takes a
//! majority vote, realized as the median of the per-round estimates.
//!
//! Unlike ZOE, SRC broadcasts only once per *frame*, so its reader-side
//! traffic is negligible; unlike BFCE, its slot count scales with
//! `1/eps^2` and it must be sized conservatively (sigma_max plus a safety
//! factor for the factor-2 rough estimate), which is why BFCE's optimized
//! single frame still wins at tight accuracy.

use crate::common::{
    clamped_rho, median, required_trials, uniform_frame_plan, ZOE_OPTIMAL_LAMBDA,
};
use crate::lof::Lof;
use rand::RngCore;
use rfid_sim::{
    Accuracy, CardinalityEstimator, EstimationReport, PhaseReport, RfidSystem,
};
use rfid_stats::{d_for_delta, majority_rounds};

/// The SRC estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(clippy::derive_partial_eq_without_eq)]
pub struct Src {
    /// Per-round error probability (the BFCE paper's setup fixes 0.2).
    pub per_round_delta: f64,
    /// Multiplicative sizing slack on the per-round frame, covering the
    /// load mismatch a factor-2 rough estimate can cause.
    pub sizing_slack: f64,
    /// LOF rounds in phase 1 (one geometric frame by default).
    pub rough_rounds: u32,
}

impl Default for Src {
    fn default() -> Self {
        Self {
            per_round_delta: 0.2,
            sizing_slack: 2.0,
            rough_rounds: 1,
        }
    }
}

impl Src {
    /// Per-round frame size for a given `epsilon`.
    pub fn round_frame_size(&self, epsilon: f64) -> usize {
        let d0 = d_for_delta(self.per_round_delta);
        let base = required_trials(epsilon, d0, ZOE_OPTIMAL_LAMBDA);
        ((base as f64) * self.sizing_slack).ceil() as usize
    }

    /// Number of phase-2 rounds for a target `delta`.
    pub fn rounds_for(&self, delta: f64) -> u64 {
        if delta >= self.per_round_delta {
            1
        } else {
            majority_rounds(delta, 1.0 - self.per_round_delta)
        }
    }
}

// analysis:allow(snapshot-surface): one-shot SRC protocol re-runs sampled frames per trial; no mergeable per-reader state to export (ROADMAP item 2 burndown)
impl CardinalityEstimator for Src {
    fn name(&self) -> &'static str {
        "SRC"
    }

    fn estimate(
        &self,
        system: &mut RfidSystem,
        accuracy: Accuracy,
        rng: &mut dyn RngCore,
    ) -> EstimationReport {
        let mut warnings = Vec::new();
        let start = system.air_time();

        // Phase 1: rough constant-factor estimate.
        let lof = Lof {
            rounds: self.rough_rounds,
            frame: 32,
        };
        let n_r = lof.rough_estimate(system, rng).max(1.0);
        let after_rough = system.air_time();

        // Phase 2: m balanced frames, median vote.
        let s = self.round_frame_size(accuracy.epsilon);
        let m = self.rounds_for(accuracy.delta);
        let p = (ZOE_OPTIMAL_LAMBDA * s as f64 / n_r).min(1.0);
        let mut estimates = Vec::with_capacity(m as usize);
        for _ in 0..m {
            let seed = rng.next_u32();
            system.turnaround();
            // Seed plus persistence parameter.
            system.broadcast(64);
            let plan = uniform_frame_plan(seed, s, p);
            let frame = system.run_bitslot_frame(s, &plan);
            let idle = frame.idle_count();
            if idle == 0 || idle == s {
                warnings.push("degenerate SRC frame; rho clamped".into());
            }
            let rho = clamped_rho(idle, s);
            estimates.push(-(s as f64) * rho.ln() / p);
        }
        let n_hat = median(&mut estimates);
        let end = system.air_time();

        EstimationReport {
            n_hat,
            air: end.since(&start),
            phases: vec![
                PhaseReport {
                    name: "rough (LOF)".into(),
                    air: after_rough.since(&start),
                },
                PhaseReport {
                    name: format!("balanced frames x{m}"),
                    air: end.since(&after_rough),
                },
            ],
            rounds: self.rough_rounds as u64 + m,
            warnings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rfid_sim::{Tag, TagPopulation};

    fn system_with(n: usize) -> RfidSystem {
        let tags = (0..n as u64)
            .map(|i| Tag {
                id: i * 13 + 1,
                rn: i as u32,
            })
            .collect();
        RfidSystem::new(TagPopulation::new(tags))
    }

    #[test]
    fn round_structure_follows_the_binomial_rule() {
        let src = Src::default();
        assert_eq!(src.rounds_for(0.05), 7);
        assert_eq!(src.rounds_for(0.10), 5);
        assert_eq!(src.rounds_for(0.15), 3);
        assert_eq!(src.rounds_for(0.20), 1);
        assert_eq!(src.rounds_for(0.30), 1);
    }

    #[test]
    fn frame_size_scales_inverse_quadratically() {
        let src = Src::default();
        let s5 = src.round_frame_size(0.05);
        let s10 = src.round_frame_size(0.10);
        let ratio = s5 as f64 / s10 as f64;
        assert!((3.5..4.5).contains(&ratio), "ratio = {ratio}");
        // Absolute scale sanity: thousands at 5%.
        assert!((2500..5000).contains(&s5), "s5 = {s5}");
    }

    #[test]
    fn estimates_land_within_epsilon_usually() {
        for (seed, truth) in [(1u64, 10_000usize), (2, 100_000), (3, 500_000)] {
            let mut sys = system_with(truth);
            let mut rng = StdRng::seed_from_u64(seed);
            let report =
                Src::default().estimate(&mut sys, Accuracy::paper_default(), &mut rng);
            let rel = report.relative_error(truth);
            assert!(rel < 0.07, "n = {truth}: rel = {rel}");
        }
    }

    #[test]
    fn execution_time_sits_between_bfce_and_zoe() {
        // At (0.05, 0.05): 7 frames of ~3400 bit-slots ~ 0.45 s —
        // sub-second but above BFCE's 0.19 s.
        let mut sys = system_with(100_000);
        let mut rng = StdRng::seed_from_u64(4);
        let report =
            Src::default().estimate(&mut sys, Accuracy::paper_default(), &mut rng);
        let secs = report.air.total_seconds();
        assert!((0.2..1.5).contains(&secs), "SRC time = {secs}s");
        // Tag time dominates (few broadcasts) — the opposite of ZOE.
        assert!(report.air.tag_us > report.air.reader_us);
    }

    #[test]
    fn reader_traffic_is_per_round_not_per_slot() {
        let mut sys = system_with(20_000);
        let mut rng = StdRng::seed_from_u64(5);
        let report =
            Src::default().estimate(&mut sys, Accuracy::paper_default(), &mut rng);
        // 1 LOF broadcast + 7 round broadcasts.
        assert_eq!(report.air.reader_messages, 8);
    }

    #[test]
    fn loose_delta_runs_one_round() {
        let mut sys = system_with(20_000);
        let mut rng = StdRng::seed_from_u64(6);
        let report =
            Src::default().estimate(&mut sys, Accuracy::new(0.05, 0.3), &mut rng);
        assert_eq!(report.rounds, 2); // 1 LOF + 1 balanced frame
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut sys = system_with(30_000);
            let mut rng = StdRng::seed_from_u64(seed);
            Src::default()
                .estimate(&mut sys, Accuracy::paper_default(), &mut rng)
                .n_hat
        };
        assert_eq!(run(7), run(7));
    }
}
