//! UPE — the Unified Probabilistic Estimator of Kodialam & Nandagopal
//! (MobiCom 2006), the first framed-slotted-Aloha cardinality estimator.
//!
//! UPE observes classic Aloha frames where the reader distinguishes empty,
//! singleton and collision slots. With per-slot load `lambda = p n / f`,
//! the expected empty fraction is `e^-lambda` and the expected collision
//! fraction is `1 - e^-lambda (1 + lambda)`. This implementation uses the
//! zero estimator (the statistically stronger of the two) for the final
//! answer and cross-checks it against the collision estimator, flagging
//! disagreement; [`collision_lambda`] exposes the collision inversion.
//!
//! Because Aloha slots must be long enough to detect a singleton reply
//! (16 bits here, per C1G2's RN16), UPE pays ~16x the per-slot cost of the
//! bit-slot protocols — the generational gap the later schemes close.

use crate::common::{clamped_rho, required_trials, uniform_frame_plan, ZOE_OPTIMAL_LAMBDA};
use crate::lof::Lof;
use rand::RngCore;
use rfid_sim::{
    Accuracy, CardinalityEstimator, EstimationReport, PhaseReport, RfidSystem,
};
use rfid_stats::d_for_delta;

/// Invert the collision fraction: find `lambda` with
/// `1 - e^-lambda (1 + lambda) = collision_frac` (bisection; the left side
/// is strictly increasing in `lambda`).
pub fn collision_lambda(collision_frac: f64) -> Option<f64> {
    if !(0.0..1.0).contains(&collision_frac) {
        return None;
    }
    // analysis:allow(float-sanity): exact 0.0 is the no-collisions sentinel (count 0 / frames); the inversion below diverges there
    if collision_frac == 0.0 {
        return Some(0.0);
    }
    let g = |l: f64| 1.0 - (-l).exp() * (1.0 + l);
    let (mut lo, mut hi) = (0.0f64, 60.0f64);
    if g(hi) < collision_frac {
        return None;
    }
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if g(mid) < collision_frac {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

/// The UPE estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Upe {
    /// Aloha frame size per round.
    pub frame: usize,
}

impl Default for Upe {
    fn default() -> Self {
        Self { frame: 1024 }
    }
}

// analysis:allow(snapshot-surface): one-shot UPE protocol estimates from fresh probabilistic frames; no mergeable per-reader state to export (ROADMAP item 2 burndown)
impl CardinalityEstimator for Upe {
    fn name(&self) -> &'static str {
        "UPE"
    }

    fn estimate(
        &self,
        system: &mut RfidSystem,
        accuracy: Accuracy,
        rng: &mut dyn RngCore,
    ) -> EstimationReport {
        let mut warnings = Vec::new();
        let start = system.air_time();
        let f = self.frame;

        // Rough estimate to tune the persistence.
        let n_r = Lof {
            rounds: 1,
            frame: 32,
        }
        .rough_estimate(system, rng)
        .max(1.0);
        let after_rough = system.air_time();

        let p = (ZOE_OPTIMAL_LAMBDA * f as f64 / n_r).min(1.0);
        let d = d_for_delta(accuracy.delta);
        let trials = required_trials(accuracy.epsilon, d, ZOE_OPTIMAL_LAMBDA);
        let rounds = trials.div_ceil(f as u64).max(1);

        let mut empties = 0usize;
        let mut collisions = 0usize;
        for _ in 0..rounds {
            let seed = rng.next_u32();
            system.turnaround();
            system.broadcast(64);
            let frame = system.run_aloha_frame(f, &uniform_frame_plan(seed, f, p));
            empties += frame.empties();
            collisions += frame.collisions();
        }
        let total = rounds as usize * f;
        if empties == 0 || empties == total {
            warnings.push("degenerate UPE observations; rho clamped".into());
        }
        let rho = clamped_rho(empties, total);
        let n_hat = -(f as f64) * rho.ln() / p;

        // Collision cross-check (the "unified" part of UPE).
        let coll_frac = collisions as f64 / total as f64;
        match collision_lambda(coll_frac) {
            Some(l) => {
                let n_ce = l * f as f64 / p;
                if n_ce > 0.0 && (n_ce - n_hat).abs() > 0.5 * n_hat.max(1.0) {
                    warnings.push(format!(
                        "zero/collision estimators disagree: ZE {n_hat:.0} vs CE {n_ce:.0}"
                    ));
                }
            }
            None => warnings.push("collision fraction saturated".into()),
        }

        let end = system.air_time();
        EstimationReport {
            n_hat,
            air: end.since(&start),
            phases: vec![
                PhaseReport {
                    name: "rough (LOF)".into(),
                    air: after_rough.since(&start),
                },
                PhaseReport {
                    name: format!("aloha frames x{rounds}"),
                    air: end.since(&after_rough),
                },
            ],
            rounds: 1 + rounds,
            warnings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rfid_sim::{Tag, TagPopulation};

    fn system_with(n: usize) -> RfidSystem {
        let tags = (0..n as u64)
            .map(|i| Tag {
                id: i * 17 + 9,
                rn: i as u32,
            })
            .collect();
        RfidSystem::new(TagPopulation::new(tags))
    }

    #[test]
    fn collision_lambda_round_trips() {
        for l in [0.1f64, 0.5, 1.594, 3.0, 8.0] {
            let frac = 1.0 - (-l).exp() * (1.0 + l);
            let got = collision_lambda(frac).unwrap();
            assert!((got - l).abs() < 1e-9, "lambda {l} -> {got}");
        }
        assert_eq!(collision_lambda(0.0), Some(0.0));
        assert!(collision_lambda(1.0).is_none());
        assert!(collision_lambda(-0.1).is_none());
    }

    #[test]
    fn estimates_are_reasonable() {
        for (seed, truth) in [(1u64, 5_000usize), (2, 50_000)] {
            let mut sys = system_with(truth);
            let mut rng = StdRng::seed_from_u64(seed);
            let report =
                Upe::default().estimate(&mut sys, Accuracy::paper_default(), &mut rng);
            let rel = report.relative_error(truth);
            assert!(rel < 0.1, "n = {truth}: rel = {rel}");
        }
    }

    #[test]
    fn aloha_slots_dominate_cost() {
        let mut sys = system_with(20_000);
        let mut rng = StdRng::seed_from_u64(3);
        let report =
            Upe::default().estimate(&mut sys, Accuracy::paper_default(), &mut rng);
        assert!(report.air.aloha_slots >= 1024);
        // UPE pays dearly for the 16-bit slots: slower than a second.
        assert!(report.air.total_seconds() > 1.0);
    }

    #[test]
    fn rounds_scale_with_epsilon() {
        let mut sys = system_with(20_000);
        let mut rng = StdRng::seed_from_u64(4);
        let tight =
            Upe::default().estimate(&mut sys, Accuracy::new(0.05, 0.05), &mut rng);
        sys.reset_ledger();
        let loose =
            Upe::default().estimate(&mut sys, Accuracy::new(0.3, 0.05), &mut rng);
        assert!(tight.rounds > loose.rounds);
    }
}
