//! LLBETA — LogLog-β (Qin, Kim, Tung & Wang, 2016) over the
//! register-collection air protocol.
//!
//! LogLog-β replaces HyperLogLog's regime switching (linear counting →
//! raw → large-range correction) with one closed-form estimate whose
//! bias polynomial `β(m, z)` in the zero-register count `z` absorbs the
//! small- and mid-range bias. Same register file as HLL++ — only the
//! inversion formula differs — so the two share the collection protocol,
//! the tiered storage, the wire format, and the merge algebra.
//!
//! The published β coefficients are fitted at `m = 2^14`, so the default
//! precision here is 14 (standard error ~0.8%); other precisions reuse
//! them as an approximation, which the sketch layer documents.

use crate::registers::run_register_estimator;
use rand::RngCore;
use rfid_bfce::{RegisterFlavor, RegisterSketch};
use rfid_sim::{Accuracy, CardinalityEstimator, EstimationReport, RfidSystem};

/// The LogLog-β estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogLogBeta {
    /// Register-index precision `p`; the default 14 matches the β
    /// coefficient fit (`m = 16384`, ~0.8% standard error).
    pub precision: u8,
    /// Rank cells per register in the collection frame.
    pub levels: u8,
}

impl Default for LogLogBeta {
    fn default() -> Self {
        Self {
            precision: 14,
            levels: 32,
        }
    }
}

impl LogLogBeta {
    /// Run the register-collection protocol with an explicit broadcast
    /// `seed` and return the mergeable sketch (air time charged).
    pub fn sketch(&self, system: &mut RfidSystem, seed: u32) -> RegisterSketch {
        crate::registers::collect_register_sketch(
            RegisterFlavor::LogLogBeta,
            self.precision,
            self.levels,
            system,
            seed,
        )
    }
}

impl CardinalityEstimator for LogLogBeta {
    fn name(&self) -> &'static str {
        "LLBETA"
    }

    fn estimate(
        &self,
        system: &mut RfidSystem,
        accuracy: Accuracy,
        rng: &mut dyn RngCore,
    ) -> EstimationReport {
        run_register_estimator(
            "llbeta-frame",
            RegisterFlavor::LogLogBeta,
            self.precision,
            self.levels,
            system,
            accuracy,
            rng,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rfid_sim::{Tag, TagPopulation};

    fn system_with(n: usize) -> RfidSystem {
        let tags = (0..n as u64)
            .map(|i| Tag {
                id: i * 13 + 7,
                rn: i as u32,
            })
            .collect();
        RfidSystem::new(TagPopulation::new(tags))
    }

    #[test]
    fn estimates_across_the_design_range() {
        // LogLog-β's selling point: one formula from tens to millions.
        for truth in [50usize, 5_000, 100_000, 1_000_000] {
            let mut sys = system_with(truth);
            let mut rng = StdRng::seed_from_u64(truth as u64 ^ 0xB7);
            let report =
                LogLogBeta::default().estimate(&mut sys, Accuracy::paper_default(), &mut rng);
            let rel = report.relative_error(truth);
            // sigma ~ 0.8% at p = 14; 5 sigma headroom for fixed seeds.
            assert!(rel < 0.045, "n = {truth}: n_hat = {} (rel {rel})", report.n_hat);
        }
    }

    #[test]
    fn small_range_has_no_regime_switch_artifacts() {
        // Sweep the region where classic HLL hands off between linear
        // counting and the raw formula; β must stay smooth and accurate.
        for truth in [100usize, 1_000, 10_000, 40_000, 41_000, 42_000] {
            let mut sys = system_with(truth);
            let mut rng = StdRng::seed_from_u64(truth as u64);
            let report =
                LogLogBeta::default().estimate(&mut sys, Accuracy::paper_default(), &mut rng);
            let rel = report.relative_error(truth);
            assert!(rel < 0.045, "n = {truth}: rel {rel}");
        }
    }

    #[test]
    fn report_structure_and_constant_air() {
        let mut rng = StdRng::seed_from_u64(5);
        let air_of = |n: usize, rng: &mut StdRng| {
            let mut sys = system_with(n);
            let report =
                LogLogBeta::default().estimate(&mut sys, Accuracy::paper_default(), rng);
            assert_eq!(report.rounds, 1);
            assert_eq!(report.phases.len(), 1);
            assert_eq!(report.phases[0].name, "llbeta-frame");
            report.air
        };
        let a = air_of(100, &mut rng);
        let b = air_of(500_000, &mut rng);
        assert_eq!(a.bitslots, b.bitslots);
        assert_eq!(a.bitslots, 16384 * 32);
    }

    #[test]
    fn empty_system_estimates_zero() {
        let mut sys = system_with(0);
        let mut rng = StdRng::seed_from_u64(6);
        let report =
            LogLogBeta::default().estimate(&mut sys, Accuracy::paper_default(), &mut rng);
        assert_eq!(report.n_hat, 0.0);
    }

    #[test]
    fn trait_object_usage() {
        let est: Box<dyn CardinalityEstimator> = Box::new(LogLogBeta::default());
        assert_eq!(est.name(), "LLBETA");
        let mut sys = system_with(30_000);
        let mut rng = StdRng::seed_from_u64(7);
        let report = est.estimate(&mut sys, Accuracy::new(0.1, 0.1), &mut rng);
        assert!(report.relative_error(30_000) < 0.1);
    }
}
