//! The shared register-collection air protocol for the LogLog-family
//! baselines (HyperLogLog++ and LogLog-β).
//!
//! Neither estimator is from the RFID literature — they are the modern
//! mergeable-sketch baselines motivated by the ROADMAP's multi-reader
//! north star — so they are run over an *honest* RFID realization rather
//! than an oracle over tag IDs:
//!
//! 1. the reader broadcasts one 32-bit hash seed;
//! 2. it opens a bit-slot frame of `m × levels` slots, one slot per
//!    `(register, rank)` cell;
//! 3. each tag computes `(register, rank)` from
//!    [`rfid_hash::register_hash`] over its ID and the seed, and answers
//!    exactly one slot: `register · levels + (rank − 1)`.
//!
//! The reader's busy bitmap *is* the register file: the largest busy rank
//! cell of a register is the register's max-rank value. Because a tag's
//! cell depends only on `(ID, seed)`, two readers running the protocol
//! with the **same seed** see the same cell for a shared tag — the
//! slot-wise OR of their frames is the frame of the union population, and
//! the register-wise max of their sketches is the union sketch. That is
//! the property [`rfid_bfce::Snapshot::merge`] relies on.
//!
//! Air cost: 32 reader bits + `m × levels` bit-slots, constant in the
//! cardinality (like BFCE, unlike identification). With the default
//! `levels = 32` rank cells the clamp at rank 32 only binds once the load
//! per register approaches `2^32`, far past any deployment in PAPER.md.

use rand::RngCore;
use rfid_bfce::{RegisterFlavor, RegisterSketch};
use rfid_hash::register_hash;
use rfid_sim::{Accuracy, EstimationReport, PhaseReport, RfidSystem, Tag};
use rfid_stats::d_for_delta;

/// Response plan for one register-collection frame: each tag answers the
/// single `(register, rank)` cell its hash selects.
pub fn register_frame_plan(
    seed: u32,
    precision: u8,
    levels: u8,
) -> impl Fn(&Tag, &mut Vec<usize>) + Sync {
    move |tag, out| {
        let (register, rank) = register_hash(tag.id, seed, precision, levels);
        out.push(register as usize * levels as usize + (rank as usize - 1));
    }
}

/// Run one register-collection frame with an explicit `seed` and fold the
/// observed cells into a [`RegisterSketch`].
///
/// This is the snapshot-production path for multi-reader deployments:
/// every reader calls this with the *same* broadcast seed, serializes the
/// sketch via [`rfid_bfce::Snapshot::snapshot`], and the back-end folds
/// the snapshots with [`rfid_bfce::merge_all`]. Air time (32-bit seed
/// broadcast + the frame) is charged to `system`'s ledger.
pub fn collect_register_sketch(
    flavor: RegisterFlavor,
    precision: u8,
    levels: u8,
    system: &mut RfidSystem,
    seed: u32,
) -> RegisterSketch {
    let mut sketch = RegisterSketch::new(flavor, precision, levels, seed);
    system.broadcast(32);
    let slots = sketch.registers().m() * levels as usize;
    let plan = register_frame_plan(seed, precision, levels);
    let frame = system.run_bitslot_frame(slots, &plan);
    for slot in frame.busy_bitmap().iter_ones() {
        let register = (slot / levels as usize) as u32;
        let rank = (slot % levels as usize) as u8 + 1;
        sketch.observe_slot(register, rank);
    }
    sketch
}

/// Shared [`rfid_sim::CardinalityEstimator`] driver for both flavors:
/// draw a seed, collect the sketch, evaluate the flavor's formula, and
/// report air time plus an honesty warning when the configured precision
/// cannot provably meet the requested `(epsilon, delta)`.
pub(crate) fn run_register_estimator(
    phase_name: &str,
    flavor: RegisterFlavor,
    precision: u8,
    levels: u8,
    system: &mut RfidSystem,
    accuracy: Accuracy,
    rng: &mut dyn RngCore,
) -> EstimationReport {
    let start = system.air_time();
    let seed = rng.next_u32();
    let sketch = collect_register_sketch(flavor, precision, levels, system, seed);
    let n_hat = sketch.estimate();
    let air = system.air_time().since(&start);

    let mut warnings = Vec::new();
    // The LogLog-family standard error is ~1.04 / sqrt(m); the estimate is
    // asymptotically normal, so the two-sided (1 - delta) requirement
    // needs sigma * d <= epsilon.
    let sigma = 1.04 / (sketch.registers().m() as f64).sqrt();
    if sigma * d_for_delta(accuracy.delta) > accuracy.epsilon {
        warnings.push(format!(
            "precision {precision} (sigma ~ {sigma:.4}) cannot provably meet \
             ({}, {})",
            accuracy.epsilon, accuracy.delta
        ));
    }

    EstimationReport {
        n_hat,
        air,
        phases: vec![PhaseReport {
            name: phase_name.into(),
            air,
        }],
        rounds: 1,
        warnings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_sim::TagPopulation;

    fn system_with(n: usize) -> RfidSystem {
        let tags = (0..n as u64)
            .map(|i| Tag {
                id: i * 11 + 5,
                rn: i as u32,
            })
            .collect();
        RfidSystem::new(TagPopulation::new(tags))
    }

    #[test]
    fn collected_sketch_matches_direct_observation() {
        // The air protocol must lose nothing: the sketch decoded from the
        // frame equals the sketch built by hashing tag IDs directly.
        let (p, levels, seed) = (10u8, 32u8, 0xFEED_5EED);
        let mut sys = system_with(20_000);
        let collected =
            collect_register_sketch(RegisterFlavor::HllPp, p, levels, &mut sys, seed);
        let mut direct = RegisterSketch::new(RegisterFlavor::HllPp, p, levels, seed);
        for i in 0..20_000u64 {
            direct.observe_identity(i * 11 + 5);
        }
        assert_eq!(collected, direct);
    }

    #[test]
    fn same_seed_sketches_merge_to_the_union_exactly() {
        let (p, levels, seed) = (12u8, 32u8, 77u32);
        let sketch_of = |ids: std::ops::Range<u64>| {
            let tags = ids.map(|i| Tag { id: i + 1, rn: i as u32 }).collect();
            let mut sys = RfidSystem::new(TagPopulation::new(tags));
            collect_register_sketch(RegisterFlavor::LogLogBeta, p, levels, &mut sys, seed)
        };
        use rfid_bfce::Snapshot;
        let mut a = sketch_of(0..30_000);
        let b = sketch_of(20_000..50_000);
        a.merge(&b).expect("same parameters");
        assert_eq!(a, sketch_of(0..50_000));
    }

    #[test]
    fn air_cost_is_constant_in_cardinality() {
        let (p, levels) = (8u8, 16u8);
        let air_for = |n: usize| {
            let mut sys = system_with(n);
            collect_register_sketch(RegisterFlavor::HllPp, p, levels, &mut sys, 1);
            sys.air_time()
        };
        let small = air_for(100);
        let large = air_for(100_000);
        assert_eq!(small.bitslots, 256 * 16);
        assert_eq!(large.bitslots, 256 * 16);
        assert_eq!(small.reader_bits, 32);
        assert_eq!(large.reader_bits, 32);
    }

    #[test]
    fn empty_population_collects_an_empty_sketch() {
        let mut sys = system_with(0);
        let sketch = collect_register_sketch(RegisterFlavor::HllPp, 8, 16, &mut sys, 9);
        assert_eq!(sketch.registers().nonzero(), 0);
        assert_eq!(sketch.estimate(), 0.0);
    }
}
