//! ART — Average Run-based Tag estimation (Shahzad & Liu, MobiCom 2012).
//!
//! ART's insight ("every bit counts") is that the **average length of the
//! runs of busy slots** carries more information per frame than the empty
//! count alone: with per-slot busy probability `q = 1 - e^(-lambda)`, a
//! maximal busy run is geometric with mean `1/(1-q) = e^lambda`, so
//! `lambda_hat = ln(mean run length)` and `n_hat = lambda_hat * f / p`.
//! Fewer frames reach a given accuracy than the zero estimator needs,
//! making ART one of the faster pre-bit-slot schemes.

use crate::common::uniform_frame_plan;
use crate::lof::Lof;
use rand::RngCore;
use rfid_sim::{
    Accuracy, BitFrame, CardinalityEstimator, EstimationReport, PhaseReport,
    RfidSystem,
};
use rfid_stats::d_for_delta;

/// Target per-slot load: `lambda = 1` keeps busy runs short but frequent,
/// near the variance sweet spot of the run statistic.
const ART_TARGET_LAMBDA: f64 = 1.0;

/// The ART estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Art {
    /// Frame size per round (bit-slots).
    pub frame: usize,
    /// Upper bound on rounds.
    pub max_rounds: u64,
}

impl Default for Art {
    fn default() -> Self {
        Self {
            frame: 1024,
            max_rounds: 512,
        }
    }
}

/// Count the maximal busy runs in a frame and their total length.
pub fn busy_runs(frame: &BitFrame) -> (usize, usize) {
    let mut runs = 0usize;
    let mut total = 0usize;
    let mut in_run = false;
    for i in 0..frame.observed() {
        if frame.is_busy(i) {
            if !in_run {
                runs += 1;
                in_run = true;
            }
            total += 1;
        } else {
            in_run = false;
        }
    }
    (runs, total)
}

// analysis:allow(snapshot-surface): one-shot ART protocol estimates from per-frame run lengths; no mergeable per-reader state to export (ROADMAP item 2 burndown)
impl CardinalityEstimator for Art {
    fn name(&self) -> &'static str {
        "ART"
    }

    fn estimate(
        &self,
        system: &mut RfidSystem,
        accuracy: Accuracy,
        rng: &mut dyn RngCore,
    ) -> EstimationReport {
        let mut warnings = Vec::new();
        let start = system.air_time();
        let f = self.frame;

        let n_r = Lof {
            rounds: 1,
            frame: 32,
        }
        .rough_estimate(system, rng)
        .max(1.0);
        let after_rough = system.air_time();

        let p = (ART_TARGET_LAMBDA * f as f64 / n_r).min(1.0);

        // Sizing: relative error of lambda_hat per run observation is
        // ~ sqrt(q)/lambda; at lambda = 1, q ~ 0.632, runs per frame
        // ~ f q (1 - q). Choose rounds so the total run count reaches
        // q * (d / (eps * lambda))^2.
        let d = d_for_delta(accuracy.delta);
        let q = 1.0 - (-ART_TARGET_LAMBDA).exp();
        let runs_needed =
            (q * (d / (accuracy.epsilon * ART_TARGET_LAMBDA)).powi(2)).ceil();
        let runs_per_frame = (f as f64 * q * (1.0 - q)).max(1.0);
        let rounds =
            ((runs_needed / runs_per_frame).ceil() as u64).clamp(1, self.max_rounds);
        if rounds == self.max_rounds {
            warnings.push(format!("round budget capped at {}", self.max_rounds));
        }

        let mut run_count = 0usize;
        let mut run_total = 0usize;
        for _ in 0..rounds {
            let seed = rng.next_u32();
            system.turnaround();
            system.broadcast(64);
            let frame = system.run_bitslot_frame(f, &uniform_frame_plan(seed, f, p));
            let (runs, total) = busy_runs(&frame);
            run_count += runs;
            run_total += total;
        }

        let n_hat = if run_count == 0 {
            warnings.push("no busy runs observed; estimating zero".into());
            0.0
        } else {
            let mean_run = run_total as f64 / run_count as f64;
            // mean_run = 1 means no slot had a neighbour: lambda below
            // resolution; clamp into the invertible region.
            let lambda_hat = mean_run.max(1.0 + 1e-9).ln().max(1e-9);
            if mean_run <= 1.0 + 1e-9 {
                warnings.push("all runs length 1; load far below target".into());
            }
            lambda_hat * f as f64 / p
        };

        let end = system.air_time();
        EstimationReport {
            n_hat,
            air: end.since(&start),
            phases: vec![
                PhaseReport {
                    name: "rough (LOF)".into(),
                    air: after_rough.since(&start),
                },
                PhaseReport {
                    name: format!("run frames x{rounds}"),
                    air: end.since(&after_rough),
                },
            ],
            rounds: 1 + rounds,
            warnings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rfid_hash::SplitMix64;
    use rfid_sim::{PerfectChannel, Tag, TagPopulation};

    fn system_with(n: usize) -> RfidSystem {
        let tags = (0..n as u64)
            .map(|i| Tag {
                id: i * 29 + 7,
                rn: i as u32,
            })
            .collect();
        RfidSystem::new(TagPopulation::new(tags))
    }

    #[test]
    fn busy_runs_counts_maximal_runs() {
        // Pattern: busy busy idle busy idle idle busy busy busy.
        let counts = [1u32, 2, 0, 1, 0, 0, 3, 1, 1];
        let mut noise = SplitMix64::new(1);
        let frame = BitFrame::sense(&counts, 9, &PerfectChannel, &mut noise);
        let (runs, total) = busy_runs(&frame);
        assert_eq!(runs, 3);
        assert_eq!(total, 6);
    }

    #[test]
    fn busy_runs_edge_cases() {
        let mut noise = SplitMix64::new(2);
        let all_idle = BitFrame::sense(&[0, 0, 0], 3, &PerfectChannel, &mut noise);
        assert_eq!(busy_runs(&all_idle), (0, 0));
        let all_busy = BitFrame::sense(&[1, 1, 1], 3, &PerfectChannel, &mut noise);
        assert_eq!(busy_runs(&all_busy), (1, 3));
    }

    #[test]
    fn estimates_track_truth() {
        for (seed, truth) in [(1u64, 10_000usize), (2, 100_000)] {
            let mut sys = system_with(truth);
            let mut rng = StdRng::seed_from_u64(seed);
            let report =
                Art::default().estimate(&mut sys, Accuracy::new(0.1, 0.1), &mut rng);
            let rel = report.relative_error(truth);
            assert!(rel < 0.15, "n = {truth}: rel = {rel}");
        }
    }

    #[test]
    fn art_cost_is_in_the_same_ballpark_as_ezb() {
        // Under this workspace's conservative sizing both bit-slot
        // multi-frame schemes land within a small factor of each other;
        // the run statistic must not blow the budget up.
        let acc = Accuracy::new(0.05, 0.05);
        let mut rng = StdRng::seed_from_u64(3);
        let mut sys = system_with(50_000);
        let art = Art::default().estimate(&mut sys, acc, &mut rng);
        let mut sys2 = system_with(50_000);
        let ezb = crate::ezb::Ezb::default().estimate(&mut sys2, acc, &mut rng);
        let ratio = art.air.total_us() / ezb.air.total_us();
        assert!(
            (0.3..3.0).contains(&ratio),
            "ART {} vs EZB {} (ratio {ratio})",
            art.air.total_us(),
            ezb.air.total_us()
        );
    }

    #[test]
    fn empty_population_estimates_zero() {
        let mut sys = system_with(0);
        let mut rng = StdRng::seed_from_u64(4);
        let report =
            Art::default().estimate(&mut sys, Accuracy::new(0.1, 0.1), &mut rng);
        assert_eq!(report.n_hat, 0.0);
        assert!(report.warnings.iter().any(|w| w.contains("no busy runs")));
    }
}
