//! Deterministic smoke pass over the frame-fill differential fuzz body.
//!
//! `fuzz/` proper needs nightly + `cargo-fuzz`; this test keeps the
//! `fill_kernels_diff` body honest on every `cargo test` by replaying its
//! seed corpus (both kernel families, both hashers, the unrolled-pair
//! remainder arm, degenerate populations) and then hammering the body
//! with deterministic mutations of the seeds from a fixed-seed xorshift.
//! Any divergence the nightly fuzzer finds lands as a corpus file here
//! and reproduces forever after.

use rfid_baselines::fuzz::fill_kernels_diff;
use std::path::{Path, PathBuf};

/// Mutations tried per corpus seed. The body runs two kernels across four
/// dispatch modes per call, so this stays smaller than the cheap-body
/// smoke tests while still probing the header/tag boundaries.
const MUTATIONS_PER_SEED: u64 = 48;

fn corpus_dir() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/baselines sits two levels below the root")
        .join("fuzz")
        .join("corpus")
        .join("fill_kernels_diff")
}

fn seeds() -> Vec<(PathBuf, Vec<u8>)> {
    let dir = corpus_dir();
    let entries = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read corpus {}: {e}", dir.display()));
    let mut out: Vec<(PathBuf, Vec<u8>)> = entries
        .flatten()
        .map(|entry| {
            let path = entry.path();
            let bytes = std::fs::read(&path)
                .unwrap_or_else(|e| panic!("read seed {}: {e}", path.display()));
            (path, bytes)
        })
        .collect();
    out.sort();
    assert!(!out.is_empty(), "empty corpus at {}", dir.display());
    out
}

/// Fixed-seed xorshift64* — the mutation schedule must be identical on
/// every host so a failure here is a failure everywhere.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Flip bytes, truncate, splice, or rewrite the 8-byte header,
/// deterministically. Header surgery matters most here: width, observe,
/// selector, and thread bytes steer which kernel and dispatch mode run.
fn mutate(seed: &[u8], rng: &mut XorShift) -> Vec<u8> {
    let mut bytes = seed.to_vec();
    if bytes.is_empty() {
        return vec![(rng.next() & 0xFF) as u8];
    }
    match rng.next() % 5 {
        0 => {
            for _ in 0..1 + rng.next() % 8 {
                let i = (rng.next() as usize) % bytes.len();
                bytes[i] = (rng.next() & 0xFF) as u8;
            }
        }
        1 => {
            // Truncate anywhere, including inside the header.
            bytes.truncate((rng.next() as usize) % bytes.len());
        }
        2 => {
            // Splice a tail chunk onto itself: more tags, ragged last tag.
            let at = (rng.next() as usize) % bytes.len();
            let chunk: Vec<u8> = bytes[at..].to_vec();
            bytes.extend_from_slice(&chunk);
        }
        3 => {
            // Header surgery: w/observe/selector/threads/p_n live up front.
            let at = (rng.next() as usize) % bytes.len().min(8);
            bytes[at] = (rng.next() & 0xFF) as u8;
        }
        _ => {
            // Append a partial or whole extra tag.
            for _ in 0..1 + rng.next() % 9 {
                bytes.push((rng.next() & 0xFF) as u8);
            }
        }
    }
    bytes
}

#[test]
fn fill_kernels_diff_smoke() {
    let mut rng = XorShift(0x5EED_0BAD_F00D_u64);
    for (path, seed) in seeds() {
        fill_kernels_diff(&seed);
        for _ in 0..MUTATIONS_PER_SEED {
            let mutant = mutate(&seed, &mut rng);
            // A panic's message won't name the input, so wrap with context.
            let outcome = std::panic::catch_unwind(|| fill_kernels_diff(&mutant));
            if outcome.is_err() {
                panic!(
                    "fill_kernels_diff panicked on a mutation of {} \
                     ({} bytes); save the input as a corpus file to pin it",
                    path.display(),
                    mutant.len()
                );
            }
        }
    }
}

#[test]
fn corpus_steers_both_kernel_families() {
    // The selector byte (header offset 4) must keep both sides of the
    // differential alive: even → Bloom, odd → ZOE. A corpus that decays
    // to one family silently stops testing the other kernel.
    let mut bloom = 0usize;
    let mut zoe = 0usize;
    for (_, seed) in seeds() {
        match seed.get(4) {
            Some(sel) if sel & 1 == 0 => bloom += 1,
            Some(_) => zoe += 1,
            None => {}
        }
    }
    assert!(bloom >= 1, "no Bloom-kernel seed in the corpus");
    assert!(zoe >= 1, "no ZOE-kernel seed in the corpus");
}
