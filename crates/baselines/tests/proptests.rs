//! Property-based tests for the baseline estimators' pure kernels.

use proptest::prelude::*;
use rfid_baselines::a3::round_relative_variance;
use rfid_baselines::ZoeSlotPlan;
use rfid_baselines::common::{clamped_rho, median, required_trials};
use rfid_baselines::mle::{mle_solve, FrameObservation};
use rfid_baselines::upe::collision_lambda;
use rfid_stats::d_for_delta;

proptest! {
    #[test]
    fn collision_lambda_inverts_the_collision_curve(l in 0.001f64..20.0) {
        // Beyond lambda ~ 25 the collision fraction is within one ulp of
        // 1.0 and carries no information — the protocol never operates
        // there (a frame that collided everywhere is re-run).
        let frac = 1.0 - (-l).exp() * (1.0 + l);
        let got = collision_lambda(frac).expect("in range");
        prop_assert!((got - l).abs() < 1e-6 * l.max(1.0), "{l} -> {got}");
    }

    #[test]
    fn collision_lambda_rejects_out_of_range(frac in 1.0f64..10.0) {
        prop_assert!(collision_lambda(frac).is_none());
    }

    #[test]
    fn required_trials_monotone_in_epsilon(
        eps in 0.01f64..0.4,
        delta in 0.01f64..0.4,
        lambda in 0.2f64..4.0,
    ) {
        let d = d_for_delta(delta);
        let tight = required_trials(eps, d, lambda);
        let loose = required_trials((eps * 1.5).min(0.45), d, lambda);
        prop_assert!(loose <= tight);
        prop_assert!(tight >= 1);
    }

    #[test]
    fn clamped_rho_is_always_invertible(idle in 0usize..10_000, extra in 0usize..10_000) {
        let total = idle + extra + 1;
        let rho = clamped_rho(idle.min(total), total);
        prop_assert!(rho > 0.0 && rho < 1.0);
        prop_assert!(rho.ln().is_finite());
    }

    #[test]
    fn median_lies_within_the_sample(
        mut xs in prop::collection::vec(-1e6f64..1e6, 1..100),
    ) {
        let m = median(&mut xs.clone());
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert!(m >= xs[0] && m <= xs[xs.len() - 1]);
    }

    #[test]
    fn median_is_permutation_invariant(
        xs in prop::collection::vec(-1e3f64..1e3, 1..50),
        rot in 0usize..50,
    ) {
        let mut a = xs.clone();
        let mut b = xs.clone();
        b.rotate_left(rot % xs.len().max(1));
        prop_assert_eq!(median(&mut a), median(&mut b));
    }

    #[test]
    fn mle_recovers_n_from_exact_expectations(
        n in 1_000.0f64..1e6,
        base_p in 0.001f64..0.05,
    ) {
        let f = 512usize;
        let obs: Vec<FrameObservation> = (0..3)
            .map(|i| {
                let p = base_p / 2f64.powi(i);
                let lambda = p * n / f as f64;
                FrameObservation {
                    p,
                    f,
                    busy: ((1.0 - (-lambda).exp()) * f as f64).round() as usize,
                }
            })
            .collect();
        prop_assume!(obs.iter().any(|o| o.busy > 0 && o.busy < f));
        if let Some(got) = mle_solve(&obs, 1e9) {
            // Rounding busy counts to integers injects up to 0.5/f of
            // quantization error per frame.
            prop_assert!(((got - n) / n).abs() < 0.25, "{n} -> {got}");
        } else {
            prop_assert!(false, "solver returned None for valid input");
        }
    }

    #[test]
    fn a3_round_variance_positive_and_shrinks_with_frame(
        lambda in 0.05f64..6.0,
        f in 16usize..8192,
    ) {
        let v1 = round_relative_variance(lambda, f);
        let v2 = round_relative_variance(lambda, f * 2);
        prop_assert!(v1 > 0.0);
        prop_assert!((v2 - v1 / 2.0).abs() < 1e-12 * v1.max(1.0));
    }

    /// The ZOE slot-batch plan's scalar walk and batched chunk fill are
    /// the same kernel (ISSUE 7): for arbitrary populations, participation
    /// probabilities, batch widths, and worker counts, the busy frame and
    /// observed-response totals agree bit for bit.
    #[test]
    fn zoe_slot_plan_scalar_and_batched_fill_identically(
        raw_tags in prop::collection::vec((any::<u64>(), any::<u32>()), 0..200),
        batch in 1usize..700,
        batch_root in any::<u64>(),
        p_raw in 1e-6f64..1.0,
        threads in prop::sample::select(vec![1usize, 2, 4, 8]),
    ) {
        use rfid_sim::frame::{
            response_counts_reference, response_fill_with_threads,
        };
        use rfid_sim::{ScalarRef, Tag};

        let tags: Vec<Tag> = raw_tags.iter().map(|&(id, rn)| Tag { id, rn }).collect();
        let plan = ZoeSlotPlan::new(batch, batch_root, p_raw);

        let counts = response_counts_reference(&tags, batch, &plan, usize::MAX);
        let scalar =
            response_fill_with_threads(&tags, batch, batch, &ScalarRef(&plan), 1);
        let batched = response_fill_with_threads(&tags, batch, batch, &plan, threads);

        prop_assert_eq!(scalar.busy.words(), batched.busy.words());
        prop_assert_eq!(scalar.prefix_responses, batched.prefix_responses);
        for (slot, &c) in counts.iter().enumerate() {
            prop_assert_eq!(batched.busy.get(slot), c > 0, "slot {}", slot);
        }
        let want: u64 = counts.iter().map(|&c| u64::from(c)).sum();
        prop_assert_eq!(batched.prefix_responses, want);
    }

    /// The geometric-skip walk visits each slot independently with
    /// probability `p`: at `p = 1` every tag answers every slot, and the
    /// visit sequence is strictly increasing and in range for any `p`.
    #[test]
    fn zoe_walk_rate_and_order_are_sane(
        id in any::<u64>(),
        rn in any::<u32>(),
        batch in 1usize..600,
        batch_root in any::<u64>(),
        p_raw in 1e-6f64..1.0,
    ) {
        use rfid_sim::{ResponsePlan, Tag};

        let tag = Tag { id, rn };
        let plan = ZoeSlotPlan::new(batch, batch_root, p_raw);
        let mut slots = Vec::new();
        plan.responses(&tag, &mut slots);
        prop_assert!(slots.windows(2).all(|w| w[0] < w[1]), "visits not increasing");
        prop_assert!(slots.iter().all(|&s| s < batch), "visit out of range");
        let full = ZoeSlotPlan::new(batch, batch_root, 1.0);
        let mut everything = Vec::new();
        full.responses(&tag, &mut everything);
        let want: Vec<usize> = (0..batch).collect();
        prop_assert_eq!(everything, want);
    }
}
