//! Property-based tests for the numerics substrate.

use proptest::prelude::*;
use rfid_stats::*;

proptest! {
    #[test]
    fn erf_is_bounded_and_odd(x in -50.0f64..50.0) {
        let y = erf(x);
        prop_assert!((-1.0..=1.0).contains(&y));
        prop_assert!((erf(-x) + y).abs() < 1e-12);
    }

    #[test]
    fn erf_is_monotone(a in -6.0f64..6.0, b in -6.0f64..6.0) {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        prop_assert!(erf(lo) <= erf(hi));
    }

    #[test]
    fn erf_plus_erfc_is_one(x in -6.0f64..6.0) {
        prop_assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-11);
    }

    #[test]
    fn erfinv_round_trips(y in -0.999_999f64..0.999_999) {
        let x = erfinv(y);
        prop_assert!((erf(x) - y).abs() < 1e-10, "erf(erfinv({y})) = {}", erf(x));
    }

    #[test]
    fn normal_quantile_inverts_cdf(p in 0.0001f64..0.9999) {
        let z = normal_quantile(p);
        prop_assert!((normal_cdf(z) - p).abs() < 1e-10);
    }

    #[test]
    fn binomial_pmf_is_a_distribution(n in 1u64..60, p in 0.0f64..1.0) {
        let total: f64 = (0..=n).map(|k| binomial_pmf(n, k, p)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "total = {total}");
    }

    #[test]
    fn binomial_tail_is_monotone_in_k(n in 1u64..50, p in 0.01f64..0.99, k in 0u64..50) {
        prop_assume!(k < n);
        prop_assert!(binomial_tail_ge(n, k, p) + 1e-12 >= binomial_tail_ge(n, k + 1, p));
    }

    #[test]
    fn majority_rounds_is_odd_and_sufficient(
        delta in 0.01f64..0.49,
        per_round in 0.6f64..0.95,
    ) {
        let m = majority_rounds(delta, per_round);
        prop_assert_eq!(m % 2, 1);
        prop_assert!(binomial_tail_ge(m, m.div_ceil(2), per_round) >= 1.0 - delta);
        // Minimality: m - 2 (if valid) must not suffice.
        if m > 1 {
            let prev = m - 2;
            prop_assert!(
                binomial_tail_ge(prev, prev.div_ceil(2), per_round) < 1.0 - delta
            );
        }
    }

    #[test]
    fn percentile_is_within_sample_range(
        mut xs in prop::collection::vec(-1e6f64..1e6, 1..200),
        q in 0.0f64..100.0,
    ) {
        let p = percentile(&xs, q);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert!(p >= xs[0] && p <= xs[xs.len() - 1]);
    }

    #[test]
    fn running_stats_matches_batch(
        xs in prop::collection::vec(-1e5f64..1e5, 2..300),
    ) {
        let mut rs = RunningStats::new();
        for &x in &xs {
            rs.push(x);
        }
        prop_assert!((rs.mean() - mean(&xs)).abs() < 1e-6);
        prop_assert!((rs.variance() - sample_variance(&xs)).abs()
            < 1e-4 * sample_variance(&xs).max(1.0));
    }

    #[test]
    fn running_stats_merge_is_order_insensitive(
        xs in prop::collection::vec(-1e4f64..1e4, 1..100),
        split in 0usize..100,
    ) {
        let split = split.min(xs.len());
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..split] { a.push(x); }
        for &x in &xs[split..] { b.push(x); }
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
        if ab.count() >= 2 {
            prop_assert!((ab.variance() - ba.variance()).abs() < 1e-6);
        }
    }

    #[test]
    fn ecdf_eval_is_monotone_cadlag(
        xs in prop::collection::vec(-1e4f64..1e4, 1..100),
        a in -2e4f64..2e4,
        b in -2e4f64..2e4,
    ) {
        let e = Ecdf::new(xs);
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        prop_assert!(e.eval(lo) <= e.eval(hi));
        prop_assert!((0.0..=1.0).contains(&e.eval(a)));
    }

    #[test]
    fn chi_square_critical_increases_with_df(df in 1u64..300, alpha in 0.001f64..0.5) {
        prop_assert!(
            chi_square_critical(df + 1, alpha) > chi_square_critical(df, alpha)
        );
    }
}
