//! Summary statistics: batch helpers and a mergeable Welford accumulator.
//!
//! The evaluation harness (Figures 7–10 of the BFCE paper) aggregates
//! per-round accuracy and air-time numbers; [`RunningStats`] lets the
//! parallel frame-fill workers accumulate independently and merge, following
//! Chan et al.'s pairwise-combination update.

/// Arithmetic mean of a slice. Returns NaN for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased (n-1) sample variance. Returns NaN for slices shorter than 2.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Unbiased sample standard deviation.
pub fn sample_std(xs: &[f64]) -> f64 {
    sample_variance(xs).sqrt()
}

/// Percentile with linear interpolation between order statistics
/// (the "linear" / type-7 method). `q` in `[0, 100]`.
///
/// ```
/// use rfid_stats::percentile;
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&xs, 0.0), 1.0);
/// assert_eq!(percentile(&xs, 100.0), 4.0);
/// assert_eq!(percentile(&xs, 50.0), 2.5);
/// ```
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=100.0).contains(&q), "q must lie in [0, 100], got {q}");
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        // analysis:allow(panic-path): rank <= len - 1 by construction, so lo = floor(rank) is in range
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        // analysis:allow(panic-path): hi = ceil(rank) <= len - 1 since rank <= len - 1, lo < hi
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Streaming mean/variance/min/max accumulator (Welford's algorithm) with
/// O(1) state and a numerically stable parallel [`merge`](Self::merge).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Feed one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (Chan et al. pairwise update),
    /// so per-thread accumulators can be combined after a parallel sweep.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 += other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (NaN with fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            f64::NAN
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Unbiased sample standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (infinity when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (-infinity when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-15);
        // Population variance is 4; sample variance is 32/7.
        assert!((sample_variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((sample_std(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(mean(&[]).is_nan());
        assert!(sample_variance(&[]).is_nan());
        assert!(sample_variance(&[1.0]).is_nan());
        assert!(percentile(&[], 50.0).is_nan());
        assert_eq!(percentile(&[42.0], 50.0), 42.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&xs, 25.0), 20.0);
        assert_eq!(percentile(&xs, 10.0), 14.0);
        assert_eq!(percentile(&xs, 90.0), 46.0);
    }

    #[test]
    fn percentile_is_order_insensitive() {
        let a = [3.0, 1.0, 2.0];
        let b = [1.0, 2.0, 3.0];
        for q in [0.0, 25.0, 50.0, 75.0, 100.0] {
            assert_eq!(percentile(&a, q), percentile(&b, q));
        }
    }

    #[test]
    #[should_panic(expected = "q must lie in [0, 100]")]
    fn percentile_rejects_out_of_range_q() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn running_stats_matches_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut rs = RunningStats::new();
        for &x in &xs {
            rs.push(x);
        }
        assert_eq!(rs.count(), 8);
        assert!((rs.mean() - mean(&xs)).abs() < 1e-12);
        assert!((rs.variance() - sample_variance(&xs)).abs() < 1e-12);
        assert_eq!(rs.min(), 2.0);
        assert_eq!(rs.max(), 9.0);
    }

    #[test]
    fn running_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.25).collect();
        let mut seq = RunningStats::new();
        for &x in &xs {
            seq.push(x);
        }
        // Split into 3 uneven chunks and merge.
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        let mut c = RunningStats::new();
        for &x in &xs[..100] {
            a.push(x);
        }
        for &x in &xs[100..657] {
            b.push(x);
        }
        for &x in &xs[657..] {
            c.push(x);
        }
        let mut merged = RunningStats::new();
        merged.merge(&a);
        merged.merge(&b);
        merged.merge(&c);
        assert_eq!(merged.count(), seq.count());
        assert!((merged.mean() - seq.mean()).abs() < 1e-10);
        assert!((merged.variance() - seq.variance()).abs() < 1e-8);
        assert_eq!(merged.min(), seq.min());
        assert_eq!(merged.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);

        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn empty_running_stats_report_nan() {
        let rs = RunningStats::new();
        assert!(rs.mean().is_nan());
        assert!(rs.variance().is_nan());
        assert_eq!(rs.count(), 0);
    }
}
