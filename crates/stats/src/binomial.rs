//! Binomial probabilities and the SRC majority-vote round count.
//!
//! Section V-C of the BFCE paper sizes the SRC baseline as: "we repeat the
//! second phase of SRC for `m` rounds, where `m` is the smallest integer that
//! satisfies `sum_{i=(m+1)/2}^{m} C(m, i) 0.8^i 0.2^(m-i) >= 1 - delta`" —
//! i.e. each round is an `(epsilon, 0.2)` estimate and a majority vote of `m`
//! independent rounds boosts the confidence to `1 - delta`. [`majority_rounds`]
//! computes that `m`; the tail sum itself is [`binomial_tail_ge`].

/// Natural log of the binomial coefficient `C(n, k)`, computed by summing
/// logs (exact enough for the small `n` used in round-count selection, and
/// overflow-free for large `n`).
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    let k = k.min(n - k);
    let mut acc = 0.0f64;
    for i in 0..k {
        acc += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
    }
    acc
}

/// Probability mass function of `Binomial(n, p)` at `k`.
///
/// ```
/// use rfid_stats::binomial_pmf;
/// // Pr{X = 2 | X ~ Bin(3, 0.8)} = 3 * 0.64 * 0.2 = 0.384
/// assert!((binomial_pmf(3, 2, 0.8) - 0.384).abs() < 1e-12);
/// ```
pub fn binomial_pmf(n: u64, k: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must lie in [0, 1], got {p}");
    if k > n {
        return 0.0;
    }
    // analysis:allow(float-sanity): exact domain boundaries of the parameter p, where p.ln() below is undefined
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    // analysis:allow(float-sanity): exact domain boundary; (1 - p).ln() below is undefined at p = 1
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    // analysis:allow(float-sanity): golden CSV (guarantee_quick) pins this exact expression bit-for-bit; p is bounded away from 1 by the guard above
    let ln = ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln();
    ln.exp()
}

/// Upper tail `Pr{X >= k}` for `X ~ Binomial(n, p)`.
///
/// ```
/// use rfid_stats::binomial_tail_ge;
/// // Majority of 3 rounds each succeeding with 0.8: 0.896.
/// assert!((binomial_tail_ge(3, 2, 0.8) - 0.896).abs() < 1e-12);
/// ```
pub fn binomial_tail_ge(n: u64, k: u64, p: f64) -> f64 {
    (k..=n).map(|i| binomial_pmf(n, i, p)).sum()
}

/// The smallest **odd** `m` such that a majority vote of `m` rounds, each
/// independently correct with probability `per_round`, is correct with
/// probability at least `1 - delta`. This is exactly the SRC round count from
/// Section V-C of the BFCE paper (with `per_round = 0.8`).
///
/// Panics if `per_round <= 0.5` (a majority vote of coin flips never
/// converges) or if the parameters are outside `(0, 1)`.
///
/// ```
/// use rfid_stats::majority_rounds;
/// assert_eq!(majority_rounds(0.05, 0.8), 7);
/// assert_eq!(majority_rounds(0.10, 0.8), 5);
/// assert_eq!(majority_rounds(0.20, 0.8), 1);
/// ```
pub fn majority_rounds(delta: f64, per_round: f64) -> u64 {
    assert!(
        delta > 0.0 && delta < 1.0,
        "delta must lie in (0, 1), got {delta}"
    );
    assert!(
        per_round > 0.5 && per_round < 1.0,
        "per-round success must lie in (0.5, 1), got {per_round}"
    );
    let mut m = 1u64;
    loop {
        let majority = m.div_ceil(2);
        if binomial_tail_ge(m, majority, per_round) >= 1.0 - delta {
            return m;
        }
        m += 2;
        // analysis:allow(panic-path): loud non-convergence beats an infinite loop; the cap is the failure report itself
        assert!(m < 10_001, "majority_rounds failed to converge");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_choose_small_values() {
        assert_eq!(ln_choose(5, 0), 0.0);
        assert_eq!(ln_choose(5, 5), 0.0);
        assert!((ln_choose(5, 2).exp() - 10.0).abs() < 1e-9);
        assert!((ln_choose(7, 4).exp() - 35.0).abs() < 1e-9);
        assert_eq!(ln_choose(3, 4), f64::NEG_INFINITY);
    }

    #[test]
    fn ln_choose_is_symmetric() {
        for n in 0..30u64 {
            for k in 0..=n {
                let a = ln_choose(n, k);
                let b = ln_choose(n, n - k);
                assert!((a - b).abs() < 1e-9, "C({n},{k}) asymmetric");
            }
        }
    }

    #[test]
    fn ln_choose_large_does_not_overflow() {
        // C(1000, 500) ~ 2.7e299; its log ~ 689.47.
        let v = ln_choose(1000, 500);
        assert!((v - 689.467).abs() < 0.01, "got {v}");
    }

    #[test]
    fn pmf_sums_to_one() {
        for (n, p) in [(1u64, 0.3), (10, 0.5), (25, 0.8), (60, 0.01)] {
            let total: f64 = (0..=n).map(|k| binomial_pmf(n, k, p)).sum();
            assert!((total - 1.0).abs() < 1e-10, "n={n} p={p} total={total}");
        }
    }

    #[test]
    fn pmf_degenerate_p() {
        assert_eq!(binomial_pmf(10, 0, 0.0), 1.0);
        assert_eq!(binomial_pmf(10, 3, 0.0), 0.0);
        assert_eq!(binomial_pmf(10, 10, 1.0), 1.0);
        assert_eq!(binomial_pmf(10, 9, 1.0), 0.0);
        assert_eq!(binomial_pmf(10, 11, 0.5), 0.0);
    }

    #[test]
    fn tail_matches_hand_computation() {
        // Bin(5, 0.8): P(X >= 3) = 0.2048 + 0.4096 + 0.32768 = 0.94208.
        assert!((binomial_tail_ge(5, 3, 0.8) - 0.942_08).abs() < 1e-10);
        // Bin(7, 0.8): P(X >= 4) = 0.114688 + 0.2752512 + 0.3670016
        // + 0.2097152 = 0.966656.
        let t7 = binomial_tail_ge(7, 4, 0.8);
        assert!((t7 - 0.966_656).abs() < 1e-9, "t7 = {t7}");
    }

    #[test]
    fn tail_edges() {
        assert!((binomial_tail_ge(5, 0, 0.3) - 1.0).abs() < 1e-12);
        assert_eq!(binomial_tail_ge(5, 6, 0.3), 0.0);
    }

    #[test]
    fn src_round_counts_from_the_paper() {
        // The BFCE paper's SRC setup: per-round confidence 0.8.
        assert_eq!(majority_rounds(0.05, 0.8), 7);
        assert_eq!(majority_rounds(0.10, 0.8), 5);
        assert_eq!(majority_rounds(0.15, 0.8), 3);
        assert_eq!(majority_rounds(0.20, 0.8), 1);
        assert_eq!(majority_rounds(0.25, 0.8), 1);
        assert_eq!(majority_rounds(0.30, 0.8), 1);
    }

    #[test]
    fn majority_rounds_monotone_in_delta() {
        let mut prev = u64::MAX;
        for i in 1..=30 {
            let delta = i as f64 / 100.0;
            let m = majority_rounds(delta, 0.8);
            assert!(m <= prev, "rounds increased as delta loosened");
            prev = m;
        }
    }

    #[test]
    #[should_panic(expected = "per-round success")]
    fn majority_rounds_rejects_coin_flips() {
        majority_rounds(0.05, 0.5);
    }
}
