//! Two-sample Kolmogorov–Smirnov testing.
//!
//! Figure 8 of the BFCE paper overlays the estimate CDFs of the three
//! tag-ID distributions and reads off that they coincide — i.e. the ID
//! distribution does not influence the estimator. The harness sharpens
//! that eyeball argument into a two-sample KS test: the maximum CDF gap
//! between two round samples, compared against the large-sample critical
//! value `c(alpha) * sqrt((n+m)/(n*m))`.

/// The two-sample KS statistic: `sup_x |F1(x) - F2(x)|`.
///
/// Panics on empty or NaN-bearing samples.
pub fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "KS needs non-empty samples");
    let prepare = |xs: &[f64]| -> Vec<f64> {
        let mut v = xs.to_vec();
        // analysis:allow(panic-path): documented input validation (NaN poisons every CDF comparison); runs once per sample
        assert!(
            v.iter().all(|x| !x.is_nan()),
            "KS input must not contain NaN"
        );
        v.sort_by(f64::total_cmp);
        v
    };
    let a = prepare(a);
    let b = prepare(b);
    let (mut i, mut j) = (0usize, 0usize);
    let mut max_gap = 0.0f64;
    while i < a.len() && j < b.len() {
        // Advance the sample with the smaller next value.
        // analysis:allow(panic-path): i < a.len() and j < b.len() are the while-loop conditions
        if a[i] <= b[j] {
            i += 1;
        } else {
            j += 1;
        }
        let fa = i as f64 / a.len() as f64;
        let fb = j as f64 / b.len() as f64;
        max_gap = max_gap.max((fa - fb).abs());
    }
    max_gap
}

/// Large-sample critical value for the two-sample KS test at significance
/// `alpha`: `c(alpha) * sqrt((n + m) / (n * m))` with
/// `c(alpha) = sqrt(-ln(alpha / 2) / 2)`.
pub fn ks_critical(n: usize, m: usize, alpha: f64) -> f64 {
    assert!(n > 0 && m > 0, "sample sizes must be positive");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must lie in (0, 1)");
    let c = (-(alpha / 2.0).ln() / 2.0).sqrt();
    c * (((n + m) as f64) / ((n * m) as f64)).sqrt()
}

/// Two-sample KS test: `true` when the samples are consistent with one
/// underlying distribution at significance `alpha`.
pub fn ks_same_distribution(a: &[f64], b: &[f64], alpha: f64) -> bool {
    ks_statistic(a, b) <= ks_critical(a.len(), b.len(), alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..n)
            .map(|i| lo + (hi - lo) * (i as f64 + 0.5) / n as f64)
            .collect()
    }

    #[test]
    fn identical_samples_have_small_statistic() {
        let a = grid(200, 0.0, 1.0);
        let d = ks_statistic(&a, &a.clone());
        assert!(d < 0.01, "d = {d}");
    }

    #[test]
    fn disjoint_samples_have_statistic_one() {
        let a = grid(100, 0.0, 1.0);
        let b = grid(100, 10.0, 11.0);
        let d = ks_statistic(&a, &b);
        assert!((d - 1.0).abs() < 1e-12, "d = {d}");
    }

    #[test]
    fn shifted_uniforms_are_detected() {
        let a = grid(400, 0.0, 1.0);
        let b = grid(400, 0.25, 1.25);
        assert!(!ks_same_distribution(&a, &b, 0.05));
        // Statistic for a quarter shift of uniforms is ~0.25.
        let d = ks_statistic(&a, &b);
        assert!((d - 0.25).abs() < 0.02, "d = {d}");
    }

    #[test]
    fn same_distribution_passes() {
        // Two pseudo-random samples from the same uniform.
        let a: Vec<f64> = (0..500)
            .map(|i| ((i as u64 * 2654435761) % 10_000) as f64 / 10_000.0)
            .collect();
        let b: Vec<f64> = (0..500)
            .map(|i| ((i as u64 * 40503 + 7) % 10_000) as f64 / 10_000.0)
            .collect();
        assert!(ks_same_distribution(&a, &b, 0.01));
    }

    #[test]
    fn critical_value_shrinks_with_sample_size() {
        assert!(ks_critical(100, 100, 0.05) > ks_critical(1000, 1000, 0.05));
        // Known value: c(0.05) ~ 1.358; equal n=m=100 -> 1.358*sqrt(2/100).
        let crit = ks_critical(100, 100, 0.05);
        assert!((crit - 1.358 * (0.02f64).sqrt()).abs() < 1e-3, "{crit}");
    }

    #[test]
    fn statistic_is_symmetric() {
        let a = grid(64, 0.0, 2.0);
        let b = grid(100, 0.5, 1.5);
        assert!((ks_statistic(&a, &b) - ks_statistic(&b, &a)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sample_rejected() {
        ks_statistic(&[], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "must not contain NaN")]
    fn nan_rejected() {
        ks_statistic(&[f64::NAN], &[1.0]);
    }
}
