//! Error-function family: [`erf`], [`erfc`], [`erfinv`].
//!
//! The implementations are deliberately constant-free (no opaque coefficient
//! tables): `erf` uses its Maclaurin series in the central range and a
//! continued fraction for the complementary function in the tails, and
//! `erfinv` is a bracketed bisection refined by Newton iterations. This keeps
//! the code auditable while still reaching ~1e-12 absolute accuracy, far more
//! than the paper's Theorem 3 needs for `d = sqrt(2) * erfinv(1 - delta)`.

/// `2 / sqrt(pi)`, the derivative of `erf` at zero.
const TWO_OVER_SQRT_PI: f64 = std::f64::consts::FRAC_2_SQRT_PI;

/// Series/continued-fraction crossover point for [`erf`].
///
/// Below this the Maclaurin series converges quickly with acceptable
/// cancellation; above it the continued fraction for `erfc` is both faster
/// and more accurate.
const ERF_SERIES_CUTOFF: f64 = 2.0;

/// The error function `erf(x) = 2/sqrt(pi) * Integral_0^x e^(-t^2) dt`.
///
/// Accurate to roughly 1e-13 absolute error over the whole real line.
///
/// ```
/// use rfid_stats::erf;
/// assert!((erf(1.0) - 0.842_700_792_949_714_9).abs() < 1e-12);
/// assert_eq!(erf(0.0), 0.0);
/// assert!((erf(-1.0) + erf(1.0)).abs() < 1e-15); // odd function
/// ```
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let ax = x.abs();
    // analysis:allow(float-sanity): exact zero short-circuit; erf(0) = 0 and the series below would 0/0
    if ax == 0.0 {
        return 0.0;
    }
    let magnitude = if ax <= ERF_SERIES_CUTOFF {
        erf_series(ax)
    } else {
        1.0 - erfc_continued_fraction(ax)
    };
    magnitude.copysign(x)
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Computed directly (not as `1 - erf`) for `x > 2`, so it stays accurate in
/// the far tail where `erf(x)` is within one ulp of 1.
///
/// ```
/// use rfid_stats::erfc;
/// assert!((erfc(3.0) - 2.209_049_699_858_544e-5).abs() < 1e-15);
/// assert!((erfc(0.0) - 1.0).abs() < 1e-15);
/// ```
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x >= 0.0 {
        if x <= ERF_SERIES_CUTOFF {
            1.0 - erf_series(x)
        } else {
            erfc_continued_fraction(x)
        }
    } else {
        2.0 - erfc(-x)
    }
}

/// Maclaurin series `erf(x) = 2/sqrt(pi) * sum (-1)^n x^(2n+1) / (n! (2n+1))`.
///
/// Valid for small-to-moderate `x`; callers restrict it to
/// `x <= ERF_SERIES_CUTOFF` where cancellation costs at most ~2 digits.
fn erf_series(x: f64) -> f64 {
    let x2 = x * x;
    let mut term = x;
    let mut sum = x;
    // term_n = (-1)^n x^(2n+1) / n!; the series element also divides by (2n+1).
    let mut n = 0u32;
    loop {
        n += 1;
        term *= -x2 / n as f64;
        let element = term / (2.0 * n as f64 + 1.0);
        sum += element;
        if element.abs() < sum.abs() * 1e-17 || n > 200 {
            break;
        }
    }
    TWO_OVER_SQRT_PI * sum
}

/// Legendre continued fraction for `erfc(x)`, `x > 0`:
///
/// `erfc(x) = e^(-x^2)/sqrt(pi) * 1/(x + 1/(2x + 2/(x + 3/(2x + 4/(x + ...)))))`
///
/// evaluated with the modified Lentz algorithm.
fn erfc_continued_fraction(x: f64) -> f64 {
    debug_assert!(x > 0.0);
    const TINY: f64 = 1e-300;
    const EPS: f64 = 1e-16;
    // b_0 = x; the continuants alternate b = x and b = 2x with a_n = n/2... we
    // use the integer-coefficient form: f = 1/(x+) 1/2/(x+) 1/(x+) 3/2/(x+) ...
    // Equivalent standard form: a_n = n/2, b_n = x for all n.
    let mut f = x.max(TINY);
    let mut c = f;
    let mut d = 0.0;
    let mut n = 1u32;
    loop {
        let a = n as f64 / 2.0;
        let b = x;
        d = b + a * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + a / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < EPS || n > 300 {
            break;
        }
        n += 1;
    }
    // f now approximates x + K(a_n / b_n), so erfc = e^{-x^2}/sqrt(pi) / f.
    (-x * x).exp() / (std::f64::consts::PI.sqrt() * f)
}

/// The inverse error function: `erfinv(y) = x` such that `erf(x) = y`.
///
/// Domain `(-1, 1)`; returns `+/- infinity` at the endpoints and NaN outside.
/// Implemented as 24 bisection steps on a fixed bracket followed by Newton
/// iterations, converging to full double precision for every representable
/// input (the derivative `2/sqrt(pi) e^(-x^2)` is strictly positive).
///
/// ```
/// use rfid_stats::{erf, erfinv};
/// let x = erfinv(0.95);
/// assert!((erf(x) - 0.95).abs() < 1e-14);
/// // The paper's d for delta = 0.05: sqrt(2) * erfinv(0.95) ~ 1.95996.
/// assert!((2f64.sqrt() * x - 1.959_963_984_540_054).abs() < 1e-9);
/// ```
pub fn erfinv(y: f64) -> f64 {
    if y.is_nan() || !(-1.0..=1.0).contains(&y) {
        return f64::NAN;
    }
    // analysis:allow(float-sanity): exact domain endpoints of erfinv, mapped to their defining limits
    if y == 1.0 {
        return f64::INFINITY;
    }
    if y == -1.0 {
        return f64::NEG_INFINITY;
    }
    // analysis:allow(float-sanity): exact zero short-circuit; erfinv(0) = 0 and Newton iteration below needs a nonzero target
    if y == 0.0 {
        return 0.0;
    }
    let target = y.abs();
    // erf(6) differs from 1 by ~2e-17, so [0, 6] brackets every attainable y
    // strictly inside (0, 1).
    let mut lo = 0.0f64;
    let mut hi = 6.0f64;
    for _ in 0..24 {
        let mid = 0.5 * (lo + hi);
        if erf(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let mut x = 0.5 * (lo + hi);
    // Newton refinement: f(x) = erf(x) - target, f'(x) = 2/sqrt(pi) e^(-x^2).
    for _ in 0..4 {
        let err = erf(x) - target;
        let deriv = TWO_OVER_SQRT_PI * (-x * x).exp();
        let step = err / deriv;
        x -= step;
        if step.abs() < 1e-16 * x.abs() {
            break;
        }
    }
    x.copysign(y)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values computed with mpmath at 50 digits.
    const ERF_TABLE: &[(f64, f64)] = &[
        (0.1, 0.112_462_916_018_284_89),
        (0.5, 0.520_499_877_813_046_5),
        (1.0, 0.842_700_792_949_714_9),
        (1.5, 0.966_105_146_475_310_7),
        (2.0, 0.995_322_265_018_952_7),
        (2.5, 0.999_593_047_982_555),
        (3.0, 0.999_977_909_503_001_4),
        (4.0, 0.999_999_984_582_742_1),
    ];

    const ERFC_TABLE: &[(f64, f64)] = &[
        (1.0, 0.157_299_207_050_285_13),
        (2.0, 0.004_677_734_981_047_266),
        (3.0, 2.209_049_699_858_544e-5),
        (4.0, 1.541_725_790_028_002e-8),
        (5.0, 1.537_459_794_428_035e-12),
        (6.0, 2.151_973_671_249_891e-17),
    ];

    #[test]
    fn erf_matches_reference_values() {
        for &(x, want) in ERF_TABLE {
            let got = erf(x);
            assert!(
                (got - want).abs() < 1e-12,
                "erf({x}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn erfc_matches_reference_values_with_relative_accuracy() {
        for &(x, want) in ERFC_TABLE {
            let got = erfc(x);
            let rel = ((got - want) / want).abs();
            assert!(rel < 1e-11, "erfc({x}) = {got}, want {want}, rel {rel}");
        }
    }

    #[test]
    fn erf_is_odd() {
        for &(x, _) in ERF_TABLE {
            assert_eq!(erf(-x), -erf(x));
        }
    }

    #[test]
    fn erfc_of_negative_uses_reflection() {
        for &(x, want) in ERFC_TABLE {
            let got = erfc(-x);
            assert!(
                (got - (2.0 - want)).abs() < 1e-12,
                "erfc({}) = {got}",
                -x
            );
        }
    }

    #[test]
    fn erf_at_zero_and_limits() {
        assert_eq!(erf(0.0), 0.0);
        assert!((erf(10.0) - 1.0).abs() < 1e-15);
        assert!((erf(-10.0) + 1.0).abs() < 1e-15);
        assert!(erf(f64::NAN).is_nan());
    }

    #[test]
    fn erf_plus_erfc_is_one() {
        for x in [-4.0, -2.0, -0.3, 0.0, 0.3, 1.0, 1.9, 2.0, 2.1, 3.5, 5.0] {
            let s = erf(x) + erfc(x);
            assert!((s - 1.0).abs() < 1e-12, "erf+erfc at {x} = {s}");
        }
    }

    #[test]
    fn erf_is_monotone_across_the_series_cf_crossover() {
        let mut prev = erf(1.99);
        let mut x = 1.99;
        while x < 2.02 {
            x += 0.0005;
            let cur = erf(x);
            assert!(cur >= prev, "erf not monotone at {x}");
            prev = cur;
        }
    }

    #[test]
    fn erfinv_round_trips() {
        for y in [
            -0.999, -0.95, -0.5, -0.1, -1e-6, 1e-6, 0.05, 0.5, 0.7, 0.9, 0.95,
            0.99, 0.999, 0.999_999,
        ] {
            let x = erfinv(y);
            assert!(
                (erf(x) - y).abs() < 1e-12,
                "erf(erfinv({y})) = {}",
                erf(x)
            );
        }
    }

    #[test]
    fn erfinv_known_values() {
        // sqrt(2) * erfinv(0.95) is the 97.5% normal quantile.
        let d = 2f64.sqrt() * erfinv(0.95);
        assert!((d - 1.959_963_984_540_054).abs() < 1e-10, "d = {d}");
        // erfinv(0.5) = 0.476936...
        assert!((erfinv(0.5) - 0.476_936_276_204_469_9).abs() < 1e-11);
    }

    #[test]
    fn erfinv_edge_cases() {
        assert_eq!(erfinv(0.0), 0.0);
        assert_eq!(erfinv(1.0), f64::INFINITY);
        assert_eq!(erfinv(-1.0), f64::NEG_INFINITY);
        assert!(erfinv(1.5).is_nan());
        assert!(erfinv(-1.5).is_nan());
        assert!(erfinv(f64::NAN).is_nan());
    }

    #[test]
    fn erfinv_is_odd() {
        for y in [0.1, 0.37, 0.62, 0.88] {
            assert!((erfinv(-y) + erfinv(y)).abs() < 1e-14);
        }
    }
}
