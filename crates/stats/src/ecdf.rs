//! Empirical cumulative distribution function.
//!
//! Figure 8 of the BFCE paper plots the cumulative distribution of 100
//! independent estimation rounds under each tag-ID workload; [`Ecdf`] is the
//! data structure the harness uses to produce those curves.

/// An empirical CDF over a fixed sample.
///
/// Construction sorts the sample once; evaluation is a binary search.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build an ECDF from a sample. Panics on NaN input or an empty sample.
    pub fn new(mut sample: Vec<f64>) -> Self {
        assert!(!sample.is_empty(), "ECDF needs at least one observation");
        assert!(
            sample.iter().all(|x| !x.is_nan()),
            "ECDF input must not contain NaN"
        );
        sample.sort_by(f64::total_cmp);
        Self { sorted: sample }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty (never true for a constructed ECDF).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)` = fraction of observations `<= x`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point gives the count of elements <= x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Empirical quantile: smallest observation `v` with `F(v) >= q`,
    /// `q` in `(0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(q > 0.0 && q <= 1.0, "q must lie in (0, 1], got {q}");
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).max(1) - 1;
        self.sorted[idx.min(self.sorted.len() - 1)]
    }

    /// The sorted sample, for plotting `(value, F(value))` step curves.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }

    /// Iterator of `(value, F(value))` pairs — one point per observation,
    /// ready to be written out as a step plot.
    pub fn steps(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(move |(i, &v)| (v, (i + 1) as f64 / n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_step_behaviour() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 2.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(1.5), 0.25);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(3.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn quantiles() {
        let e = Ecdf::new((1..=10).map(|i| i as f64).collect());
        assert_eq!(e.quantile(0.1), 1.0);
        assert_eq!(e.quantile(0.5), 5.0);
        assert_eq!(e.quantile(1.0), 10.0);
        assert_eq!(e.quantile(0.95), 10.0);
        assert_eq!(e.quantile(0.05), 1.0);
    }

    #[test]
    fn steps_cover_unit_interval() {
        let e = Ecdf::new(vec![5.0, 7.0, 6.0]);
        let pts: Vec<(f64, f64)> = e.steps().collect();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], (5.0, 1.0 / 3.0));
        assert_eq!(pts[2], (7.0, 1.0));
        // Monotone in both coordinates.
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
    }

    #[test]
    fn len_and_sorted_access() {
        let e = Ecdf::new(vec![2.0, 1.0]);
        assert_eq!(e.len(), 2);
        assert!(!e.is_empty());
        assert_eq!(e.sorted_values(), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "at least one observation")]
    fn empty_sample_rejected() {
        Ecdf::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "must not contain NaN")]
    fn nan_rejected() {
        Ecdf::new(vec![1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "q must lie in (0, 1]")]
    fn quantile_rejects_zero() {
        Ecdf::new(vec![1.0]).quantile(0.0);
    }
}
