//! Pearson chi-square uniformity testing.
//!
//! BFCE's Theorem 1 assumes the tag-side hash functions "follow uniform
//! distribution in the range [1, w]". The hash crate's test-suite uses
//! [`uniformity_test`] to check that assumption empirically for both the
//! paper's lightweight XOR-bitget hash and the full avalanche hash.

use crate::normal::normal_quantile;

/// Pearson chi-square statistic for observed bin counts against a uniform
/// expectation. Panics if fewer than 2 bins or if the total count is zero.
pub fn chi_square_statistic(observed: &[u64]) -> f64 {
    assert!(observed.len() >= 2, "need at least 2 bins");
    let total: u64 = observed.iter().sum();
    assert!(total > 0, "need at least one observation");
    let expected = total as f64 / observed.len() as f64;
    observed
        .iter()
        .map(|&o| {
            let diff = o as f64 - expected;
            diff * diff / expected
        })
        .sum()
}

/// Pearson chi-square statistic for observed bin counts against arbitrary
/// expected counts (same length, every expectation positive).
///
/// The conformance suite uses this to test busy/idle slot occupancy against
/// the paper's `1 - e^{-n/f}` model, where the two bins of a frame are far
/// from equiprobable.
pub fn chi_square_statistic_against(observed: &[u64], expected: &[f64]) -> f64 {
    assert!(observed.len() >= 2, "need at least 2 bins");
    assert_eq!(
        observed.len(),
        expected.len(),
        "observed and expected must have the same number of bins"
    );
    observed
        .iter()
        .zip(expected)
        .map(|(&o, &e)| {
            // analysis:allow(panic-path): documented input validation; each expected count must be checked where it is consumed
            assert!(e > 0.0, "expected counts must be positive, got {e}");
            let diff = o as f64 - e;
            diff * diff / e
        })
        .sum()
}

/// Approximate upper critical value of the chi-square distribution with `df`
/// degrees of freedom at upper-tail probability `alpha`, via the
/// Wilson–Hilferty cube transformation. Accurate to a fraction of a percent
/// for `df >= 10`, which is all the uniformity tests need.
pub fn chi_square_critical(df: u64, alpha: f64) -> f64 {
    assert!(df > 0, "degrees of freedom must be positive");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must lie in (0,1)");
    let z = normal_quantile(1.0 - alpha);
    let d = df as f64;
    let t = 1.0 - 2.0 / (9.0 * d) + z * (2.0 / (9.0 * d)).sqrt();
    d * t * t * t
}

/// Returns `true` if the observed bin counts are consistent with a uniform
/// distribution at significance `alpha` (i.e. the chi-square statistic does
/// not exceed the critical value).
pub fn uniformity_test(observed: &[u64], alpha: f64) -> bool {
    let stat = chi_square_statistic(observed);
    let crit = chi_square_critical((observed.len() - 1) as u64, alpha);
    stat <= crit
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistic_zero_for_perfectly_uniform_counts() {
        let obs = [100u64; 8];
        assert_eq!(chi_square_statistic(&obs), 0.0);
    }

    #[test]
    fn statistic_hand_computed() {
        // bins (8, 12), expected 10 each: (4 + 4) / 10 = 0.8
        assert!((chi_square_statistic(&[8, 12]) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn critical_values_match_tables() {
        // chi2_{0.95, 10} = 18.307, chi2_{0.95, 100} = 124.342 (tables).
        let c10 = chi_square_critical(10, 0.05);
        assert!((c10 - 18.307).abs() < 0.15, "c10 = {c10}");
        let c100 = chi_square_critical(100, 0.05);
        assert!((c100 - 124.342).abs() < 0.3, "c100 = {c100}");
        // chi2_{0.99, 50} = 76.154.
        let c50 = chi_square_critical(50, 0.01);
        assert!((c50 - 76.154).abs() < 0.3, "c50 = {c50}");
    }

    #[test]
    fn uniform_counts_pass_and_skewed_counts_fail() {
        let uniform = [1000u64; 16];
        assert!(uniformity_test(&uniform, 0.01));

        let mut skewed = [1000u64; 16];
        skewed[0] = 2000;
        skewed[1] = 0;
        assert!(!uniformity_test(&skewed, 0.01));
    }

    #[test]
    fn mildly_noisy_uniform_counts_pass() {
        // Counts within ~2 sigma of a uniform multinomial (n = 16000, 16 bins
        // -> expected 1000, sigma ~ 30.6).
        let obs = [
            1012u64, 987, 1043, 970, 1001, 996, 1024, 959, 1005, 1018, 977,
            1002, 990, 1030, 981, 1005,
        ];
        assert!(uniformity_test(&obs, 0.001));
    }

    #[test]
    fn against_uniform_expectation_matches_uniform_statistic() {
        let obs = [8u64, 12, 9, 11];
        let expected = [10.0; 4];
        assert!(
            (chi_square_statistic_against(&obs, &expected) - chi_square_statistic(&obs)).abs()
                < 1e-12
        );
    }

    #[test]
    fn against_skewed_expectation_hand_computed() {
        // bins (30, 70) against expectation (25, 75):
        // 25/25 + 25/75 = 1 + 1/3.
        let stat = chi_square_statistic_against(&[30, 70], &[25.0, 75.0]);
        assert!((stat - (1.0 + 1.0 / 3.0)).abs() < 1e-12, "stat = {stat}");
    }

    #[test]
    #[should_panic(expected = "same number of bins")]
    fn against_rejects_length_mismatch() {
        chi_square_statistic_against(&[1, 2], &[1.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn against_rejects_nonpositive_expectation() {
        chi_square_statistic_against(&[1, 2], &[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "need at least 2 bins")]
    fn rejects_single_bin() {
        chi_square_statistic(&[5]);
    }

    #[test]
    #[should_panic(expected = "at least one observation")]
    fn rejects_all_zero() {
        chi_square_statistic(&[0, 0]);
    }
}
