//! Numerics substrate for the BFCE reproduction.
//!
//! The BFCE paper ("Towards Constant-Time Cardinality Estimation for
//! Large-Scale RFID Systems", ICPP 2015) leans on a handful of numerical
//! building blocks that we implement from scratch here rather than pulling in
//! a scientific-computing dependency:
//!
//! * the error function family ([`special::erf`], [`special::erfc`],
//!   [`special::erfinv`]) — Theorem 3 of the paper needs
//!   `d = sqrt(2) * erfinv(1 - delta)`,
//! * normal-distribution helpers ([`normal`]) — the central-limit argument in
//!   Theorem 3,
//! * binomial tail probabilities ([`binomial`]) — the SRC baseline picks its
//!   round count `m` as the smallest odd integer whose majority-vote success
//!   probability reaches `1 - delta` (Section V-C of the paper),
//! * summary statistics, empirical CDFs and a chi-square uniformity check
//!   ([`summary`], [`ecdf`], [`chisq`]) — used by the evaluation harness
//!   (Figures 7–10) and by the hash-uniformity test suite.
//!
//! Everything here is pure, deterministic `f64` math with no allocation in the
//! hot paths, per the HPC guidance this repository follows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binomial;
pub mod chisq;
pub mod ecdf;
pub mod ks;
pub mod normal;
pub mod special;
pub mod summary;

pub use binomial::{binomial_pmf, binomial_tail_ge, ln_choose, majority_rounds};
pub use chisq::{
    chi_square_critical, chi_square_statistic, chi_square_statistic_against, uniformity_test,
};
pub use ecdf::Ecdf;
pub use ks::{ks_critical, ks_same_distribution, ks_statistic};
pub use normal::{d_for_delta, normal_cdf, normal_pdf, normal_quantile};
pub use special::{erf, erfc, erfinv};
pub use summary::{mean, percentile, sample_std, sample_variance, RunningStats};
