//! Standard-normal helpers built on the error function.
//!
//! Theorem 3 of the BFCE paper maps the accuracy requirement `(epsilon,
//! delta)` to a standard-normal two-sided bound: a constant `d` with
//! `Pr{-d <= Y <= d} = 1 - delta`, i.e. `d = sqrt(2) * erfinv(1 - delta)`.
//! That constant is [`d_for_delta`]; the remaining functions are the usual
//! CDF/PDF/quantile trio used by the evaluation harness.

use crate::special::{erfc, erfinv};

/// Cumulative distribution function of the standard normal distribution.
///
/// ```
/// use rfid_stats::normal_cdf;
/// assert!((normal_cdf(0.0) - 0.5).abs() < 1e-15);
/// assert!((normal_cdf(1.959_963_984_540_054) - 0.975).abs() < 1e-12);
/// ```
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Probability density function of the standard normal distribution.
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Quantile (inverse CDF) of the standard normal distribution.
///
/// Returns `-infinity` at 0 and `+infinity` at 1; NaN outside `[0, 1]`.
///
/// ```
/// use rfid_stats::{normal_cdf, normal_quantile};
/// let z = normal_quantile(0.975);
/// assert!((z - 1.959_963_984_540_054).abs() < 1e-9);
/// assert!((normal_cdf(z) - 0.975).abs() < 1e-12);
/// ```
pub fn normal_quantile(p: f64) -> f64 {
    std::f64::consts::SQRT_2 * erfinv(2.0 * p - 1.0)
}

/// The two-sided normal bound `d` of Theorem 3 in the BFCE paper:
/// `Pr{-d <= Y <= d} = 1 - delta` for a standard normal `Y`, i.e.
/// `d = sqrt(2) * erfinv(1 - delta)`.
///
/// For the paper's default `delta = 0.05` this is the familiar 1.95996.
///
/// ```
/// use rfid_stats::d_for_delta;
/// assert!((d_for_delta(0.05) - 1.959_963_984_540_054).abs() < 1e-9);
/// ```
pub fn d_for_delta(delta: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&delta) && delta > 0.0,
        "delta must lie in (0, 1), got {delta}"
    );
    std::f64::consts::SQRT_2 * erfinv(1.0 - delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_reference_values() {
        // (x, Phi(x)) from standard tables.
        let table = [
            (-3.0, 0.001_349_898_031_630_094_5),
            (-1.0, 0.158_655_253_931_457_05),
            (0.0, 0.5),
            (1.0, 0.841_344_746_068_542_9),
            (1.644_853_626_951_472_2, 0.95),
            (2.0, 0.977_249_868_051_820_8),
            (3.0, 0.998_650_101_968_369_9),
        ];
        for (x, want) in table {
            let got = normal_cdf(x);
            assert!(
                (got - want).abs() < 1e-12,
                "Phi({x}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [0.001, 0.025, 0.1, 0.3, 0.5, 0.7, 0.9, 0.975, 0.999] {
            let z = normal_quantile(p);
            assert!(
                (normal_cdf(z) - p).abs() < 1e-12,
                "round trip failed at p = {p}"
            );
        }
    }

    #[test]
    fn quantile_endpoints() {
        assert_eq!(normal_quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(normal_quantile(1.0), f64::INFINITY);
        assert_eq!(normal_quantile(0.5), 0.0);
        assert!(normal_quantile(-0.1).is_nan());
        assert!(normal_quantile(1.1).is_nan());
    }

    #[test]
    fn pdf_properties() {
        assert!((normal_pdf(0.0) - 0.398_942_280_401_432_7).abs() < 1e-15);
        assert_eq!(normal_pdf(2.0), normal_pdf(-2.0));
        // Crude trapezoidal integral over [-8, 8] should be ~1.
        let n = 16_000;
        let h = 16.0 / n as f64;
        let mut integral = 0.0;
        for i in 0..=n {
            let x = -8.0 + i as f64 * h;
            let w = if i == 0 || i == n { 0.5 } else { 1.0 };
            integral += w * normal_pdf(x);
        }
        integral *= h;
        assert!((integral - 1.0).abs() < 1e-9, "integral = {integral}");
    }

    #[test]
    fn d_for_delta_values_used_by_the_paper() {
        // delta = 0.05 -> 1.960; delta = 0.1 -> 1.645; delta = 0.3 -> 1.036.
        assert!((d_for_delta(0.05) - 1.959_963_984_540_054).abs() < 1e-9);
        assert!((d_for_delta(0.10) - 1.644_853_626_951_472_2).abs() < 1e-9);
        assert!((d_for_delta(0.30) - 1.036_433_389_493_789_8).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "delta must lie in (0, 1)")]
    fn d_for_delta_rejects_zero() {
        d_for_delta(0.0);
    }

    #[test]
    fn d_for_delta_is_decreasing() {
        let mut prev = f64::INFINITY;
        for i in 1..100 {
            let delta = i as f64 / 100.0;
            let d = d_for_delta(delta);
            assert!(d < prev, "d not decreasing at delta = {delta}");
            prev = d;
        }
    }
}
