//! Property-based tests for the simulator: the bitmap against a naive
//! model, ledger arithmetic, frame aggregation, and parallel/sequential
//! equivalence.

use proptest::prelude::*;
use rfid_hash::SplitMix64;
use rfid_sim::frame::response_counts;
use rfid_sim::parallel::{par_fold, par_fold_with_threads};
use rfid_sim::{
    AirTimeLedger, BitErrorChannel, BitFrame, Bitmap, CaptureChannel, Channel,
    ImperfectHashChannel, PerfectChannel, Tag, Timing,
};

proptest! {
    #[test]
    fn bitmap_matches_vec_bool_model(
        len in 1usize..500,
        ops in prop::collection::vec((0usize..500, 0u8..3), 0..200),
        prefix_frac in 0.0f64..1.0,
    ) {
        let mut bitmap = Bitmap::zeros(len);
        let mut model = vec![false; len];
        for (raw_idx, kind) in ops {
            let i = raw_idx % len;
            match kind {
                0 => { bitmap.set(i); model[i] = true; }
                1 => { bitmap.clear(i); model[i] = false; }
                _ => { bitmap.toggle(i); model[i] = !model[i]; }
            }
        }
        prop_assert_eq!(bitmap.len(), model.len());
        prop_assert_eq!(bitmap.count_ones(), model.iter().filter(|&&b| b).count());
        for (i, &bit) in model.iter().enumerate() {
            prop_assert_eq!(bitmap.get(i), bit);
        }
        let prefix = ((len as f64) * prefix_frac) as usize;
        prop_assert_eq!(
            bitmap.count_ones_prefix(prefix),
            model[..prefix].iter().filter(|&&b| b).count()
        );
        let ones: Vec<usize> = bitmap.iter_ones().collect();
        let model_ones: Vec<usize> =
            model.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
        prop_assert_eq!(ones, model_ones);
    }

    #[test]
    fn bitmap_or_is_union(
        len in 1usize..300,
        a_bits in prop::collection::vec(0usize..300, 0..50),
        b_bits in prop::collection::vec(0usize..300, 0..50),
    ) {
        let mut a = Bitmap::zeros(len);
        let mut b = Bitmap::zeros(len);
        for &i in &a_bits { a.set(i % len); }
        for &i in &b_bits { b.set(i % len); }
        let mut merged = a.clone();
        merged.or_assign(&b);
        for i in 0..len {
            prop_assert_eq!(merged.get(i), a.get(i) || b.get(i));
        }
    }

    #[test]
    fn ledger_since_is_exact_difference(
        first in prop::collection::vec((1u64..200, 0u64..500), 0..10),
        second in prop::collection::vec((1u64..200, 0u64..500), 0..10),
    ) {
        let mut ledger = AirTimeLedger::new(Timing::c1g2());
        for &(bits, slots) in &first {
            ledger.reader_broadcast(bits);
            ledger.tag_bitslots(slots);
        }
        let snapshot = ledger.snapshot();
        for &(bits, slots) in &second {
            ledger.reader_broadcast(bits);
            ledger.tag_bitslots(slots);
        }
        let diff = ledger.snapshot().since(&snapshot);
        let want_bits: u64 = second.iter().map(|&(b, _)| b).sum();
        let want_slots: u64 = second.iter().map(|&(_, s)| s).sum();
        prop_assert_eq!(diff.reader_bits, want_bits);
        prop_assert_eq!(diff.bitslots, want_slots);
        prop_assert_eq!(diff.reader_messages, second.len() as u64);
        prop_assert!((diff.total_us()
            - (ledger.snapshot().total_us() - snapshot.total_us())).abs() < 1e-9);
    }

    #[test]
    fn response_counts_conserve_responses(
        n_tags in 1usize..500,
        w in 1usize..256,
        k in 1usize..4,
    ) {
        let tags: Vec<Tag> = (0..n_tags as u64)
            .map(|i| Tag { id: i + 1, rn: i as u32 })
            .collect();
        let plan = move |tag: &Tag, out: &mut Vec<usize>| {
            for j in 0..k {
                out.push(((tag.id as usize) * 31 + j * 7) % w);
            }
        };
        let counts = response_counts(&tags, w, &plan);
        prop_assert_eq!(counts.len(), w);
        let total: u64 = counts.iter().map(|&c| c as u64).sum();
        prop_assert_eq!(total, (n_tags * k) as u64);
    }

    #[test]
    fn par_fold_equals_sequential_for_histograms(
        values in prop::collection::vec(0usize..64, 0..2000),
        min_chunk in prop::sample::select(vec![0usize, 1, 10, 100, usize::MAX]),
    ) {
        // `min_chunk == 0` ("always use every hardware thread") and the
        // empty `values` vec are the regression cases that used to panic
        // in `chunks(0)` / `expect("at least one chunk")`.
        let run = |chunk: usize| {
            par_fold(
                &values,
                chunk,
                || vec![0u32; 64],
                |acc, &v| acc[v] += 1,
                |acc, other| {
                    for (a, b) in acc.iter_mut().zip(other) { *a += b; }
                },
            )
        };
        prop_assert_eq!(run(min_chunk), run(usize::MAX));
    }

    #[test]
    fn par_fold_with_threads_equals_sequential(
        values in prop::collection::vec(0usize..64, 0..2000),
        threads in prop::sample::select(vec![0usize, 1, 2, 3, 8, 64, usize::MAX]),
    ) {
        let parallel = par_fold_with_threads(
            &values,
            threads,
            || vec![0u32; 64],
            |acc, &v| acc[v] += 1,
            |acc, other| {
                for (a, b) in acc.iter_mut().zip(other) { *a += b; }
            },
        );
        let mut sequential = vec![0u32; 64];
        for &v in &values { sequential[v] += 1; }
        prop_assert_eq!(parallel, sequential);
    }

    #[test]
    fn perfect_sensing_reflects_counts(
        counts in prop::collection::vec(0u32..5, 1..300),
    ) {
        let mut noise = SplitMix64::new(7);
        let frame = BitFrame::sense(&counts, counts.len(), &PerfectChannel, &mut noise);
        let busy_true = counts.iter().filter(|&&c| c > 0).count();
        prop_assert_eq!(frame.busy_count(), busy_true);
        prop_assert_eq!(frame.idle_count() + frame.busy_count(), counts.len());
        let rho = frame.rho();
        prop_assert!((0.0..=1.0).contains(&rho));
    }
}

/// A synthetic multi-response plan for kernel-equivalence properties:
/// each tag answers under a subset of the seeds (dropping seeds where a
/// cheap predicate fires), so response counts per tag vary from 0 to
/// `seeds.len()` — exactly the shape the batched fill path must handle.
#[derive(Debug)]
struct SyntheticPlan {
    seeds: Vec<u32>,
    w: usize,
}

impl rfid_sim::ResponsePlan for SyntheticPlan {
    fn responses(&self, tag: &Tag, out: &mut Vec<usize>) {
        for &seed in &self.seeds {
            // Deterministic, tag-dependent participation + slot.
            let h = rfid_hash::mix::mix_pair(tag.id ^ u64::from(tag.rn), u64::from(seed));
            if h & 3 != 0 {
                out.push(rfid_hash::mix::bucket(h >> 2, self.w));
            }
        }
    }
}

proptest! {
    /// The batched word-level fill (per-thread bitmaps merged by word OR)
    /// must be bitwise identical to the scalar reference counts for
    /// arbitrary tag sets, widths (including < 64 and non-multiples of
    /// 64), observation prefixes, and thread counts.
    #[test]
    fn batched_fill_matches_reference_counts(
        raw_tags in prop::collection::vec((any::<u64>(), any::<u32>()), 0..250),
        w in 1usize..200,
        seeds in prop::collection::vec(any::<u32>(), 0..4),
        observe_frac in 0.0f64..1.0,
        threads in prop::sample::select(vec![1usize, 2, 3, 8]),
    ) {
        let tags: Vec<Tag> = raw_tags.iter().map(|&(id, rn)| Tag { id, rn }).collect();
        let plan = SyntheticPlan { seeds, w };
        let observe = ((w as f64) * observe_frac) as usize;

        let counts =
            rfid_sim::frame::response_counts_reference(&tags, w, &plan, usize::MAX);
        let fill =
            rfid_sim::frame::response_fill_with_threads(&tags, w, observe, &plan, threads);

        for (slot, &c) in counts.iter().enumerate() {
            prop_assert_eq!(
                fill.busy.get(slot),
                c > 0,
                "slot {} busy mismatch (count {})", slot, c
            );
        }
        let want_prefix: u64 = counts[..observe].iter().map(|&c| u64::from(c)).sum();
        prop_assert_eq!(fill.prefix_responses, want_prefix);
    }

    /// `min_chunk` only re-partitions work across threads; it must never
    /// change the filled frame.
    #[test]
    fn min_chunk_never_changes_the_fill(
        raw_tags in prop::collection::vec((any::<u64>(), any::<u32>()), 0..200),
        w in 1usize..130,
        min_chunk in prop::sample::select(vec![1usize, 7, 64, 1024, usize::MAX]),
    ) {
        let tags: Vec<Tag> = raw_tags.iter().map(|&(id, rn)| Tag { id, rn }).collect();
        let plan = SyntheticPlan { seeds: vec![11, 22, 33], w };
        let base = rfid_sim::frame::response_fill_with_threads(&tags, w, w, &plan, 1);
        let chunked =
            rfid_sim::frame::response_fill_with_min_chunk(&tags, w, w, &plan, min_chunk);
        prop_assert_eq!(base.busy.words(), chunked.busy.words());
        prop_assert_eq!(base.prefix_responses, chunked.prefix_responses);
    }

    /// The count-vector path and the reference path agree for every
    /// thread count (OR-accumulation vs u32 accumulation).
    #[test]
    fn threaded_counts_match_reference(
        raw_tags in prop::collection::vec((any::<u64>(), any::<u32>()), 0..200),
        w in 1usize..130,
        threads in prop::sample::select(vec![1usize, 2, 5, 16]),
    ) {
        let tags: Vec<Tag> = raw_tags.iter().map(|&(id, rn)| Tag { id, rn }).collect();
        let plan = SyntheticPlan { seeds: vec![5, 6], w };
        let reference =
            rfid_sim::frame::response_counts_reference_with_threads(&tags, w, &plan, 1);
        let threaded =
            rfid_sim::frame::response_counts_with_threads(&tags, w, &plan, threads);
        prop_assert_eq!(reference, threaded);
    }

    /// Dispatch is routing only: whatever mode or threshold picks the
    /// kernel, the dispatched fill and count paths are bit-identical to
    /// the single-thread batched fill and the scalar reference counts.
    #[test]
    fn dispatched_paths_match_pure_paths_at_any_threshold(
        raw_tags in prop::collection::vec((any::<u64>(), any::<u32>()), 0..200),
        w in 1usize..130,
        threshold in prop::sample::select(vec![0usize, 1, 50, 128, usize::MAX]),
    ) {
        use rfid_sim::FillDispatch;
        let tags: Vec<Tag> = raw_tags.iter().map(|&(id, rn)| Tag { id, rn }).collect();
        let plan = SyntheticPlan { seeds: vec![3, 9, 27], w };
        let modes = [
            FillDispatch::Scalar,
            FillDispatch::Batched,
            FillDispatch::Auto,
            FillDispatch::Threshold(threshold),
        ];
        let base = rfid_sim::frame::response_fill_with_threads(&tags, w, w, &plan, 1);
        let counts_ref =
            rfid_sim::frame::response_counts_reference_with_threads(&tags, w, &plan, 1);
        for mode in modes {
            let fill = rfid_sim::frame::response_fill_dispatched(
                &tags, w, w, &plan, mode, usize::MAX,
            );
            prop_assert_eq!(
                base.busy.words(), fill.busy.words(), "fill words, mode {:?}", mode
            );
            prop_assert_eq!(
                base.prefix_responses, fill.prefix_responses, "prefix, mode {:?}", mode
            );
            let counts = rfid_sim::frame::response_counts_dispatched(
                &tags, w, &plan, mode, usize::MAX,
            );
            prop_assert_eq!(&counts_ref, &counts, "counts, mode {:?}", mode);
        }
    }

    /// `ScalarRef` must expose *only* `responses()`: wrapping any plan —
    /// even one whose batched override is deliberately wrong — yields a
    /// fill identical to the scalar reference counts.
    #[test]
    fn scalar_ref_always_reproduces_the_reference(
        raw_tags in prop::collection::vec((any::<u64>(), any::<u32>()), 0..150),
        w in 2usize..120,
        shift in 1usize..32,
    ) {
        #[derive(Debug)]
        struct LyingPlan { inner: SyntheticPlan, shift: usize, w: usize }
        impl rfid_sim::ResponsePlan for LyingPlan {
            fn responses(&self, tag: &Tag, out: &mut Vec<usize>) {
                self.inner.responses(tag, out);
            }
            fn fill_chunk(&self, tags: &[Tag], sink: &mut rfid_sim::SlotSink<'_>) {
                let mut scratch = Vec::new();
                for tag in tags {
                    scratch.clear();
                    self.inner.responses(tag, &mut scratch);
                    for &slot in &scratch {
                        sink.record((slot + self.shift) % self.w);
                    }
                }
            }
        }
        let tags: Vec<Tag> = raw_tags.iter().map(|&(id, rn)| Tag { id, rn }).collect();
        let plan = LyingPlan { inner: SyntheticPlan { seeds: vec![4, 8], w }, shift, w };
        let counts =
            rfid_sim::frame::response_counts_reference(&tags, w, &plan, usize::MAX);
        let fill = rfid_sim::frame::response_fill_with_threads(
            &tags, w, w, &rfid_sim::ScalarRef(&plan), 1,
        );
        for (slot, &c) in counts.iter().enumerate() {
            prop_assert_eq!(fill.busy.get(slot), c > 0, "slot {}", slot);
        }
        let want: u64 = counts.iter().map(|&c| u64::from(c)).sum();
        prop_assert_eq!(fill.prefix_responses, want);
    }
}

/// Every channel implementation in the workspace, instantiated from two
/// free parameters so the property sweeps the configuration space too.
fn channel_family(p1: f64, p2: f64) -> Vec<Box<dyn Channel>> {
    vec![
        Box::new(PerfectChannel),
        Box::new(BitErrorChannel::new(p1)),
        Box::new(CaptureChannel::new(p1)),
        Box::new(ImperfectHashChannel::new(p1, p2)),
    ]
}

proptest! {
    /// The `Channel` contract: a 1-bit slot carries no multiplicity
    /// information, so for every implementation the sensed value *and*
    /// the post-call noise stream may depend on `responders` only through
    /// `responders > 0`. The batched frame path replays frames from a
    /// busy/idle bitmap and silently desynchronizes if any channel
    /// violates this.
    #[test]
    fn bitslot_sensing_depends_only_on_occupancy(
        seed in any::<u64>(),
        r1 in 1u32..50_000,
        r2 in 1u32..50_000,
        p1 in 0.0f64..1.0,
        p2 in 0.0f64..1.0,
    ) {
        for channel in channel_family(p1, p2) {
            let mut noise_a = SplitMix64::new(seed);
            let mut noise_b = SplitMix64::new(seed);
            let a = channel.sense_bitslot(r1, &mut noise_a);
            let b = channel.sense_bitslot(r2, &mut noise_b);
            prop_assert_eq!(a, b, "{}: sensed value depends on multiplicity", channel.name());
            prop_assert_eq!(
                noise_a.next_u64(),
                noise_b.next_u64(),
                "{}: noise stream depends on multiplicity", channel.name()
            );
        }
    }

    /// Same-seed bit-slot sensing is a pure function: repeating the call
    /// reproduces both the result and the stream position.
    #[test]
    fn bitslot_sensing_replays_bitwise(
        seed in any::<u64>(),
        responders in 0u32..1_000,
        p1 in 0.0f64..1.0,
        p2 in 0.0f64..1.0,
    ) {
        for channel in channel_family(p1, p2) {
            let mut noise_a = SplitMix64::new(seed);
            let mut noise_b = SplitMix64::new(seed);
            let a = channel.sense_bitslot(responders, &mut noise_a);
            let b = channel.sense_bitslot(responders, &mut noise_b);
            prop_assert_eq!(a, b, "{}", channel.name());
            prop_assert_eq!(noise_a.next_u64(), noise_b.next_u64(), "{}", channel.name());
        }
    }

    /// The Aloha analogue: outcome and noise stream may depend on the
    /// responder count only through its empty/singleton/collision class.
    #[test]
    fn aloha_sensing_depends_only_on_collision_class(
        seed in any::<u64>(),
        r1 in 2u32..50_000,
        r2 in 2u32..50_000,
        p1 in 0.0f64..1.0,
        p2 in 0.0f64..1.0,
    ) {
        for channel in channel_family(p1, p2) {
            let mut noise_a = SplitMix64::new(seed);
            let mut noise_b = SplitMix64::new(seed);
            let a = channel.sense_aloha(r1, &mut noise_a);
            let b = channel.sense_aloha(r2, &mut noise_b);
            prop_assert_eq!(a, b, "{}: outcome depends on collision size", channel.name());
            prop_assert_eq!(
                noise_a.next_u64(),
                noise_b.next_u64(),
                "{}: noise stream depends on collision size", channel.name()
            );
        }
    }

    /// Extreme parameters stay within the contract: a fully-errored
    /// bit-error channel inverts every slot deterministically, and a
    /// miss-everything imperfect-hash channel reads everything idle.
    #[test]
    fn degenerate_channels_are_deterministic(
        seed in any::<u64>(),
        responders in 1u32..1_000,
    ) {
        let mut noise = SplitMix64::new(seed);
        prop_assert!(!BitErrorChannel::new(1.0).sense_bitslot(responders, &mut noise));
        prop_assert!(BitErrorChannel::new(1.0).sense_bitslot(0, &mut noise));
        prop_assert!(!ImperfectHashChannel::new(1.0, 0.0).sense_bitslot(responders, &mut noise));
        prop_assert!(ImperfectHashChannel::new(0.0, 1.0).sense_bitslot(0, &mut noise));
        prop_assert!(!BitErrorChannel::new(0.0).sense_bitslot(0, &mut noise));
    }
}
