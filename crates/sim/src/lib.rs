//! EPCglobal C1G2-style RFID air-interface simulator.
//!
//! This crate is the substrate the BFCE paper's evaluation runs on: a
//! *Reader-Talks-First*, time-slotted link between one logical reader and a
//! large tag population (Section III-A of the paper), with
//!
//! * the **bit-slot** channel mode of parallel identification protocols —
//!   tags transmit a 1-bit blip, the reader only senses busy/idle
//!   ([`frame`], [`bitmap`]),
//! * classic **framed slotted Aloha** observation (empty / singleton /
//!   collision) for the older baselines ([`aloha`]),
//! * the paper's **timing model** — 37.76 µs per reader bit, 18.88 µs per
//!   tag bit, 302 µs turnaround — and an [`ledger::AirTimeLedger`] that
//!   accounts every microsecond of reader↔tag communication, because the
//!   paper's central argument is about *total execution time*, not slot
//!   counts ([`timing`], [`ledger`]),
//! * pluggable channels: the paper's perfect channel plus bit-error,
//!   capture-effect and imperfect-hash channels for robustness ablations
//!   ([`channel`]),
//! * a deterministic fault-injection layer — seed-replayable schedules of
//!   frame aborts, slot bursts, desync offsets and reader dropouts, with
//!   degradation accounting on every estimate ([`fault`]),
//! * a parallel frame-fill engine for multi-million-tag populations
//!   ([`parallel`]),
//! * the [`CardinalityEstimator`] trait every estimator in this workspace
//!   implements, and the [`RfidSystem`] façade estimators drive
//!   ([`estimator`], [`system`]),
//! * a multi-reader deployment model showing the paper's "multiple readers
//!   are logically one reader" assumption ([`multireader`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aloha;
pub mod bitmap;
pub mod channel;
pub mod dispatch;
pub mod estimator;
pub mod fault;
pub mod frame;
pub mod ledger;
pub mod multireader;
pub mod parallel;
pub mod system;
pub mod tag;
pub mod timing;
pub mod trace;

pub use aloha::AlohaOutcome;
pub use bitmap::Bitmap;
pub use channel::{
    BitErrorChannel, CaptureChannel, Channel, ImperfectHashChannel, PerfectChannel,
};
pub use dispatch::FillDispatch;
pub use fault::{FaultPlan, FaultSpec, Quality, ReaderDropout};
pub use multireader::{DeploymentError, MultiReaderDeployment};
pub use estimator::{
    Accuracy, CardinalityEstimator, EstimationReport, PhaseReport,
};
pub use frame::{BitFrame, FrameFill, ResponsePlan, ScalarRef, SlotSink};
pub use ledger::{AirTime, AirTimeLedger};
pub use system::RfidSystem;
pub use tag::{Tag, TagPopulation};
pub use timing::{LinkParams, Timing};
pub use trace::TraceEvent;
