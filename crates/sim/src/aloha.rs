//! Framed slotted Aloha observation model.
//!
//! The pre-bit-slot generation of estimators (UPE, EZB, FNEB, …) runs on
//! classic framed slotted Aloha, where the reader can distinguish three
//! slot states. [`AlohaOutcome`] is that three-way observation;
//! [`AlohaFrame`] is the reader's view of a whole frame.

/// What the reader sees in one slotted-Aloha slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlohaOutcome {
    /// No tag replied.
    Empty,
    /// Exactly one tag replied (decodable).
    Singleton,
    /// Two or more tags collided.
    Collision,
}

impl AlohaOutcome {
    /// Classify a true responder count.
    #[inline]
    pub fn classify(responders: u32) -> Self {
        match responders {
            0 => AlohaOutcome::Empty,
            1 => AlohaOutcome::Singleton,
            _ => AlohaOutcome::Collision,
        }
    }
}

/// The reader's observation of a full Aloha frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlohaFrame {
    outcomes: Vec<AlohaOutcome>,
}

impl AlohaFrame {
    /// Wrap per-slot outcomes.
    pub fn new(outcomes: Vec<AlohaOutcome>) -> Self {
        Self { outcomes }
    }

    /// Frame length in slots.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// True for a zero-slot frame.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Per-slot outcomes.
    pub fn outcomes(&self) -> &[AlohaOutcome] {
        &self.outcomes
    }

    /// Number of empty slots.
    pub fn empties(&self) -> usize {
        self.count(AlohaOutcome::Empty)
    }

    /// Number of singleton slots.
    pub fn singletons(&self) -> usize {
        self.count(AlohaOutcome::Singleton)
    }

    /// Number of collision slots.
    pub fn collisions(&self) -> usize {
        self.count(AlohaOutcome::Collision)
    }

    /// Index of the first non-empty slot (FNEB's statistic), if any.
    pub fn first_non_empty(&self) -> Option<usize> {
        self.outcomes
            .iter()
            .position(|&o| o != AlohaOutcome::Empty)
    }

    fn count(&self, what: AlohaOutcome) -> usize {
        self.outcomes.iter().filter(|&&o| o == what).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_boundaries() {
        assert_eq!(AlohaOutcome::classify(0), AlohaOutcome::Empty);
        assert_eq!(AlohaOutcome::classify(1), AlohaOutcome::Singleton);
        assert_eq!(AlohaOutcome::classify(2), AlohaOutcome::Collision);
        assert_eq!(AlohaOutcome::classify(u32::MAX), AlohaOutcome::Collision);
    }

    #[test]
    fn frame_counts() {
        use AlohaOutcome::*;
        let f = AlohaFrame::new(vec![
            Empty, Singleton, Collision, Empty, Collision, Collision,
        ]);
        assert_eq!(f.len(), 6);
        assert_eq!(f.empties(), 2);
        assert_eq!(f.singletons(), 1);
        assert_eq!(f.collisions(), 3);
        assert_eq!(f.empties() + f.singletons() + f.collisions(), f.len());
    }

    #[test]
    fn first_non_empty() {
        use AlohaOutcome::*;
        assert_eq!(
            AlohaFrame::new(vec![Empty, Empty, Singleton]).first_non_empty(),
            Some(2)
        );
        assert_eq!(
            AlohaFrame::new(vec![Collision]).first_non_empty(),
            Some(0)
        );
        assert_eq!(AlohaFrame::new(vec![Empty, Empty]).first_non_empty(), None);
        assert_eq!(AlohaFrame::new(vec![]).first_non_empty(), None);
    }

    #[test]
    fn empty_frame() {
        let f = AlohaFrame::new(vec![]);
        assert!(f.is_empty());
        assert_eq!(f.len(), 0);
        assert_eq!(f.empties(), 0);
    }
}
