//! Multi-reader deployments.
//!
//! The paper (Section III-A) assumes "all the readers are connected to the
//! back-end server via Ethernet. The back-end server can coordinate and
//! synchronize all the readers, so if multiple readers are deployed, these
//! readers can be logically considered as one reader" — citing ZOE for the
//! same treatment. [`MultiReaderDeployment`] makes that reduction explicit:
//! physical readers have (possibly overlapping) coverage sets, and the
//! synchronized deployment exposes the de-duplicated union as the
//! population of one logical reader.
//!
//! (This is precisely what the unrealistic assumption criticized in the
//! related work — "any tag covered by multiple readers only replies to one
//! among them" — gets wrong: with synchronized readers a shared tag replies
//! to the *same* broadcast everywhere, so the union, not a partition, is
//! the right population.)
//!
//! Corrupted deployment data (two readers reporting the same tag ID with
//! different `RN`s) and out-of-range reader indices surface as a typed
//! [`DeploymentError`] / `Option`, never a panic — a monitoring deployment
//! must degrade, not crash, on bad reads.

use crate::fault::ReaderDropout;
use crate::system::RfidSystem;
use crate::tag::{Tag, TagPopulation};
use std::collections::BTreeMap;

/// Why a deployment could not be reduced to one logical reader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeploymentError {
    /// Two readers reported the same tag ID with different pre-stored
    /// random numbers — corrupted coverage data.
    InconsistentRn {
        /// The conflicting tag ID.
        id: u64,
        /// The RN recorded first.
        first: u32,
        /// The conflicting RN seen later.
        second: u32,
    },
    /// A reader index beyond the deployment.
    NoSuchReader {
        /// The requested index.
        reader: usize,
        /// How many readers the deployment has.
        readers: usize,
    },
}

impl std::fmt::Display for DeploymentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeploymentError::InconsistentRn { id, first, second } => write!(
                f,
                "tag {id} reported with inconsistent RN ({first:#x} vs {second:#x})"
            ),
            DeploymentError::NoSuchReader { reader, readers } => {
                write!(f, "reader {reader} out of range ({readers} readers)")
            }
        }
    }
}

impl std::error::Error for DeploymentError {}

/// A set of physical readers, each with its own coverage.
#[derive(Debug, Clone, Default)]
pub struct MultiReaderDeployment {
    coverages: Vec<Vec<Tag>>,
}

impl MultiReaderDeployment {
    /// An empty deployment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a physical reader covering `tags` (may overlap other readers).
    pub fn add_reader(&mut self, tags: Vec<Tag>) -> &mut Self {
        self.coverages.push(tags);
        self
    }

    /// Number of physical readers.
    pub fn reader_count(&self) -> usize {
        self.coverages.len()
    }

    /// Coverage of one physical reader, or `None` for an out-of-range
    /// index.
    pub fn coverage(&self, reader: usize) -> Option<&[Tag]> {
        self.coverages.get(reader).map(Vec::as_slice)
    }

    /// Total coverage entries, counting overlaps multiply.
    pub fn coverage_entries(&self) -> usize {
        self.coverages.iter().map(Vec::len).sum()
    }

    /// Union the coverages of the readers selected by `keep`, detecting
    /// RN conflicts.
    fn union_where(
        &self,
        mut keep: impl FnMut(usize) -> bool,
    ) -> Result<TagPopulation, DeploymentError> {
        let mut by_id: BTreeMap<u64, Tag> = BTreeMap::new();
        for (reader, coverage) in self.coverages.iter().enumerate() {
            if !keep(reader) {
                continue;
            }
            for &tag in coverage {
                if let Some(existing) = by_id.insert(tag.id, tag) {
                    if existing.rn != tag.rn {
                        return Err(DeploymentError::InconsistentRn {
                            id: tag.id,
                            first: existing.rn,
                            second: tag.rn,
                        });
                    }
                }
            }
        }
        // BTreeMap iterates in key order, so the union is already sorted
        // by tag ID — deterministic with no separate sort pass.
        Ok(TagPopulation::new(by_id.into_values().collect()))
    }

    /// The logical single-reader population: the de-duplicated union of all
    /// coverages. Fails with [`DeploymentError::InconsistentRn`] if two
    /// readers report the same tag ID with different `RN`s (corrupted
    /// deployment data).
    pub fn logical_population(&self) -> Result<TagPopulation, DeploymentError> {
        self.union_where(|_| true)
    }

    /// The logical population with the readers in `failed` removed — what
    /// the back-end server can still observe after a dropout.
    ///
    /// Fails on an out-of-range index in `failed` or on an RN conflict
    /// among the survivors.
    pub fn surviving_population(
        &self,
        failed: &[usize],
    ) -> Result<TagPopulation, DeploymentError> {
        let readers = self.coverages.len();
        if let Some(&bad) = failed.iter().find(|&&r| r >= readers) {
            return Err(DeploymentError::NoSuchReader {
                reader: bad,
                readers,
            });
        }
        self.union_where(|reader| !failed.contains(&reader))
    }

    /// A [`ReaderDropout`] schedule: the readers in `failed` die at frame
    /// `frame`, a fraction `at_frac` of the way through it, leaving the
    /// surviving union responding from that slot onward.
    pub fn dropout(
        &self,
        failed: &[usize],
        frame: u64,
        at_frac: f64,
    ) -> Result<ReaderDropout, DeploymentError> {
        let full = self.logical_population()?;
        let survivors = self.surviving_population(failed)?;
        let coverage_lost = (full.cardinality() - survivors.cardinality()) as u64;
        Ok(ReaderDropout {
            frame,
            at_frac: at_frac.clamp(0.0, 1.0),
            survivors,
            // analysis:allow(cast-truncation): failed holds distinct validated reader indices, far below 2^32
            readers_lost: failed.len() as u32,
            coverage_lost,
        })
    }

    /// Build the logical [`RfidSystem`] the estimation protocols run on.
    pub fn logical_system(&self) -> Result<RfidSystem, DeploymentError> {
        Ok(RfidSystem::new(self.logical_population()?))
    }

    /// Build the [`RfidSystem`] one *physical* reader sees: just its own
    /// coverage, de-duplicated (a reader can hold duplicate entries for a
    /// tag it scanned twice).
    ///
    /// This is the snapshot-production side of the merge path: each
    /// physical reader runs a sketch protocol over its `reader_system`,
    /// serializes the sketch, and the back-end folds the per-reader
    /// snapshots into the logical union — without ever materializing
    /// [`Self::logical_population`] at estimation time.
    pub fn reader_system(&self, reader: usize) -> Result<RfidSystem, DeploymentError> {
        let readers = self.coverages.len();
        if reader >= readers {
            return Err(DeploymentError::NoSuchReader { reader, readers });
        }
        let population = self.union_where(|r| r == reader)?;
        Ok(RfidSystem::new(population))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(id: u64) -> Tag {
        Tag {
            id,
            rn: (id as u32).wrapping_mul(0x9E37_79B9),
        }
    }

    fn union(dep: &MultiReaderDeployment) -> TagPopulation {
        dep.logical_population().expect("consistent deployment")
    }

    #[test]
    fn union_deduplicates_overlap() {
        let mut dep = MultiReaderDeployment::new();
        dep.add_reader((1..=100).map(tag).collect());
        dep.add_reader((51..=150).map(tag).collect());
        dep.add_reader((140..=200).map(tag).collect());
        assert_eq!(dep.reader_count(), 3);
        assert_eq!(dep.coverage_entries(), 100 + 100 + 61);
        assert_eq!(union(&dep).cardinality(), 200);
    }

    #[test]
    fn disjoint_readers_sum() {
        let mut dep = MultiReaderDeployment::new();
        dep.add_reader((1..=10).map(tag).collect());
        dep.add_reader((11..=30).map(tag).collect());
        assert_eq!(union(&dep).cardinality(), 30);
    }

    #[test]
    fn logical_population_is_deterministic() {
        let mut dep = MultiReaderDeployment::new();
        dep.add_reader((1..=50).map(tag).collect());
        dep.add_reader((25..=75).map(tag).collect());
        let a: Vec<u64> = union(&dep).tags().iter().map(|t| t.id).collect();
        let b: Vec<u64> = union(&dep).tags().iter().map(|t| t.id).collect();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn logical_system_has_union_cardinality() {
        let mut dep = MultiReaderDeployment::new();
        dep.add_reader((1..=40).map(tag).collect());
        dep.add_reader((30..=60).map(tag).collect());
        let sys = dep.logical_system().expect("consistent deployment");
        assert_eq!(sys.true_cardinality(), 60);
    }

    #[test]
    fn empty_deployment_yields_empty_population() {
        let dep = MultiReaderDeployment::new();
        assert_eq!(dep.reader_count(), 0);
        assert_eq!(union(&dep).cardinality(), 0);
    }

    #[test]
    fn inconsistent_rn_is_a_typed_error() {
        let mut dep = MultiReaderDeployment::new();
        dep.add_reader(vec![Tag { id: 7, rn: 1 }]);
        dep.add_reader(vec![Tag { id: 7, rn: 2 }]);
        let err = dep.logical_population().unwrap_err();
        assert_eq!(
            err,
            DeploymentError::InconsistentRn {
                id: 7,
                first: 1,
                second: 2
            }
        );
        assert!(err.to_string().contains("inconsistent RN"));
        assert!(dep.logical_system().is_err());
    }

    #[test]
    fn duplicate_reports_with_matching_rn_are_fine() {
        let mut dep = MultiReaderDeployment::new();
        dep.add_reader(vec![Tag { id: 7, rn: 5 }]);
        dep.add_reader(vec![Tag { id: 7, rn: 5 }]);
        assert_eq!(union(&dep).cardinality(), 1);
    }

    #[test]
    fn coverage_accessor_is_checked() {
        let mut dep = MultiReaderDeployment::new();
        dep.add_reader(vec![tag(1), tag(2)]);
        let cov = dep.coverage(0).expect("reader 0 exists");
        assert_eq!(cov.len(), 2);
        assert_eq!(cov[1].id, 2);
        assert!(dep.coverage(1).is_none());
    }

    #[test]
    fn surviving_population_drops_failed_readers() {
        let mut dep = MultiReaderDeployment::new();
        dep.add_reader((1..=100).map(tag).collect());
        dep.add_reader((51..=150).map(tag).collect());
        dep.add_reader((200..=220).map(tag).collect());
        let survivors = dep.surviving_population(&[2]).expect("valid indices");
        assert_eq!(survivors.cardinality(), 150);
        // Overlap keeps shared tags alive when one of their readers dies.
        let survivors = dep.surviving_population(&[0]).expect("valid indices");
        assert_eq!(survivors.cardinality(), 100 + 21);
        let err = dep.surviving_population(&[5]).unwrap_err();
        assert_eq!(
            err,
            DeploymentError::NoSuchReader {
                reader: 5,
                readers: 3
            }
        );
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn reader_system_sees_only_its_own_coverage() {
        let mut dep = MultiReaderDeployment::new();
        dep.add_reader((1..=100).map(tag).collect());
        dep.add_reader((51..=150).map(tag).collect());
        let a = dep.reader_system(0).expect("reader 0 exists");
        let b = dep.reader_system(1).expect("reader 1 exists");
        assert_eq!(a.true_cardinality(), 100);
        assert_eq!(b.true_cardinality(), 100);
        let err = dep.reader_system(2).unwrap_err();
        assert_eq!(
            err,
            DeploymentError::NoSuchReader {
                reader: 2,
                readers: 2
            }
        );
    }

    #[test]
    fn reader_system_deduplicates_and_checks_rn_within_one_reader() {
        let mut dep = MultiReaderDeployment::new();
        dep.add_reader(vec![Tag { id: 9, rn: 4 }, Tag { id: 9, rn: 4 }]);
        dep.add_reader(vec![Tag { id: 9, rn: 4 }, Tag { id: 9, rn: 8 }]);
        assert_eq!(
            dep.reader_system(0).expect("duplicates dedup").true_cardinality(),
            1
        );
        let err = dep.reader_system(1).unwrap_err();
        assert!(matches!(err, DeploymentError::InconsistentRn { id: 9, .. }));
    }

    #[test]
    fn dropout_schedule_accounts_lost_coverage() {
        let mut dep = MultiReaderDeployment::new();
        dep.add_reader((1..=100).map(tag).collect());
        dep.add_reader((51..=150).map(tag).collect());
        let d = dep.dropout(&[1], 3, 0.5).expect("valid dropout");
        assert_eq!(d.frame, 3);
        assert_eq!(d.at_frac, 0.5);
        assert_eq!(d.readers_lost, 1);
        assert_eq!(d.survivors.cardinality(), 100);
        assert_eq!(d.coverage_lost, 50);
        // at_frac is clamped, not rejected.
        assert_eq!(dep.dropout(&[1], 0, 7.0).expect("clamped").at_frac, 1.0);
    }
}
