//! Multi-reader deployments.
//!
//! The paper (Section III-A) assumes "all the readers are connected to the
//! back-end server via Ethernet. The back-end server can coordinate and
//! synchronize all the readers, so if multiple readers are deployed, these
//! readers can be logically considered as one reader" — citing ZOE for the
//! same treatment. [`MultiReaderDeployment`] makes that reduction explicit:
//! physical readers have (possibly overlapping) coverage sets, and the
//! synchronized deployment exposes the de-duplicated union as the
//! population of one logical reader.
//!
//! (This is precisely what the unrealistic assumption criticized in the
//! related work — "any tag covered by multiple readers only replies to one
//! among them" — gets wrong: with synchronized readers a shared tag replies
//! to the *same* broadcast everywhere, so the union, not a partition, is
//! the right population.)

use crate::system::RfidSystem;
use crate::tag::{Tag, TagPopulation};
use std::collections::BTreeMap;

/// A set of physical readers, each with its own coverage.
#[derive(Debug, Clone, Default)]
pub struct MultiReaderDeployment {
    coverages: Vec<Vec<Tag>>,
}

impl MultiReaderDeployment {
    /// An empty deployment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a physical reader covering `tags` (may overlap other readers).
    pub fn add_reader(&mut self, tags: Vec<Tag>) -> &mut Self {
        self.coverages.push(tags);
        self
    }

    /// Number of physical readers.
    pub fn reader_count(&self) -> usize {
        self.coverages.len()
    }

    /// Coverage of one physical reader.
    pub fn coverage(&self, reader: usize) -> &[Tag] {
        &self.coverages[reader]
    }

    /// Total coverage entries, counting overlaps multiply.
    pub fn coverage_entries(&self) -> usize {
        self.coverages.iter().map(Vec::len).sum()
    }

    /// The logical single-reader population: the de-duplicated union of all
    /// coverages. Panics if two readers report the same tag ID with
    /// different `RN`s (which would indicate corrupted deployment data).
    pub fn logical_population(&self) -> TagPopulation {
        let mut by_id: BTreeMap<u64, Tag> = BTreeMap::new();
        for coverage in &self.coverages {
            for &tag in coverage {
                if let Some(existing) = by_id.insert(tag.id, tag) {
                    // analysis:allow(panic-path): documented input-validation panic on corrupted deployment data; a should_panic test pins it
                    assert_eq!(
                        existing.rn, tag.rn,
                        "tag {} reported with inconsistent RN",
                        tag.id
                    );
                }
            }
        }
        // BTreeMap iterates in key order, so the union is already sorted
        // by tag ID — deterministic with no separate sort pass.
        TagPopulation::new(by_id.into_values().collect())
    }

    /// Build the logical [`RfidSystem`] the estimation protocols run on.
    pub fn logical_system(&self) -> RfidSystem {
        RfidSystem::new(self.logical_population())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(id: u64) -> Tag {
        Tag {
            id,
            rn: (id as u32).wrapping_mul(0x9E37_79B9),
        }
    }

    #[test]
    fn union_deduplicates_overlap() {
        let mut dep = MultiReaderDeployment::new();
        dep.add_reader((1..=100).map(tag).collect());
        dep.add_reader((51..=150).map(tag).collect());
        dep.add_reader((140..=200).map(tag).collect());
        assert_eq!(dep.reader_count(), 3);
        assert_eq!(dep.coverage_entries(), 100 + 100 + 61);
        let logical = dep.logical_population();
        assert_eq!(logical.cardinality(), 200);
    }

    #[test]
    fn disjoint_readers_sum() {
        let mut dep = MultiReaderDeployment::new();
        dep.add_reader((1..=10).map(tag).collect());
        dep.add_reader((11..=30).map(tag).collect());
        assert_eq!(dep.logical_population().cardinality(), 30);
    }

    #[test]
    fn logical_population_is_deterministic() {
        let mut dep = MultiReaderDeployment::new();
        dep.add_reader((1..=50).map(tag).collect());
        dep.add_reader((25..=75).map(tag).collect());
        let a: Vec<u64> = dep
            .logical_population()
            .tags()
            .iter()
            .map(|t| t.id)
            .collect();
        let b: Vec<u64> = dep
            .logical_population()
            .tags()
            .iter()
            .map(|t| t.id)
            .collect();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn logical_system_has_union_cardinality() {
        let mut dep = MultiReaderDeployment::new();
        dep.add_reader((1..=40).map(tag).collect());
        dep.add_reader((30..=60).map(tag).collect());
        assert_eq!(dep.logical_system().true_cardinality(), 60);
    }

    #[test]
    fn empty_deployment_yields_empty_population() {
        let dep = MultiReaderDeployment::new();
        assert_eq!(dep.reader_count(), 0);
        assert_eq!(dep.logical_population().cardinality(), 0);
    }

    #[test]
    #[should_panic(expected = "inconsistent RN")]
    fn inconsistent_rn_detected() {
        let mut dep = MultiReaderDeployment::new();
        dep.add_reader(vec![Tag { id: 7, rn: 1 }]);
        dep.add_reader(vec![Tag { id: 7, rn: 2 }]);
        dep.logical_population();
    }

    #[test]
    fn coverage_accessor() {
        let mut dep = MultiReaderDeployment::new();
        dep.add_reader(vec![tag(1), tag(2)]);
        assert_eq!(dep.coverage(0).len(), 2);
        assert_eq!(dep.coverage(0)[1].id, 2);
    }
}
