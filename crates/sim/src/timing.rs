//! The paper's EPCglobal C1G2 timing model (Sections IV-E1 and V-A).
//!
//! All constants are in microseconds:
//!
//! * reader → tags runs at 26.5 kb/s, i.e. **37.76 µs per bit** — so a
//!   32-bit random seed takes 1208.32 µs on air;
//! * tags → reader runs at 53 kb/s, i.e. **18.88 µs per bit**;
//! * any two consecutive transmissions (either direction) are separated by a
//!   waiting interval of **302 µs**.
//!
//! The paper's worked example — "it totally takes 1510 µs for the reader to
//! broadcast a 32-bits random seed" — is `32 × 37.76 + 302 = 1510.32`,
//! which pins down how the turnaround is charged; the ledger follows the
//! same convention.

/// Physical-layer link parameters of the C1G2 air interface, from which
/// the per-bit timings derive.
///
/// * Reader→tag uses PIE: a data-0 symbol lasts one Tari, a data-1 lasts
///   `data1_tari` Tari (1.5–2.0 per the standard), so a random bitstream
///   averages `(1 + data1_tari)/2` Tari per bit.
/// * Tag→reader backscatters at the Backscatter Link Frequency with
///   Miller-`m` (or FM0 for `m = 1`) encoding: `m / BLF` per bit.
///
/// The paper's 18.88 µs tag bit is exactly FM0 at BLF = 53 kHz; its
/// 37.76 µs reader bit implies an *effective* Tari of ~25.17 µs at the
/// slowest PIE (data-1 = 2 Tari) — marginally beyond the standard's
/// 25 µs ceiling (likely folding in symbol overhead).
/// [`LinkParams::paper_nominal`] is therefore the nearest
/// standard-compliant profile: Tari = 25 µs, data-1 = 2 Tari, i.e.
/// 37.5 µs per reader bit (0.7 % below the paper's figure), while
/// [`Timing::c1g2`] keeps the paper's literal constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// Reader data-0 symbol length (µs). C1G2 allows 6.25–25.
    pub tari_us: f64,
    /// Data-1 length in Tari units (1.5–2.0).
    pub data1_tari: f64,
    /// Backscatter link frequency (kHz). C1G2 allows 40–640.
    pub blf_khz: f64,
    /// Miller modulation depth: 1 (FM0), 2, 4, or 8.
    pub miller: u8,
    /// Turnaround/settling interval between transmissions (µs).
    pub turnaround_us: f64,
}

impl LinkParams {
    /// The standard-compliant profile closest to the paper's timing
    /// numbers (see the type-level note on the 0.7 % reader-rate gap).
    pub const fn paper_nominal() -> Self {
        Self {
            tari_us: 25.0,
            data1_tari: 2.0,
            blf_khz: 53.0,
            miller: 1,
            turnaround_us: 302.0,
        }
    }

    /// An aggressive high-rate profile (dense-reader-unfriendly):
    /// Tari 6.25 µs, BLF 640 kHz, FM0.
    pub const fn fast() -> Self {
        Self {
            tari_us: 6.25,
            data1_tari: 1.5,
            blf_khz: 640.0,
            miller: 1,
            turnaround_us: 100.0,
        }
    }

    /// A noise-robust profile: slow PIE, Miller-8 backscatter.
    pub const fn robust() -> Self {
        Self {
            tari_us: 25.0,
            data1_tari: 2.0,
            blf_khz: 160.0,
            miller: 8,
            turnaround_us: 302.0,
        }
    }

    /// Panic unless the parameters lie in the standard's ranges.
    pub fn validate(&self) {
        assert!(
            (6.25..=25.0).contains(&self.tari_us),
            "Tari must lie in [6.25, 25] us"
        );
        assert!(
            (1.5..=2.0).contains(&self.data1_tari),
            "data-1 length must lie in [1.5, 2] Tari"
        );
        assert!(
            (40.0..=640.0).contains(&self.blf_khz),
            "BLF must lie in [40, 640] kHz"
        );
        assert!(
            matches!(self.miller, 1 | 2 | 4 | 8),
            "Miller depth must be 1, 2, 4 or 8"
        );
        assert!(self.turnaround_us >= 0.0, "turnaround must be non-negative");
    }

    /// Average reader microseconds per bit (equiprobable 0s and 1s).
    pub fn reader_bit_us(&self) -> f64 {
        self.tari_us * (1.0 + self.data1_tari) / 2.0
    }

    /// Tag microseconds per bit.
    pub fn tag_bit_us(&self) -> f64 {
        self.miller as f64 * 1_000.0 / self.blf_khz
    }
}

/// Air-interface timing constants, in microseconds per bit / per gap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timing {
    /// Time for the reader to transmit one bit (µs). C1G2: 37.76.
    pub reader_bit_us: f64,
    /// Time for a tag to transmit one bit (µs). C1G2: 18.88.
    pub tag_bit_us: f64,
    /// Waiting interval between two consecutive transmissions (µs).
    /// C1G2: 302.
    pub turnaround_us: f64,
    /// Payload bits a tag transmits in one slotted-Aloha reply slot.
    ///
    /// The legacy baselines (UPE/EZB/FNEB/…) use framed slotted Aloha where
    /// the reader must distinguish empty / singleton / collision slots;
    /// a slot must be long enough to carry a short reply (we use a 16-bit
    /// RN16 preamble, as in C1G2 inventory). BFCE-style bit-slots carry
    /// exactly 1 bit instead.
    pub aloha_slot_bits: u32,
}

impl Timing {
    /// Derive the per-bit timings from physical link parameters.
    pub fn from_link(link: &LinkParams) -> Self {
        link.validate();
        Self {
            reader_bit_us: link.reader_bit_us(),
            tag_bit_us: link.tag_bit_us(),
            turnaround_us: link.turnaround_us,
            aloha_slot_bits: 16,
        }
    }

    /// The EPCglobal C1G2 values used throughout the paper.
    pub const fn c1g2() -> Self {
        Self {
            reader_bit_us: 37.76,
            tag_bit_us: 18.88,
            turnaround_us: 302.0,
            aloha_slot_bits: 16,
        }
    }

    /// Cost of a reader broadcast of `bits` bits, *excluding* the
    /// turnaround that separates it from the next transmission (µs).
    pub fn reader_bits_us(&self, bits: u64) -> f64 {
        bits as f64 * self.reader_bit_us
    }

    /// Cost of a train of `slots` contiguous 1-bit tag slots (µs).
    pub fn bitslots_us(&self, slots: u64) -> f64 {
        slots as f64 * self.tag_bit_us
    }

    /// Cost of `slots` slotted-Aloha reply slots (µs).
    pub fn aloha_slots_us(&self, slots: u64) -> f64 {
        slots as f64 * self.aloha_slot_bits as f64 * self.tag_bit_us
    }
}

impl Default for Timing {
    fn default() -> Self {
        Self::c1g2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c1g2_constants_match_the_paper() {
        let t = Timing::c1g2();
        assert_eq!(t.reader_bit_us, 37.76);
        assert_eq!(t.tag_bit_us, 18.88);
        assert_eq!(t.turnaround_us, 302.0);
    }

    #[test]
    fn seed_broadcast_costs_1510_us() {
        // The paper: "it totally takes 1,510 µs for the reader to broadcast
        // a 32-bits random seed" = 32 * 37.76 + 302.
        let t = Timing::c1g2();
        let total = t.reader_bits_us(32) + t.turnaround_us;
        assert!((total - 1510.32).abs() < 1e-9, "total = {total}");
    }

    #[test]
    fn tag_train_matches_the_paper_formula() {
        // "the time for tags to transmit l bits signal is approximately
        // 18.88 * l + 302 µs" — the 302 is the preceding turnaround.
        let t = Timing::c1g2();
        assert!((t.bitslots_us(8192) - 8192.0 * 18.88).abs() < 1e-9);
    }

    #[test]
    fn aloha_slots_are_longer_than_bitslots() {
        let t = Timing::c1g2();
        assert!(t.aloha_slots_us(10) > t.bitslots_us(10));
    }

    #[test]
    fn default_is_c1g2() {
        assert_eq!(Timing::default(), Timing::c1g2());
    }

    #[test]
    fn paper_nominal_link_approximates_the_papers_rates() {
        let t = Timing::from_link(&LinkParams::paper_nominal());
        // Tag side is exact (FM0 at 53 kHz = 18.87 us); the reader side is
        // the closest standard-compliant rate, 0.7% below the paper's
        // 37.76 us (which implies a Tari slightly over the 25 us ceiling).
        assert!(
            (t.reader_bit_us - 37.5).abs() < 1e-9,
            "reader bit {}",
            t.reader_bit_us
        );
        assert!((t.reader_bit_us - 37.76).abs() / 37.76 < 0.01);
        assert!(
            (t.tag_bit_us - 18.88).abs() < 0.02,
            "tag bit {}",
            t.tag_bit_us
        );
        assert_eq!(t.turnaround_us, 302.0);
    }

    #[test]
    fn fast_link_is_much_faster_and_robust_much_slower() {
        let nominal = Timing::from_link(&LinkParams::paper_nominal());
        let fast = Timing::from_link(&LinkParams::fast());
        let robust = Timing::from_link(&LinkParams::robust());
        assert!(fast.tag_bit_us < nominal.tag_bit_us / 5.0);
        assert!(fast.reader_bit_us < nominal.reader_bit_us / 3.0);
        assert!(robust.tag_bit_us > nominal.tag_bit_us * 2.0);
    }

    #[test]
    #[should_panic(expected = "Tari")]
    fn out_of_standard_tari_rejected() {
        Timing::from_link(&LinkParams {
            tari_us: 3.0,
            ..LinkParams::paper_nominal()
        });
    }

    #[test]
    #[should_panic(expected = "Miller")]
    fn invalid_miller_rejected() {
        Timing::from_link(&LinkParams {
            miller: 3,
            ..LinkParams::paper_nominal()
        });
    }
}
