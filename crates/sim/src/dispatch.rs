//! Scalar/batched kernel dispatch for frame fills.
//!
//! Every [`ResponsePlan`](crate::frame::ResponsePlan) carries two
//! equivalent executions: the scalar `responses()` path (one scratch-buffer
//! call per tag) and, for plans on the hot path, a batched `fill_chunk`
//! override that hoists hashing and dispatch out of the per-tag loop. The
//! two are held to bitwise-identical frames by the equivalence proptests,
//! so *which one runs is purely a performance decision* — and the measured
//! baseline shows the answer depends on the population size: the batched
//! Bloom kernel loses below a few thousand tags (0.83x at n = 1k in
//! `BENCH_frame_fill.json`) where its setup cost dominates, and wins 1.2x
//! to 2.5x above that.
//!
//! [`FillDispatch`] encodes that decision per [`RfidSystem`](crate::RfidSystem)
//! (see `set_fill_dispatch`): force one path, or pick adaptively from the
//! population size against an n-threshold — the plan's own declared
//! [`batched_fill_threshold`](crate::frame::ResponsePlan::batched_fill_threshold)
//! under [`FillDispatch::Auto`], or an explicit override under
//! [`FillDispatch::Threshold`].

/// Which frame-fill kernel a system uses for a plan with a batched
/// `fill_chunk` override.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FillDispatch {
    /// Always the scalar `responses()` path (the batched override is
    /// masked via [`ScalarRef`](crate::frame::ScalarRef)).
    Scalar,
    /// Always the plan's `fill_chunk` kernel (the default method *is* the
    /// scalar loop, so plans without an override are unaffected).
    Batched,
    /// Batched exactly when the population reaches the plan's own
    /// [`batched_fill_threshold`](crate::frame::ResponsePlan::batched_fill_threshold).
    #[default]
    Auto,
    /// Batched exactly when the population reaches this explicit
    /// n-threshold, overriding the plan's declared one.
    Threshold(usize),
}

impl FillDispatch {
    /// Whether the batched kernel runs for `n` tags, given the plan's
    /// declared break-even threshold.
    #[inline]
    pub fn use_batched(self, n: usize, plan_threshold: usize) -> bool {
        match self {
            Self::Scalar => false,
            Self::Batched => true,
            Self::Auto => n >= plan_threshold,
            Self::Threshold(t) => n >= t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forced_modes_ignore_thresholds() {
        for n in [0usize, 1, 10_000] {
            assert!(!FillDispatch::Scalar.use_batched(n, 0));
            assert!(FillDispatch::Batched.use_batched(n, usize::MAX));
        }
    }

    #[test]
    fn auto_uses_the_plan_threshold() {
        assert!(!FillDispatch::Auto.use_batched(4_095, 4_096));
        assert!(FillDispatch::Auto.use_batched(4_096, 4_096));
        assert!(FillDispatch::Auto.use_batched(0, 0));
    }

    #[test]
    fn explicit_threshold_overrides_the_plan() {
        let d = FillDispatch::Threshold(10);
        assert!(!d.use_batched(9, 0));
        assert!(d.use_batched(10, usize::MAX));
    }

    #[test]
    fn default_is_auto() {
        assert_eq!(FillDispatch::default(), FillDispatch::Auto);
    }
}
