//! Deterministic fault injection and degradation accounting.
//!
//! The paper assumes a perfect channel and perfectly synchronized readers
//! (Section III-A). This module relaxes that assumption without giving up
//! reproducibility: a [`FaultPlan`] is a *schedule* of injectable faults —
//! frame aborts, slot-burst corruption, desynchronized reader offsets, and
//! a mid-frame reader dropout — derived purely from a seed and the frame
//! index via the workspace's SplitMix64 stream-splitting convention. The
//! same plan replayed against the same system produces bit-identical
//! degraded observations at any worker count, so every robustness sweep is
//! a reproducible experiment, not an anecdote.
//!
//! Degradation is never silent: [`crate::system::RfidSystem`] threads a
//! [`Quality`] record through every frame it executes, counting slots
//! lost to salvage, slots garbled by bursts, retries spent, readers
//! failed, and desynchronization events, and can widen an `(epsilon,
//! delta)` requirement to reflect the observed damage.
//!
//! Fault semantics (see DESIGN.md, "Fault model & degradation semantics"):
//!
//! * **Frame abort** — the frame dies at a scheduled slot; the reader
//!   retries with linear backoff up to `max_retries` times, and if every
//!   attempt aborts it *salvages* the longest partial prefix, treating the
//!   unobserved tail as idle and recording the loss.
//! * **Slot burst** — a contiguous run of slots is replaced by random
//!   energy (interference garbling both busy and idle slots).
//! * **Desync** — a reader offset rotates the frame: slot `i` is observed
//!   where slot `(i + offset) mod w` belongs.
//! * **Reader dropout** — from a scheduled frame (and slot within it)
//!   onward, only the surviving readers' coverage responds.

use crate::bitmap::Bitmap;
use crate::estimator::Accuracy;
use crate::tag::TagPopulation;
use rfid_hash::{stream_seed, SplitMix64};

/// Domain-separation salts for the per-frame fault substreams.
const FRAME_SALT: u64 = 0xFA_17_5C_3D_00_00_00_01;
const BURST_SALT: u64 = 0xFA_17_5C_3D_00_00_00_02;

/// Fault intensities. All probabilities are clamped into `[0, 1]` at draw
/// time, so any `f64` is a valid (if extreme) configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Per-attempt probability that a frame aborts mid-way.
    pub p_frame_abort: f64,
    /// How many times an aborted frame is retried before the reader
    /// salvages the longest partial prefix.
    pub max_retries: u32,
    /// Per-frame probability of a contiguous slot-corruption burst.
    pub p_slot_burst: f64,
    /// Length of a corruption burst, in slots (clamped to the frame).
    pub burst_len: usize,
    /// Per-frame probability of a desynchronized reader offset.
    pub p_desync: f64,
    /// Maximum rotation offset, as a fraction of the observed frame.
    pub max_offset_frac: f64,
}

impl FaultSpec {
    /// The all-quiet schedule: no fault ever fires.
    pub fn none() -> Self {
        Self {
            p_frame_abort: 0.0,
            max_retries: 3,
            p_slot_burst: 0.0,
            burst_len: 64,
            p_desync: 0.0,
            max_offset_frac: 0.25,
        }
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self::none()
    }
}

/// A reader failure scheduled mid-run: from frame `frame`, slot
/// `at_frac * observe` onward, only `survivors` respond.
#[derive(Debug, Clone)]
pub struct ReaderDropout {
    /// Frame index (0-based, counted per system) at which the dropout hits.
    pub frame: u64,
    /// Where within that frame the failure lands, as a fraction of the
    /// observed slots (clamped to `[0, 1]`).
    pub at_frac: f64,
    /// The union coverage of the readers that stay up.
    pub survivors: TagPopulation,
    /// Number of physical readers lost.
    pub readers_lost: u32,
    /// Tags no longer covered by any surviving reader.
    pub coverage_lost: u64,
}

/// A deterministic, seed-replayable schedule of faults.
///
/// Construction is cheap; the schedule is *virtual* — per-frame faults are
/// derived on demand from `stream_seed(seed ^ salt, frame)`, so the plan
/// is a pure function of `(spec, seed, frame, observe)` and replays
/// identically regardless of worker count or execution order.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    spec: FaultSpec,
    seed: u64,
    dropout: Option<ReaderDropout>,
}

impl FaultPlan {
    /// A plan drawing every fault decision from `seed`.
    pub fn new(spec: FaultSpec, seed: u64) -> Self {
        Self {
            spec,
            seed,
            dropout: None,
        }
    }

    /// Attach a scheduled reader dropout.
    pub fn with_dropout(mut self, dropout: ReaderDropout) -> Self {
        self.dropout = Some(dropout);
        self
    }

    /// The fault intensities.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// The schedule seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled reader dropout, if any.
    pub fn dropout(&self) -> Option<&ReaderDropout> {
        self.dropout.as_ref()
    }

    /// The faults that hit frame `frame` when the reader observes
    /// `observe` slots. Pure: same `(plan, frame, observe)` → same faults.
    pub fn frame_faults(&self, frame: u64, observe: usize) -> FrameFaults {
        let mut rng = SplitMix64::new(stream_seed(self.seed ^ FRAME_SALT, frame));
        let p_abort = self.spec.p_frame_abort.clamp(0.0, 1.0);
        let mut abort_points = Vec::new();
        for _attempt in 0..=self.spec.max_retries {
            if rng.next_f64() >= p_abort {
                break;
            }
            let at = ((rng.next_f64() * observe as f64) as usize).min(observe.saturating_sub(1));
            abort_points.push(at);
        }
        let salvaged = abort_points.len() == self.spec.max_retries as usize + 1;

        let desync_offset = if rng.next_f64() < self.spec.p_desync.clamp(0.0, 1.0) {
            let max_off =
                (self.spec.max_offset_frac.clamp(0.0, 1.0) * observe as f64) as usize;
            if max_off > 0 {
                1 + (rng.next_u64() as usize % max_off)
            } else {
                0
            }
        } else {
            0
        };

        let burst = if rng.next_f64() < self.spec.p_slot_burst.clamp(0.0, 1.0) && observe > 0 {
            Some(SlotBurst {
                start: rng.next_u64() as usize % observe,
                len: self.spec.burst_len.clamp(1, observe),
                seed: stream_seed(self.seed ^ BURST_SALT, frame),
            })
        } else {
            None
        };

        FrameFaults {
            abort_points,
            salvaged,
            desync_offset,
            burst,
        }
    }
}

/// A contiguous run of slots replaced by random energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotBurst {
    /// First corrupted slot (wraps around the frame).
    pub start: usize,
    /// Number of corrupted slots.
    pub len: usize,
    /// Seed of the substream supplying the garbage bits.
    pub seed: u64,
}

/// The concrete faults hitting one frame (the materialization of a
/// [`FaultPlan`] at one frame index).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameFaults {
    /// Abort slot of each failed attempt, in attempt order. Empty means
    /// the first attempt succeeded.
    pub abort_points: Vec<usize>,
    /// True when every attempt (initial + all retries) aborted, so the
    /// reader salvages the last partial prefix.
    pub salvaged: bool,
    /// Rotation offset from reader desynchronization (0 = in sync).
    pub desync_offset: usize,
    /// Slot-burst corruption, if scheduled.
    pub burst: Option<SlotBurst>,
}

impl FrameFaults {
    /// True when this frame runs exactly as if no fault layer existed.
    pub fn is_clean(&self) -> bool {
        self.abort_points.is_empty() && self.desync_offset == 0 && self.burst.is_none()
    }
}

/// Degradation accounting for one estimation run.
///
/// Every [`crate::system::RfidSystem`] carries one of these; frame
/// execution updates it, and the robustness harness reads it back next to
/// the estimate so degraded numbers are *flagged*, never silently trusted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Quality {
    /// Frames executed (including uncharged batch frames).
    pub frames: u64,
    /// Slots the reader observed across all frames.
    pub slots_observed: u64,
    /// Extra frame attempts spent on aborted starts.
    pub retries: u64,
    /// Frames that exhausted their retry budget and were salvaged.
    pub aborted_frames: u64,
    /// Slots lost to salvage (unobserved, treated as idle).
    pub slots_lost: u64,
    /// Slots garbled by burst corruption.
    pub slots_corrupted: u64,
    /// Frames observed through a desynchronized offset.
    pub desync_events: u64,
    /// Physical readers lost to dropout.
    pub readers_failed: u32,
    /// Tags that lost all coverage when readers dropped out.
    pub coverage_lost: u64,
    /// True when the channel model is anything but the paper's perfect
    /// channel (estimates then differ from the clean run by construction).
    pub noisy_channel: bool,
}

impl Quality {
    /// True when the estimate this record accompanies may deviate from the
    /// clean same-seed run: information was lost, garbled, or drawn
    /// through a noisy channel. Recovered retries alone do *not* degrade —
    /// a successful retry re-observes the identical frame.
    pub fn degraded(&self) -> bool {
        self.slots_lost > 0
            || self.slots_corrupted > 0
            || self.desync_events > 0
            || self.aborted_frames > 0
            || self.readers_failed > 0
            || self.coverage_lost > 0
            || self.noisy_channel
    }

    /// Widen an accuracy requirement to reflect the recorded damage:
    /// `epsilon` grows by the fraction of slots lost or corrupted,
    /// `delta` by the fraction of frames salvaged or desynchronized.
    /// Reader dropout is not absorbed into the bound — a coverage loss is
    /// an undercount no interval width repairs — so callers must also
    /// check [`degraded`](Self::degraded).
    pub fn widened(&self, accuracy: Accuracy) -> Accuracy {
        let slot_frac = if self.slots_observed > 0 {
            (self.slots_lost + self.slots_corrupted) as f64 / self.slots_observed as f64
        } else {
            0.0
        };
        let frame_frac = if self.frames > 0 {
            (self.aborted_frames + self.desync_events) as f64 / self.frames as f64
        } else {
            0.0
        };
        Accuracy::new(
            (accuracy.epsilon + slot_frac).min(0.99),
            (accuracy.delta + frame_frac).min(0.99),
        )
    }
}

/// Rotate a busy-truth bitmap by `offset` slots: output slot `i` shows
/// what truly happened in slot `(i + offset) mod len` — the observation of
/// a reader whose slot clock leads the population's.
pub fn rotate_truth(truth: &Bitmap, offset: usize) -> Bitmap {
    let n = truth.len();
    let mut out = Bitmap::zeros(n);
    if n == 0 {
        return out;
    }
    let offset = offset % n;
    for i in 0..n {
        if truth.get((i + offset) % n) {
            out.set(i);
        }
    }
    out
}

/// Replace `burst.len` slots starting at `burst.start` (wrapping) with
/// random energy drawn from the burst's substream. Returns the number of
/// slots garbled.
pub fn corrupt_truth(truth: &mut Bitmap, burst: &SlotBurst) -> u64 {
    let n = truth.len();
    if n == 0 {
        return 0;
    }
    let mut rng = SplitMix64::new(burst.seed);
    let len = burst.len.min(n);
    for i in 0..len {
        let slot = (burst.start + i) % n;
        if rng.next_u64() & 1 == 1 {
            truth.set(slot);
        } else {
            truth.clear(slot);
        }
    }
    len as u64
}

/// Erase the unobserved tail `[from, len)` of a salvaged frame to idle.
/// Returns the number of slots lost.
pub fn erase_tail(truth: &mut Bitmap, from: usize) -> u64 {
    let n = truth.len();
    let from = from.min(n);
    for i in from..n {
        truth.clear(i);
    }
    (n - from) as u64
}

/// [`rotate_truth`] for per-slot Aloha responder counts.
pub fn rotate_counts(counts: &[u32], offset: usize) -> Vec<u32> {
    let n = counts.len();
    if n == 0 {
        return Vec::new();
    }
    let offset = offset % n;
    (0..n).map(|i| counts[(i + offset) % n]).collect()
}

/// [`corrupt_truth`] for Aloha counts: each garbled slot reads as a
/// uniformly random empty / singleton / collision.
pub fn corrupt_counts(counts: &mut [u32], burst: &SlotBurst) -> u64 {
    let n = counts.len();
    if n == 0 {
        return 0;
    }
    let mut rng = SplitMix64::new(burst.seed);
    let len = burst.len.min(n);
    for i in 0..len {
        let slot = (burst.start + i) % n;
        // analysis:allow(panic-path): slot = (start + i) % n is always < n == counts.len()
        // analysis:allow(cast-truncation): the draw is reduced mod 3 before narrowing
        counts[slot] = (rng.next_u64() % 3) as u32;
    }
    len as u64
}

/// [`erase_tail`] for Aloha counts: unobserved slots read as empty.
pub fn erase_counts_tail(counts: &mut [u32], from: usize) -> u64 {
    let n = counts.len();
    let from = from.min(n);
    for c in counts.iter_mut().skip(from) {
        *c = 0;
    }
    (n - from) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy(bits: &[bool]) -> Bitmap {
        let mut b = Bitmap::zeros(bits.len());
        for (i, &on) in bits.iter().enumerate() {
            if on {
                b.set(i);
            }
        }
        b
    }

    #[test]
    fn quiet_spec_never_fires() {
        let plan = FaultPlan::new(FaultSpec::none(), 42);
        for frame in 0..200 {
            let f = plan.frame_faults(frame, 1024);
            assert!(f.is_clean(), "frame {frame} not clean: {f:?}");
            assert!(!f.salvaged);
        }
    }

    #[test]
    fn frame_faults_replay_bitwise() {
        let spec = FaultSpec {
            p_frame_abort: 0.5,
            max_retries: 2,
            p_slot_burst: 0.4,
            burst_len: 16,
            p_desync: 0.3,
            max_offset_frac: 0.25,
        };
        let a = FaultPlan::new(spec, 7);
        let b = FaultPlan::new(spec, 7);
        for frame in 0..500 {
            assert_eq!(a.frame_faults(frame, 512), b.frame_faults(frame, 512));
        }
        // A different seed produces a different schedule somewhere.
        let c = FaultPlan::new(spec, 8);
        assert!((0..500).any(|f| a.frame_faults(f, 512) != c.frame_faults(f, 512)));
    }

    #[test]
    fn abort_rate_tracks_probability() {
        let spec = FaultSpec {
            p_frame_abort: 0.3,
            max_retries: 0,
            ..FaultSpec::none()
        };
        let plan = FaultPlan::new(spec, 99);
        let frames = 20_000u64;
        let aborted = (0..frames)
            .filter(|&f| !plan.frame_faults(f, 256).abort_points.is_empty())
            .count();
        let rate = aborted as f64 / frames as f64;
        assert!((rate - 0.3).abs() < 0.02, "abort rate {rate}");
    }

    #[test]
    fn salvage_requires_exhausting_every_retry() {
        let spec = FaultSpec {
            p_frame_abort: 1.0,
            max_retries: 2,
            ..FaultSpec::none()
        };
        let plan = FaultPlan::new(spec, 5);
        let f = plan.frame_faults(0, 128);
        assert_eq!(f.abort_points.len(), 3); // initial + 2 retries
        assert!(f.salvaged);
        assert!(f.abort_points.iter().all(|&a| a < 128));
    }

    #[test]
    fn burst_and_offset_stay_in_range() {
        let spec = FaultSpec {
            p_slot_burst: 1.0,
            burst_len: 10_000,
            p_desync: 1.0,
            max_offset_frac: 0.5,
            ..FaultSpec::none()
        };
        let plan = FaultPlan::new(spec, 3);
        for frame in 0..100 {
            let f = plan.frame_faults(frame, 200);
            let b = f.burst.expect("burst scheduled with p = 1");
            assert!(b.start < 200);
            assert_eq!(b.len, 200); // clamped to the frame
            assert!(f.desync_offset >= 1 && f.desync_offset <= 100);
        }
    }

    #[test]
    fn rotate_truth_wraps() {
        let b = busy(&[true, false, false, true]);
        let r = rotate_truth(&b, 1);
        // new[i] = old[(i + 1) % 4] -> [0, 0, 1, 1]
        assert_eq!(
            (0..4).map(|i| r.get(i)).collect::<Vec<_>>(),
            vec![false, false, true, true]
        );
        // Rotating by the length is the identity.
        assert_eq!(rotate_truth(&b, 4), b);
        assert_eq!(rotate_truth(&b, 0), b);
    }

    #[test]
    fn corrupt_truth_touches_exactly_the_burst() {
        let mut b = busy(&[true; 16]);
        let burst = SlotBurst {
            start: 14,
            len: 4,
            seed: 11,
        };
        let garbled = corrupt_truth(&mut b, &burst);
        assert_eq!(garbled, 4);
        // Slots outside the wrapped burst {14, 15, 0, 1} are untouched.
        for i in 2..14 {
            assert!(b.get(i), "slot {i} outside the burst was modified");
        }
        // Replay is deterministic.
        let mut c = busy(&[true; 16]);
        corrupt_truth(&mut c, &burst);
        assert_eq!(b, c);
    }

    #[test]
    fn erase_tail_counts_losses() {
        let mut b = busy(&[true; 8]);
        assert_eq!(erase_tail(&mut b, 5), 3);
        assert_eq!(b.count_ones(), 5);
        assert_eq!(erase_tail(&mut b, 100), 0); // beyond the end: no-op
    }

    #[test]
    fn counts_transforms_mirror_bitmap_transforms() {
        let counts = vec![2u32, 0, 1, 0, 3];
        let rot = rotate_counts(&counts, 2);
        assert_eq!(rot, vec![1, 0, 3, 2, 0]);

        let mut c = counts.clone();
        let burst = SlotBurst {
            start: 3,
            len: 3,
            seed: 9,
        };
        assert_eq!(corrupt_counts(&mut c, &burst), 3);
        assert!(c.iter().all(|&x| x <= 2 || x == 3)); // slot 2 untouched
        assert_eq!(c[2], 1);

        let mut c = counts.clone();
        assert_eq!(erase_counts_tail(&mut c, 2), 3);
        assert_eq!(c, vec![2, 0, 0, 0, 0]);
    }

    #[test]
    fn quality_degradation_flags() {
        let clean = Quality::default();
        assert!(!clean.degraded());
        let retried = Quality {
            frames: 10,
            slots_observed: 1000,
            retries: 4,
            ..Quality::default()
        };
        // Recovered retries re-observe the identical frame: not degraded.
        assert!(!retried.degraded());
        for q in [
            Quality {
                slots_lost: 1,
                ..Quality::default()
            },
            Quality {
                slots_corrupted: 1,
                ..Quality::default()
            },
            Quality {
                desync_events: 1,
                ..Quality::default()
            },
            Quality {
                readers_failed: 1,
                ..Quality::default()
            },
            Quality {
                noisy_channel: true,
                ..Quality::default()
            },
        ] {
            assert!(q.degraded(), "{q:?} should be degraded");
        }
    }

    #[test]
    fn widened_accuracy_grows_with_damage() {
        let acc = Accuracy::new(0.05, 0.05);
        let q = Quality {
            frames: 10,
            slots_observed: 1000,
            slots_lost: 50,
            slots_corrupted: 50,
            aborted_frames: 1,
            ..Quality::default()
        };
        let wide = q.widened(acc);
        assert!((wide.epsilon - 0.15).abs() < 1e-12);
        assert!((wide.delta - 0.15).abs() < 1e-12);
        // Undamaged quality widens nothing.
        let same = Quality {
            frames: 10,
            slots_observed: 1000,
            ..Quality::default()
        }
        .widened(acc);
        assert_eq!(same, acc);
        // Catastrophic damage saturates below 1.0 so Accuracy stays valid.
        let wrecked = Quality {
            frames: 1,
            slots_observed: 10,
            slots_lost: 10_000,
            aborted_frames: 50,
            ..Quality::default()
        }
        .widened(acc);
        assert!(wrecked.epsilon <= 0.99 && wrecked.delta <= 0.99);
    }
}
