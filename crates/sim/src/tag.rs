//! Tags and tag populations.
//!
//! A [`Tag`] is the paper's minimal model: a unique identifier plus the
//! pre-stored 32-bit random number `RN` of Section IV-E2. A
//! [`TagPopulation`] is the set of tags inside the (logical) reader's
//! communication range — the quantity every estimator in this workspace is
//! trying to count.

use rfid_hash::tag_hash::TagIdentity;

/// One passive RFID tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag {
    /// Unique tag identifier. The paper draws IDs from `[1, 10^15]`.
    pub id: u64,
    /// Pre-stored 32-bit random number (deployed before the system runs).
    pub rn: u32,
}

impl Tag {
    /// The identity material the hash layer consumes.
    #[inline]
    pub fn identity(&self) -> TagIdentity {
        TagIdentity {
            id: self.id,
            rn: self.rn,
        }
    }
}

impl From<Tag> for TagIdentity {
    fn from(t: Tag) -> Self {
        t.identity()
    }
}

/// The set of tags in range of the logical reader.
///
/// Invariant: tag IDs are unique (enforced at construction).
#[derive(Debug, Clone, Default)]
pub struct TagPopulation {
    tags: Vec<Tag>,
}

impl TagPopulation {
    /// Build a population, checking ID uniqueness.
    ///
    /// Panics if two tags share an ID — duplicated IDs would silently bias
    /// every estimator (two physical responders behaving identically).
    pub fn new(tags: Vec<Tag>) -> Self {
        let mut ids: Vec<u64> = tags.iter().map(|t| t.id).collect();
        ids.sort_unstable();
        let unique = ids.windows(2).all(|w| w[0] != w[1]);
        assert!(unique, "tag IDs must be unique");
        Self { tags }
    }

    /// Number of tags — the ground-truth cardinality `n`.
    pub fn cardinality(&self) -> usize {
        self.tags.len()
    }

    /// True when no tags are in range.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// The tags themselves.
    pub fn tags(&self) -> &[Tag] {
        &self.tags
    }

    /// A sub-population (e.g. one physical reader's coverage in the
    /// multi-reader model). Clones the selected tags.
    pub fn subset(&self, range: std::ops::Range<usize>) -> TagPopulation {
        let tags = self.tags[range].to_vec();
        TagPopulation { tags }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_round_trip() {
        let t = Tag { id: 99, rn: 0xABCD };
        let ident = t.identity();
        assert_eq!(ident.id, 99);
        assert_eq!(ident.rn, 0xABCD);
        let via_from: TagIdentity = t.into();
        assert_eq!(via_from, ident);
    }

    #[test]
    fn population_basics() {
        let pop = TagPopulation::new(vec![
            Tag { id: 1, rn: 10 },
            Tag { id: 2, rn: 20 },
            Tag { id: 3, rn: 30 },
        ]);
        assert_eq!(pop.cardinality(), 3);
        assert!(!pop.is_empty());
        assert_eq!(pop.tags()[1].id, 2);
    }

    #[test]
    fn empty_population() {
        let pop = TagPopulation::new(vec![]);
        assert!(pop.is_empty());
        assert_eq!(pop.cardinality(), 0);
    }

    #[test]
    fn subset_selects_range() {
        let pop = TagPopulation::new(
            (0..10).map(|i| Tag { id: i, rn: i as u32 }).collect(),
        );
        let sub = pop.subset(3..7);
        assert_eq!(sub.cardinality(), 4);
        assert_eq!(sub.tags()[0].id, 3);
    }

    #[test]
    #[should_panic(expected = "tag IDs must be unique")]
    fn duplicate_ids_rejected() {
        TagPopulation::new(vec![Tag { id: 5, rn: 1 }, Tag { id: 5, rn: 2 }]);
    }

    #[test]
    fn duplicate_rns_are_allowed() {
        // RN collisions are possible in a real deployment (32-bit space) and
        // must not be rejected.
        let pop = TagPopulation::new(vec![
            Tag { id: 1, rn: 7 },
            Tag { id: 2, rn: 7 },
        ]);
        assert_eq!(pop.cardinality(), 2);
    }
}
