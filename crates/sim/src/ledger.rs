//! Air-time accounting.
//!
//! The paper's thesis is that *total execution time* — dominated by
//! reader-to-tag broadcasts and turnaround gaps, not tag-to-reader slots —
//! is the metric that matters (Section I). [`AirTimeLedger`] therefore
//! charges every protocol action to one of three buckets (reader
//! transmission, tag transmission, turnaround gap) together with event
//! counters, so Figure 10's execution-time comparison falls out of the
//! simulation rather than a hand-derived formula.

use crate::timing::Timing;
use crate::trace::TraceEvent;

/// Accumulated air time, split by contributor. All values in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AirTime {
    /// Reader-to-tag transmission time (µs).
    pub reader_us: f64,
    /// Tag-to-reader transmission time (µs).
    pub tag_us: f64,
    /// Turnaround/waiting intervals (µs).
    pub gap_us: f64,
    /// Number of reader messages broadcast.
    pub reader_messages: u64,
    /// Total reader bits broadcast.
    pub reader_bits: u64,
    /// Total 1-bit tag slots sensed.
    pub bitslots: u64,
    /// Total slotted-Aloha slots sensed.
    pub aloha_slots: u64,
    /// Number of turnaround gaps.
    pub gaps: u64,
    /// Total individual tag transmissions (energy proxy: each response
    /// costs a tag one radio activation — the metric the MLE line of work
    /// optimizes for active tags).
    pub tag_responses: u64,
}

impl AirTime {
    /// Total elapsed air time in microseconds.
    pub fn total_us(&self) -> f64 {
        self.reader_us + self.tag_us + self.gap_us
    }

    /// Total elapsed air time in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.total_us() / 1e6
    }

    /// Component-wise difference `self - earlier`; used to attribute air
    /// time to a protocol phase between two snapshots.
    pub fn since(&self, earlier: &AirTime) -> AirTime {
        AirTime {
            reader_us: self.reader_us - earlier.reader_us,
            tag_us: self.tag_us - earlier.tag_us,
            gap_us: self.gap_us - earlier.gap_us,
            reader_messages: self.reader_messages - earlier.reader_messages,
            reader_bits: self.reader_bits - earlier.reader_bits,
            bitslots: self.bitslots - earlier.bitslots,
            aloha_slots: self.aloha_slots - earlier.aloha_slots,
            gaps: self.gaps - earlier.gaps,
            tag_responses: self.tag_responses - earlier.tag_responses,
        }
    }
}

/// Mutable air-time accumulator owned by an [`crate::RfidSystem`].
#[derive(Debug, Clone, Default)]
pub struct AirTimeLedger {
    timing: Timing,
    total: AirTime,
    trace: Option<Vec<TraceEvent>>,
}

impl AirTimeLedger {
    /// A fresh ledger under the given timing model.
    pub fn new(timing: Timing) -> Self {
        Self {
            timing,
            total: AirTime::default(),
            trace: None,
        }
    }

    /// The timing model in force.
    pub fn timing(&self) -> &Timing {
        &self.timing
    }

    /// Charge a reader broadcast of `bits` bits followed by one turnaround
    /// (the paper's "1510 µs per 32-bit seed" convention).
    pub fn reader_broadcast(&mut self, bits: u64) {
        let duration = self.timing.reader_bits_us(bits);
        self.record(|start_us| TraceEvent::ReaderMessage {
            bits,
            start_us,
            duration_us: duration,
        });
        self.total.reader_us += duration;
        self.total.reader_bits += bits;
        self.total.reader_messages += 1;
        self.turnaround();
    }

    /// Charge one turnaround/waiting interval.
    pub fn turnaround(&mut self) {
        let duration = self.timing.turnaround_us;
        self.record(|start_us| TraceEvent::Turnaround {
            start_us,
            duration_us: duration,
        });
        self.total.gap_us += duration;
        self.total.gaps += 1;
    }

    /// Charge a contiguous train of `slots` 1-bit tag slots (no per-slot
    /// gap; the preceding broadcast already paid the turnaround).
    pub fn tag_bitslots(&mut self, slots: u64) {
        let duration = self.timing.bitslots_us(slots);
        self.record(|start_us| TraceEvent::BitslotTrain {
            slots,
            start_us,
            duration_us: duration,
        });
        self.total.tag_us += duration;
        self.total.bitslots += slots;
    }

    /// Charge `slots` slotted-Aloha reply slots.
    pub fn aloha_slots(&mut self, slots: u64) {
        let duration = self.timing.aloha_slots_us(slots);
        self.record(|start_us| TraceEvent::AlohaTrain {
            slots,
            start_us,
            duration_us: duration,
        });
        self.total.tag_us += duration;
        self.total.aloha_slots += slots;
    }

    /// Record `count` individual tag transmissions (energy accounting;
    /// does not add air time — the slots already cover that).
    pub fn tag_responses(&mut self, count: u64) {
        self.total.tag_responses += count;
    }

    /// Start recording a [`TraceEvent`] timeline (clears any prior one).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The recorded timeline, if tracing is enabled.
    pub fn trace(&self) -> Option<&[TraceEvent]> {
        self.trace.as_deref()
    }

    /// Append an event stamped at the current total time, if tracing.
    fn record(&mut self, make: impl FnOnce(f64) -> TraceEvent) {
        if let Some(events) = self.trace.as_mut() {
            let start = self.total.total_us();
            events.push(make(start));
        }
    }

    /// Current totals (copy), usable as a phase snapshot.
    pub fn snapshot(&self) -> AirTime {
        self.total
    }

    /// Reset all counters to zero, keeping the timing model. A recorded
    /// trace is cleared too (its timestamps would no longer line up).
    pub fn reset(&mut self) {
        self.total = AirTime::default();
        if let Some(events) = self.trace.as_mut() {
            events.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_charges_bits_and_gap() {
        let mut ledger = AirTimeLedger::new(Timing::c1g2());
        ledger.reader_broadcast(32);
        let t = ledger.snapshot();
        assert!((t.reader_us - 1208.32).abs() < 1e-9);
        assert_eq!(t.gap_us, 302.0);
        assert_eq!(t.reader_messages, 1);
        assert_eq!(t.reader_bits, 32);
        assert_eq!(t.gaps, 1);
        assert!((t.total_us() - 1510.32).abs() < 1e-9);
    }

    #[test]
    fn bitslot_train_has_no_per_slot_gap() {
        let mut ledger = AirTimeLedger::new(Timing::c1g2());
        ledger.tag_bitslots(8192);
        let t = ledger.snapshot();
        assert_eq!(t.gap_us, 0.0);
        assert!((t.tag_us - 8192.0 * 18.88).abs() < 1e-6);
        assert_eq!(t.bitslots, 8192);
    }

    #[test]
    fn bfce_closed_form_total_matches_ledger() {
        // Paper Section IV-E1: t = (6 l_R + 2 l_p) t_r2t + 3 t_int
        //                        + 9216 t_t2r  (seeds/p preloaded widths 32).
        let mut ledger = AirTimeLedger::new(Timing::c1g2());
        // Phase 1: broadcast 3 seeds + p as one message (128 bits) + gap,
        // then 1024 slots.
        ledger.reader_broadcast(4 * 32);
        ledger.tag_bitslots(1024);
        // Phase 2: leading turnaround, broadcast, gap, 8192 slots.
        ledger.turnaround();
        ledger.reader_broadcast(4 * 32);
        ledger.tag_bitslots(8192);
        let t = ledger.snapshot();
        let expect = (6.0 * 32.0 + 2.0 * 32.0) * 37.76 + 3.0 * 302.0 + 9216.0 * 18.88;
        assert!(
            (t.total_us() - expect).abs() < 1e-6,
            "ledger {} vs paper {expect}",
            t.total_us()
        );
        // And the paper's headline: under 0.19 s.
        assert!(t.total_seconds() < 0.19, "total = {}s", t.total_seconds());
    }

    #[test]
    fn since_attributes_phases() {
        let mut ledger = AirTimeLedger::new(Timing::c1g2());
        ledger.reader_broadcast(32);
        let after_phase1 = ledger.snapshot();
        ledger.tag_bitslots(100);
        let phase2 = ledger.snapshot().since(&after_phase1);
        assert_eq!(phase2.reader_bits, 0);
        assert_eq!(phase2.bitslots, 100);
        assert!((phase2.total_us() - 1888.0).abs() < 1e-9);
    }

    #[test]
    fn aloha_slots_charge_slot_bits() {
        let mut ledger = AirTimeLedger::new(Timing::c1g2());
        ledger.aloha_slots(10);
        let t = ledger.snapshot();
        assert_eq!(t.aloha_slots, 10);
        assert!((t.tag_us - 10.0 * 16.0 * 18.88).abs() < 1e-9);
    }

    #[test]
    fn tag_responses_accumulate_without_adding_time() {
        let mut ledger = AirTimeLedger::new(Timing::c1g2());
        ledger.tag_responses(100);
        ledger.tag_responses(23);
        let t = ledger.snapshot();
        assert_eq!(t.tag_responses, 123);
        assert_eq!(t.total_us(), 0.0);
    }

    #[test]
    fn since_includes_tag_responses() {
        let mut ledger = AirTimeLedger::new(Timing::c1g2());
        ledger.tag_responses(10);
        let snap = ledger.snapshot();
        ledger.tag_responses(7);
        assert_eq!(ledger.snapshot().since(&snap).tag_responses, 7);
    }

    #[test]
    fn trace_records_the_exact_schedule() {
        let mut ledger = AirTimeLedger::new(Timing::c1g2());
        ledger.enable_trace();
        ledger.reader_broadcast(32);
        ledger.tag_bitslots(100);
        let events = ledger.trace().unwrap();
        assert_eq!(events.len(), 3); // message, its gap, the train
        assert_eq!(events[0].start_us(), 0.0);
        assert!((events[1].start_us() - 1208.32).abs() < 1e-9);
        assert!((events[2].start_us() - 1510.32).abs() < 1e-9);
        let total: f64 = events.iter().map(|e| e.duration_us()).sum();
        assert!((total - ledger.snapshot().total_us()).abs() < 1e-9);
    }

    #[test]
    fn tracing_off_records_nothing() {
        let mut ledger = AirTimeLedger::new(Timing::c1g2());
        ledger.reader_broadcast(32);
        assert!(ledger.trace().is_none());
    }

    #[test]
    fn reset_clears_the_trace() {
        let mut ledger = AirTimeLedger::new(Timing::c1g2());
        ledger.enable_trace();
        ledger.turnaround();
        ledger.reset();
        assert_eq!(ledger.trace().unwrap().len(), 0);
    }

    #[test]
    fn reset_clears_totals_but_keeps_timing() {
        let mut ledger = AirTimeLedger::new(Timing::c1g2());
        ledger.reader_broadcast(64);
        ledger.reset();
        assert_eq!(ledger.snapshot(), AirTime::default());
        assert_eq!(ledger.timing().reader_bit_us, 37.76);
    }
}
