//! A compact fixed-length bitmap used for Bloom-filter frame observations.
//!
//! The reader's view of a `w`-slot frame is one bit per slot. We store 64
//! slots per word so `count_ones` compiles to hardware popcounts, and
//! provide word-level OR-merging so parallel frame-fill workers can combine
//! their partial views cheaply.

/// Fixed-length bitmap backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    len: usize,
    words: Vec<u64>,
}

impl Bitmap {
    /// All-zeros bitmap of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            len,
            // analysis:allow(hotpath-alloc-free): one backing-buffer allocation per frame at construction; the fill loop reuses it
            words: vec![0u64; len.div_ceil(64)],
        }
    }

    /// Number of 64-bit backing words (`len.div_ceil(64)`).
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// The backing words, 64 bits per word, low bit = lowest index.
    ///
    /// Invariant: bits at positions `>= len` in the trailing partial word
    /// are always zero, so word-level popcounts and ORs never see phantom
    /// bits.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// OR `bits` into backing word `word_index` (bit `b` of `bits` is bitmap
    /// index `word_index * 64 + b`).
    ///
    /// This is the word-level write primitive for batched frame-fill
    /// kernels. Bits beyond `len` in the trailing partial word are masked
    /// off, so the zero-tail invariant holds no matter what the caller
    /// passes. Panics if `word_index` is out of range.
    #[inline]
    pub fn or_word(&mut self, word_index: usize, bits: u64) {
        assert!(
            word_index < self.words.len(),
            "word {word_index} out of range ({} words)",
            self.words.len()
        );
        self.words[word_index] |= bits & self.tail_mask(word_index);
    }

    /// Mask of valid bit positions within backing word `word_index`: all
    /// ones except in the trailing partial word, where only the low
    /// `len % 64` bits are valid.
    #[inline]
    fn tail_mask(&self, word_index: usize) -> u64 {
        let rem = self.len % 64;
        if rem != 0 && word_index == self.words.len() - 1 {
            (1u64 << rem) - 1
        } else {
            u64::MAX
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i` to 1. Panics if out of range.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clear bit `i` to 0. Panics if out of range.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Read bit `i`. Panics if out of range.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Flip bit `i`. Panics if out of range.
    #[inline]
    pub fn toggle(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        self.words[i / 64] ^= 1u64 << (i % 64);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of clear bits.
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// Number of set bits among the first `prefix` bits.
    ///
    /// The BFCE rough phase terminates the frame after 1024 of 8192 slots;
    /// this is the primitive that supports "count what the reader actually
    /// observed".
    pub fn count_ones_prefix(&self, prefix: usize) -> usize {
        assert!(prefix <= self.len, "prefix {prefix} exceeds len {}", self.len);
        let full_words = prefix / 64;
        let mut total: usize = self.words[..full_words]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        let rem = prefix % 64;
        if rem > 0 {
            let mask = (1u64 << rem) - 1;
            // analysis:allow(panic-path): rem > 0 with prefix <= len implies full_words < words.len()
            total += (self.words[full_words] & mask).count_ones() as usize;
        }
        total
    }

    /// Bitwise OR with another bitmap of the same length (parallel merge).
    pub fn or_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Iterator over the indices of set bits.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let base = wi * 64;
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(base + tz)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_toggle() {
        let mut b = Bitmap::zeros(130);
        assert_eq!(b.len(), 130);
        assert!(!b.get(0));
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(65) && !b.get(128));
        b.clear(64);
        assert!(!b.get(64));
        b.toggle(64);
        assert!(b.get(64));
        b.toggle(64);
        assert!(!b.get(64));
    }

    #[test]
    fn counting() {
        let mut b = Bitmap::zeros(200);
        for i in (0..200).step_by(3) {
            b.set(i);
        }
        let expect = 200_usize.div_ceil(3);
        assert_eq!(b.count_ones(), expect);
        assert_eq!(b.count_zeros(), 200 - expect);
    }

    #[test]
    fn prefix_counts() {
        let mut b = Bitmap::zeros(8192);
        for i in 0..8192 {
            if i % 8 == 0 {
                b.set(i);
            }
        }
        assert_eq!(b.count_ones_prefix(0), 0);
        assert_eq!(b.count_ones_prefix(1024), 128);
        assert_eq!(b.count_ones_prefix(1025), 129);
        assert_eq!(b.count_ones_prefix(8192), 1024);
        // Non-word-aligned prefix.
        assert_eq!(b.count_ones_prefix(100), 13); // 0,8,...,96
    }

    #[test]
    fn or_merge() {
        let mut a = Bitmap::zeros(100);
        let mut b = Bitmap::zeros(100);
        a.set(1);
        a.set(70);
        b.set(2);
        b.set(70);
        a.or_assign(&b);
        assert!(a.get(1) && a.get(2) && a.get(70));
        assert_eq!(a.count_ones(), 3);
    }

    #[test]
    fn iter_ones_yields_sorted_indices() {
        let mut b = Bitmap::zeros(300);
        let idx = [0usize, 5, 63, 64, 127, 128, 255, 299];
        for &i in &idx {
            b.set(i);
        }
        let got: Vec<usize> = b.iter_ones().collect();
        assert_eq!(got, idx);
    }

    #[test]
    fn empty_bitmap() {
        let b = Bitmap::zeros(0);
        assert!(b.is_empty());
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.iter_ones().count(), 0);
    }

    #[test]
    fn boundary_lengths_count_and_iterate_exactly() {
        // The word-level kernels depend on the zero-tail invariant at every
        // partial-word shape: empty, sub-word, word-1, exact word, word+1.
        for len in [0usize, 1, 63, 64, 65] {
            let mut b = Bitmap::zeros(len);
            assert_eq!(b.word_count(), len.div_ceil(64), "len {len}");
            // Set every bit individually; counts and iteration must agree.
            for i in 0..len {
                b.set(i);
            }
            assert_eq!(b.count_ones(), len, "len {len}");
            assert_eq!(b.count_zeros(), 0, "len {len}");
            let idx: Vec<usize> = b.iter_ones().collect();
            assert_eq!(idx, (0..len).collect::<Vec<_>>(), "len {len}");
            // Every prefix, including 0 and len itself.
            for prefix in 0..=len {
                assert_eq!(b.count_ones_prefix(prefix), prefix, "len {len}");
            }
            // No phantom bits beyond len in the backing words.
            let total: u32 = b.words().iter().map(|w| w.count_ones()).sum();
            assert_eq!(total as usize, len, "len {len}");
        }
    }

    #[test]
    fn or_word_masks_the_trailing_partial_word() {
        for len in [1usize, 63, 64, 65] {
            let mut b = Bitmap::zeros(len);
            // OR all-ones into every word; only in-range bits may stick.
            for wi in 0..b.word_count() {
                b.or_word(wi, u64::MAX);
            }
            assert_eq!(b.count_ones(), len, "len {len}");
            assert_eq!(b.count_ones_prefix(len), len, "len {len}");
            assert_eq!(b.iter_ones().count(), len, "len {len}");
        }
    }

    #[test]
    fn or_word_sets_the_addressed_bits() {
        let mut b = Bitmap::zeros(130);
        b.or_word(0, 1 | (1 << 63));
        b.or_word(1, 1 << 5);
        b.or_word(2, 0b11);
        assert!(b.get(0) && b.get(63) && b.get(69) && b.get(128) && b.get(129));
        assert_eq!(b.count_ones(), 5);
    }

    #[test]
    fn or_word_merge_equals_bitwise_or_assign() {
        let mut via_bits = Bitmap::zeros(100);
        let mut other = Bitmap::zeros(100);
        for i in [0usize, 31, 64, 99] {
            other.set(i);
        }
        let mut via_words = Bitmap::zeros(100);
        for (wi, &w) in other.words().iter().enumerate() {
            via_words.or_word(wi, w);
        }
        via_bits.or_assign(&other);
        assert_eq!(via_bits, via_words);
    }

    #[test]
    #[should_panic(expected = "word 1 out of range")]
    fn or_word_out_of_range_panics() {
        Bitmap::zeros(64).or_word(1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn or_word_on_empty_bitmap_panics() {
        Bitmap::zeros(0).or_word(0, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        Bitmap::zeros(10).set(10);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn or_mismatched_lengths_panics() {
        Bitmap::zeros(10).or_assign(&Bitmap::zeros(11));
    }

    #[test]
    #[should_panic(expected = "exceeds len")]
    fn prefix_beyond_len_panics() {
        Bitmap::zeros(10).count_ones_prefix(11);
    }
}
