//! The estimator abstraction: accuracy requirements, reports, and the
//! [`CardinalityEstimator`] trait shared by BFCE and every baseline.

use crate::ledger::AirTime;
use crate::system::RfidSystem;
use rand::RngCore;

/// An `(epsilon, delta)` accuracy requirement (Section III-B of the paper):
/// the estimate must satisfy `Pr{|n_hat - n| <= epsilon * n} >= 1 - delta`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accuracy {
    /// Confidence interval half-width, relative: `epsilon` in `(0, 1)`.
    pub epsilon: f64,
    /// Error probability: `delta` in `(0, 1)`.
    pub delta: f64,
}

impl Accuracy {
    /// Construct, validating both parameters lie in `(0, 1)`.
    pub fn new(epsilon: f64, delta: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "epsilon must lie in (0, 1), got {epsilon}"
        );
        assert!(
            delta > 0.0 && delta < 1.0,
            "delta must lie in (0, 1), got {delta}"
        );
        Self { epsilon, delta }
    }

    /// The paper's default requirement: (0.05, 0.05).
    pub fn paper_default() -> Self {
        Self::new(0.05, 0.05)
    }

    /// Whether an estimate meets this requirement against a known truth.
    pub fn satisfied_by(&self, n_hat: f64, truth: usize) -> bool {
        let n = truth as f64;
        (n_hat - n).abs() <= self.epsilon * n
    }
}

/// Air time attributed to one named protocol phase.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Phase name (e.g. "probe", "rough", "accurate").
    pub name: String,
    /// Air time consumed by this phase alone.
    pub air: AirTime,
}

/// The outcome of one full estimation run.
#[derive(Debug, Clone)]
pub struct EstimationReport {
    /// The estimate `n_hat`.
    pub n_hat: f64,
    /// Total air time consumed (all phases).
    pub air: AirTime,
    /// Per-phase breakdown, in execution order.
    pub phases: Vec<PhaseReport>,
    /// Number of reader-initiated rounds/frames executed.
    pub rounds: u64,
    /// Non-fatal irregularities encountered (degenerate frames, clamped
    /// parameters, …). Empty for a clean run.
    pub warnings: Vec<String>,
}

impl EstimationReport {
    /// The paper's evaluation metric: `|n_hat - n| / n`.
    pub fn relative_error(&self, truth: usize) -> f64 {
        assert!(truth > 0, "relative error undefined for zero truth");
        (self.n_hat - truth as f64).abs() / truth as f64
    }
}

/// A cardinality estimation protocol.
///
/// Implementations drive an [`RfidSystem`] (broadcasting parameters and
/// running frames, every action charged to the air-time ledger) and return
/// an [`EstimationReport`]. The `rng` supplies the *reader-side* randomness
/// (seed generation); all tag-side randomness is derived deterministically
/// from broadcast seeds and per-tag state, as in the real protocol.
///
/// `Sync` is a supertrait so that `&dyn CardinalityEstimator` can be shared
/// across the trial-parallel worker pool in `rfid-experiments`; estimators
/// are immutable parameter bundles (all mutable state lives in the system
/// and the per-trial RNG), so this costs implementations nothing.
pub trait CardinalityEstimator: Sync {
    /// Protocol name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Run one complete estimation.
    fn estimate(
        &self,
        system: &mut RfidSystem,
        accuracy: Accuracy,
        rng: &mut dyn RngCore,
    ) -> EstimationReport;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_validation() {
        let a = Accuracy::new(0.05, 0.1);
        assert_eq!(a.epsilon, 0.05);
        assert_eq!(a.delta, 0.1);
        assert_eq!(Accuracy::paper_default(), Accuracy::new(0.05, 0.05));
    }

    #[test]
    #[should_panic(expected = "epsilon must lie in (0, 1)")]
    fn rejects_zero_epsilon() {
        Accuracy::new(0.0, 0.1);
    }

    #[test]
    #[should_panic(expected = "delta must lie in (0, 1)")]
    fn rejects_unit_delta() {
        Accuracy::new(0.1, 1.0);
    }

    #[test]
    fn satisfied_by_is_the_paper_interval() {
        let a = Accuracy::new(0.05, 0.05);
        // The paper's example: n = 500000 -> interval [475000, 525000].
        assert!(a.satisfied_by(475_000.0, 500_000));
        assert!(a.satisfied_by(525_000.0, 500_000));
        assert!(a.satisfied_by(500_001.0, 500_000));
        assert!(!a.satisfied_by(474_999.0, 500_000));
        assert!(!a.satisfied_by(525_001.0, 500_000));
    }

    #[test]
    fn relative_error_matches_the_metric() {
        let report = EstimationReport {
            n_hat: 53_430.0,
            air: AirTime::default(),
            phases: vec![],
            rounds: 1,
            warnings: vec![],
        };
        // The paper's SRC exception: estimate 53430 for n = 50000 -> 0.0686.
        let err = report.relative_error(50_000);
        assert!((err - 0.0686).abs() < 1e-10, "err = {err}");
    }

    #[test]
    #[should_panic(expected = "zero truth")]
    fn relative_error_rejects_zero_truth() {
        let report = EstimationReport {
            n_hat: 1.0,
            air: AirTime::default(),
            phases: vec![],
            rounds: 0,
            warnings: vec![],
        };
        report.relative_error(0);
    }
}
