//! The [`RfidSystem`] façade: one logical reader, a tag population, a
//! channel, and the air-time ledger.
//!
//! Estimators interact with the system exclusively through this type, so
//! every reader broadcast, turnaround, and sensed slot is charged to the
//! ledger — the execution-time comparison of Figure 10 is produced by the
//! same code path as the estimates themselves.
//!
//! The system is also where the fault layer lives: arming a
//! [`FaultPlan`] via [`inject_faults`](RfidSystem::inject_faults) makes
//! every frame pass through the degradation-aware collector — scheduled
//! aborts are retried with linear backoff and salvaged when the retry
//! budget runs out, reader dropout switches (mid-frame) to the surviving
//! coverage, desync offsets rotate the observation, and slot bursts
//! garble it — while a [`Quality`] record counts every slot lost so no
//! estimate degrades silently.

use crate::aloha::AlohaFrame;
use crate::bitmap::Bitmap;
use crate::channel::{Channel, PerfectChannel};
use crate::dispatch::FillDispatch;
use crate::fault::{self, FaultPlan, FrameFaults, Quality};
use crate::frame::{
    response_counts_dispatched, response_fill_dispatched, sense_aloha, BitFrame, FrameFill,
    ResponsePlan, MIN_TAGS_PER_THREAD,
};
use crate::ledger::{AirTime, AirTimeLedger};
use crate::tag::TagPopulation;
use crate::timing::Timing;
use rfid_hash::SplitMix64;

/// Bits in the fresh Query command a retry re-broadcasts after an abort.
const RETRY_QUERY_BITS: u64 = 32;

/// One logical reader plus the tag population in its range.
pub struct RfidSystem {
    population: TagPopulation,
    channel: Box<dyn Channel>,
    ledger: AirTimeLedger,
    noise: SplitMix64,
    frame_min_chunk: usize,
    dispatch: FillDispatch,
    faults: Option<FaultPlan>,
    frame_index: u64,
    quality: Quality,
}

impl RfidSystem {
    /// A system with the paper's defaults: perfect channel, C1G2 timing.
    pub fn new(population: TagPopulation) -> Self {
        Self::with_channel(population, Box::new(PerfectChannel))
    }

    /// A system with a custom channel model.
    pub fn with_channel(population: TagPopulation, channel: Box<dyn Channel>) -> Self {
        let quality = Quality {
            noisy_channel: channel.name() != "perfect",
            ..Quality::default()
        };
        Self {
            population,
            channel,
            ledger: AirTimeLedger::new(Timing::c1g2()),
            noise: SplitMix64::new(0xC0FF_EE00_D15E_A5E5),
            frame_min_chunk: MIN_TAGS_PER_THREAD,
            dispatch: FillDispatch::Auto,
            faults: None,
            frame_index: 0,
            quality,
        }
    }

    /// Arm a deterministic fault schedule. Every subsequent frame passes
    /// through the degradation-aware collector; the schedule is a pure
    /// function of the plan's seed and the per-system frame counter (reset
    /// here), so a faulted run replays bitwise from `(plan, noise seed)`
    /// at any worker count.
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
        self.frame_index = 0;
        self.quality = Quality {
            noisy_channel: self.quality.noisy_channel,
            ..Quality::default()
        };
    }

    /// The armed fault schedule, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Degradation accounting for the frames run so far. Always present —
    /// a clean run reports zero damage — so harnesses can check
    /// [`Quality::degraded`] unconditionally.
    pub fn quality(&self) -> &Quality {
        &self.quality
    }

    /// Set the minimum tags-per-thread threshold for the intra-frame
    /// fork/join split (see [`response_counts_with_min_chunk`]).
    ///
    /// `usize::MAX` forces every frame fill single-threaded. The trial
    /// engine in `rfid-experiments` does exactly that inside its worker
    /// pool so trial-level and frame-level parallelism never multiply into
    /// oversubscription. Frame fills are exact integer aggregation, so the
    /// observation is bitwise identical at any setting.
    pub fn set_frame_min_chunk(&mut self, min_chunk: usize) {
        self.frame_min_chunk = min_chunk;
    }

    /// The intra-frame parallel-split threshold in force.
    pub fn frame_min_chunk(&self) -> usize {
        self.frame_min_chunk
    }

    /// Choose which frame-fill kernel runs for plans that carry a batched
    /// `fill_chunk` override (see [`FillDispatch`]).
    ///
    /// The default, [`FillDispatch::Auto`], defers to each plan's declared
    /// break-even population size, so small populations take the scalar
    /// path (which the measured baseline shows is faster there) and large
    /// ones the batched kernel. Both kernels are held bitwise-equivalent by
    /// the proptest suite, so this setting never changes an observation —
    /// only how fast it is computed.
    pub fn set_fill_dispatch(&mut self, dispatch: FillDispatch) {
        self.dispatch = dispatch;
    }

    /// The kernel-dispatch policy in force.
    pub fn fill_dispatch(&self) -> FillDispatch {
        self.dispatch
    }

    /// Replace the timing model (resets the ledger).
    pub fn set_timing(&mut self, timing: Timing) {
        self.ledger = AirTimeLedger::new(timing);
    }

    /// Re-seed the channel-noise stream (only matters for noisy channels).
    pub fn set_noise_seed(&mut self, seed: u64) {
        self.noise = SplitMix64::new(seed);
    }

    /// Ground-truth cardinality (used by the evaluation harness only; no
    /// estimator reads this). Always the *initial* population — after a
    /// reader dropout the estimate undercounts relative to this truth,
    /// which is exactly the damage [`Quality`] flags.
    pub fn true_cardinality(&self) -> usize {
        self.population.cardinality()
    }

    /// The tag population (the initial deployment; reader dropout only
    /// affects which tags respond in frames, not this view).
    pub fn population(&self) -> &TagPopulation {
        &self.population
    }

    /// Name of the channel model in force.
    pub fn channel_name(&self) -> &'static str {
        self.channel.name()
    }

    /// Cumulative air time so far.
    pub fn air_time(&self) -> AirTime {
        self.ledger.snapshot()
    }

    /// The timing model in force.
    pub fn timing(&self) -> Timing {
        *self.ledger.timing()
    }

    /// Zero the ledger (e.g. between independent estimation runs on the
    /// same population).
    pub fn reset_ledger(&mut self) {
        self.ledger.reset();
    }

    /// Start recording an event-level protocol trace (see
    /// [`crate::trace`]).
    pub fn enable_trace(&mut self) {
        self.ledger.enable_trace();
    }

    /// The recorded protocol trace, if tracing is enabled.
    pub fn protocol_trace(&self) -> Option<&[crate::trace::TraceEvent]> {
        self.ledger.trace()
    }

    /// Reader action: broadcast a `bits`-bit command/parameter message.
    /// Charges the transmission plus the trailing turnaround.
    pub fn broadcast(&mut self, bits: u64) {
        self.ledger.reader_broadcast(bits);
    }

    /// Reader action: an extra waiting interval (e.g. between phases).
    pub fn turnaround(&mut self) {
        self.ledger.turnaround();
    }

    /// Advance the per-system frame counter and record the observation in
    /// the quality ledger. Returns the index of the frame that is about to
    /// run — the key the fault schedule is evaluated at.
    fn begin_frame(&mut self, observe: usize) -> u64 {
        let frame = self.frame_index;
        self.frame_index += 1;
        self.quality.frames += 1;
        self.quality.slots_observed += observe as u64;
        frame
    }

    /// The faults scheduled for `frame`, if a plan is armed.
    fn faults_for(&self, frame: u64, observe: usize) -> Option<FrameFaults> {
        self.faults.as_ref().map(|p| p.frame_faults(frame, observe))
    }

    /// Split a fault schedule into the attempts whose observations are
    /// discarded outright and the salvage point of the kept partial (when
    /// every attempt aborted).
    fn split_salvage(ff: &FrameFaults) -> (&[usize], Option<usize>) {
        if ff.salvaged {
            if let Some((&last, rest)) = ff.abort_points.split_last() {
                return (rest, Some(last));
            }
        }
        (&ff.abort_points, None)
    }

    /// True busy/idle fill for a bit-slot frame, honouring a scheduled
    /// reader dropout: frames before the drop use the full population,
    /// frames after it the survivors, and the drop frame itself splices
    /// the two at the scheduled slot.
    fn bitslot_truth<P: ResponsePlan>(
        &mut self,
        w: usize,
        observe: usize,
        plan: &P,
        frame: u64,
    ) -> FrameFill {
        let mc = self.frame_min_chunk;
        let dp = self.dispatch;
        let mut drop_hit = None;
        let fill = match self.faults.as_ref().and_then(|p| p.dropout()) {
            Some(d) if frame == d.frame => {
                drop_hit = Some((d.readers_lost, d.coverage_lost));
                let split = ((d.at_frac * observe as f64) as usize).min(observe);
                let full =
                    response_fill_dispatched(self.population.tags(), w, split, plan, dp, mc);
                let surv =
                    response_fill_dispatched(d.survivors.tags(), w, observe, plan, dp, mc);
                let surv_split =
                    response_fill_dispatched(d.survivors.tags(), w, split, plan, dp, mc);
                let mut busy = Bitmap::zeros(w);
                for i in 0..split {
                    if full.busy.get(i) {
                        busy.set(i);
                    }
                }
                for i in split..w {
                    if surv.busy.get(i) {
                        busy.set(i);
                    }
                }
                FrameFill {
                    busy,
                    // Full-population responses land in [0, split), the
                    // survivors' in [split, observe).
                    prefix_responses: full.prefix_responses + surv.prefix_responses
                        - surv_split.prefix_responses,
                }
            }
            Some(d) if frame > d.frame => {
                response_fill_dispatched(d.survivors.tags(), w, observe, plan, dp, mc)
            }
            _ => response_fill_dispatched(self.population.tags(), w, observe, plan, dp, mc),
        };
        if let Some((readers, coverage)) = drop_hit {
            self.quality.readers_failed += readers;
            self.quality.coverage_lost += coverage;
        }
        fill
    }

    /// The degradation-aware collector for bit-slot frames: runs the
    /// scheduled abort/retry loop (charging partial air time and linear
    /// backoff when `timed`), then applies desync rotation, burst
    /// corruption, and salvage erasure to the truth before sensing it
    /// through the channel. Without an armed plan this is exactly the
    /// pre-fault path.
    fn collect_bitslot_frame(
        &mut self,
        fill: FrameFill,
        observe: usize,
        frame: u64,
        timed: bool,
    ) -> BitFrame {
        let Some(ff) = self.faults_for(frame, observe) else {
            if timed {
                self.ledger.tag_bitslots(observe as u64);
            }
            self.ledger.tag_responses(fill.prefix_responses);
            return BitFrame::sense_truth(
                &fill.busy,
                observe,
                self.channel.as_ref(),
                &mut self.noise,
            );
        };

        // Energy of a partial attempt: the responses scheduled in the slots
        // that actually ran, charged pro rata (deterministic integer model;
        // exact at the endpoints).
        let partial_energy = |slots: usize| -> u64 {
            if observe == 0 {
                0
            } else {
                fill.prefix_responses * slots as u64 / observe as u64
            }
        };

        let (discarded, salvage_at) = Self::split_salvage(&ff);
        for (attempt, &at) in discarded.iter().enumerate() {
            if timed {
                self.ledger.tag_bitslots(at as u64);
                // Linear backoff: attempt k waits k + 1 turnarounds, then
                // the retry re-broadcasts a fresh Query.
                for _ in 0..=attempt {
                    self.ledger.turnaround();
                }
                self.ledger.reader_broadcast(RETRY_QUERY_BITS);
            }
            self.ledger.tag_responses(partial_energy(at));
            // The detector ran until the abort: consume its per-slot noise
            // draws so noisy channels see the physical stream.
            for i in 0..at {
                let _ = self
                    .channel
                    .sense_bitslot(u32::from(fill.busy.get(i)), &mut self.noise);
            }
        }
        self.quality.retries += discarded.len() as u64;

        // The kept attempt: full frame on success, the longest partial on
        // salvage.
        let kept_slots = salvage_at.unwrap_or(observe);
        if timed {
            self.ledger.tag_bitslots(kept_slots as u64);
        }
        self.ledger.tag_responses(partial_energy(kept_slots));

        let mut truth = Bitmap::zeros(observe);
        for i in 0..observe {
            if fill.busy.get(i) {
                truth.set(i);
            }
        }
        if ff.desync_offset > 0 {
            truth = fault::rotate_truth(&truth, ff.desync_offset);
            self.quality.desync_events += 1;
        }
        if let Some(burst) = &ff.burst {
            self.quality.slots_corrupted += fault::corrupt_truth(&mut truth, burst);
        }
        if let Some(at) = salvage_at {
            self.quality.slots_lost += fault::erase_tail(&mut truth, at);
            self.quality.aborted_frames += 1;
        }
        BitFrame::sense_truth(&truth, observe, self.channel.as_ref(), &mut self.noise)
    }

    /// Run a bit-slot frame of `w` slots but terminate after sensing the
    /// first `observe` slots (the BFCE rough phase observes 1024 of 8192).
    /// Charges `observe` bit-slots (plus retry overhead under an armed
    /// fault plan).
    pub fn run_bitslot_frame_prefix<P: ResponsePlan>(
        &mut self,
        w: usize,
        observe: usize,
        plan: &P,
    ) -> BitFrame {
        assert!(observe >= 1 && observe <= w, "observe must lie in [1, w]");
        let frame = self.begin_frame(observe);
        // Bit-slot sensing only needs busy/idle truth, so the fill kernel
        // accumulates a bitmap (word-level ORs) instead of per-slot counts.
        let fill = self.bitslot_truth(w, observe, plan, frame);
        self.collect_bitslot_frame(fill, observe, frame, true)
    }

    /// Run and fully observe a bit-slot frame of `w` slots.
    pub fn run_bitslot_frame<P: ResponsePlan>(&mut self, w: usize, plan: &P) -> BitFrame {
        self.run_bitslot_frame_prefix(w, w, plan)
    }

    /// Run a slotted-Aloha frame of `f` slots (empty/singleton/collision
    /// observations). Charges `f` Aloha slots (plus retry overhead under an
    /// armed fault plan).
    pub fn run_aloha_frame<P: ResponsePlan>(&mut self, f: usize, plan: &P) -> AlohaFrame {
        assert!(f >= 1, "frame must have at least one slot");
        let frame = self.begin_frame(f);
        let mc = self.frame_min_chunk;
        let dp = self.dispatch;
        let mut drop_hit = None;
        let mut counts = match self.faults.as_ref().and_then(|p| p.dropout()) {
            Some(d) if frame == d.frame => {
                drop_hit = Some((d.readers_lost, d.coverage_lost));
                let split = ((d.at_frac * f as f64) as usize).min(f);
                let full =
                    response_counts_dispatched(self.population.tags(), f, plan, dp, mc);
                let surv = response_counts_dispatched(d.survivors.tags(), f, plan, dp, mc);
                let mut spliced = surv;
                // analysis:allow(panic-path): split = min(.., f) and both count vectors have length f
                spliced[..split].copy_from_slice(&full[..split]);
                spliced
            }
            Some(d) if frame > d.frame => {
                response_counts_dispatched(d.survivors.tags(), f, plan, dp, mc)
            }
            _ => response_counts_dispatched(self.population.tags(), f, plan, dp, mc),
        };
        if let Some((readers, coverage)) = drop_hit {
            self.quality.readers_failed += readers;
            self.quality.coverage_lost += coverage;
        }

        let Some(ff) = self.faults_for(frame, f) else {
            self.ledger.aloha_slots(f as u64);
            self.ledger
                .tag_responses(counts.iter().map(|&c| c as u64).sum());
            return sense_aloha(&counts, self.channel.as_ref(), &mut self.noise);
        };

        let energy_of = |counts: &[u32], slots: usize| -> u64 {
            // analysis:allow(panic-path): callers pass abort points (< f by FaultPlan construction) or kept_slots <= f == counts.len()
            counts[..slots].iter().map(|&c| c as u64).sum()
        };
        let (discarded, salvage_at) = Self::split_salvage(&ff);
        for (attempt, &at) in discarded.iter().enumerate() {
            self.ledger.aloha_slots(at as u64);
            for _ in 0..=attempt {
                self.ledger.turnaround();
            }
            self.ledger.reader_broadcast(RETRY_QUERY_BITS);
            self.ledger.tag_responses(energy_of(&counts, at));
            // analysis:allow(panic-path): abort points are drawn < observe == f == counts.len()
            for &c in &counts[..at] {
                let _ = self.channel.sense_aloha(c, &mut self.noise);
            }
        }
        self.quality.retries += discarded.len() as u64;

        let kept_slots = salvage_at.unwrap_or(f);
        self.ledger.aloha_slots(kept_slots as u64);
        self.ledger.tag_responses(energy_of(&counts, kept_slots));

        if ff.desync_offset > 0 {
            counts = fault::rotate_counts(&counts, ff.desync_offset);
            self.quality.desync_events += 1;
        }
        if let Some(burst) = &ff.burst {
            self.quality.slots_corrupted += fault::corrupt_counts(&mut counts, burst);
        }
        if let Some(at) = salvage_at {
            self.quality.slots_lost += fault::erase_counts_tail(&mut counts, at);
            self.quality.aborted_frames += 1;
        }
        sense_aloha(&counts, self.channel.as_ref(), &mut self.noise)
    }

    /// Run a bit-slot frame **without** charging the ledger.
    ///
    /// For protocols whose air-time structure differs from the contiguous
    /// train convention — e.g. ZOE interleaves a 32-bit seed broadcast with
    /// every single-slot frame — the caller simulates a *batch* of logical
    /// frames in one observation pass and then charges the real schedule
    /// explicitly via [`charge_broadcasts`](Self::charge_broadcasts),
    /// [`charge_bitslots`](Self::charge_bitslots) and
    /// [`charge_turnarounds`](Self::charge_turnarounds). Faults still
    /// apply (the batch counts as one frame of the schedule); only the
    /// *time* accounting is left to the caller.
    pub fn run_uncharged_bitslot_frame<P: ResponsePlan>(
        &mut self,
        w: usize,
        plan: &P,
    ) -> BitFrame {
        let frame = self.begin_frame(w);
        let fill = self.bitslot_truth(w, w, plan, frame);
        // "Uncharged" refers to air *time* only; the tags really do
        // transmit, so the energy counter is always kept accurate. With
        // `observe = w` the prefix count covers every transmission.
        self.collect_bitslot_frame(fill, w, frame, false)
    }

    /// Explicitly charge `count` reader broadcasts of `bits` bits each
    /// (each with its trailing turnaround).
    pub fn charge_broadcasts(&mut self, bits: u64, count: u64) {
        for _ in 0..count {
            self.ledger.reader_broadcast(bits);
        }
    }

    /// Explicitly charge `slots` 1-bit tag slots.
    pub fn charge_bitslots(&mut self, slots: u64) {
        self.ledger.tag_bitslots(slots);
    }

    /// Explicitly charge `count` turnaround intervals.
    pub fn charge_turnarounds(&mut self, count: u64) {
        for _ in 0..count {
            self.ledger.turnaround();
        }
    }

    /// Record `count` individual tag transmissions (for protocols that
    /// compute their observation without materializing per-slot counts,
    /// e.g. FNEB's first-responder scan).
    pub fn charge_tag_responses(&mut self, count: u64) {
        self.ledger.tag_responses(count);
    }

    /// Sense pre-computed per-slot responder counts through this system's
    /// channel (uncharged).
    ///
    /// For protocols whose observation can be computed without
    /// materializing the whole frame (e.g. FNEB only needs the position of
    /// the first responder), the estimator computes the true counts of the
    /// slots the reader actually watches and senses just those. An armed
    /// fault plan degrades this path too (abort/salvage, desync, bursts);
    /// reader dropout does not apply, since the counts were computed by
    /// the caller.
    pub fn sense_counts(&mut self, counts: &[u32]) -> BitFrame {
        let observe = counts.len();
        let frame = self.begin_frame(observe);
        if self.faults.is_none() {
            return BitFrame::sense(counts, observe, self.channel.as_ref(), &mut self.noise);
        }
        let mut busy = Bitmap::zeros(observe);
        let mut prefix_responses = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            if c > 0 {
                busy.set(i);
            }
            prefix_responses += u64::from(c);
        }
        let fill = FrameFill {
            busy,
            prefix_responses,
        };
        self.collect_bitslot_frame(fill, observe, frame, false)
    }
}

impl std::fmt::Debug for RfidSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RfidSystem")
            .field("cardinality", &self.population.cardinality())
            .field("channel", &self.channel.name())
            .field("air_time_us", &self.ledger.snapshot().total_us())
            .field("faulted", &self.faults.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::BitErrorChannel;
    use crate::fault::FaultSpec;
    use crate::tag::Tag;

    fn small_system(n: usize) -> RfidSystem {
        let tags = (0..n as u64)
            .map(|i| Tag {
                id: i + 1,
                rn: (i as u32).wrapping_mul(0x9E37_79B9),
            })
            .collect();
        RfidSystem::new(TagPopulation::new(tags))
    }

    #[test]
    fn ledger_accumulates_across_actions() {
        let mut sys = small_system(100);
        sys.broadcast(32);
        let plan = |tag: &Tag, out: &mut Vec<usize>| out.push((tag.id % 64) as usize);
        let frame = sys.run_bitslot_frame(64, &plan);
        assert_eq!(frame.observed(), 64);
        let air = sys.air_time();
        assert_eq!(air.reader_bits, 32);
        assert_eq!(air.bitslots, 64);
        assert_eq!(air.gaps, 1);
        assert!(air.total_us() > 0.0);
    }

    #[test]
    fn prefix_frames_charge_only_observed_slots() {
        let mut sys = small_system(10);
        let plan = |_t: &Tag, out: &mut Vec<usize>| out.push(0);
        let frame = sys.run_bitslot_frame_prefix(8192, 1024, &plan);
        assert_eq!(frame.observed(), 1024);
        assert_eq!(sys.air_time().bitslots, 1024);
    }

    #[test]
    fn perfect_channel_frames_reflect_truth() {
        let mut sys = small_system(64);
        // Every tag responds in its own slot: all 64 slots busy.
        let plan = |tag: &Tag, out: &mut Vec<usize>| out.push((tag.id - 1) as usize);
        let frame = sys.run_bitslot_frame(128, &plan);
        assert_eq!(frame.busy_count(), 64);
        assert_eq!(frame.idle_count(), 64);
        assert!((frame.rho() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn aloha_frames_classify_occupancy() {
        let mut sys = small_system(3);
        // Tags 1 and 2 collide in slot 0, tag 3 alone in slot 1.
        let plan = |tag: &Tag, out: &mut Vec<usize>| {
            out.push(if tag.id <= 2 { 0 } else { 1 });
        };
        let frame = sys.run_aloha_frame(4, &plan);
        assert_eq!(frame.collisions(), 1);
        assert_eq!(frame.singletons(), 1);
        assert_eq!(frame.empties(), 2);
        assert_eq!(sys.air_time().aloha_slots, 4);
    }

    #[test]
    fn tag_responses_track_actual_transmissions() {
        let mut sys = small_system(10);
        // Every tag answers twice: slots (id-1) and (id-1+16).
        let plan = |tag: &Tag, out: &mut Vec<usize>| {
            out.push((tag.id - 1) as usize);
            out.push((tag.id - 1) as usize + 16);
        };
        sys.run_bitslot_frame(32, &plan);
        assert_eq!(sys.air_time().tag_responses, 20);
    }

    #[test]
    fn prefix_frames_only_charge_observed_transmissions() {
        let mut sys = small_system(10);
        // Tags 1..=5 respond in the observed prefix, the rest later.
        let plan = |tag: &Tag, out: &mut Vec<usize>| {
            out.push(if tag.id <= 5 { 0 } else { 20 });
        };
        sys.run_bitslot_frame_prefix(32, 8, &plan);
        assert_eq!(sys.air_time().tag_responses, 5);
    }

    #[test]
    fn reset_ledger_clears_air_time() {
        let mut sys = small_system(5);
        sys.broadcast(128);
        sys.reset_ledger();
        assert_eq!(sys.air_time().total_us(), 0.0);
    }

    #[test]
    fn noisy_channel_is_reproducible_per_seed() {
        let tags: Vec<Tag> = (0..500u64)
            .map(|i| Tag { id: i + 1, rn: i as u32 })
            .collect();
        let run = |seed: u64| {
            let mut sys = RfidSystem::with_channel(
                TagPopulation::new(tags.clone()),
                Box::new(BitErrorChannel::new(0.05)),
            );
            sys.set_noise_seed(seed);
            let plan =
                |tag: &Tag, out: &mut Vec<usize>| out.push((tag.id % 256) as usize);
            let frame = sys.run_bitslot_frame(256, &plan);
            frame.busy_count()
        };
        assert_eq!(run(9), run(9));
        // Different noise seeds should (overwhelmingly) differ.
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn true_cardinality_reports_population() {
        assert_eq!(small_system(42).true_cardinality(), 42);
    }

    #[test]
    fn frame_min_chunk_does_not_change_observations() {
        let plan = |tag: &Tag, out: &mut Vec<usize>| out.push((tag.id % 256) as usize);
        let run = |min_chunk: usize| {
            let mut sys = small_system(5_000);
            sys.set_frame_min_chunk(min_chunk);
            assert_eq!(sys.frame_min_chunk(), min_chunk);
            let frame = sys.run_bitslot_frame(256, &plan);
            (0..256).map(|i| frame.is_busy(i)).collect::<Vec<bool>>()
        };
        let serial = run(usize::MAX);
        assert_eq!(run(1), serial);
        assert_eq!(run(100), serial);
    }

    #[test]
    fn fill_dispatch_does_not_change_observations() {
        let plan = |tag: &Tag, out: &mut Vec<usize>| out.push((tag.id % 256) as usize);
        let run = |dispatch: FillDispatch| {
            let mut sys = small_system(5_000);
            sys.set_fill_dispatch(dispatch);
            assert_eq!(sys.fill_dispatch(), dispatch);
            let frame = sys.run_bitslot_frame(256, &plan);
            let aloha = sys.run_aloha_frame(256, &plan);
            (
                frame.busy_bitmap().clone(),
                aloha.outcomes().to_vec(),
                sys.air_time().total_us().to_bits(),
            )
        };
        let auto = run(FillDispatch::Auto);
        assert_eq!(run(FillDispatch::Scalar), auto);
        assert_eq!(run(FillDispatch::Batched), auto);
        assert_eq!(run(FillDispatch::Threshold(1)), auto);
    }

    #[test]
    #[should_panic(expected = "observe must lie in [1, w]")]
    fn zero_observation_rejected() {
        let mut sys = small_system(1);
        let plan = |_t: &Tag, _o: &mut Vec<usize>| {};
        sys.run_bitslot_frame_prefix(8, 0, &plan);
    }

    #[test]
    fn debug_format_mentions_cardinality() {
        let sys = small_system(3);
        let s = format!("{sys:?}");
        assert!(s.contains("cardinality"));
        assert!(s.contains('3'));
    }

    // ------------------------------------------------------------------
    // Fault-layer behaviour.
    // ------------------------------------------------------------------

    fn id_plan(tag: &Tag, out: &mut Vec<usize>) {
        out.push(((tag.id - 1) % 64) as usize);
    }

    #[test]
    fn quiet_fault_plan_changes_nothing() {
        let frames = |faulted: bool| {
            let mut sys = small_system(40);
            if faulted {
                sys.inject_faults(FaultPlan::new(FaultSpec::none(), 1234));
            }
            let f1 = sys.run_bitslot_frame(64, &id_plan);
            let f2 = sys.run_bitslot_frame_prefix(64, 32, &id_plan);
            (
                f1.busy_bitmap().clone(),
                f2.busy_bitmap().clone(),
                sys.air_time().total_us(),
            )
        };
        assert_eq!(frames(false), frames(true));
        let mut sys = small_system(40);
        sys.inject_faults(FaultPlan::new(FaultSpec::none(), 1234));
        sys.run_bitslot_frame(64, &id_plan);
        assert!(!sys.quality().degraded());
        assert_eq!(sys.quality().frames, 1);
        assert_eq!(sys.quality().slots_observed, 64);
    }

    #[test]
    fn recovered_retries_preserve_the_observation_and_charge_overhead() {
        // Abort every first attempt but keep a generous retry budget: the
        // kept observation is identical to the clean run, the ledger shows
        // the retries, and quality counts them without flagging
        // degradation.
        let spec = FaultSpec {
            p_frame_abort: 1.0,
            max_retries: 20,
            ..FaultSpec::none()
        };
        // With p = 1 every draw aborts... so every attempt aborts and the
        // frame always salvages. Use a schedule that recovers instead:
        // abort probability high but not certain.
        let spec = FaultSpec {
            p_frame_abort: 0.7,
            max_retries: 30,
            ..spec
        };
        let mut clean = small_system(40);
        let clean_frame = clean.run_bitslot_frame(64, &id_plan);
        let clean_air = clean.air_time().total_us();

        let mut sys = small_system(40);
        sys.inject_faults(FaultPlan::new(spec, 77));
        let frame = sys.run_bitslot_frame(64, &id_plan);
        assert_eq!(frame.busy_bitmap(), clean_frame.busy_bitmap());
        assert!(!sys.quality().degraded(), "{:?}", sys.quality());
        // Eventually some frame retries (p = 0.7): run a few more.
        for _ in 0..20 {
            sys.run_bitslot_frame(64, &id_plan);
        }
        assert!(sys.quality().retries > 0);
        assert!(sys.air_time().total_us() > clean_air);
    }

    #[test]
    fn exhausted_retries_salvage_and_flag() {
        let spec = FaultSpec {
            p_frame_abort: 1.0,
            max_retries: 2,
            ..FaultSpec::none()
        };
        let mut sys = small_system(64);
        sys.inject_faults(FaultPlan::new(spec, 5));
        let frame = sys.run_bitslot_frame(64, &id_plan);
        // Salvage keeps the frame length: estimators see `observe` slots.
        assert_eq!(frame.observed(), 64);
        let q = sys.quality();
        assert_eq!(q.aborted_frames, 1);
        assert_eq!(q.retries, 2);
        assert!(q.slots_lost > 0);
        assert!(q.degraded());
        // The widened requirement is strictly looser.
        let acc = crate::estimator::Accuracy::new(0.05, 0.05);
        let wide = q.widened(acc);
        assert!(wide.epsilon > acc.epsilon);
        assert!(wide.delta > acc.delta);
    }

    #[test]
    fn faulted_runs_replay_bitwise() {
        let spec = FaultSpec {
            p_frame_abort: 0.5,
            max_retries: 1,
            p_slot_burst: 0.5,
            burst_len: 8,
            p_desync: 0.5,
            max_offset_frac: 0.25,
        };
        let run = || {
            let mut sys = small_system(48);
            sys.inject_faults(FaultPlan::new(spec, 2024));
            let mut words = Vec::new();
            for _ in 0..6 {
                let f = sys.run_bitslot_frame(64, &id_plan);
                words.extend_from_slice(f.busy_bitmap().words());
            }
            let a = sys.run_aloha_frame(64, &id_plan);
            (words, a.outcomes().to_vec(), sys.quality().clone(), sys.air_time().total_us().to_bits())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn desync_rotates_and_burst_corrupts() {
        let spec = FaultSpec {
            p_desync: 1.0,
            max_offset_frac: 0.5,
            ..FaultSpec::none()
        };
        let mut sys = small_system(10);
        sys.inject_faults(FaultPlan::new(spec, 31));
        sys.run_bitslot_frame(64, &id_plan);
        assert_eq!(sys.quality().desync_events, 1);
        assert!(sys.quality().degraded());

        let spec = FaultSpec {
            p_slot_burst: 1.0,
            burst_len: 16,
            ..FaultSpec::none()
        };
        let mut sys = small_system(10);
        sys.inject_faults(FaultPlan::new(spec, 32));
        sys.run_bitslot_frame(64, &id_plan);
        assert_eq!(sys.quality().slots_corrupted, 16);
    }

    #[test]
    fn dropout_switches_to_survivors_mid_frame() {
        use crate::fault::ReaderDropout;
        // 32 tags; survivors are the first 8. Dropout at frame 1, half way.
        let all: Vec<Tag> = (0..32u64)
            .map(|i| Tag {
                id: i + 1,
                rn: i as u32,
            })
            .collect();
        let survivors = TagPopulation::new(all[..8].to_vec());
        let mut sys = RfidSystem::new(TagPopulation::new(all));
        let plan = |tag: &Tag, out: &mut Vec<usize>| out.push((tag.id - 1) as usize);
        sys.inject_faults(
            FaultPlan::new(FaultSpec::none(), 1).with_dropout(ReaderDropout {
                frame: 1,
                at_frac: 0.5,
                survivors,
                readers_lost: 3,
                coverage_lost: 24,
            }),
        );
        // Frame 0: before the dropout, all 32 tags respond.
        let f0 = sys.run_bitslot_frame(32, &plan);
        assert_eq!(f0.busy_count(), 32);
        assert_eq!(sys.quality().readers_failed, 0);
        // Frame 1: spliced — slots [0, 16) from the full population,
        // [16, 32) only from survivors (tags 1..=8 → all idle there).
        let f1 = sys.run_bitslot_frame(32, &plan);
        assert_eq!(f1.busy_count(), 16);
        assert!((0..16).all(|i| f1.is_busy(i)));
        assert!((16..32).all(|i| !f1.is_busy(i)));
        assert_eq!(sys.quality().readers_failed, 3);
        assert_eq!(sys.quality().coverage_lost, 24);
        // Frame 2: survivors only.
        let f2 = sys.run_bitslot_frame(32, &plan);
        assert_eq!(f2.busy_count(), 8);
        assert!(sys.quality().degraded());
        // Ground truth still reports the initial deployment.
        assert_eq!(sys.true_cardinality(), 32);
    }

    #[test]
    fn aloha_salvage_reads_tail_as_empty() {
        let spec = FaultSpec {
            p_frame_abort: 1.0,
            max_retries: 0,
            ..FaultSpec::none()
        };
        let mut sys = small_system(3);
        let plan = |tag: &Tag, out: &mut Vec<usize>| out.push((tag.id - 1) as usize * 10);
        sys.inject_faults(FaultPlan::new(spec, 41));
        let frame = sys.run_aloha_frame(32, &plan);
        assert_eq!(frame.len(), 32);
        assert_eq!(sys.quality().aborted_frames, 1);
        assert!(sys.quality().slots_lost > 0);
        assert_eq!(
            frame.empties() + frame.singletons() + frame.collisions(),
            32
        );
    }

    #[test]
    fn sense_counts_passes_through_fault_layer() {
        let spec = FaultSpec {
            p_slot_burst: 1.0,
            burst_len: 4,
            ..FaultSpec::none()
        };
        let mut sys = small_system(1);
        sys.inject_faults(FaultPlan::new(spec, 50));
        let counts = vec![0u32; 64];
        let frame = sys.sense_counts(&counts);
        assert_eq!(frame.observed(), 64);
        assert_eq!(sys.quality().slots_corrupted, 4);
        // Clean system: unchanged behaviour.
        let mut clean = small_system(1);
        let f = clean.sense_counts(&counts);
        assert_eq!(f.busy_count(), 0);
    }

    #[test]
    fn noisy_channel_marks_quality() {
        let sys = RfidSystem::with_channel(
            TagPopulation::new(vec![Tag { id: 1, rn: 1 }]),
            Box::new(BitErrorChannel::new(0.1)),
        );
        assert!(sys.quality().noisy_channel);
        assert!(sys.quality().degraded());
        assert!(!small_system(1).quality().noisy_channel);
    }
}
