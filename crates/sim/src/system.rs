//! The [`RfidSystem`] façade: one logical reader, a tag population, a
//! channel, and the air-time ledger.
//!
//! Estimators interact with the system exclusively through this type, so
//! every reader broadcast, turnaround, and sensed slot is charged to the
//! ledger — the execution-time comparison of Figure 10 is produced by the
//! same code path as the estimates themselves.

use crate::aloha::AlohaFrame;
use crate::channel::{Channel, PerfectChannel};
use crate::frame::{
    response_counts_with_min_chunk, response_fill_with_min_chunk, sense_aloha, BitFrame,
    ResponsePlan, MIN_TAGS_PER_THREAD,
};
use crate::ledger::{AirTime, AirTimeLedger};
use crate::tag::TagPopulation;
use crate::timing::Timing;
use rfid_hash::SplitMix64;

/// One logical reader plus the tag population in its range.
pub struct RfidSystem {
    population: TagPopulation,
    channel: Box<dyn Channel>,
    ledger: AirTimeLedger,
    noise: SplitMix64,
    frame_min_chunk: usize,
}

impl RfidSystem {
    /// A system with the paper's defaults: perfect channel, C1G2 timing.
    pub fn new(population: TagPopulation) -> Self {
        Self::with_channel(population, Box::new(PerfectChannel))
    }

    /// A system with a custom channel model.
    pub fn with_channel(population: TagPopulation, channel: Box<dyn Channel>) -> Self {
        Self {
            population,
            channel,
            ledger: AirTimeLedger::new(Timing::c1g2()),
            noise: SplitMix64::new(0xC0FF_EE00_D15E_A5E5),
            frame_min_chunk: MIN_TAGS_PER_THREAD,
        }
    }

    /// Set the minimum tags-per-thread threshold for the intra-frame
    /// fork/join split (see [`response_counts_with_min_chunk`]).
    ///
    /// `usize::MAX` forces every frame fill single-threaded. The trial
    /// engine in `rfid-experiments` does exactly that inside its worker
    /// pool so trial-level and frame-level parallelism never multiply into
    /// oversubscription. Frame fills are exact integer aggregation, so the
    /// observation is bitwise identical at any setting.
    pub fn set_frame_min_chunk(&mut self, min_chunk: usize) {
        self.frame_min_chunk = min_chunk;
    }

    /// The intra-frame parallel-split threshold in force.
    pub fn frame_min_chunk(&self) -> usize {
        self.frame_min_chunk
    }

    /// Replace the timing model (resets the ledger).
    pub fn set_timing(&mut self, timing: Timing) {
        self.ledger = AirTimeLedger::new(timing);
    }

    /// Re-seed the channel-noise stream (only matters for noisy channels).
    pub fn set_noise_seed(&mut self, seed: u64) {
        self.noise = SplitMix64::new(seed);
    }

    /// Ground-truth cardinality (used by the evaluation harness only; no
    /// estimator reads this).
    pub fn true_cardinality(&self) -> usize {
        self.population.cardinality()
    }

    /// The tag population.
    pub fn population(&self) -> &TagPopulation {
        &self.population
    }

    /// Name of the channel model in force.
    pub fn channel_name(&self) -> &'static str {
        self.channel.name()
    }

    /// Cumulative air time so far.
    pub fn air_time(&self) -> AirTime {
        self.ledger.snapshot()
    }

    /// The timing model in force.
    pub fn timing(&self) -> Timing {
        *self.ledger.timing()
    }

    /// Zero the ledger (e.g. between independent estimation runs on the
    /// same population).
    pub fn reset_ledger(&mut self) {
        self.ledger.reset();
    }

    /// Start recording an event-level protocol trace (see
    /// [`crate::trace`]).
    pub fn enable_trace(&mut self) {
        self.ledger.enable_trace();
    }

    /// The recorded protocol trace, if tracing is enabled.
    pub fn protocol_trace(&self) -> Option<&[crate::trace::TraceEvent]> {
        self.ledger.trace()
    }

    /// Reader action: broadcast a `bits`-bit command/parameter message.
    /// Charges the transmission plus the trailing turnaround.
    pub fn broadcast(&mut self, bits: u64) {
        self.ledger.reader_broadcast(bits);
    }

    /// Reader action: an extra waiting interval (e.g. between phases).
    pub fn turnaround(&mut self) {
        self.ledger.turnaround();
    }

    /// Run a bit-slot frame of `w` slots but terminate after sensing the
    /// first `observe` slots (the BFCE rough phase observes 1024 of 8192).
    /// Charges `observe` bit-slots.
    pub fn run_bitslot_frame_prefix<P: ResponsePlan>(
        &mut self,
        w: usize,
        observe: usize,
        plan: &P,
    ) -> BitFrame {
        assert!(observe >= 1 && observe <= w, "observe must lie in [1, w]");
        // Bit-slot sensing only needs busy/idle truth, so the fill kernel
        // accumulates a bitmap (word-level ORs) instead of per-slot counts.
        let fill = response_fill_with_min_chunk(
            self.population.tags(),
            w,
            observe,
            plan,
            self.frame_min_chunk,
        );
        self.ledger.tag_bitslots(observe as u64);
        // Energy: the reader terminates the frame after `observe` slots,
        // so only tags scheduled in the observed prefix ever transmit.
        self.ledger.tag_responses(fill.prefix_responses);
        BitFrame::sense_truth(&fill.busy, observe, self.channel.as_ref(), &mut self.noise)
    }

    /// Run and fully observe a bit-slot frame of `w` slots.
    pub fn run_bitslot_frame<P: ResponsePlan>(&mut self, w: usize, plan: &P) -> BitFrame {
        self.run_bitslot_frame_prefix(w, w, plan)
    }

    /// Run a slotted-Aloha frame of `f` slots (empty/singleton/collision
    /// observations). Charges `f` Aloha slots.
    pub fn run_aloha_frame<P: ResponsePlan>(&mut self, f: usize, plan: &P) -> AlohaFrame {
        assert!(f >= 1, "frame must have at least one slot");
        let counts =
            response_counts_with_min_chunk(self.population.tags(), f, plan, self.frame_min_chunk);
        self.ledger.aloha_slots(f as u64);
        self.ledger
            .tag_responses(counts.iter().map(|&c| c as u64).sum());
        sense_aloha(&counts, self.channel.as_ref(), &mut self.noise)
    }

    /// Run a bit-slot frame **without** charging the ledger.
    ///
    /// For protocols whose air-time structure differs from the contiguous
    /// train convention — e.g. ZOE interleaves a 32-bit seed broadcast with
    /// every single-slot frame — the caller simulates a *batch* of logical
    /// frames in one observation pass and then charges the real schedule
    /// explicitly via [`charge_broadcasts`](Self::charge_broadcasts),
    /// [`charge_bitslots`](Self::charge_bitslots) and
    /// [`charge_turnarounds`](Self::charge_turnarounds).
    pub fn run_uncharged_bitslot_frame<P: ResponsePlan>(
        &mut self,
        w: usize,
        plan: &P,
    ) -> BitFrame {
        let fill =
            response_fill_with_min_chunk(self.population.tags(), w, w, plan, self.frame_min_chunk);
        // "Uncharged" refers to air *time* only; the tags really do
        // transmit, so the energy counter is always kept accurate. With
        // `observe = w` the prefix count covers every transmission.
        self.ledger.tag_responses(fill.prefix_responses);
        BitFrame::sense_truth(&fill.busy, w, self.channel.as_ref(), &mut self.noise)
    }

    /// Explicitly charge `count` reader broadcasts of `bits` bits each
    /// (each with its trailing turnaround).
    pub fn charge_broadcasts(&mut self, bits: u64, count: u64) {
        for _ in 0..count {
            self.ledger.reader_broadcast(bits);
        }
    }

    /// Explicitly charge `slots` 1-bit tag slots.
    pub fn charge_bitslots(&mut self, slots: u64) {
        self.ledger.tag_bitslots(slots);
    }

    /// Explicitly charge `count` turnaround intervals.
    pub fn charge_turnarounds(&mut self, count: u64) {
        for _ in 0..count {
            self.ledger.turnaround();
        }
    }

    /// Record `count` individual tag transmissions (for protocols that
    /// compute their observation without materializing per-slot counts,
    /// e.g. FNEB's first-responder scan).
    pub fn charge_tag_responses(&mut self, count: u64) {
        self.ledger.tag_responses(count);
    }

    /// Sense pre-computed per-slot responder counts through this system's
    /// channel (uncharged).
    ///
    /// For protocols whose observation can be computed without
    /// materializing the whole frame (e.g. FNEB only needs the position of
    /// the first responder), the estimator computes the true counts of the
    /// slots the reader actually watches and senses just those.
    pub fn sense_counts(&mut self, counts: &[u32]) -> BitFrame {
        BitFrame::sense(
            counts,
            counts.len(),
            self.channel.as_ref(),
            &mut self.noise,
        )
    }
}

impl std::fmt::Debug for RfidSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RfidSystem")
            .field("cardinality", &self.population.cardinality())
            .field("channel", &self.channel.name())
            .field("air_time_us", &self.ledger.snapshot().total_us())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::BitErrorChannel;
    use crate::tag::Tag;

    fn small_system(n: usize) -> RfidSystem {
        let tags = (0..n as u64)
            .map(|i| Tag {
                id: i + 1,
                rn: (i as u32).wrapping_mul(0x9E37_79B9),
            })
            .collect();
        RfidSystem::new(TagPopulation::new(tags))
    }

    #[test]
    fn ledger_accumulates_across_actions() {
        let mut sys = small_system(100);
        sys.broadcast(32);
        let plan = |tag: &Tag, out: &mut Vec<usize>| out.push((tag.id % 64) as usize);
        let frame = sys.run_bitslot_frame(64, &plan);
        assert_eq!(frame.observed(), 64);
        let air = sys.air_time();
        assert_eq!(air.reader_bits, 32);
        assert_eq!(air.bitslots, 64);
        assert_eq!(air.gaps, 1);
        assert!(air.total_us() > 0.0);
    }

    #[test]
    fn prefix_frames_charge_only_observed_slots() {
        let mut sys = small_system(10);
        let plan = |_t: &Tag, out: &mut Vec<usize>| out.push(0);
        let frame = sys.run_bitslot_frame_prefix(8192, 1024, &plan);
        assert_eq!(frame.observed(), 1024);
        assert_eq!(sys.air_time().bitslots, 1024);
    }

    #[test]
    fn perfect_channel_frames_reflect_truth() {
        let mut sys = small_system(64);
        // Every tag responds in its own slot: all 64 slots busy.
        let plan = |tag: &Tag, out: &mut Vec<usize>| out.push((tag.id - 1) as usize);
        let frame = sys.run_bitslot_frame(128, &plan);
        assert_eq!(frame.busy_count(), 64);
        assert_eq!(frame.idle_count(), 64);
        assert!((frame.rho() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn aloha_frames_classify_occupancy() {
        let mut sys = small_system(3);
        // Tags 1 and 2 collide in slot 0, tag 3 alone in slot 1.
        let plan = |tag: &Tag, out: &mut Vec<usize>| {
            out.push(if tag.id <= 2 { 0 } else { 1 });
        };
        let frame = sys.run_aloha_frame(4, &plan);
        assert_eq!(frame.collisions(), 1);
        assert_eq!(frame.singletons(), 1);
        assert_eq!(frame.empties(), 2);
        assert_eq!(sys.air_time().aloha_slots, 4);
    }

    #[test]
    fn tag_responses_track_actual_transmissions() {
        let mut sys = small_system(10);
        // Every tag answers twice: slots (id-1) and (id-1+16).
        let plan = |tag: &Tag, out: &mut Vec<usize>| {
            out.push((tag.id - 1) as usize);
            out.push((tag.id - 1) as usize + 16);
        };
        sys.run_bitslot_frame(32, &plan);
        assert_eq!(sys.air_time().tag_responses, 20);
    }

    #[test]
    fn prefix_frames_only_charge_observed_transmissions() {
        let mut sys = small_system(10);
        // Tags 1..=5 respond in the observed prefix, the rest later.
        let plan = |tag: &Tag, out: &mut Vec<usize>| {
            out.push(if tag.id <= 5 { 0 } else { 20 });
        };
        sys.run_bitslot_frame_prefix(32, 8, &plan);
        assert_eq!(sys.air_time().tag_responses, 5);
    }

    #[test]
    fn reset_ledger_clears_air_time() {
        let mut sys = small_system(5);
        sys.broadcast(128);
        sys.reset_ledger();
        assert_eq!(sys.air_time().total_us(), 0.0);
    }

    #[test]
    fn noisy_channel_is_reproducible_per_seed() {
        let tags: Vec<Tag> = (0..500u64)
            .map(|i| Tag { id: i + 1, rn: i as u32 })
            .collect();
        let run = |seed: u64| {
            let mut sys = RfidSystem::with_channel(
                TagPopulation::new(tags.clone()),
                Box::new(BitErrorChannel::new(0.05)),
            );
            sys.set_noise_seed(seed);
            let plan =
                |tag: &Tag, out: &mut Vec<usize>| out.push((tag.id % 256) as usize);
            let frame = sys.run_bitslot_frame(256, &plan);
            frame.busy_count()
        };
        assert_eq!(run(9), run(9));
        // Different noise seeds should (overwhelmingly) differ.
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn true_cardinality_reports_population() {
        assert_eq!(small_system(42).true_cardinality(), 42);
    }

    #[test]
    fn frame_min_chunk_does_not_change_observations() {
        let plan = |tag: &Tag, out: &mut Vec<usize>| out.push((tag.id % 256) as usize);
        let run = |min_chunk: usize| {
            let mut sys = small_system(5_000);
            sys.set_frame_min_chunk(min_chunk);
            assert_eq!(sys.frame_min_chunk(), min_chunk);
            let frame = sys.run_bitslot_frame(256, &plan);
            (0..256).map(|i| frame.is_busy(i)).collect::<Vec<bool>>()
        };
        let serial = run(usize::MAX);
        assert_eq!(run(1), serial);
        assert_eq!(run(100), serial);
    }

    #[test]
    #[should_panic(expected = "observe must lie in [1, w]")]
    fn zero_observation_rejected() {
        let mut sys = small_system(1);
        let plan = |_t: &Tag, _o: &mut Vec<usize>| {};
        sys.run_bitslot_frame_prefix(8, 0, &plan);
    }

    #[test]
    fn debug_format_mentions_cardinality() {
        let sys = small_system(3);
        let s = format!("{sys:?}");
        assert!(s.contains("cardinality"));
        assert!(s.contains('3'));
    }
}
