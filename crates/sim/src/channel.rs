//! Physical-channel models.
//!
//! The paper assumes "the communication channel is perfect (without channel
//! error)" (Section III-A); [`PerfectChannel`] implements exactly that.
//! [`BitErrorChannel`] extends the study: each sensed slot is misread with
//! a configurable probability, letting the ablation benches quantify how
//! fragile each estimator's bias is to detection errors.

use crate::aloha::AlohaOutcome;
use rfid_hash::SplitMix64;

/// How the reader perceives one slot given the number of tags that actually
/// transmitted in it.
pub trait Channel: Send + Sync {
    /// Sense one 1-bit slot: `true` = busy (energy detected).
    ///
    /// Contract: the result (and any noise draws) may depend on
    /// `responders` only through `responders > 0` — a 1-bit slot carries no
    /// multiplicity information. The batched frame path relies on this to
    /// sense from a busy/idle bitmap ([`crate::frame::BitFrame::sense_truth`])
    /// without materializing per-slot counts.
    fn sense_bitslot(&self, responders: u32, noise: &mut SplitMix64) -> bool;

    /// Sense one slotted-Aloha slot (empty / singleton / collision).
    fn sense_aloha(&self, responders: u32, noise: &mut SplitMix64) -> AlohaOutcome;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// The paper's error-free channel.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfectChannel;

impl Channel for PerfectChannel {
    #[inline]
    fn sense_bitslot(&self, responders: u32, _noise: &mut SplitMix64) -> bool {
        responders > 0
    }

    #[inline]
    fn sense_aloha(&self, responders: u32, _noise: &mut SplitMix64) -> AlohaOutcome {
        AlohaOutcome::classify(responders)
    }

    fn name(&self) -> &'static str {
        "perfect"
    }
}

/// A symmetric bit-error channel: each sensed bit-slot is flipped
/// (busy read as idle, idle read as busy) with probability `ber`.
///
/// For Aloha slots the same error rate causes a misclassification one step
/// towards the observed energy: a collision may be read as a singleton, a
/// singleton as empty or collision, an empty slot as a singleton.
#[derive(Debug, Clone, Copy)]
pub struct BitErrorChannel {
    ber: f64,
}

impl BitErrorChannel {
    /// New channel with slot mis-detection probability `ber` in the closed
    /// interval `[0, 1]` (`1.0` = every slot misread, the adversarial
    /// extreme the robustness sweeps probe).
    pub fn new(ber: f64) -> Self {
        assert!((0.0..=1.0).contains(&ber), "BER must lie in [0, 1], got {ber}");
        Self { ber }
    }

    /// The configured error rate.
    pub fn ber(&self) -> f64 {
        self.ber
    }
}

impl Channel for BitErrorChannel {
    #[inline]
    fn sense_bitslot(&self, responders: u32, noise: &mut SplitMix64) -> bool {
        let truth = responders > 0;
        if noise.next_f64() < self.ber {
            !truth
        } else {
            truth
        }
    }

    fn sense_aloha(&self, responders: u32, noise: &mut SplitMix64) -> AlohaOutcome {
        // One draw per slot regardless of the truth, and a transition map
        // symmetric under the Empty <-> Collision complement: swapping
        // Empty and Collision on both sides of the map leaves it invariant
        // (Empty -> Singleton mirrors Collision -> Singleton, and
        // Singleton errs to each neighbour with probability ber / 2).
        let truth = AlohaOutcome::classify(responders);
        let u = noise.next_f64();
        if u >= self.ber {
            return truth;
        }
        match truth {
            AlohaOutcome::Empty => AlohaOutcome::Singleton,
            AlohaOutcome::Collision => AlohaOutcome::Singleton,
            AlohaOutcome::Singleton => {
                if u < self.ber * 0.5 {
                    AlohaOutcome::Empty
                } else {
                    AlohaOutcome::Collision
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "bit-error"
    }
}

/// A channel with the *capture effect*: when several tags collide, the
/// strongest signal is decoded as a singleton with probability
/// `capture_prob` (per occupied slot). Bit-slot sensing is unaffected —
/// busy is busy — but Aloha-based protocols (UPE's singleton counting,
/// Q-inventory) see inflated singleton counts, a classic real-world bias
/// the perfect-channel literature ignores.
#[derive(Debug, Clone, Copy)]
pub struct CaptureChannel {
    capture_prob: f64,
}

impl CaptureChannel {
    /// New capture channel; `capture_prob` in `[0, 1]` is the chance a
    /// 2+ collision resolves to a decodable singleton.
    pub fn new(capture_prob: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&capture_prob),
            "capture probability must lie in [0, 1], got {capture_prob}"
        );
        Self { capture_prob }
    }

    /// The configured capture probability.
    pub fn capture_prob(&self) -> f64 {
        self.capture_prob
    }
}

impl Channel for CaptureChannel {
    #[inline]
    fn sense_bitslot(&self, responders: u32, _noise: &mut SplitMix64) -> bool {
        responders > 0
    }

    fn sense_aloha(&self, responders: u32, noise: &mut SplitMix64) -> AlohaOutcome {
        match responders {
            0 => AlohaOutcome::Empty,
            1 => AlohaOutcome::Singleton,
            _ => {
                if noise.next_f64() < self.capture_prob {
                    AlohaOutcome::Singleton
                } else {
                    AlohaOutcome::Collision
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "capture"
    }
}

/// A channel modelling *imperfect on-tag hashing* (after "Analog On-Tag
/// Hashing", see PAPERS.md): a tag scheduled to reply may fail to energize
/// its slot (`p_miss`), and analog circuit leakage may energize a slot no
/// tag was scheduled in (`p_ghost`). Unlike [`BitErrorChannel`]'s
/// symmetric flips, the two directions have independent rates — real
/// analog hash implementations miss far more often than they ghost.
#[derive(Debug, Clone, Copy)]
pub struct ImperfectHashChannel {
    p_miss: f64,
    p_ghost: f64,
}

impl ImperfectHashChannel {
    /// New channel; `p_miss` (busy slot read idle) and `p_ghost` (idle
    /// slot read busy) each in `[0, 1]`.
    pub fn new(p_miss: f64, p_ghost: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_miss),
            "miss probability must lie in [0, 1], got {p_miss}"
        );
        assert!(
            (0.0..=1.0).contains(&p_ghost),
            "ghost probability must lie in [0, 1], got {p_ghost}"
        );
        Self { p_miss, p_ghost }
    }

    /// Probability a busy slot is read as idle.
    pub fn p_miss(&self) -> f64 {
        self.p_miss
    }

    /// Probability an idle slot is read as busy.
    pub fn p_ghost(&self) -> f64 {
        self.p_ghost
    }
}

impl Channel for ImperfectHashChannel {
    #[inline]
    fn sense_bitslot(&self, responders: u32, noise: &mut SplitMix64) -> bool {
        // One draw either way, so the noise stream (and hence the result)
        // depends on `responders` only through `responders > 0`.
        let u = noise.next_f64();
        if responders > 0 {
            u >= self.p_miss
        } else {
            u < self.p_ghost
        }
    }

    fn sense_aloha(&self, responders: u32, noise: &mut SplitMix64) -> AlohaOutcome {
        let u = noise.next_f64();
        match AlohaOutcome::classify(responders) {
            AlohaOutcome::Empty => {
                if u < self.p_ghost {
                    AlohaOutcome::Singleton
                } else {
                    AlohaOutcome::Empty
                }
            }
            AlohaOutcome::Singleton => {
                if u < self.p_miss {
                    AlohaOutcome::Empty
                } else {
                    AlohaOutcome::Singleton
                }
            }
            // A missing responder demotes a 2-tag collision to a decodable
            // singleton; larger pile-ups stay collisions overwhelmingly,
            // which the single-step model approximates.
            AlohaOutcome::Collision => {
                if u < self.p_miss {
                    AlohaOutcome::Singleton
                } else {
                    AlohaOutcome::Collision
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "imperfect-hash"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_channel_reports_truth() {
        let mut noise = SplitMix64::new(1);
        let ch = PerfectChannel;
        assert!(!ch.sense_bitslot(0, &mut noise));
        assert!(ch.sense_bitslot(1, &mut noise));
        assert!(ch.sense_bitslot(100, &mut noise));
        assert_eq!(ch.sense_aloha(0, &mut noise), AlohaOutcome::Empty);
        assert_eq!(ch.sense_aloha(1, &mut noise), AlohaOutcome::Singleton);
        assert_eq!(ch.sense_aloha(2, &mut noise), AlohaOutcome::Collision);
    }

    #[test]
    fn zero_ber_equals_perfect() {
        let mut noise = SplitMix64::new(2);
        let ch = BitErrorChannel::new(0.0);
        for responders in [0u32, 1, 5] {
            assert_eq!(
                ch.sense_bitslot(responders, &mut noise),
                responders > 0
            );
        }
    }

    #[test]
    fn ber_flips_at_the_configured_rate() {
        let ch = BitErrorChannel::new(0.1);
        let mut noise = SplitMix64::new(3);
        let trials = 200_000;
        let mut flipped = 0u32;
        for _ in 0..trials {
            if ch.sense_bitslot(0, &mut noise) {
                flipped += 1;
            }
        }
        let rate = flipped as f64 / trials as f64;
        assert!((rate - 0.1).abs() < 0.005, "flip rate = {rate}");
    }

    #[test]
    fn aloha_errors_move_one_step() {
        let ch = BitErrorChannel::new(1.0); // always err
        let mut noise = SplitMix64::new(4);
        for _ in 0..100 {
            assert_eq!(ch.sense_aloha(0, &mut noise), AlohaOutcome::Singleton);
            assert_eq!(ch.sense_aloha(5, &mut noise), AlohaOutcome::Singleton);
            let got = ch.sense_aloha(1, &mut noise);
            assert_ne!(got, AlohaOutcome::Singleton);
        }
    }

    #[test]
    fn aloha_misclassification_is_complement_symmetric() {
        // Under the Empty <-> Collision swap the error map must be
        // invariant: P(Empty -> Singleton) = P(Collision -> Singleton) and
        // a singleton errs to each neighbour equally often.
        let ch = BitErrorChannel::new(0.4);
        let trials = 200_000usize;
        let mut noise = SplitMix64::new(21);
        let empty_err = (0..trials)
            .filter(|_| ch.sense_aloha(0, &mut noise) != AlohaOutcome::Empty)
            .count() as f64;
        let coll_err = (0..trials)
            .filter(|_| ch.sense_aloha(7, &mut noise) != AlohaOutcome::Collision)
            .count() as f64;
        let (mut to_empty, mut to_coll) = (0f64, 0f64);
        for _ in 0..trials {
            match ch.sense_aloha(1, &mut noise) {
                AlohaOutcome::Empty => to_empty += 1.0,
                AlohaOutcome::Collision => to_coll += 1.0,
                AlohaOutcome::Singleton => {}
            }
        }
        let t = trials as f64;
        assert!((empty_err / t - 0.4).abs() < 0.01);
        assert!((coll_err / t - 0.4).abs() < 0.01);
        assert!((to_empty / t - 0.2).abs() < 0.01, "to_empty {}", to_empty / t);
        assert!((to_coll / t - 0.2).abs() < 0.01, "to_coll {}", to_coll / t);
    }

    #[test]
    fn aloha_sensing_consumes_one_draw_per_slot() {
        // Frame-level replay relies on every channel consuming a fixed
        // number of draws per slot, independent of the truth.
        let ch = BitErrorChannel::new(0.5);
        for responders in [0u32, 1, 9] {
            let mut a = SplitMix64::new(31);
            let mut b = SplitMix64::new(31);
            ch.sense_aloha(responders, &mut a);
            b.next_f64();
            assert_eq!(a.next_u64(), b.next_u64(), "responders = {responders}");
        }
    }

    #[test]
    fn accepts_closed_ber_interval() {
        assert_eq!(BitErrorChannel::new(0.0).ber(), 0.0);
        assert_eq!(BitErrorChannel::new(1.0).ber(), 1.0);
        // ber = 1 inverts every bit-slot deterministically.
        let ch = BitErrorChannel::new(1.0);
        let mut noise = SplitMix64::new(6);
        assert!(ch.sense_bitslot(0, &mut noise));
        assert!(!ch.sense_bitslot(3, &mut noise));
    }

    #[test]
    #[should_panic(expected = "BER must lie in [0, 1]")]
    fn rejects_ber_above_one() {
        BitErrorChannel::new(1.5);
    }

    #[test]
    fn capture_leaves_bitslots_untouched() {
        let ch = CaptureChannel::new(0.9);
        let mut noise = SplitMix64::new(7);
        assert!(!ch.sense_bitslot(0, &mut noise));
        assert!(ch.sense_bitslot(2, &mut noise));
    }

    #[test]
    fn capture_resolves_collisions_at_the_configured_rate() {
        let ch = CaptureChannel::new(0.3);
        let mut noise = SplitMix64::new(8);
        let trials = 100_000;
        let captured = (0..trials)
            .filter(|_| ch.sense_aloha(3, &mut noise) == AlohaOutcome::Singleton)
            .count();
        let rate = captured as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.01, "capture rate = {rate}");
        // True empties and singletons are never altered.
        assert_eq!(ch.sense_aloha(0, &mut noise), AlohaOutcome::Empty);
        assert_eq!(ch.sense_aloha(1, &mut noise), AlohaOutcome::Singleton);
    }

    #[test]
    #[should_panic(expected = "capture probability")]
    fn capture_rejects_out_of_range() {
        CaptureChannel::new(1.5);
    }

    #[test]
    fn imperfect_hash_rates_are_independent() {
        let ch = ImperfectHashChannel::new(0.2, 0.05);
        assert_eq!(ch.p_miss(), 0.2);
        assert_eq!(ch.p_ghost(), 0.05);
        let mut noise = SplitMix64::new(9);
        let trials = 200_000usize;
        let missed = (0..trials)
            .filter(|_| !ch.sense_bitslot(4, &mut noise))
            .count() as f64;
        let ghosted = (0..trials)
            .filter(|_| ch.sense_bitslot(0, &mut noise))
            .count() as f64;
        assert!((missed / trials as f64 - 0.2).abs() < 0.01);
        assert!((ghosted / trials as f64 - 0.05).abs() < 0.005);
    }

    #[test]
    fn imperfect_hash_aloha_demotions() {
        let certain = ImperfectHashChannel::new(1.0, 1.0);
        let mut noise = SplitMix64::new(10);
        assert_eq!(certain.sense_aloha(0, &mut noise), AlohaOutcome::Singleton);
        assert_eq!(certain.sense_aloha(1, &mut noise), AlohaOutcome::Empty);
        assert_eq!(certain.sense_aloha(5, &mut noise), AlohaOutcome::Singleton);
        let quiet = ImperfectHashChannel::new(0.0, 0.0);
        assert_eq!(quiet.sense_aloha(0, &mut noise), AlohaOutcome::Empty);
        assert_eq!(quiet.sense_aloha(1, &mut noise), AlohaOutcome::Singleton);
        assert_eq!(quiet.sense_aloha(5, &mut noise), AlohaOutcome::Collision);
    }

    #[test]
    #[should_panic(expected = "miss probability")]
    fn imperfect_hash_rejects_out_of_range() {
        ImperfectHashChannel::new(-0.1, 0.0);
    }

    #[test]
    fn names() {
        assert_eq!(PerfectChannel.name(), "perfect");
        assert_eq!(BitErrorChannel::new(0.01).name(), "bit-error");
        assert_eq!(CaptureChannel::new(0.5).name(), "capture");
        assert_eq!(ImperfectHashChannel::new(0.1, 0.1).name(), "imperfect-hash");
    }
}
