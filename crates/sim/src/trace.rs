//! Protocol traces: an event-level timeline of everything on the air.
//!
//! When tracing is enabled on a system, every ledger charge also records a
//! [`TraceEvent`] with its start time and duration, producing the exact
//! schedule a protocol executed — the thing Section IV-E1's closed forms
//! summarize. Useful for debugging new estimators ("where did those extra
//! 302 µs go?") and for teaching: `render` prints the timeline,
//! `aggregate` totals it by event kind.

/// One transmission or silence interval on the air interface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// Reader-to-tags message.
    ReaderMessage {
        /// Payload bits.
        bits: u64,
        /// Start time since trace begin (µs).
        start_us: f64,
        /// Duration (µs).
        duration_us: f64,
    },
    /// Waiting interval between transmissions.
    Turnaround {
        /// Start time since trace begin (µs).
        start_us: f64,
        /// Duration (µs).
        duration_us: f64,
    },
    /// Contiguous train of 1-bit tag slots.
    BitslotTrain {
        /// Number of slots.
        slots: u64,
        /// Start time since trace begin (µs).
        start_us: f64,
        /// Duration (µs).
        duration_us: f64,
    },
    /// Train of slotted-Aloha reply slots.
    AlohaTrain {
        /// Number of slots.
        slots: u64,
        /// Start time since trace begin (µs).
        start_us: f64,
        /// Duration (µs).
        duration_us: f64,
    },
}

impl TraceEvent {
    /// Event start (µs since trace begin).
    pub fn start_us(&self) -> f64 {
        match *self {
            TraceEvent::ReaderMessage { start_us, .. }
            | TraceEvent::Turnaround { start_us, .. }
            | TraceEvent::BitslotTrain { start_us, .. }
            | TraceEvent::AlohaTrain { start_us, .. } => start_us,
        }
    }

    /// Event duration (µs).
    pub fn duration_us(&self) -> f64 {
        match *self {
            TraceEvent::ReaderMessage { duration_us, .. }
            | TraceEvent::Turnaround { duration_us, .. }
            | TraceEvent::BitslotTrain { duration_us, .. }
            | TraceEvent::AlohaTrain { duration_us, .. } => duration_us,
        }
    }

    /// Short kind label for aggregation.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::ReaderMessage { .. } => "reader",
            TraceEvent::Turnaround { .. } => "turnaround",
            TraceEvent::BitslotTrain { .. } => "bit-slots",
            TraceEvent::AlohaTrain { .. } => "aloha-slots",
        }
    }
}

/// Aggregate totals per event kind: `(kind, count, total_us)`, in first-
/// appearance order.
pub fn aggregate(events: &[TraceEvent]) -> Vec<(&'static str, u64, f64)> {
    let mut out: Vec<(&'static str, u64, f64)> = Vec::new();
    for e in events {
        let kind = e.kind();
        match out.iter_mut().find(|(k, _, _)| *k == kind) {
            Some(entry) => {
                entry.1 += 1;
                entry.2 += e.duration_us();
            }
            None => out.push((kind, 1, e.duration_us())),
        }
    }
    out
}

/// Render the timeline as one aligned line per event.
pub fn render(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        let detail = match *e {
            TraceEvent::ReaderMessage { bits, .. } => format!("{bits} bits"),
            TraceEvent::Turnaround { .. } => String::new(),
            TraceEvent::BitslotTrain { slots, .. }
            | TraceEvent::AlohaTrain { slots, .. } => format!("{slots} slots"),
        };
        out.push_str(&format!(
            "{:>12.2}us  {:>10.2}us  {:<11} {detail}\n",
            e.start_us(),
            e.duration_us(),
            e.kind(),
        ));
    }
    let total: f64 = events.iter().map(|e| e.duration_us()).sum();
    out.push_str(&format!("total: {total:.2}us over {} events\n", events.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent::ReaderMessage {
                bits: 128,
                start_us: 0.0,
                duration_us: 4833.28,
            },
            TraceEvent::Turnaround {
                start_us: 4833.28,
                duration_us: 302.0,
            },
            TraceEvent::BitslotTrain {
                slots: 1024,
                start_us: 5135.28,
                duration_us: 19333.12,
            },
            TraceEvent::Turnaround {
                start_us: 24468.4,
                duration_us: 302.0,
            },
        ]
    }

    #[test]
    fn accessors_cover_all_variants() {
        let events = sample();
        assert_eq!(events[0].kind(), "reader");
        assert_eq!(events[1].kind(), "turnaround");
        assert_eq!(events[2].kind(), "bit-slots");
        assert_eq!(events[0].start_us(), 0.0);
        assert_eq!(events[2].duration_us(), 19333.12);
        let aloha = TraceEvent::AlohaTrain {
            slots: 5,
            start_us: 1.0,
            duration_us: 2.0,
        };
        assert_eq!(aloha.kind(), "aloha-slots");
    }

    #[test]
    fn aggregate_totals_by_kind() {
        let agg = aggregate(&sample());
        assert_eq!(agg.len(), 3);
        let gaps = agg.iter().find(|(k, _, _)| *k == "turnaround").unwrap();
        assert_eq!(gaps.1, 2);
        assert!((gaps.2 - 604.0).abs() < 1e-9);
    }

    #[test]
    fn render_lists_every_event_and_the_total() {
        let s = render(&sample());
        assert_eq!(s.lines().count(), 5);
        assert!(s.contains("128 bits"));
        assert!(s.contains("1024 slots"));
        assert!(s.contains("total:"));
    }

    #[test]
    fn aggregate_of_empty_is_empty() {
        assert!(aggregate(&[]).is_empty());
    }
}
