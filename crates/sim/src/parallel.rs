//! Chunked fold/merge parallelism over tag populations.
//!
//! Populations in the paper's evaluation reach 10^6 tags; a frame fill is a
//! pure map-reduce over tags (each tag independently decides which slots it
//! responds in, and responses combine by addition). [`par_fold`] implements
//! that shape with `std::thread::scope`: each worker folds a contiguous
//! chunk into its own accumulator — no sharing, no locks — and the
//! accumulators merge at the end. This is the data-race-free
//! fork/join idiom the workspace's HPC guidance prescribes.

/// Number of worker threads to use for `len` items given a minimum
/// productive chunk size. At least 1; at most `available_parallelism`.
pub fn thread_count(len: usize, min_chunk: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if min_chunk == 0 {
        return hw;
    }
    hw.min(len / min_chunk).max(1)
}

/// Parallel fold: split `items` into contiguous chunks, fold each chunk into
/// a fresh accumulator on its own thread, then merge the per-thread
/// accumulators left-to-right (so the merged result is deterministic for
/// commutative-associative merges, which all our uses are).
///
/// Falls back to a purely sequential fold when one thread suffices — the
/// result is bitwise identical either way provided `fold` itself is
/// deterministic per item.
pub fn par_fold<T, A>(
    items: &[T],
    min_chunk: usize,
    make: impl Fn() -> A + Sync,
    fold: impl Fn(&mut A, &T) + Sync,
    mut merge: impl FnMut(&mut A, A),
) -> A
where
    T: Sync,
    A: Send,
{
    let threads = thread_count(items.len(), min_chunk);
    if threads <= 1 {
        let mut acc = make();
        for item in items {
            fold(&mut acc, item);
        }
        return acc;
    }
    let chunk_len = items.len().div_ceil(threads);
    let make_ref = &make;
    let fold_ref = &fold;
    let partials: Vec<A> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut acc = make_ref();
                    for item in chunk {
                        fold_ref(&mut acc, item);
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("frame-fill worker panicked"))
            .collect()
    });
    let mut iter = partials.into_iter();
    let mut acc = iter.next().expect("at least one chunk");
    for partial in iter {
        merge(&mut acc, partial);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_count_bounds() {
        assert_eq!(thread_count(0, 100), 1);
        assert_eq!(thread_count(50, 100), 1);
        assert!(thread_count(1_000_000, 1) >= 1);
        let hw = std::thread::available_parallelism().unwrap().get();
        assert!(thread_count(usize::MAX, 1) <= hw);
        assert_eq!(thread_count(10, 0), hw);
    }

    #[test]
    fn parallel_sum_matches_sequential() {
        let items: Vec<u64> = (0..100_000).collect();
        let expected: u64 = items.iter().sum();
        // Force parallel by tiny min_chunk.
        let got = par_fold(
            &items,
            1,
            || 0u64,
            |acc, &x| *acc += x,
            |acc, other| *acc += other,
        );
        assert_eq!(got, expected);
        // Force sequential by huge min_chunk.
        let got_seq = par_fold(
            &items,
            usize::MAX,
            || 0u64,
            |acc, &x| *acc += x,
            |acc, other| *acc += other,
        );
        assert_eq!(got_seq, expected);
    }

    #[test]
    fn histogram_merge_is_deterministic() {
        let items: Vec<usize> = (0..50_000).map(|i| i % 97).collect();
        let run = |min_chunk| {
            par_fold(
                &items,
                min_chunk,
                || vec![0u32; 97],
                |acc, &slot| acc[slot] += 1,
                |acc, other| {
                    for (a, b) in acc.iter_mut().zip(other) {
                        *a += b;
                    }
                },
            )
        };
        let parallel = run(1);
        let sequential = run(usize::MAX);
        assert_eq!(parallel, sequential);
        assert_eq!(parallel.iter().map(|&c| c as usize).sum::<usize>(), 50_000);
    }

    #[test]
    fn empty_input_yields_fresh_accumulator() {
        let items: Vec<u32> = vec![];
        let got = par_fold(
            &items,
            1,
            || 42u32,
            |_, _| unreachable!(),
            |_, _| unreachable!(),
        );
        assert_eq!(got, 42);
    }

    #[test]
    fn single_item() {
        let items = [7u32];
        let got = par_fold(
            &items,
            1,
            || 0u32,
            |acc, &x| *acc += x,
            |acc, other| *acc += other,
        );
        assert_eq!(got, 7);
    }
}
