//! Chunked fold/merge parallelism over tag populations.
//!
//! Populations in the paper's evaluation reach 10^6 tags; a frame fill is a
//! pure map-reduce over tags (each tag independently decides which slots it
//! responds in, and responses combine by addition). [`par_fold`] implements
//! that shape with `std::thread::scope`: each worker folds a contiguous
//! chunk into its own accumulator — no sharing, no locks — and the
//! accumulators merge at the end. This is the data-race-free
//! fork/join idiom the workspace's HPC guidance prescribes.

/// Number of worker threads to use for `len` items given a minimum
/// productive chunk size. At least 1; at most `available_parallelism`.
pub fn thread_count(len: usize, min_chunk: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if min_chunk == 0 {
        return hw;
    }
    hw.min(len / min_chunk).max(1)
}

/// Parallel fold: split `items` into contiguous chunks, fold each chunk into
/// a fresh accumulator on its own thread, then merge the per-thread
/// accumulators left-to-right (so the merged result is deterministic for
/// commutative-associative merges, which all our uses are).
///
/// Falls back to a purely sequential fold when one thread suffices — the
/// result is bitwise identical either way provided `fold` itself is
/// deterministic per item.
pub fn par_fold<T, A>(
    items: &[T],
    min_chunk: usize,
    make: impl Fn() -> A + Sync,
    fold: impl Fn(&mut A, &T) + Sync,
    merge: impl FnMut(&mut A, A),
) -> A
where
    T: Sync,
    A: Send,
{
    par_fold_with_threads(items, thread_count(items.len(), min_chunk), make, fold, merge)
}

/// [`par_fold`] with an explicit worker count instead of a chunk-size
/// heuristic. `threads` is clamped to `[1, items.len()]`, so over-asking is
/// safe and `threads <= 1` (or an empty `items`) degrades to the sequential
/// fold. The trial engine in `rfid-experiments` drives this directly with
/// its `--jobs` value.
pub fn par_fold_with_threads<T, A>(
    items: &[T],
    threads: usize,
    make: impl Fn() -> A + Sync,
    fold: impl Fn(&mut A, &T) + Sync,
    mut merge: impl FnMut(&mut A, A),
) -> A
where
    T: Sync,
    A: Send,
{
    // Empty input short-circuits before any chunk arithmetic: there is
    // nothing to fold, so the fresh accumulator is the answer (previously
    // `chunks(0)` panicked here whenever `min_chunk == 0` selected more
    // than one thread for zero items).
    if items.is_empty() {
        return make();
    }
    let threads = threads.clamp(1, items.len());
    if threads <= 1 {
        let mut acc = make();
        for item in items {
            fold(&mut acc, item);
        }
        return acc;
    }
    // `threads <= items.len()` guarantees `chunk_len >= 1`; the extra
    // `.max(1)` keeps the `chunks()` contract locally obvious.
    let chunk_len = items.len().div_ceil(threads).max(1);
    let make_ref = &make;
    let fold_ref = &fold;
    let partials: Vec<A> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut acc = make_ref();
                    for item in chunk {
                        fold_ref(&mut acc, item);
                    }
                    acc
                })
            })
            // analysis:allow(hotpath-alloc-free): one handle/partial per worker thread, collected once per parallel run — not per slot
            .collect();
        handles
            .into_iter()
            // Re-raise a worker panic with its original payload instead of
            // wrapping it in a second, less informative one.
            .map(|h| h.join().unwrap_or_else(|payload| std::panic::resume_unwind(payload)))
            // analysis:allow(hotpath-alloc-free): one handle/partial per worker thread, collected once per parallel run — not per slot
            .collect()
    });
    let mut iter = partials.into_iter();
    let Some(mut acc) = iter.next() else {
        // Unreachable given the non-empty check above, but a fresh
        // accumulator is the correct fold of zero chunks either way.
        return make();
    };
    for partial in iter {
        merge(&mut acc, partial);
    }
    acc
}

/// Chunk-level parallel fold: like [`par_fold`], but each worker receives
/// its whole contiguous chunk as a slice instead of being driven item by
/// item.
///
/// This is the entry point for batched kernels (e.g. the word-level frame
/// fill): handing the worker a `&[T]` lets it hoist per-item dispatch,
/// validation, and scratch management out of the inner loop. The contract
/// is stronger than [`par_fold`]'s: `fold_chunk` must produce accumulators
/// whose merge is independent of *where the chunk boundaries fall* (true
/// for the commutative-associative integer/bitmap accumulation all our
/// kernels use), because `min_chunk` only bounds — not fixes — the split.
pub fn par_fold_chunks<T, A>(
    items: &[T],
    min_chunk: usize,
    make: impl Fn() -> A + Sync,
    fold_chunk: impl Fn(&mut A, &[T]) + Sync,
    merge: impl FnMut(&mut A, A),
) -> A
where
    T: Sync,
    A: Send,
{
    par_fold_chunks_with_threads(
        items,
        thread_count(items.len(), min_chunk),
        make,
        fold_chunk,
        merge,
    )
}

/// [`par_fold_chunks`] with an explicit worker count. `threads` is clamped
/// to `[1, items.len()]`; `threads <= 1` (or empty `items`) degrades to one
/// `fold_chunk` call over the whole slice on the current thread.
pub fn par_fold_chunks_with_threads<T, A>(
    items: &[T],
    threads: usize,
    make: impl Fn() -> A + Sync,
    fold_chunk: impl Fn(&mut A, &[T]) + Sync,
    mut merge: impl FnMut(&mut A, A),
) -> A
where
    T: Sync,
    A: Send,
{
    if items.is_empty() {
        return make();
    }
    let threads = threads.clamp(1, items.len());
    if threads <= 1 {
        let mut acc = make();
        fold_chunk(&mut acc, items);
        return acc;
    }
    let chunk_len = items.len().div_ceil(threads).max(1);
    let make_ref = &make;
    let fold_ref = &fold_chunk;
    let partials: Vec<A> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut acc = make_ref();
                    fold_ref(&mut acc, chunk);
                    acc
                })
            })
            // analysis:allow(hotpath-alloc-free): one handle/partial per worker thread, collected once per parallel run — not per slot
            .collect();
        handles
            .into_iter()
            // Re-raise a worker panic with its original payload instead of
            // wrapping it in a second, less informative one.
            .map(|h| h.join().unwrap_or_else(|payload| std::panic::resume_unwind(payload)))
            // analysis:allow(hotpath-alloc-free): one handle/partial per worker thread, collected once per parallel run — not per slot
            .collect()
    });
    let mut iter = partials.into_iter();
    let Some(mut acc) = iter.next() else {
        // Unreachable given the non-empty check above, but a fresh
        // accumulator is the correct fold of zero chunks either way.
        return make();
    };
    for partial in iter {
        merge(&mut acc, partial);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_count_bounds() {
        assert_eq!(thread_count(0, 100), 1);
        assert_eq!(thread_count(50, 100), 1);
        assert!(thread_count(1_000_000, 1) >= 1);
        let hw = std::thread::available_parallelism().unwrap().get();
        assert!(thread_count(usize::MAX, 1) <= hw);
        assert_eq!(thread_count(10, 0), hw);
    }

    #[test]
    fn parallel_sum_matches_sequential() {
        let items: Vec<u64> = (0..100_000).collect();
        let expected: u64 = items.iter().sum();
        // Force parallel by tiny min_chunk.
        let got = par_fold(
            &items,
            1,
            || 0u64,
            |acc, &x| *acc += x,
            |acc, other| *acc += other,
        );
        assert_eq!(got, expected);
        // Force sequential by huge min_chunk.
        let got_seq = par_fold(
            &items,
            usize::MAX,
            || 0u64,
            |acc, &x| *acc += x,
            |acc, other| *acc += other,
        );
        assert_eq!(got_seq, expected);
    }

    #[test]
    fn histogram_merge_is_deterministic() {
        let items: Vec<usize> = (0..50_000).map(|i| i % 97).collect();
        let run = |min_chunk| {
            par_fold(
                &items,
                min_chunk,
                || vec![0u32; 97],
                |acc, &slot| acc[slot] += 1,
                |acc, other| {
                    for (a, b) in acc.iter_mut().zip(other) {
                        *a += b;
                    }
                },
            )
        };
        let parallel = run(1);
        let sequential = run(usize::MAX);
        assert_eq!(parallel, sequential);
        assert_eq!(parallel.iter().map(|&c| c as usize).sum::<usize>(), 50_000);
    }

    #[test]
    fn empty_input_yields_fresh_accumulator() {
        let items: Vec<u32> = vec![];
        let got = par_fold(
            &items,
            1,
            || 42u32,
            |_, _| unreachable!(),
            |_, _| unreachable!(),
        );
        assert_eq!(got, 42);
    }

    #[test]
    fn empty_input_with_zero_min_chunk_does_not_panic() {
        // Regression: `thread_count(0, 0)` returns the hardware count, so
        // the old code computed `chunk_len = 0` and panicked in `chunks(0)`
        // (and, had it survived that, in `expect("at least one chunk")`).
        let items: Vec<u32> = vec![];
        let got = par_fold(&items, 0, || 7u32, |_, _| unreachable!(), |_, _| {
            unreachable!()
        });
        assert_eq!(got, 7);
    }

    #[test]
    fn zero_min_chunk_matches_sequential_on_small_input() {
        // Regression companion: `min_chunk == 0` ("always go wide") must
        // also behave when there are fewer items than hardware threads.
        let items = [3u64, 5, 9];
        let got = par_fold(
            &items,
            0,
            || 0u64,
            |acc, &x| *acc += x,
            |acc, other| *acc += other,
        );
        assert_eq!(got, 17);
    }

    #[test]
    fn explicit_thread_counts_agree_with_sequential() {
        let items: Vec<u64> = (0..10_000).collect();
        let expected: u64 = items.iter().sum();
        for threads in [0, 1, 2, 3, 7, 64, usize::MAX] {
            let got = par_fold_with_threads(
                &items,
                threads,
                || 0u64,
                |acc, &x| *acc += x,
                |acc, other| *acc += other,
            );
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn explicit_threads_beyond_item_count_are_clamped() {
        let items = [1u32, 2];
        let got = par_fold_with_threads(
            &items,
            100,
            || 0u32,
            |acc, &x| *acc += x,
            |acc, other| *acc += other,
        );
        assert_eq!(got, 3);
    }

    #[test]
    fn explicit_threads_empty_input_yields_fresh_accumulator() {
        let items: Vec<u32> = vec![];
        let got = par_fold_with_threads(&items, 8, || 11u32, |_, _| unreachable!(), |_, _| {
            unreachable!()
        });
        assert_eq!(got, 11);
    }

    #[test]
    fn chunk_fold_matches_item_fold_at_every_worker_count() {
        let items: Vec<u64> = (0..10_000).map(|i| i * 3 + 1).collect();
        let expected: u64 = items.iter().sum();
        for threads in [0usize, 1, 2, 3, 7, 64, usize::MAX] {
            let got = par_fold_chunks_with_threads(
                &items,
                threads,
                || 0u64,
                |acc, chunk| {
                    for &x in chunk {
                        *acc += x;
                    }
                },
                |acc, other| *acc += other,
            );
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn chunk_fold_covers_every_item_exactly_once() {
        // Concatenating the chunks each worker saw must reproduce the input
        // (chunks are contiguous and ordered; merge preserves chunk order).
        let items: Vec<u32> = (0..997).collect();
        let got = par_fold_chunks_with_threads(
            &items,
            4,
            Vec::new,
            |acc: &mut Vec<u32>, chunk| acc.extend_from_slice(chunk),
            |acc, other| acc.extend(other),
        );
        assert_eq!(got, items);
    }

    #[test]
    fn chunk_fold_empty_input_yields_fresh_accumulator() {
        let items: Vec<u32> = vec![];
        let got =
            par_fold_chunks(&items, 1, || 9u32, |_, _| unreachable!(), |_, _| unreachable!());
        assert_eq!(got, 9);
    }

    #[test]
    fn chunk_fold_min_chunk_heuristic_matches_sequential() {
        let items: Vec<u64> = (0..50_000).collect();
        let histogram = |min_chunk: usize| {
            par_fold_chunks(
                &items,
                min_chunk,
                || vec![0u32; 97],
                |acc, chunk| {
                    for &x in chunk {
                        acc[(x % 97) as usize] += 1;
                    }
                },
                |acc, other| {
                    for (a, b) in acc.iter_mut().zip(other) {
                        *a += b;
                    }
                },
            )
        };
        assert_eq!(histogram(1), histogram(usize::MAX));
    }

    #[test]
    fn single_item() {
        let items = [7u32];
        let got = par_fold(
            &items,
            1,
            || 0u32,
            |acc, &x| *acc += x,
            |acc, other| *acc += other,
        );
        assert_eq!(got, 7);
    }

    /// Schedule-exploration harness.
    ///
    /// `par_fold_with_threads` promises that its result depends only on the
    /// items and the chunk boundaries — never on the order in which worker
    /// threads happen to *finish*. The OS scheduler will never show us more
    /// than a handful of interleavings, so these tests force them: a
    /// condvar gate blocks each worker at the last item of its chunk until
    /// every chunk scheduled before it (under the permutation being
    /// explored) has completed. One permutation per run ⇒ the workers
    /// complete in exactly that order, yet the fold must stay bitwise
    /// identical, because the merge loop walks the partials in chunk index
    /// order regardless of completion order.
    mod schedule {
        use std::sync::{Condvar, Mutex};

        /// Forces chunk completions into a fixed order.
        pub struct Gate {
            /// Chunk ids in the order they are allowed to complete.
            order: Vec<usize>,
            done: Mutex<Vec<bool>>,
            cv: Condvar,
        }

        impl Gate {
            pub fn new(order: &[usize]) -> Self {
                Self {
                    order: order.to_vec(),
                    done: Mutex::new(vec![false; order.len()]),
                    cv: Condvar::new(),
                }
            }

            /// Called by the worker folding `chunk` at its last item:
            /// block until every predecessor in the forced order has
            /// completed, then mark this chunk complete.
            ///
            /// Deadlock-free because `par_fold_with_threads` spawns every
            /// chunk's worker up front: whichever chunk is first in the
            /// forced order is always running and never waits.
            pub fn complete(&self, chunk: usize) {
                let pos = self
                    .order
                    .iter()
                    .position(|&c| c == chunk)
                    .expect("chunk present in the forced order");
                let mut done = self.done.lock().unwrap();
                while !self.order[..pos].iter().all(|&c| done[c]) {
                    done = self.cv.wait(done).unwrap();
                }
                done[chunk] = true;
                self.cv.notify_all();
            }
        }

        /// All permutations of `0..k`, by Heap's algorithm.
        pub fn permutations(k: usize) -> Vec<Vec<usize>> {
            fn heap(xs: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
                if k <= 1 {
                    out.push(xs.clone());
                    return;
                }
                for i in 0..k {
                    heap(xs, k - 1, out);
                    if k.is_multiple_of(2) {
                        xs.swap(i, k - 1);
                    } else {
                        xs.swap(0, k - 1);
                    }
                }
            }
            let mut xs: Vec<usize> = (0..k).collect();
            let mut out = Vec::new();
            heap(&mut xs, k, &mut out);
            out
        }
    }

    /// Fold `0..n` over `workers` threads with chunk completions forced
    /// into `order`. The accumulation is floating-point on purpose: f64
    /// addition is non-associative, so any schedule-dependence in the merge
    /// would show up as a bit flip.
    fn gated_fold(n: usize, workers: usize, order: &[usize]) -> f64 {
        assert_eq!(n % workers, 0, "tests use evenly divisible chunking");
        let chunk_len = n.div_ceil(workers);
        let items: Vec<usize> = (0..n).collect();
        let gate = schedule::Gate::new(order);
        par_fold_with_threads(
            &items,
            workers,
            || 0.0f64,
            |acc, &i| {
                *acc += 1.0 / (1.0 + i as f64);
                // Item value == index, so this worker's chunk id and the
                // chunk's last item are both derivable from `i` alone.
                if i % chunk_len == chunk_len - 1 {
                    gate.complete(i / chunk_len);
                }
            },
            |acc, other| *acc += other,
        )
    }

    /// The reference result: fold each chunk sequentially, merge in chunk
    /// index order — exactly what `par_fold_with_threads` promises to
    /// compute no matter how its workers are scheduled.
    fn chunked_reference(n: usize, workers: usize) -> f64 {
        let chunk_len = n.div_ceil(workers);
        let items: Vec<usize> = (0..n).collect();
        let mut partials = items.chunks(chunk_len).map(|chunk| {
            let mut acc = 0.0f64;
            for &i in chunk {
                acc += 1.0 / (1.0 + i as f64);
            }
            acc
        });
        let mut total = partials.next().expect("non-empty input");
        for p in partials {
            total += p;
        }
        total
    }

    #[test]
    fn every_four_worker_completion_order_folds_bitwise_identically() {
        let (n, workers) = (64, 4);
        let want = chunked_reference(n, workers).to_bits();
        for order in schedule::permutations(workers) {
            let got = gated_fold(n, workers, &order).to_bits();
            assert_eq!(
                got, want,
                "schedule {order:?} changed the fold result: {got:#x} vs {want:#x}"
            );
        }
    }

    #[test]
    fn sampled_six_worker_completion_orders_fold_bitwise_identically() {
        // 6! = 720 orders is slow under a gate per run; explore a seeded
        // sample via Fisher–Yates over SplitMix64 instead.
        let (n, workers) = (60, 6);
        let want = chunked_reference(n, workers).to_bits();
        let mut prng = rfid_hash::SplitMix64::new(rfid_hash::stream_seed(0x5C4E_D01E, 0));
        for round in 0..24 {
            let mut order: Vec<usize> = (0..workers).collect();
            for i in (1..workers).rev() {
                let j = (prng.next_u64() % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            let got = gated_fold(n, workers, &order).to_bits();
            assert_eq!(got, want, "round {round}, schedule {order:?}");
        }
    }

    #[test]
    fn forced_schedules_agree_with_the_unforced_run() {
        // The gate itself must be an observer, not a participant: an
        // ungated run (whatever order the OS picks) produces the same bits
        // as every forced schedule.
        let (n, workers) = (64, 4);
        let items: Vec<usize> = (0..n).collect();
        let free = par_fold_with_threads(
            &items,
            workers,
            || 0.0f64,
            |acc, &i| *acc += 1.0 / (1.0 + i as f64),
            |acc, other| *acc += other,
        );
        assert_eq!(free.to_bits(), chunked_reference(n, workers).to_bits());
    }
}
