//! Frame execution: from per-tag response plans to the reader's observation.
//!
//! A *frame* is the unit of the Reader-Talks-First protocol: the reader
//! broadcasts parameters, then senses `w` slots. Estimators describe tag
//! behaviour as a [`ResponsePlan`] — a pure function from a tag to the slots
//! it transmits in — and the executor aggregates true per-slot responder
//! counts (in parallel for large populations) before the [`Channel`] turns
//! them into the reader's (possibly noisy) observation.

use crate::aloha::{AlohaFrame, AlohaOutcome};
use crate::bitmap::Bitmap;
use crate::channel::Channel;
use crate::parallel::par_fold;
use crate::tag::Tag;
use rfid_hash::SplitMix64;

/// Minimum tags per worker thread before the executor bothers to go
/// parallel; below this the spawn overhead dominates.
pub const MIN_TAGS_PER_THREAD: usize = 20_000;

/// A pure description of which slots a tag transmits in during one frame.
///
/// Implementations must be deterministic (same tag → same slots) so that
/// parallel and sequential execution observe identical frames.
pub trait ResponsePlan: Sync {
    /// Append every slot index (in `[0, w)`) this tag responds in.
    fn responses(&self, tag: &Tag, out: &mut Vec<usize>);
}

impl<F> ResponsePlan for F
where
    F: Fn(&Tag, &mut Vec<usize>) + Sync,
{
    fn responses(&self, tag: &Tag, out: &mut Vec<usize>) {
        self(tag, out)
    }
}

/// True per-slot responder counts for a frame of `w` slots.
///
/// Deterministic regardless of thread count: each tag's contribution is a
/// pure function of the tag, and counts merge by addition.
pub fn response_counts<P: ResponsePlan>(tags: &[Tag], w: usize, plan: &P) -> Vec<u32> {
    response_counts_with_min_chunk(tags, w, plan, MIN_TAGS_PER_THREAD)
}

/// [`response_counts`] with an explicit parallel-split threshold.
///
/// Pass `usize::MAX` to force single-threaded execution — used by the
/// micro-benchmarks to quantify the fork/join speedup, and handy when the
/// caller is already running inside its own thread pool.
pub fn response_counts_with_min_chunk<P: ResponsePlan>(
    tags: &[Tag],
    w: usize,
    plan: &P,
    min_chunk: usize,
) -> Vec<u32> {
    assert!(w > 0, "frame must have at least one slot");
    let (counts, _scratch) = par_fold(
        tags,
        min_chunk,
        || (vec![0u32; w], Vec::with_capacity(8)),
        |(counts, scratch), tag| {
            scratch.clear();
            plan.responses(tag, scratch);
            for &slot in scratch.iter() {
                assert!(slot < w, "plan produced slot {slot} >= w {w}");
                counts[slot] += 1;
            }
        },
        |(counts, _), (other, _)| {
            for (a, b) in counts.iter_mut().zip(other) {
                *a += b;
            }
        },
    );
    counts
}

/// The reader's observation of a bit-slot frame.
///
/// Follows the paper's B-vector convention: conceptually `B(i) = 1` for an
/// **idle** slot and `0` for a busy slot (Theorem 1). We store the busy
/// bitmap and expose both counts; `rho` — "the ratio of 1s in B" — is the
/// *idle* fraction.
#[derive(Debug, Clone)]
pub struct BitFrame {
    busy: Bitmap,
}

impl BitFrame {
    /// Sense the first `observe` slots of a frame with true responder
    /// counts `counts` through `channel`. The reader may terminate a frame
    /// early (the BFCE rough phase observes 1024 of 8192 slots), in which
    /// case only the observed prefix exists from its point of view.
    pub fn sense(
        counts: &[u32],
        observe: usize,
        channel: &dyn Channel,
        noise: &mut SplitMix64,
    ) -> Self {
        assert!(
            observe <= counts.len(),
            "cannot observe {observe} slots of a {}-slot frame",
            counts.len()
        );
        let mut busy = Bitmap::zeros(observe);
        for (i, &responders) in counts[..observe].iter().enumerate() {
            if channel.sense_bitslot(responders, noise) {
                busy.set(i);
            }
        }
        Self { busy }
    }

    /// Number of observed slots.
    pub fn observed(&self) -> usize {
        self.busy.len()
    }

    /// Busy (paper: `B(i) = 0`) slot count.
    pub fn busy_count(&self) -> usize {
        self.busy.count_ones()
    }

    /// Idle (paper: `B(i) = 1`) slot count.
    pub fn idle_count(&self) -> usize {
        self.observed() - self.busy_count()
    }

    /// The paper's `rho`: the ratio of 1s in B = fraction of idle slots.
    pub fn rho(&self) -> f64 {
        assert!(self.observed() > 0, "rho of an empty observation");
        self.idle_count() as f64 / self.observed() as f64
    }

    /// Whether slot `i` was busy.
    pub fn is_busy(&self, i: usize) -> bool {
        self.busy.get(i)
    }

    /// The underlying busy bitmap.
    pub fn busy_bitmap(&self) -> &Bitmap {
        &self.busy
    }
}

/// Sense a whole frame as slotted Aloha (for the UPE/EZB/FNEB generation).
pub fn sense_aloha(
    counts: &[u32],
    channel: &dyn Channel,
    noise: &mut SplitMix64,
) -> AlohaFrame {
    let outcomes: Vec<AlohaOutcome> = counts
        .iter()
        .map(|&responders| channel.sense_aloha(responders, noise))
        .collect();
    AlohaFrame::new(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::PerfectChannel;

    fn tags(n: usize) -> Vec<Tag> {
        (0..n as u64)
            .map(|i| Tag {
                id: i + 1,
                rn: (i as u32).wrapping_mul(0x9E37_79B9),
            })
            .collect()
    }

    #[test]
    fn counts_accumulate_per_slot() {
        let tags = tags(10);
        // Every tag responds in slot (id % 4).
        let plan = |tag: &Tag, out: &mut Vec<usize>| {
            out.push((tag.id % 4) as usize);
        };
        let counts = response_counts(&tags, 4, &plan);
        assert_eq!(counts.iter().sum::<u32>(), 10);
        // IDs 1..=10: id%4 -> 1,2,3,0,1,2,3,0,1,2 => [2,3,3,2]
        assert_eq!(counts, vec![2, 3, 3, 2]);
    }

    #[test]
    fn multi_slot_plans_count_each_response() {
        let tags = tags(5);
        let plan = |_tag: &Tag, out: &mut Vec<usize>| {
            out.push(0);
            out.push(2);
        };
        let counts = response_counts(&tags, 3, &plan);
        assert_eq!(counts, vec![5, 0, 5]);
    }

    #[test]
    fn silent_tags_contribute_nothing() {
        let tags = tags(7);
        let plan = |_tag: &Tag, _out: &mut Vec<usize>| {};
        let counts = response_counts(&tags, 16, &plan);
        assert!(counts.iter().all(|&c| c == 0));
    }

    #[test]
    fn parallel_and_sequential_agree() {
        // Enough tags to trigger the parallel path.
        let tags = tags(MIN_TAGS_PER_THREAD * 4);
        let plan = |tag: &Tag, out: &mut Vec<usize>| {
            out.push((tag.id % 1024) as usize);
            if tag.id.is_multiple_of(3) {
                out.push(((tag.id / 3) % 1024) as usize);
            }
        };
        let par = response_counts(&tags, 1024, &plan);
        // Sequential reference.
        let mut seq = vec![0u32; 1024];
        let mut scratch = Vec::new();
        for tag in &tags {
            scratch.clear();
            plan(tag, &mut scratch);
            for &s in &scratch {
                seq[s] += 1;
            }
        }
        assert_eq!(par, seq);
    }

    #[test]
    #[should_panic(expected = "slot 5 >= w 4")]
    fn out_of_range_slot_panics() {
        let tags = tags(1);
        let plan = |_tag: &Tag, out: &mut Vec<usize>| out.push(5);
        response_counts(&tags, 4, &plan);
    }

    #[test]
    fn bitframe_senses_prefix_only() {
        let counts = vec![0u32, 1, 0, 2, 0, 3];
        let mut noise = SplitMix64::new(1);
        let frame = BitFrame::sense(&counts, 4, &PerfectChannel, &mut noise);
        assert_eq!(frame.observed(), 4);
        assert_eq!(frame.busy_count(), 2);
        assert_eq!(frame.idle_count(), 2);
        assert!((frame.rho() - 0.5).abs() < 1e-15);
        assert!(!frame.is_busy(0));
        assert!(frame.is_busy(1));
        assert!(!frame.is_busy(2));
        assert!(frame.is_busy(3));
    }

    #[test]
    fn rho_is_idle_fraction_matching_paper_convention() {
        // All slots busy -> rho = 0 (all B(i) = 0); all idle -> rho = 1.
        let mut noise = SplitMix64::new(2);
        let all_busy = BitFrame::sense(&[1, 1, 1], 3, &PerfectChannel, &mut noise);
        assert_eq!(all_busy.rho(), 0.0);
        let all_idle = BitFrame::sense(&[0, 0, 0], 3, &PerfectChannel, &mut noise);
        assert_eq!(all_idle.rho(), 1.0);
    }

    #[test]
    fn aloha_sensing_classifies() {
        let mut noise = SplitMix64::new(3);
        let frame = sense_aloha(&[0, 1, 2, 9], &PerfectChannel, &mut noise);
        assert_eq!(frame.empties(), 1);
        assert_eq!(frame.singletons(), 1);
        assert_eq!(frame.collisions(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot observe")]
    fn observing_beyond_frame_panics() {
        let mut noise = SplitMix64::new(4);
        BitFrame::sense(&[0, 0], 3, &PerfectChannel, &mut noise);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_width_frame_rejected() {
        let plan = |_t: &Tag, _o: &mut Vec<usize>| {};
        response_counts(&tags(1), 0, &plan);
    }
}
