//! Frame execution: from per-tag response plans to the reader's observation.
//!
//! A *frame* is the unit of the Reader-Talks-First protocol: the reader
//! broadcasts parameters, then senses `w` slots. Estimators describe tag
//! behaviour as a [`ResponsePlan`] — a pure function from a tag to the slots
//! it transmits in — and the executor aggregates true per-slot responder
//! counts (in parallel for large populations) before the [`Channel`] turns
//! them into the reader's (possibly noisy) observation.

use crate::aloha::{AlohaFrame, AlohaOutcome};
use crate::bitmap::Bitmap;
use crate::channel::Channel;
use crate::dispatch::FillDispatch;
use crate::parallel::{par_fold_chunks_with_threads, par_fold_with_threads, thread_count};
use crate::tag::Tag;
use rfid_hash::SplitMix64;

/// Minimum tags per worker thread before the executor bothers to go
/// parallel; below this the spawn overhead dominates.
pub const MIN_TAGS_PER_THREAD: usize = 20_000;

/// Floor on tags per worker when the caller pins an *explicit* worker
/// count: the request is treated as an upper bound, and the executor never
/// hands a worker fewer than this many tags.
///
/// Without the floor, `response_fill_with_threads(.., threads = 4)` on a
/// 1 000-tag frame spawns four scoped threads for ~250 tags each — around
/// 80 µs of actual work behind several hundred µs of spawn/join, and on an
/// oversubscribed host the occasional descheduled worker showed up as a 9x
/// p95/p50 blowup in the committed baseline
/// (`frame_fill/batched/n=1000/threads=4`: p95 1.45 ms vs p50 0.16 ms).
/// Clamping small frames back to fewer workers removes the thrash; frame
/// fills are exact commutative-associative aggregation, so the observation
/// is bitwise identical at any worker count.
pub const FILL_TAGS_PER_WORKER_FLOOR: usize = 512;

/// Default population size at which a batched `fill_chunk` override starts
/// winning over the scalar scratch path (see
/// [`ResponsePlan::batched_fill_threshold`]): the measured Bloom-kernel
/// break-even sits between the baseline's n = 1k (batched 0.83x) and
/// n = 10k (batched 1.21x) rows.
pub const DEFAULT_BATCHED_FILL_THRESHOLD: usize = 4_096;

/// Clamp an explicitly requested worker count so every worker receives at
/// least [`FILL_TAGS_PER_WORKER_FLOOR`] tags.
#[inline]
fn floored_threads(len: usize, threads: usize) -> usize {
    threads.min((len / FILL_TAGS_PER_WORKER_FLOOR).max(1))
}

/// Where a frame-fill kernel records tag responses.
///
/// Two shapes, chosen by the executor, invisible to the plan:
///
/// * **counts** — per-slot `u32` responder counts, needed wherever the
///   multiplicity matters (Aloha empty/singleton/collision classification,
///   FNEB's pre-computed counts);
/// * **busy** — a per-thread busy [`Bitmap`] plus a running count of
///   responses landing in the observed prefix. Bit-slot sensing only
///   distinguishes busy from idle, so this drops the `4·w`-byte count
///   vector to `w/8` bytes and turns the merge into word-level ORs.
///
/// Either way, recording is commutative-associative integer/bitmap
/// accumulation, so chunking and thread count never change the result.
pub struct SlotSink<'a> {
    w: usize,
    mode: SinkMode<'a>,
}

enum SinkMode<'a> {
    Counts {
        counts: &'a mut [u32],
    },
    Busy {
        busy: &'a mut Bitmap,
        observe: usize,
        prefix_responses: &'a mut u64,
    },
}

impl<'a> SlotSink<'a> {
    /// A sink accumulating per-slot responder counts (`counts.len() = w`).
    pub fn counts(counts: &'a mut [u32]) -> Self {
        Self {
            w: counts.len(),
            mode: SinkMode::Counts { counts },
        }
    }

    /// A sink accumulating a busy bitmap (`busy.len() = w`) plus the number
    /// of responses whose slot lies in `[0, observe)` (the energy ledger
    /// charges exactly the transmissions the reader lets happen).
    pub fn busy(busy: &'a mut Bitmap, observe: usize, prefix_responses: &'a mut u64) -> Self {
        Self {
            w: busy.len(),
            mode: SinkMode::Busy {
                busy,
                observe,
                prefix_responses,
            },
        }
    }

    /// Record one tag response in `slot`. Panics if `slot >= w`.
    #[inline]
    pub fn record(&mut self, slot: usize) {
        assert!(slot < self.w, "plan produced slot {} >= w {}", slot, self.w);
        match &mut self.mode {
            // analysis:allow(hotpath-panic-free): slot < w == counts.len() asserted at fn entry
            // analysis:allow(panic-path): slot < w == counts.len() asserted at fn entry
            SinkMode::Counts { counts } => counts[slot] += 1,
            SinkMode::Busy {
                busy,
                observe,
                prefix_responses,
            } => {
                busy.or_word(slot / 64, 1u64 << (slot % 64));
                if slot < *observe {
                    **prefix_responses += 1;
                }
            }
        }
    }
}

/// A pure description of which slots a tag transmits in during one frame.
///
/// Implementations must be deterministic (same tag → same slots) so that
/// parallel and sequential execution observe identical frames.
pub trait ResponsePlan: Sync {
    /// Append every slot index (in `[0, w)`) this tag responds in.
    fn responses(&self, tag: &Tag, out: &mut Vec<usize>);

    /// Record every response of every tag in `tags` into `sink`.
    ///
    /// The default loops [`responses`](Self::responses) through a scratch
    /// buffer; plans on the hot path override it with a batched kernel that
    /// hoists hashing/dispatch out of the per-tag loop and records straight
    /// into the sink. Overrides must produce exactly the same multiset of
    /// `(tag, slot)` responses as the scalar method — the equivalence
    /// proptests hold every plan to bitwise-identical frames.
    fn fill_chunk(&self, tags: &[Tag], sink: &mut SlotSink<'_>) {
        let mut scratch = Vec::with_capacity(8);
        for tag in tags {
            scratch.clear();
            self.responses(tag, &mut scratch);
            for &slot in scratch.iter() {
                sink.record(slot);
            }
        }
    }

    /// Population size from which this plan's [`fill_chunk`](Self::fill_chunk)
    /// override beats the scalar scratch path, consulted by
    /// [`FillDispatch::Auto`].
    ///
    /// The default is the measured Bloom-kernel break-even
    /// ([`DEFAULT_BATCHED_FILL_THRESHOLD`]). Plans whose batched kernel has
    /// no setup cost to amortize (it strictly dominates the scratch loop)
    /// return 0; plans without an override never diverge from the scalar
    /// path, so the value is irrelevant for them.
    fn batched_fill_threshold(&self) -> usize {
        DEFAULT_BATCHED_FILL_THRESHOLD
    }
}

/// Adapter pinning a plan to its scalar `responses()` path.
///
/// Delegates [`responses`](ResponsePlan::responses) and deliberately does
/// *not* delegate [`fill_chunk`](ResponsePlan::fill_chunk), so the wrapped
/// plan's batched override is masked and the default scratch-buffer loop
/// runs instead. This is how the dispatch layer selects the scalar kernel
/// below the adaptive threshold, and how the benchmark suite measures both
/// sides of a plan from one implementation.
pub struct ScalarRef<'a, P: ResponsePlan + ?Sized>(pub &'a P);

impl<P: ResponsePlan + ?Sized> ResponsePlan for ScalarRef<'_, P> {
    fn responses(&self, tag: &Tag, out: &mut Vec<usize>) {
        self.0.responses(tag, out)
    }
}

impl<F> ResponsePlan for F
where
    F: Fn(&Tag, &mut Vec<usize>) + Sync,
{
    fn responses(&self, tag: &Tag, out: &mut Vec<usize>) {
        self(tag, out)
    }
}

/// True per-slot responder counts for a frame of `w` slots.
///
/// Deterministic regardless of thread count: each tag's contribution is a
/// pure function of the tag, and counts merge by addition.
pub fn response_counts<P: ResponsePlan>(tags: &[Tag], w: usize, plan: &P) -> Vec<u32> {
    response_counts_with_min_chunk(tags, w, plan, MIN_TAGS_PER_THREAD)
}

/// [`response_counts`] with an explicit parallel-split threshold.
///
/// Pass `usize::MAX` to force single-threaded execution — used by the
/// micro-benchmarks to quantify the fork/join speedup, and handy when the
/// caller is already running inside its own thread pool.
pub fn response_counts_with_min_chunk<P: ResponsePlan>(
    tags: &[Tag],
    w: usize,
    plan: &P,
    min_chunk: usize,
) -> Vec<u32> {
    response_counts_with_threads(tags, w, plan, thread_count(tags.len(), min_chunk))
}

/// [`response_counts`] with an explicit worker count, treated as an upper
/// bound: it is clamped like [`par_fold_chunks_with_threads`] *and* floored
/// to [`FILL_TAGS_PER_WORKER_FLOOR`] tags per worker, so pinning a large
/// count on a small frame cannot thrash (the benchmark suite drives this).
pub fn response_counts_with_threads<P: ResponsePlan>(
    tags: &[Tag],
    w: usize,
    plan: &P,
    threads: usize,
) -> Vec<u32> {
    assert!(w > 0, "frame must have at least one slot");
    let threads = floored_threads(tags.len(), threads);
    par_fold_chunks_with_threads(
        tags,
        threads,
        || vec![0u32; w],
        |counts, chunk| plan.fill_chunk(chunk, &mut SlotSink::counts(counts)),
        |counts, other| {
            for (a, b) in counts.iter_mut().zip(other) {
                *a += b;
            }
        },
    )
}

/// Reference scalar implementation of [`response_counts_with_min_chunk`]:
/// the pre-kernel per-tag/per-slot path, retained verbatim.
///
/// The equivalence proptests and the `frame_fill` benchmark hold the
/// batched kernels to bitwise-identical output against this baseline; it is
/// not used by any production code path.
pub fn response_counts_reference<P: ResponsePlan>(
    tags: &[Tag],
    w: usize,
    plan: &P,
    min_chunk: usize,
) -> Vec<u32> {
    response_counts_reference_with_threads(tags, w, plan, thread_count(tags.len(), min_chunk))
}

/// [`response_counts_reference`] with an explicit worker count — the
/// benchmark suite pins thread counts on both sides of the scalar/batched
/// comparison. The count is an upper bound, floored to
/// [`FILL_TAGS_PER_WORKER_FLOOR`] tags per worker like every explicit-count
/// fill entry point.
pub fn response_counts_reference_with_threads<P: ResponsePlan>(
    tags: &[Tag],
    w: usize,
    plan: &P,
    threads: usize,
) -> Vec<u32> {
    assert!(w > 0, "frame must have at least one slot");
    let threads = floored_threads(tags.len(), threads);
    let (counts, _scratch) = par_fold_with_threads(
        tags,
        threads,
        || (vec![0u32; w], Vec::with_capacity(8)),
        |(counts, scratch), tag| {
            scratch.clear();
            plan.responses(tag, scratch);
            for &slot in scratch.iter() {
                // analysis:allow(panic-path): mirrors SlotSink::record's documented panic on a broken plan; the test suite pins this message
                assert!(slot < w, "plan produced slot {slot} >= w {w}");
                // analysis:allow(panic-path): slot < w == counts.len() asserted on the previous line
                counts[slot] += 1;
            }
        },
        |(counts, _), (other, _)| {
            for (a, b) in counts.iter_mut().zip(other) {
                *a += b;
            }
        },
    );
    counts
}

/// The ground truth of one bit-slot frame fill, before channel sensing:
/// which slots have at least one responder, and how many responses landed
/// in the observed prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameFill {
    /// Busy truth per slot over the whole `w`-slot frame (bit set ⇔ at
    /// least one tag transmitted in the slot).
    pub busy: Bitmap,
    /// Number of tag transmissions in slots `[0, observe)` — what the
    /// energy ledger charges for a frame the reader terminates after
    /// `observe` slots.
    pub prefix_responses: u64,
}

/// Fill a `w`-slot bit-slot frame: busy/idle truth plus the response count
/// over the observed prefix `[0, observe)`.
///
/// This is the batched replacement for "counts then threshold": bit-slot
/// sensing only distinguishes busy from idle, so each worker accumulates a
/// `w`-bit bitmap (word-level ORs) instead of a `w`-entry `u32` vector,
/// and per-thread partials merge via [`Bitmap::or_assign`]. Bitwise
/// identical to deriving the same quantities from
/// [`response_counts_reference`] at any thread count.
pub fn response_fill<P: ResponsePlan>(
    tags: &[Tag],
    w: usize,
    observe: usize,
    plan: &P,
) -> FrameFill {
    response_fill_with_min_chunk(tags, w, observe, plan, MIN_TAGS_PER_THREAD)
}

/// [`response_fill`] with an explicit parallel-split threshold (see
/// [`response_counts_with_min_chunk`]).
pub fn response_fill_with_min_chunk<P: ResponsePlan>(
    tags: &[Tag],
    w: usize,
    observe: usize,
    plan: &P,
    min_chunk: usize,
) -> FrameFill {
    response_fill_with_threads(tags, w, observe, plan, thread_count(tags.len(), min_chunk))
}

/// [`response_fill`] with an explicit worker count, treated as an upper
/// bound (clamped like [`par_fold_chunks_with_threads`] and floored to
/// [`FILL_TAGS_PER_WORKER_FLOOR`] tags per worker).
pub fn response_fill_with_threads<P: ResponsePlan>(
    tags: &[Tag],
    w: usize,
    observe: usize,
    plan: &P,
    threads: usize,
) -> FrameFill {
    assert!(w > 0, "frame must have at least one slot");
    assert!(observe <= w, "cannot observe {observe} slots of a {w}-slot frame");
    let threads = floored_threads(tags.len(), threads);
    let (busy, prefix_responses) = par_fold_chunks_with_threads(
        tags,
        threads,
        || (Bitmap::zeros(w), 0u64),
        |(busy, prefix), chunk| {
            plan.fill_chunk(chunk, &mut SlotSink::busy(busy, observe, prefix));
        },
        |(busy, prefix), (other_busy, other_prefix)| {
            busy.or_assign(&other_busy);
            *prefix += other_prefix;
        },
    );
    FrameFill {
        busy,
        prefix_responses,
    }
}

/// Dispatch-aware [`response_fill_with_min_chunk`]: run the plan's batched
/// `fill_chunk` kernel or its scalar `responses()` path according to
/// `dispatch` (see [`FillDispatch`]).
///
/// The two paths are bitwise-equivalent by the plan contract, so the
/// returned fill is identical either way; only the wall-clock differs.
pub fn response_fill_dispatched<P: ResponsePlan>(
    tags: &[Tag],
    w: usize,
    observe: usize,
    plan: &P,
    dispatch: FillDispatch,
    min_chunk: usize,
) -> FrameFill {
    if dispatch.use_batched(tags.len(), plan.batched_fill_threshold()) {
        response_fill_with_min_chunk(tags, w, observe, plan, min_chunk)
    } else {
        response_fill_with_min_chunk(tags, w, observe, &ScalarRef(plan), min_chunk)
    }
}

/// Dispatch-aware [`response_counts_with_min_chunk`] (the Aloha-side twin
/// of [`response_fill_dispatched`]).
pub fn response_counts_dispatched<P: ResponsePlan>(
    tags: &[Tag],
    w: usize,
    plan: &P,
    dispatch: FillDispatch,
    min_chunk: usize,
) -> Vec<u32> {
    if dispatch.use_batched(tags.len(), plan.batched_fill_threshold()) {
        response_counts_with_min_chunk(tags, w, plan, min_chunk)
    } else {
        response_counts_with_min_chunk(tags, w, &ScalarRef(plan), min_chunk)
    }
}

/// The reader's observation of a bit-slot frame.
///
/// Follows the paper's B-vector convention: conceptually `B(i) = 1` for an
/// **idle** slot and `0` for a busy slot (Theorem 1). We store the busy
/// bitmap and expose both counts; `rho` — "the ratio of 1s in B" — is the
/// *idle* fraction.
#[derive(Debug, Clone)]
pub struct BitFrame {
    busy: Bitmap,
}

impl BitFrame {
    /// Sense the first `observe` slots of a frame with true responder
    /// counts `counts` through `channel`. The reader may terminate a frame
    /// early (the BFCE rough phase observes 1024 of 8192 slots), in which
    /// case only the observed prefix exists from its point of view.
    pub fn sense(
        counts: &[u32],
        observe: usize,
        channel: &dyn Channel,
        noise: &mut SplitMix64,
    ) -> Self {
        assert!(
            observe <= counts.len(),
            "cannot observe {observe} slots of a {}-slot frame",
            counts.len()
        );
        let mut busy = Bitmap::zeros(observe);
        for (i, &responders) in counts[..observe].iter().enumerate() {
            if channel.sense_bitslot(responders, noise) {
                busy.set(i);
            }
        }
        Self { busy }
    }

    /// Sense the first `observe` slots from a busy-truth bitmap (the
    /// [`FrameFill`] output) instead of per-slot counts.
    ///
    /// Bitwise identical to [`sense`](Self::sense) on the counts the bitmap
    /// was derived from: [`Channel::sense_bitslot`] depends on the
    /// responder count only through busy/idle, and this walks the slots in
    /// the same order, so noisy channels consume the same one-draw-per-slot
    /// noise stream.
    pub fn sense_truth(
        truth: &Bitmap,
        observe: usize,
        channel: &dyn Channel,
        noise: &mut SplitMix64,
    ) -> Self {
        assert!(
            observe <= truth.len(),
            "cannot observe {observe} slots of a {}-slot frame",
            truth.len()
        );
        let mut busy = Bitmap::zeros(observe);
        for i in 0..observe {
            if channel.sense_bitslot(u32::from(truth.get(i)), noise) {
                busy.set(i);
            }
        }
        Self { busy }
    }

    /// Number of observed slots.
    pub fn observed(&self) -> usize {
        self.busy.len()
    }

    /// Busy (paper: `B(i) = 0`) slot count.
    pub fn busy_count(&self) -> usize {
        self.busy.count_ones()
    }

    /// Idle (paper: `B(i) = 1`) slot count.
    pub fn idle_count(&self) -> usize {
        self.observed() - self.busy_count()
    }

    /// The paper's `rho`: the ratio of 1s in B = fraction of idle slots.
    pub fn rho(&self) -> f64 {
        assert!(self.observed() > 0, "rho of an empty observation");
        self.idle_count() as f64 / self.observed() as f64
    }

    /// Whether slot `i` was busy.
    pub fn is_busy(&self, i: usize) -> bool {
        self.busy.get(i)
    }

    /// The underlying busy bitmap.
    pub fn busy_bitmap(&self) -> &Bitmap {
        &self.busy
    }
}

/// Sense a whole frame as slotted Aloha (for the UPE/EZB/FNEB generation).
pub fn sense_aloha(
    counts: &[u32],
    channel: &dyn Channel,
    noise: &mut SplitMix64,
) -> AlohaFrame {
    let outcomes: Vec<AlohaOutcome> = counts
        .iter()
        .map(|&responders| channel.sense_aloha(responders, noise))
        .collect();
    AlohaFrame::new(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::PerfectChannel;

    fn tags(n: usize) -> Vec<Tag> {
        (0..n as u64)
            .map(|i| Tag {
                id: i + 1,
                rn: (i as u32).wrapping_mul(0x9E37_79B9),
            })
            .collect()
    }

    #[test]
    fn counts_accumulate_per_slot() {
        let tags = tags(10);
        // Every tag responds in slot (id % 4).
        let plan = |tag: &Tag, out: &mut Vec<usize>| {
            out.push((tag.id % 4) as usize);
        };
        let counts = response_counts(&tags, 4, &plan);
        assert_eq!(counts.iter().sum::<u32>(), 10);
        // IDs 1..=10: id%4 -> 1,2,3,0,1,2,3,0,1,2 => [2,3,3,2]
        assert_eq!(counts, vec![2, 3, 3, 2]);
    }

    #[test]
    fn multi_slot_plans_count_each_response() {
        let tags = tags(5);
        let plan = |_tag: &Tag, out: &mut Vec<usize>| {
            out.push(0);
            out.push(2);
        };
        let counts = response_counts(&tags, 3, &plan);
        assert_eq!(counts, vec![5, 0, 5]);
    }

    #[test]
    fn silent_tags_contribute_nothing() {
        let tags = tags(7);
        let plan = |_tag: &Tag, _out: &mut Vec<usize>| {};
        let counts = response_counts(&tags, 16, &plan);
        assert!(counts.iter().all(|&c| c == 0));
    }

    #[test]
    fn parallel_and_sequential_agree() {
        // Enough tags to trigger the parallel path.
        let tags = tags(MIN_TAGS_PER_THREAD * 4);
        let plan = |tag: &Tag, out: &mut Vec<usize>| {
            out.push((tag.id % 1024) as usize);
            if tag.id.is_multiple_of(3) {
                out.push(((tag.id / 3) % 1024) as usize);
            }
        };
        let par = response_counts(&tags, 1024, &plan);
        // Sequential reference.
        let mut seq = vec![0u32; 1024];
        let mut scratch = Vec::new();
        for tag in &tags {
            scratch.clear();
            plan(tag, &mut scratch);
            for &s in &scratch {
                seq[s] += 1;
            }
        }
        assert_eq!(par, seq);
    }

    #[test]
    #[should_panic(expected = "slot 5 >= w 4")]
    fn out_of_range_slot_panics() {
        let tags = tags(1);
        let plan = |_tag: &Tag, out: &mut Vec<usize>| out.push(5);
        response_counts(&tags, 4, &plan);
    }

    #[test]
    fn bitframe_senses_prefix_only() {
        let counts = vec![0u32, 1, 0, 2, 0, 3];
        let mut noise = SplitMix64::new(1);
        let frame = BitFrame::sense(&counts, 4, &PerfectChannel, &mut noise);
        assert_eq!(frame.observed(), 4);
        assert_eq!(frame.busy_count(), 2);
        assert_eq!(frame.idle_count(), 2);
        assert!((frame.rho() - 0.5).abs() < 1e-15);
        assert!(!frame.is_busy(0));
        assert!(frame.is_busy(1));
        assert!(!frame.is_busy(2));
        assert!(frame.is_busy(3));
    }

    #[test]
    fn rho_is_idle_fraction_matching_paper_convention() {
        // All slots busy -> rho = 0 (all B(i) = 0); all idle -> rho = 1.
        let mut noise = SplitMix64::new(2);
        let all_busy = BitFrame::sense(&[1, 1, 1], 3, &PerfectChannel, &mut noise);
        assert_eq!(all_busy.rho(), 0.0);
        let all_idle = BitFrame::sense(&[0, 0, 0], 3, &PerfectChannel, &mut noise);
        assert_eq!(all_idle.rho(), 1.0);
    }

    #[test]
    fn aloha_sensing_classifies() {
        let mut noise = SplitMix64::new(3);
        let frame = sense_aloha(&[0, 1, 2, 9], &PerfectChannel, &mut noise);
        assert_eq!(frame.empties(), 1);
        assert_eq!(frame.singletons(), 1);
        assert_eq!(frame.collisions(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot observe")]
    fn observing_beyond_frame_panics() {
        let mut noise = SplitMix64::new(4);
        BitFrame::sense(&[0, 0], 3, &PerfectChannel, &mut noise);
    }

    #[test]
    fn fill_matches_reference_counts() {
        let tags = tags(500);
        let plan = |tag: &Tag, out: &mut Vec<usize>| {
            out.push((tag.rn % 300) as usize);
            if tag.id.is_multiple_of(2) {
                out.push((tag.id % 300) as usize);
            }
        };
        let (w, observe) = (300usize, 100usize);
        let counts = response_counts_reference(&tags, w, &plan, usize::MAX);
        for threads in [1usize, 2, 4, 7] {
            let fill = response_fill_with_threads(&tags, w, observe, &plan, threads);
            assert_eq!(fill.busy.len(), w);
            for (i, &c) in counts.iter().enumerate() {
                assert_eq!(fill.busy.get(i), c > 0, "slot {i}, threads {threads}");
            }
            let want_prefix: u64 = counts[..observe].iter().map(|&c| c as u64).sum();
            assert_eq!(fill.prefix_responses, want_prefix, "threads {threads}");
        }
    }

    #[test]
    fn sense_truth_equals_sense_on_counts() {
        let counts = vec![0u32, 1, 0, 2, 5, 0, 0, 3];
        let mut truth = Bitmap::zeros(counts.len());
        for (i, &c) in counts.iter().enumerate() {
            if c > 0 {
                truth.set(i);
            }
        }
        for observe in [1usize, 4, 8] {
            // Perfect channel: trivially equal.
            let mut n1 = SplitMix64::new(77);
            let mut n2 = SplitMix64::new(77);
            let a = BitFrame::sense(&counts, observe, &PerfectChannel, &mut n1);
            let b = BitFrame::sense_truth(&truth, observe, &PerfectChannel, &mut n2);
            assert_eq!(a.busy_bitmap(), b.busy_bitmap(), "perfect, observe {observe}");
            // Noisy channel: equality requires consuming the identical
            // one-draw-per-slot noise stream.
            let noisy = crate::channel::BitErrorChannel::new(0.3);
            let mut n1 = SplitMix64::new(78);
            let mut n2 = SplitMix64::new(78);
            let a = BitFrame::sense(&counts, observe, &noisy, &mut n1);
            let b = BitFrame::sense_truth(&truth, observe, &noisy, &mut n2);
            assert_eq!(a.busy_bitmap(), b.busy_bitmap(), "noisy, observe {observe}");
            // Streams must be in the same state afterwards.
            assert_eq!(n1.next_u64(), n2.next_u64(), "observe {observe}");
        }
    }

    #[test]
    fn counts_path_equals_reference_at_any_thread_count() {
        let tags = tags(1_000);
        let plan = |tag: &Tag, out: &mut Vec<usize>| {
            out.push((tag.rn % 97) as usize);
        };
        let want = response_counts_reference(&tags, 97, &plan, usize::MAX);
        for threads in [1usize, 2, 4, 9] {
            assert_eq!(response_counts_with_threads(&tags, 97, &plan, threads), want);
        }
    }

    #[test]
    #[should_panic(expected = "slot 7 >= w 4")]
    fn fill_rejects_out_of_range_slots() {
        let tags = tags(1);
        let plan = |_tag: &Tag, out: &mut Vec<usize>| out.push(7);
        response_fill(&tags, 4, 4, &plan);
    }

    #[test]
    #[should_panic(expected = "cannot observe 5 slots of a 4-slot frame")]
    fn fill_rejects_observe_beyond_width() {
        let plan = |_t: &Tag, _o: &mut Vec<usize>| {};
        response_fill(&tags(1), 4, 5, &plan);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_width_frame_rejected() {
        let plan = |_t: &Tag, _o: &mut Vec<usize>| {};
        response_counts(&tags(1), 0, &plan);
    }

    /// A plan whose batched override is deliberately *wrong* (it shifts
    /// every slot by one), so tests can observe which path actually ran.
    struct MarkedPlan;

    impl ResponsePlan for MarkedPlan {
        fn responses(&self, tag: &Tag, out: &mut Vec<usize>) {
            out.push((tag.id % 8) as usize);
        }

        fn fill_chunk(&self, tags: &[Tag], sink: &mut SlotSink<'_>) {
            for tag in tags {
                sink.record((tag.id % 8) as usize + 8);
            }
        }

        fn batched_fill_threshold(&self) -> usize {
            100
        }
    }

    #[test]
    fn scalar_ref_masks_the_batched_override() {
        let tags = tags(10);
        let via_override = response_fill(&tags, 16, 16, &MarkedPlan);
        let via_scalar = response_fill(&tags, 16, 16, &ScalarRef(&MarkedPlan));
        // The override marked its slots; the wrapper must not have.
        assert!((8..16).any(|i| via_override.busy.get(i)));
        assert!(!(8..16).any(|i| via_scalar.busy.get(i)));
        assert!((0..8).any(|i| via_scalar.busy.get(i)));
    }

    #[test]
    fn dispatch_selects_the_kernel_by_population_size() {
        let above = tags(200); // over MarkedPlan's threshold of 100
        let below = tags(50);
        let marked = |fill: &FrameFill| (8..16).any(|i| fill.busy.get(i));
        let auto = FillDispatch::Auto;
        assert!(marked(&response_fill_dispatched(&above, 16, 16, &MarkedPlan, auto, usize::MAX)));
        assert!(!marked(&response_fill_dispatched(&below, 16, 16, &MarkedPlan, auto, usize::MAX)));
        // Forced modes ignore the threshold entirely.
        assert!(marked(&response_fill_dispatched(
            &below, 16, 16, &MarkedPlan, FillDispatch::Batched, usize::MAX
        )));
        assert!(!marked(&response_fill_dispatched(
            &above, 16, 16, &MarkedPlan, FillDispatch::Scalar, usize::MAX
        )));
        // An explicit threshold overrides the plan's declared one.
        assert!(marked(&response_fill_dispatched(
            &below, 16, 16, &MarkedPlan, FillDispatch::Threshold(10), usize::MAX
        )));
        // The counts twin follows the same selection.
        let counts = response_counts_dispatched(&below, 16, &MarkedPlan, auto, usize::MAX);
        assert!(counts[8..].iter().all(|&c| c == 0));
    }

    #[test]
    fn explicit_worker_counts_are_floored_for_small_frames() {
        // 1 000 tags at 4 requested workers clamps to 1 (the satellite-1
        // tail-latency fix); the observation is identical regardless.
        assert_eq!(floored_threads(1_000, 4), 1);
        assert_eq!(floored_threads(FILL_TAGS_PER_WORKER_FLOOR * 4, 4), 4);
        assert_eq!(floored_threads(FILL_TAGS_PER_WORKER_FLOOR * 2, 4), 2);
        assert_eq!(floored_threads(0, 4), 1);
        let tags = tags(1_000);
        let plan = |tag: &Tag, out: &mut Vec<usize>| out.push((tag.rn % 64) as usize);
        let one = response_fill_with_threads(&tags, 64, 64, &plan, 1);
        let four = response_fill_with_threads(&tags, 64, 64, &plan, 4);
        assert_eq!(one, four);
    }
}
