//! # rfid-analysis — the workspace determinism linter, v2
//!
//! PR 2 made a hard promise: `RepeatedOutcome` is **bitwise identical** for
//! `--jobs 1` and `--jobs N`. That promise rests on invariants no compiler
//! checks — no wall-clock or OS entropy in library crates, sequential f64
//! aggregation, stream-split seeding, panic-free hot paths, numerically
//! faithful estimator math. This crate is the enforcement layer: a
//! dependency-free scanner, run as a blocking CI job next to
//! `clippy -D warnings`.
//!
//! v2 rebuilt the engine from flat masked-line search into a real pipeline:
//! [`mask`] blanks comments/literals byte-for-byte, [`lexer`] cuts the
//! residue into spanned tokens, [`scope`] brace-matches them into a tree of
//! `fn`/`impl`/`mod`/block scopes, and the rules in [`rules`] query that
//! tree — so "an `assert!` nested in a loop" and "an `assert!` guarding a
//! fn's preconditions" are different things.
//!
//! | Rule | What it catches |
//! |------|-----------------|
//! | `nondeterminism` | `Instant::now`, `SystemTime`, `thread_rng`, `rand::random`, `HashMap`/`HashSet` in determinism-scoped library crates |
//! | `unwrap` | `.unwrap()` / `.expect(` outside tests, benches, and binaries |
//! | `float-reduction` | `+=`/`sum()` over floats inside `par_fold`-family closures |
//! | `seed-hygiene` | PRNGs seeded from literals or ad-hoc arithmetic instead of `stream_seed` |
//! | `panic-path` | nested slice indexing / `assert!` families / `unchecked_*` in hot-path crates |
//! | `float-sanity` | exact float `==`, `(1.0 - x).ln()`, epsilon-equality in estimator math |
//! | `cast-truncation` | bare narrowing `as` casts on frame/slot/hash-width expressions |
//! | `estimator-registry` | `impl CardinalityEstimator` types absent from the CLI registry or all tests |
//! | `stale-allow` | suppressions (toml or inline) that suppress nothing |
//!
//! Suppressions: `analysis.toml` at the workspace root for file-level
//! policy, or `// analysis:allow(rule): justification` inline (see
//! [`suppress`]). Both demand a real justification and both rot loudly.
//! Output: human text, `--format json`, or `--format sarif` for GitHub
//! code-scanning annotations ([`output`]). See `ANALYSIS.md` for the full
//! contract.
//!
//! The scanner is deliberately dependency-free so the CI job costs one tiny
//! crate compile and no network access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allowlist;
pub mod callgraph;
pub mod dataflow;
pub mod effects;
pub mod fuzz_surface;
pub mod json;
pub mod lexer;
pub mod mask;
pub mod output;
pub mod rules;
pub mod scope;
pub mod source;
pub mod suppress;

pub use allowlist::{AllowEntry, Allowlist, MIN_JUSTIFICATION};
pub use callgraph::CallGraph;
pub use dataflow::{Dataflow, Provenance};
pub use effects::{Effect, EffectSet, Effects};
pub use output::{render_json, render_sarif, render_text};
pub use rules::{
    check_airtime_conservation, check_file, check_fold_order, check_hotpath,
    check_kernel_parity, check_seed_provenance, check_snapshot_surface,
    check_workspace_registry, Finding, RuleId, ALL_RULES, DETERMINISM_CRATES, REGISTRY_PATH,
};
pub use source::{SourceFile, TargetKind};

use std::fmt;
use std::path::{Path, PathBuf};

/// A scan failure (I/O, encoding, or malformed allowlist).
#[derive(Debug)]
pub enum Error {
    /// Reading a source file or directory failed.
    Io(PathBuf, std::io::Error),
    /// A source file is not valid UTF-8; carries the offset of the first
    /// invalid byte.
    NotUtf8(PathBuf, usize),
    /// `analysis.toml` is malformed or an entry lacks justification.
    Allowlist(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(path, err) => write!(f, "{}: {err}", path.display()),
            Error::NotUtf8(path, offset) => write!(
                f,
                "{}: not valid UTF-8 (first invalid byte at offset {offset}); \
                 rfid-analysis scans UTF-8 Rust sources only",
                path.display()
            ),
            Error::Allowlist(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for Error {}

/// The outcome of scanning a workspace.
#[derive(Debug)]
pub struct Report {
    /// Findings that survived both suppression layers, sorted by path then
    /// line.
    pub findings: Vec<Finding>,
    /// Number of rule-scanned files (`tests/` corpus files not included).
    pub files_scanned: usize,
    /// Findings suppressed by `analysis.toml`.
    pub suppressed: usize,
    /// Findings suppressed by inline `// analysis:allow` comments.
    pub suppressed_inline: usize,
    /// The workspace call graph the v3 rules ran over (empty for per-file
    /// scans that never built one). Dumped by `--dump-callgraph` and
    /// embedded in `--format json` output.
    pub callgraph: CallGraph,
    /// The v4 interprocedural effect summaries (parallel to
    /// `callgraph.fns`). Dumped by `--dump-effects` and embedded in
    /// `--format json` output.
    pub effects: Effects,
}

impl Report {
    /// Did the tree pass?
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Scan the workspace rooted at `root`, applying `root/analysis.toml` if it
/// exists.
pub fn scan_workspace(root: &Path) -> Result<Report, Error> {
    let allowlist_path = root.join("analysis.toml");
    let allowlist = if allowlist_path.exists() {
        let text = std::fs::read_to_string(&allowlist_path)
            .map_err(|e| Error::Io(allowlist_path.clone(), e))?;
        Allowlist::parse(&text).map_err(Error::Allowlist)?
    } else {
        Allowlist::default()
    };
    scan_workspace_with(root, &allowlist)
}

/// Scan the workspace rooted at `root` with an explicit allowlist.
pub fn scan_workspace_with(root: &Path, allowlist: &Allowlist) -> Result<Report, Error> {
    // 1. Load every rule-scanned source file.
    let mut files = Vec::new();
    for (rel_path, crate_name) in source_roots(root)? {
        let dir = root.join(&rel_path);
        let mut paths = Vec::new();
        collect_rust_files(&dir, &mut paths)?;
        paths.sort();
        for path in paths {
            let rel = relative_to(&path, root);
            let kind = target_kind(&rel);
            files.push(SourceFile::new(&rel, &crate_name, kind, &read_utf8(&path)?));
        }
    }
    let files_scanned = files.len();

    // 2. Per-file rules.
    let mut findings: Vec<Finding> = files.iter().flat_map(check_file).collect();

    // 3. The cross-file registry rule needs the integration-test corpus,
    //    which the per-file rules deliberately never scan.
    let tests = tests_corpus(root)?;
    findings.extend(check_workspace_registry(&files, &tests));

    // 4. The whole-program rules: build the call graph once, run the v3
    //    provenance fixpoint and the v4 effect fixpoint over it, then the
    //    graph-backed rules.
    let graph = CallGraph::build(&files);
    let flow = Dataflow::compute(&files, &graph);
    let effects = Effects::compute(&files, &graph);
    findings.extend(check_seed_provenance(&files, &graph, &flow));
    findings.extend(check_kernel_parity(&files, &graph, &tests));
    findings.extend(check_fold_order(&files, &graph));
    findings.extend(check_airtime_conservation(&files, &graph, &effects));
    findings.extend(check_hotpath(&files, &graph, &effects));
    findings.extend(check_snapshot_surface(&files, &graph));

    findings.sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));

    // 5. Suppression layers: inline allows first (closest to the code),
    //    then analysis.toml. Each reports its own stale entries; the
    //    allowlist additionally checks entry paths against every file the
    //    scan actually saw, so entries for renamed or deleted files are
    //    called out explicitly rather than lingering as generic debt.
    let known_paths: std::collections::BTreeSet<String> = files
        .iter()
        .chain(tests.iter())
        .map(|f| f.rel_path.clone())
        .collect();
    let (findings, suppressed_inline) = suppress::apply_inline(&files, findings);
    let (mut findings, suppressed) = allowlist.apply(findings, &known_paths);
    findings.sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));
    Ok(Report {
        findings,
        files_scanned,
        suppressed,
        suppressed_inline,
        callgraph: graph,
        effects,
    })
}

/// Read a file, failing with a clean [`Error::NotUtf8`] diagnostic (not a
/// panic, not an opaque I/O error) when it is not UTF-8.
fn read_utf8(path: &Path) -> Result<String, Error> {
    let bytes = std::fs::read(path).map_err(|e| Error::Io(path.to_path_buf(), e))?;
    String::from_utf8(bytes)
        .map_err(|e| Error::NotUtf8(path.to_path_buf(), e.utf8_error().valid_up_to()))
}

/// The `src/` directories to scan: every `crates/*/src` plus the workspace
/// root crate's `src/`. `tests/`, `benches/`, and `examples/` directories
/// are exempt from every per-file rule and therefore never rule-scanned
/// (the registry rule reads `tests/` separately, via [`tests_corpus`]).
fn source_roots(root: &Path) -> Result<Vec<(String, String)>, Error> {
    let mut roots = Vec::new();
    if root.join("src").is_dir() {
        roots.push(("src".to_string(), ".".to_string()));
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let entries =
            std::fs::read_dir(&crates).map_err(|e| Error::Io(crates.clone(), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| Error::Io(crates.clone(), e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let src = entry.path().join("src");
            if src.is_dir() {
                roots.push((format!("crates/{name}/src"), name));
            }
        }
    }
    roots.sort();
    Ok(roots)
}

/// Load the integration-test corpus: `tests/**/*.rs` at the workspace root
/// and under each crate. Only the `estimator-registry` rule reads these —
/// as evidence of coverage, never as rule targets.
fn tests_corpus(root: &Path) -> Result<Vec<SourceFile>, Error> {
    let mut dirs = vec![(root.join("tests"), ".".to_string())];
    let crates = root.join("crates");
    if crates.is_dir() {
        let entries =
            std::fs::read_dir(&crates).map_err(|e| Error::Io(crates.clone(), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| Error::Io(crates.clone(), e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            dirs.push((entry.path().join("tests"), name));
        }
    }
    dirs.sort();
    let mut corpus = Vec::new();
    for (dir, crate_name) in dirs {
        if !dir.is_dir() {
            continue;
        }
        let mut paths = Vec::new();
        collect_rust_files(&dir, &mut paths)?;
        paths.sort();
        for path in paths {
            let rel = relative_to(&path, root);
            corpus.push(SourceFile::new(
                &rel,
                &crate_name,
                TargetKind::Bin, // test targets: rules never run on these
                &read_utf8(&path)?,
            ));
        }
    }
    Ok(corpus)
}

/// Recursively collect `.rs` files under `dir`.
fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), Error> {
    let entries = std::fs::read_dir(dir).map_err(|e| Error::Io(dir.to_path_buf(), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| Error::Io(dir.to_path_buf(), e))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated.
fn relative_to(path: &Path, root: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Infer the Cargo target kind from a workspace-relative path.
fn target_kind(rel: &str) -> TargetKind {
    if rel.contains("/src/bin/") || rel.ends_with("/src/main.rs") {
        TargetKind::Bin
    } else {
        TargetKind::Lib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_kind_classifies_paths() {
        assert_eq!(target_kind("crates/sim/src/lib.rs"), TargetKind::Lib);
        assert_eq!(target_kind("crates/cli/src/main.rs"), TargetKind::Bin);
        assert_eq!(
            target_kind("crates/experiments/src/bin/fig07.rs"),
            TargetKind::Bin
        );
        assert_eq!(target_kind("src/lib.rs"), TargetKind::Lib);
    }
}
