//! # rfid-analysis — the workspace determinism linter
//!
//! PR 2 made a hard promise: `RepeatedOutcome` is **bitwise identical** for
//! `--jobs 1` and `--jobs N`. That promise rests on invariants no compiler
//! checks — no wall-clock or OS entropy in library crates, sequential f64
//! aggregation, stream-split seeding, panic-free hot paths. This crate is
//! the enforcement layer: a dependency-free, token-level scanner with four
//! workspace-specific rules, run as a blocking CI job next to
//! `clippy -D warnings`.
//!
//! | Rule | What it catches |
//! |------|-----------------|
//! | `nondeterminism` | `Instant::now`, `SystemTime`, `thread_rng`, `rand::random`, `HashMap`/`HashSet` in determinism-scoped library crates |
//! | `unwrap` | `.unwrap()` / `.expect(` outside tests, benches, and binaries |
//! | `float-reduction` | `+=`/`sum()` over floats inside `par_fold`-family closures |
//! | `seed-hygiene` | PRNGs seeded from literals or ad-hoc arithmetic instead of `stream_seed` |
//!
//! Suppressions live in `analysis.toml` at the workspace root and require a
//! justification; stale entries are themselves findings. See `ANALYSIS.md`
//! for the full contract.
//!
//! The scanner is deliberately dependency-free (plain token/line scanning
//! over masked source) so the CI job costs one tiny crate compile and no
//! network access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allowlist;
pub mod mask;
pub mod rules;
pub mod source;

pub use allowlist::{AllowEntry, Allowlist, MIN_JUSTIFICATION};
pub use rules::{check_file, Finding, RuleId, DETERMINISM_CRATES};
pub use source::{SourceFile, TargetKind};

use std::fmt;
use std::path::{Path, PathBuf};

/// A scan failure (I/O or malformed allowlist).
#[derive(Debug)]
pub enum Error {
    /// Reading a source file or directory failed.
    Io(PathBuf, std::io::Error),
    /// `analysis.toml` is malformed or an entry lacks justification.
    Allowlist(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(path, err) => write!(f, "{}: {err}", path.display()),
            Error::Allowlist(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for Error {}

/// The outcome of scanning a workspace.
#[derive(Debug)]
pub struct Report {
    /// Findings that survived the allowlist, sorted by path then line.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Findings suppressed by `analysis.toml`.
    pub suppressed: usize,
}

impl Report {
    /// Did the tree pass?
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Scan the workspace rooted at `root`, applying `root/analysis.toml` if it
/// exists.
pub fn scan_workspace(root: &Path) -> Result<Report, Error> {
    let allowlist_path = root.join("analysis.toml");
    let allowlist = if allowlist_path.exists() {
        let text = std::fs::read_to_string(&allowlist_path)
            .map_err(|e| Error::Io(allowlist_path.clone(), e))?;
        Allowlist::parse(&text).map_err(Error::Allowlist)?
    } else {
        Allowlist::default()
    };
    scan_workspace_with(root, &allowlist)
}

/// Scan the workspace rooted at `root` with an explicit allowlist.
pub fn scan_workspace_with(root: &Path, allowlist: &Allowlist) -> Result<Report, Error> {
    let mut findings = Vec::new();
    let mut files_scanned = 0;
    for (rel_path, crate_name) in source_roots(root)? {
        let dir = root.join(&rel_path);
        let mut files = Vec::new();
        collect_rust_files(&dir, &mut files)?;
        files.sort();
        for file in files {
            let rel = relative_to(&file, root);
            let kind = target_kind(&rel);
            let text =
                std::fs::read_to_string(&file).map_err(|e| Error::Io(file.clone(), e))?;
            let source = SourceFile::new(&rel, &crate_name, kind, &text);
            findings.extend(check_file(&source));
            files_scanned += 1;
        }
    }
    findings.sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));
    let (findings, suppressed) = allowlist.apply(findings);
    Ok(Report {
        findings,
        files_scanned,
        suppressed,
    })
}

/// The `src/` directories to scan: every `crates/*/src` plus the workspace
/// root crate's `src/`. `tests/`, `benches/`, and `examples/` directories
/// are exempt from every rule and therefore never scanned.
fn source_roots(root: &Path) -> Result<Vec<(String, String)>, Error> {
    let mut roots = Vec::new();
    if root.join("src").is_dir() {
        roots.push(("src".to_string(), ".".to_string()));
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let entries =
            std::fs::read_dir(&crates).map_err(|e| Error::Io(crates.clone(), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| Error::Io(crates.clone(), e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let src = entry.path().join("src");
            if src.is_dir() {
                roots.push((format!("crates/{name}/src"), name));
            }
        }
    }
    roots.sort();
    Ok(roots)
}

/// Recursively collect `.rs` files under `dir`.
fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), Error> {
    let entries = std::fs::read_dir(dir).map_err(|e| Error::Io(dir.to_path_buf(), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| Error::Io(dir.to_path_buf(), e))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated.
fn relative_to(path: &Path, root: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Infer the Cargo target kind from a workspace-relative path.
fn target_kind(rel: &str) -> TargetKind {
    if rel.contains("/src/bin/") || rel.ends_with("/src/main.rs") {
        TargetKind::Bin
    } else {
        TargetKind::Lib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_kind_classifies_paths() {
        assert_eq!(target_kind("crates/sim/src/lib.rs"), TargetKind::Lib);
        assert_eq!(target_kind("crates/cli/src/main.rs"), TargetKind::Bin);
        assert_eq!(
            target_kind("crates/experiments/src/bin/fig07.rs"),
            TargetKind::Bin
        );
        assert_eq!(target_kind("src/lib.rs"), TargetKind::Lib);
    }
}
