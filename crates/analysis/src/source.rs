//! A scanned source file: masked text, token stream, scope tree, and line
//! table.
//!
//! Rules never re-parse the file; they ask this model five questions:
//! which line a byte offset falls on, whether a line sits inside a
//! `#[cfg(test)]` region, which scopes (fn/impl/mod/block) enclose a
//! token, which line spans belong to the argument list of a parallel-fold
//! call, and what the original (unmasked) text of a line was — the last
//! one is how inline `// analysis:allow` suppressions are read.

use crate::lexer::{lex, Token};
use crate::mask::mask_source_with_comments;
use crate::scope::ScopeTree;
use std::ops::Range;

/// Which Cargo target a file belongs to, as inferred from its path. The
/// rules use this to scope themselves (e.g. `unwrap` is allowed in `bin`
/// targets, the determinism rules only run over library targets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetKind {
    /// A library target (`src/**` except `src/bin/**` and `src/main.rs`).
    Lib,
    /// A binary target (`src/bin/**` or `src/main.rs`).
    Bin,
}

/// One source file prepared for scanning.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// The crate directory name this file belongs to (e.g. `sim`), or
    /// `"."` for the workspace root crate.
    pub crate_name: String,
    /// Inferred target kind.
    pub kind: TargetKind,
    /// Original text, split into lines (no trailing newlines).
    lines: Vec<String>,
    /// Masked text, split into lines, parallel to `lines`.
    masked_lines: Vec<String>,
    /// Masked full text (for region searches and as the token backing).
    masked: String,
    /// The token stream over `masked`.
    tokens: Vec<Token>,
    /// The brace-matched scope tree over `tokens`.
    scopes: ScopeTree,
    /// Byte offset of the start of each line in `masked`.
    line_starts: Vec<usize>,
    /// Per-byte comment map parallel to `masked`: `true` for bytes that
    /// belong to a comment (introducer included), `false` for code and
    /// string/char-literal bytes.
    comment: Vec<bool>,
}

impl SourceFile {
    /// Prepare `text` (the contents of `rel_path`) for scanning.
    pub fn new(rel_path: &str, crate_name: &str, kind: TargetKind, text: &str) -> Self {
        let (masked_bytes, comment) = mask_source_with_comments(text);
        // Masked output only ever replaces bytes with spaces, so it is
        // valid UTF-8 whenever the input was; fall back lossily otherwise.
        let masked = String::from_utf8_lossy(&masked_bytes).into_owned();
        let lines: Vec<String> = text.lines().map(str::to_string).collect();
        let masked_lines: Vec<String> = masked.lines().map(str::to_string).collect();
        let mut line_starts = vec![0];
        for (i, b) in masked.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let tokens = lex(&masked);
        let scopes = ScopeTree::build(&masked, &tokens);
        Self {
            rel_path: rel_path.to_string(),
            crate_name: crate_name.to_string(),
            kind,
            lines,
            masked_lines,
            masked,
            tokens,
            scopes,
            line_starts,
            comment,
        }
    }

    /// Number of lines.
    pub fn line_count(&self) -> usize {
        self.lines.len()
    }

    /// Original text of 1-based `line` (empty if out of range).
    pub fn line(&self, line: usize) -> &str {
        self.lines.get(line - 1).map_or("", String::as_str)
    }

    /// Masked text of 1-based `line` (empty if out of range).
    pub fn masked_line(&self, line: usize) -> &str {
        self.masked_lines.get(line - 1).map_or("", String::as_str)
    }

    /// The full masked text.
    pub fn masked(&self) -> &str {
        &self.masked
    }

    /// The token stream (backed by [`Self::masked`]).
    pub fn tokens(&self) -> &[Token] {
        &self.tokens
    }

    /// Text of token `i`.
    pub fn token_text(&self, i: usize) -> &str {
        self.tokens[i].text(&self.masked)
    }

    /// The scope tree.
    pub fn scopes(&self) -> &ScopeTree {
        &self.scopes
    }

    /// Is 1-based `line` inside a `#[cfg(test)]` item?
    pub fn in_test_region(&self, line: usize) -> bool {
        self.scopes.in_test_region(line)
    }

    /// 1-based line of a byte offset into the masked text.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// If byte column `col` (0-based) of 1-based `line` sits inside a
    /// comment, return the column where that comment starts *on this line*
    /// (a block comment spilling over from a previous line starts at
    /// column 0). `None` when the byte is code or string-literal content —
    /// this is how [`suppress`](crate::suppress) rejects
    /// `analysis:allow(…)` markers that live inside strings.
    pub fn comment_start_col(&self, line: usize, col: usize) -> Option<usize> {
        let line_start = *self.line_starts.get(line.checked_sub(1)?)?;
        let offset = line_start + col;
        if !self.comment.get(offset).copied().unwrap_or(false) {
            return None;
        }
        let mut start = offset;
        while start > line_start && self.comment[start - 1] {
            start -= 1;
        }
        Some(start - line_start)
    }

    /// Does the masked text contain `name` as a whole identifier?
    pub fn mentions_ident(&self, name: &str) -> bool {
        let bytes = self.masked.as_bytes();
        let mut from = 0;
        while let Some(pos) = self.masked[from..].find(name) {
            let start = from + pos;
            let end = start + name.len();
            let before_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
            let after_ok = bytes.get(end).is_none_or(|&b| !is_ident_byte(b));
            if before_ok && after_ok {
                return true;
            }
            from = end;
        }
        false
    }

    /// 1-based line spans of the argument lists of every call to one of
    /// `callees` (matched as whole identifiers followed by `(`).
    pub fn call_regions(&self, callees: &[&str]) -> Vec<Range<usize>> {
        let bytes = self.masked.as_bytes();
        let mut regions = Vec::new();
        for callee in callees {
            let mut from = 0;
            while let Some(pos) = self.masked[from..].find(callee) {
                let start = from + pos;
                let end = start + callee.len();
                from = end;
                // Whole-identifier match: no ident char on either side.
                let before_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
                let after = bytes.get(end).copied();
                if !before_ok || after != Some(b'(') {
                    continue;
                }
                if let Some(close) = match_delim(bytes, end, b'(', b')') {
                    regions.push(self.line_of(end)..self.line_of(close) + 1);
                }
            }
        }
        regions
    }
}

/// Is `b` an identifier byte (`[A-Za-z0-9_]`)?
fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Given masked bytes and the index of an opening delimiter, return the
/// index of its matching closer (ignoring strings/comments, which are
/// already blanked).
fn match_delim(bytes: &[u8], open: usize, open_b: u8, close_b: u8) -> Option<usize> {
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        if b == open_b {
            depth += 1;
        } else if b == close_b {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(text: &str) -> SourceFile {
        SourceFile::new("crates/demo/src/lib.rs", "demo", TargetKind::Lib, text)
    }

    #[test]
    fn test_regions_cover_cfg_test_modules() {
        let src = "\
pub fn real() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        real();
    }
}

pub fn after() {}
";
        let f = file(src);
        assert!(!f.in_test_region(1));
        assert!(f.in_test_region(3) || f.in_test_region(4), "attr or mod line");
        assert!(f.in_test_region(7));
        assert!(!f.in_test_region(11));
    }

    #[test]
    fn blockless_cfg_test_items_end_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashSet;\npub fn f() {}\n";
        let f = file(src);
        assert!(f.in_test_region(2));
        assert!(!f.in_test_region(3));
    }

    #[test]
    fn call_regions_span_the_argument_list() {
        let src = "\
fn demo() {
    let x = par_fold(
        &items,
        1,
        || 0.0,
    );
    other();
}
";
        let f = file(src);
        let regions = f.call_regions(&["par_fold"]);
        assert_eq!(regions.len(), 1);
        assert!(regions[0].contains(&2));
        assert!(regions[0].contains(&6));
        assert!(!regions[0].contains(&7));
    }

    #[test]
    fn call_regions_require_whole_identifier() {
        let src = "fn f() { not_par_fold(1); par_folded(2); }\n";
        let f = file(src);
        assert!(f.call_regions(&["par_fold"]).is_empty());
    }

    #[test]
    fn line_accessors_are_one_based() {
        let f = file("first\nsecond\n");
        assert_eq!(f.line(1), "first");
        assert_eq!(f.line(2), "second");
        assert_eq!(f.line_count(), 2);
    }

    #[test]
    fn mentions_ident_is_word_scoped() {
        let f = file("pub fn go() { let zoe_like = 1; let z = Zoe::default(); }\n");
        assert!(f.mentions_ident("Zoe"));
        assert!(!f.mentions_ident("zoe"));
        assert!(!f.mentions_ident("oe_lik"));
    }

    #[test]
    fn comment_start_col_distinguishes_comments_from_strings() {
        let f = file("let s = \"// fake\"; // real\n");
        let src = "let s = \"// fake\"; // real";
        let fake = src.find("fake").expect("fixture");
        let real = src.find("real").expect("fixture");
        assert_eq!(f.comment_start_col(1, fake), None, "string content");
        assert_eq!(f.comment_start_col(1, real), Some(src.rfind("//").expect("fixture")));
        assert_eq!(f.comment_start_col(1, 0), None, "code");
    }

    #[test]
    fn mentions_ident_ignores_comments_and_strings() {
        let f = file("// Zoe is mentioned here\npub const HINT: &str = \"Zoe\";\n");
        assert!(!f.mentions_ident("Zoe"));
    }
}
