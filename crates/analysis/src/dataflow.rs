//! Seed-provenance dataflow over the token stream and the call graph.
//!
//! The workspace's determinism contract says every PRNG must be seeded
//! from a value *derived from a seed parameter* (ultimately routed through
//! `rfid_hash::stream_seed`). The v2 `seed-hygiene` rule checks the text
//! of the constructor argument; this pass checks where the value **came
//! from**, through assignments and across calls.
//!
//! The abstract domain is a four-point lattice:
//!
//! ```text
//!                Unknown   (top: mixed or unanalyzable origin)
//!              /    |    \
//!    SeedDerived Literal External   (definite origins)
//!              \    |    /
//!                bottom    (no evidence yet — Option::None)
//! ```
//!
//! [`join`] is the least upper bound: equal values join to themselves,
//! different definite values to `Unknown`. Evidence-free expressions
//! (field reads, std calls, consts of other files) evaluate to `Unknown`,
//! which no rule flags — the pass only reports origins it can prove.
//!
//! Two layers:
//!
//! - **Intraprocedural** ([`Dataflow::eval_at`]): a single forward walk
//!   over a fn body tracking `let` bindings and assignments; expression
//!   evaluation is a flat join over *evidence atoms* (literals, tracked
//!   locals, parameters, single-literal `const`s, calls with a known
//!   return provenance, and recognized wall-clock/entropy externals).
//!   Loops and branches are not joined — the walk is linear, which biases
//!   toward `Unknown` (safe: fewer findings), never toward a false claim.
//! - **Interprocedural** ([`Dataflow::compute`]): a fixpoint that
//!   propagates actual-argument provenance into callee parameters across
//!   resolved call-graph edges, and function return summaries (the join
//!   of `return` expressions and the trailing body expression) back into
//!   call-site evaluation. Parameters no workspace library caller ever
//!   supplies stay [`Provenance::SeedDerived`] — they are the trusted
//!   boundary where a real master seed enters. Call sites inside
//!   `#[cfg(test)]` regions and non-library targets do not propagate:
//!   tests and binaries may pass fixed seeds by design.

use crate::callgraph::{CallGraph, FnId, Resolution};
use crate::lexer::TokenKind;
use crate::source::{SourceFile, TargetKind};
use std::collections::BTreeMap;
use std::ops::Range;

/// Abstract origin of a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Provenance {
    /// Transitively derived from a seed parameter (or from a fn boundary
    /// the workspace never crosses — the trusted entry).
    SeedDerived,
    /// Derived from hard-coded numeric literals.
    Literal,
    /// Derived from a wall-clock / OS-entropy source.
    External,
    /// Mixed or unanalyzable origin. Never flagged.
    Unknown,
}

/// Least upper bound of two lattice points.
pub fn join(a: Provenance, b: Provenance) -> Provenance {
    if a == b {
        a
    } else {
        Provenance::Unknown
    }
}

/// Fn names (last path segment, `.`-methods included) whose call result is
/// wall-clock or OS-entropy derived.
const EXTERNAL_SOURCES: &[&str] = &[
    "now",
    "elapsed",
    "thread_rng",
    "random",
    "from_entropy",
    "duration_since",
    "as_nanos",
    "as_micros",
    "as_millis",
    "as_secs",
];

/// One piece of evidence inside an expression.
#[derive(Debug, Clone, Copy)]
struct Atom {
    provenance: Provenance,
    /// Did the evidence arrive through a name or call (as opposed to a
    /// literal spelled right here)? Direct literals are `seed-hygiene`'s
    /// territory; the provenance rule only fires on indirect evidence.
    indirect: bool,
}

/// The result of evaluating one expression.
#[derive(Debug, Clone, Copy)]
pub struct EvalOutcome {
    /// Joined provenance of all evidence (`Unknown` when none).
    pub provenance: Provenance,
    /// Was any evidence indirect (a variable, parameter, const, or call)?
    pub indirect: bool,
}

/// The computed dataflow facts for a whole workspace.
#[derive(Debug)]
pub struct Dataflow {
    /// Per fn, per parameter: the join of actual-argument provenances
    /// from every propagating call site (`None` = no such caller).
    params: Vec<Vec<Option<Provenance>>>,
    /// Per fn: return-value provenance summary (`None` = no evidence).
    ret: Vec<Option<Provenance>>,
    /// Per file: consts bound to a single numeric literal.
    literal_consts: Vec<BTreeMap<String, ()>>,
}

/// Iteration cap for the fixpoint. The lattice has height 2 and joins are
/// monotone, so convergence is fast; the cap is a guard against a bug, not
/// a tuning knob.
const MAX_ROUNDS: usize = 10;

impl Dataflow {
    /// Run the analysis to fixpoint over `files` and its `graph`.
    pub fn compute(files: &[SourceFile], graph: &CallGraph) -> Self {
        let literal_consts = files.iter().map(collect_literal_consts).collect();
        let mut flow = Dataflow {
            params: graph.fns.iter().map(|d| vec![None; d.params.len()]).collect(),
            ret: vec![None; graph.fns.len()],
            literal_consts,
        };
        for _ in 0..MAX_ROUNDS {
            let mut changed = false;
            for (id, def) in graph.fns.iter().enumerate() {
                let file = &files[def.file];
                let propagate = file.kind == TargetKind::Lib && !def.cfg_test;
                let walk = flow.walk_fn(id, files, graph, def.body_tokens.end);
                // Return summary: trailing expression + return statements.
                let ret = flow.ret_summary(id, files, graph, &walk.env);
                if flow.ret[id] != ret {
                    flow.ret[id] = ret;
                    changed = true;
                }
                if !propagate {
                    continue;
                }
                // Push actual-arg provenance into callee params.
                for (call_token, args) in &walk.calls {
                    let Some(site) = graph.resolution_at(def.file, *call_token) else {
                        continue;
                    };
                    let Resolution::Resolved(targets) = &site.resolution else {
                        continue;
                    };
                    for &target in targets {
                        let tdef = &graph.fns[target];
                        // Receiver calls skip the `self` slot.
                        let offset = usize::from(
                            site.method_call && tdef.params.first().is_some_and(|p| p == "self"),
                        );
                        for (i, outcome) in args.iter().enumerate() {
                            let slot = i + offset;
                            if slot >= flow.params[target].len() {
                                break;
                            }
                            let new = match flow.params[target][slot] {
                                None => Some(outcome.provenance),
                                Some(old) => Some(join(old, outcome.provenance)),
                            };
                            if flow.params[target][slot] != new {
                                flow.params[target][slot] = new;
                                changed = true;
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        flow
    }

    /// The provenance of parameter `i` of `f`, as seen from inside `f`.
    /// Parameters without a propagating workspace caller are the trusted
    /// seed boundary.
    pub fn param_provenance(&self, f: FnId, i: usize) -> Provenance {
        self.params
            .get(f)
            .and_then(|p| p.get(i))
            .copied()
            .flatten()
            .unwrap_or(Provenance::SeedDerived)
    }

    /// The return-provenance summary of `f`, if any evidence exists.
    pub fn ret_provenance(&self, f: FnId) -> Option<Provenance> {
        self.ret.get(f).copied().flatten()
    }

    /// Evaluate the expression spanning tokens `range` inside fn `f`,
    /// with the local environment built by walking the body up to
    /// `range.start`.
    pub fn eval_at(
        &self,
        f: FnId,
        files: &[SourceFile],
        graph: &CallGraph,
        range: Range<usize>,
    ) -> EvalOutcome {
        let walk = self.walk_fn(f, files, graph, range.start);
        self.eval_range(f, files, graph, &walk.env, range)
    }

    /// Walk fn `f`'s body up to token `stop`, building the local
    /// environment and recording evaluated argument lists of every call.
    fn walk_fn(
        &self,
        f: FnId,
        files: &[SourceFile],
        graph: &CallGraph,
        stop: usize,
    ) -> WalkResult {
        let def = &graph.fns[f];
        let file = &files[def.file];
        let mut env: BTreeMap<String, Atom> = BTreeMap::new();
        let mut calls: Vec<(usize, Vec<EvalOutcome>)> = Vec::new();
        let body = def.body_tokens.clone();
        let stop = stop.min(body.end);
        let mut i = body.start;
        while i < stop {
            let text = file.token_text(i);
            // `let [mut] name = expr ;` — track simple bindings. Tuple or
            // struct patterns clear their names to Unknown instead.
            if text == "let" {
                if let Some((names, eq)) = let_binding(file, i, body.end) {
                    let end = expr_end(file, eq + 1, body.end);
                    if names.len() == 1 {
                        let outcome =
                            self.eval_range(f, files, graph, &env, eq + 1..end);
                        env.insert(
                            names[0].clone(),
                            Atom {
                                provenance: outcome.provenance,
                                indirect: true,
                            },
                        );
                    } else {
                        for name in names {
                            env.insert(
                                name,
                                Atom {
                                    provenance: Provenance::Unknown,
                                    indirect: true,
                                },
                            );
                        }
                    }
                    // Record calls inside the initializer too.
                    self.record_calls(f, files, graph, &env, i..end, &mut calls);
                    i = end;
                    continue;
                }
            }
            // `name = expr ;` / `name op= expr ;` — reassignment of a
            // tracked local (compound ops join with the old value).
            if file.tokens()[i].kind == TokenKind::Ident
                && env.contains_key(text)
                && i + 1 < stop
            {
                let op = file.token_text(i + 1);
                let compound = matches!(
                    op,
                    "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>="
                );
                if (op == "=" || compound)
                    && (i == body.start || file.token_text(i - 1) != ".")
                {
                    let end = expr_end(file, i + 2, body.end);
                    let outcome = self.eval_range(f, files, graph, &env, i + 2..end);
                    let name = text.to_string();
                    let old = env[&name];
                    let provenance = if compound {
                        join(old.provenance, outcome.provenance)
                    } else {
                        outcome.provenance
                    };
                    env.insert(
                        name,
                        Atom {
                            provenance,
                            indirect: true,
                        },
                    );
                    self.record_calls(f, files, graph, &env, i..end, &mut calls);
                    i = end;
                    continue;
                }
            }
            // Any other call site: evaluate its args for propagation.
            if graph.resolution_at(def.file, i).is_some() {
                let args = self.call_args(f, files, graph, &env, i);
                calls.push((i, args));
            }
            i += 1;
        }
        WalkResult { env, calls }
    }

    /// Record every resolved call inside `range` (used for initializer
    /// expressions, whose tokens the main walk skips over).
    fn record_calls(
        &self,
        f: FnId,
        files: &[SourceFile],
        graph: &CallGraph,
        env: &BTreeMap<String, Atom>,
        range: Range<usize>,
        out: &mut Vec<(usize, Vec<EvalOutcome>)>,
    ) {
        let def = &graph.fns[f];
        for i in range {
            if graph.resolution_at(def.file, i).is_some() {
                let args = self.call_args(f, files, graph, env, i);
                out.push((i, args));
            }
        }
    }

    /// Evaluate each top-level argument of the call whose name is at
    /// token `call`.
    fn call_args(
        &self,
        f: FnId,
        files: &[SourceFile],
        graph: &CallGraph,
        env: &BTreeMap<String, Atom>,
        call: usize,
    ) -> Vec<EvalOutcome> {
        let def = &graph.fns[f];
        let file = &files[def.file];
        split_args(file, call, def.body_tokens.end)
            .into_iter()
            .map(|r| self.eval_range(f, files, graph, env, r))
            .collect()
    }

    /// Flat evidence-join evaluation of a token range.
    fn eval_range(
        &self,
        f: FnId,
        files: &[SourceFile],
        graph: &CallGraph,
        env: &BTreeMap<String, Atom>,
        range: Range<usize>,
    ) -> EvalOutcome {
        let def = &graph.fns[f];
        let file = &files[def.file];
        let consts = &self.literal_consts[def.file];
        let mut atoms: Vec<Atom> = Vec::new();
        for i in range.clone() {
            let token = &file.tokens()[i];
            match token.kind {
                TokenKind::Int | TokenKind::Float => atoms.push(Atom {
                    provenance: Provenance::Literal,
                    indirect: false,
                }),
                TokenKind::Ident => {
                    let text = file.token_text(i);
                    if text == "self" || text == "Self" {
                        // A receiver reference carries no origin of its
                        // own; fields read through it are Unknown below.
                        continue;
                    }
                    let after_dot = i > 0 && file.token_text(i - 1) == ".";
                    if let Some(site) = graph.resolution_at(def.file, i) {
                        match &site.resolution {
                            Resolution::Resolved(targets) => {
                                // Bottom (no summary yet) contributes
                                // nothing; the fixpoint grows it later.
                                let mut ret: Option<Provenance> = None;
                                for &t in targets {
                                    if let Some(p) = self.ret_provenance(t) {
                                        ret = Some(match ret {
                                            None => p,
                                            Some(old) => join(old, p),
                                        });
                                    }
                                }
                                if let Some(p) = ret {
                                    atoms.push(Atom {
                                        provenance: p,
                                        indirect: true,
                                    });
                                }
                            }
                            Resolution::External(name) => {
                                let last = name
                                    .rsplit("::")
                                    .next()
                                    .unwrap_or(name)
                                    .trim_start_matches('.');
                                let provenance = if EXTERNAL_SOURCES.contains(&last) {
                                    Provenance::External
                                } else {
                                    // std / foreign calls: result origin
                                    // is unanalyzable — poison toward the
                                    // top so mixing constants inside PRNG
                                    // step fns never read as "literal".
                                    Provenance::Unknown
                                };
                                atoms.push(Atom {
                                    provenance,
                                    indirect: true,
                                });
                            }
                        }
                    } else if after_dot {
                        // Field access: unanalyzable origin.
                        atoms.push(Atom {
                            provenance: Provenance::Unknown,
                            indirect: true,
                        });
                    } else if let Some(atom) = env.get(text) {
                        atoms.push(*atom);
                    } else if let Some(pi) = def.params.iter().position(|p| p == text) {
                        atoms.push(Atom {
                            provenance: self.param_provenance(f, pi),
                            indirect: true,
                        });
                    } else if consts.contains_key(text) {
                        atoms.push(Atom {
                            provenance: Provenance::Literal,
                            indirect: true,
                        });
                    }
                    // Types, path segments, unknown names: no evidence.
                }
                _ => {}
            }
        }
        let provenance = atoms
            .iter()
            .map(|a| a.provenance)
            .reduce(join)
            .unwrap_or(Provenance::Unknown);
        EvalOutcome {
            provenance,
            indirect: atoms.iter().any(|a| a.indirect),
        }
    }

    /// Return summary of `f`: the join of every `return <expr>;` and the
    /// trailing expression of the body, evaluated in the end-of-body env.
    fn ret_summary(
        &self,
        f: FnId,
        files: &[SourceFile],
        graph: &CallGraph,
        env: &BTreeMap<String, Atom>,
    ) -> Option<Provenance> {
        let def = &graph.fns[f];
        let file = &files[def.file];
        let body = def.body_tokens.clone();
        let mut result: Option<Provenance> = None;
        let mut merge = |o: EvalOutcome| {
            if o.provenance != Provenance::Unknown || o.indirect {
                result = Some(match result {
                    None => o.provenance,
                    Some(old) => join(old, o.provenance),
                });
            }
        };
        // `return` statements anywhere in the body.
        let mut i = body.start;
        while i < body.end {
            if file.token_text(i) == "return" {
                let end = expr_end(file, i + 1, body.end);
                if end > i + 1 {
                    merge(self.eval_range(f, files, graph, env, i + 1..end));
                }
                i = end;
            } else {
                i += 1;
            }
        }
        // Trailing expression: tokens after the last `;` or block-`}` at
        // depth 0. `)`/`]` are NOT statement boundaries — a trailing call
        // expression ends in one (`Instant::now()`), and treating it as a
        // boundary would push `tail` past the expression it closes.
        let mut depth = 0i64;
        let mut tail = body.start;
        for i in body.clone() {
            match file.token_text(i) {
                "{" | "(" | "[" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        tail = i + 1;
                    }
                }
                ")" | "]" => depth -= 1,
                ";" if depth == 0 => tail = i + 1,
                _ => {}
            }
        }
        if tail < body.end {
            merge(self.eval_range(f, files, graph, env, tail..body.end));
        }
        result
    }
}

/// The outcome of walking one fn body.
struct WalkResult {
    env: BTreeMap<String, Atom>,
    /// `(call-name token, evaluated args)` for every resolved call seen.
    calls: Vec<(usize, Vec<EvalOutcome>)>,
}

/// Parse `let [mut] name [: ty] =` at token `i`; returns the bound names
/// and the index of the `=` token. `None` when there is no initializer
/// before the statement ends.
fn let_binding(file: &SourceFile, i: usize, end: usize) -> Option<(Vec<String>, usize)> {
    let mut names = Vec::new();
    let mut j = i + 1;
    let mut depth = 0i64;
    while j < end {
        let text = file.token_text(j);
        match text {
            "=" if depth == 0 => {
                return if names.is_empty() {
                    None
                } else {
                    Some((names, j))
                }
            }
            "==" | ";" => return None,
            "(" | "[" | "{" | "<" => {
                depth += 1;
                j += 1;
            }
            ")" | "]" | "}" | ">" => {
                depth -= 1;
                j += 1;
            }
            ":" if depth == 0 => {
                // Type ascription: skip to the `=` (or give up at `;`).
                while j < end && !matches!(file.token_text(j), "=" | ";") {
                    j += 1;
                }
            }
            "mut" | "ref" | "&" => j += 1,
            _ => {
                if file.tokens()[j].kind == TokenKind::Ident && depth >= 0 {
                    names.push(text.to_string());
                }
                j += 1;
            }
        }
    }
    None
}

/// Index one past the end of the expression starting at `start`: the
/// matching `;` (or an unbalanced closer) at depth 0.
fn expr_end(file: &SourceFile, start: usize, end: usize) -> usize {
    let mut depth = 0i64;
    let mut j = start;
    while j < end {
        match file.token_text(j) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            ";" if depth == 0 => return j,
            _ => {}
        }
        j += 1;
    }
    end
}

/// Split the argument list of the call whose name is at `call` into
/// top-level comma-separated token ranges. Commas inside nested
/// delimiters or closure parameter pipes do not split.
pub(crate) fn split_args(file: &SourceFile, call: usize, end: usize) -> Vec<Range<usize>> {
    // Find the opening paren (possibly past a turbofish).
    let mut open = call + 1;
    if open < end && file.token_text(open) == "::" {
        let mut depth = 0i64;
        open += 1;
        while open < end {
            match file.token_text(open) {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                _ => {}
            }
            open += 1;
            if depth <= 0 {
                break;
            }
        }
    }
    if open >= end || file.token_text(open) != "(" {
        return Vec::new();
    }
    let mut args = Vec::new();
    let mut depth = 0i64;
    let mut in_pipes = false;
    let mut arg_start = open + 1;
    let mut j = open;
    while j < end {
        match file.token_text(j) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    if j > arg_start {
                        args.push(arg_start..j);
                    }
                    return args;
                }
            }
            "|" if depth == 1 => in_pipes = !in_pipes,
            "," if depth == 1 && !in_pipes => {
                args.push(arg_start..j);
                arg_start = j + 1;
            }
            _ => {}
        }
        j += 1;
    }
    args
}

/// `const NAME [: ty] = <single numeric literal> ;` anywhere in the file.
fn collect_literal_consts(file: &SourceFile) -> BTreeMap<String, ()> {
    let mut consts = BTreeMap::new();
    let tokens = file.tokens();
    let mut i = 0;
    while i + 1 < tokens.len() {
        if file.token_text(i) == "const" && tokens[i + 1].kind == TokenKind::Ident {
            let name = file.token_text(i + 1).to_string();
            // Find `=` before `;`.
            let mut j = i + 2;
            while j < tokens.len() && !matches!(file.token_text(j), "=" | ";") {
                j += 1;
            }
            if j < tokens.len() && file.token_text(j) == "=" {
                let lit = j + 1 < tokens.len()
                    && matches!(tokens[j + 1].kind, TokenKind::Int | TokenKind::Float)
                    && j + 2 < tokens.len()
                    && file.token_text(j + 2) == ";";
                if lit {
                    consts.insert(name, ());
                }
            }
        }
        i += 1;
    }
    consts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::source::{SourceFile, TargetKind};

    const P: [Provenance; 4] = [
        Provenance::SeedDerived,
        Provenance::Literal,
        Provenance::External,
        Provenance::Unknown,
    ];

    #[test]
    fn join_is_commutative_idempotent_and_topped() {
        for a in P {
            assert_eq!(join(a, a), a, "idempotent");
            assert_eq!(join(a, Provenance::Unknown), Provenance::Unknown, "top absorbs");
            for b in P {
                assert_eq!(join(a, b), join(b, a), "commutative");
                for c in P {
                    assert_eq!(join(join(a, b), c), join(a, join(b, c)), "associative");
                }
            }
        }
    }

    fn workspace(files: &[(&str, &str, &str)]) -> (Vec<SourceFile>, CallGraph, Dataflow) {
        let sources: Vec<SourceFile> = files
            .iter()
            .map(|(path, krate, text)| SourceFile::new(path, krate, TargetKind::Lib, text))
            .collect();
        let graph = CallGraph::build(&sources);
        let flow = Dataflow::compute(&sources, &graph);
        (sources, graph, flow)
    }

    #[test]
    fn literal_args_propagate_through_two_calls() {
        let (_, g, flow) = workspace(&[(
            "crates/sim/src/lib.rs",
            "sim",
            "pub fn a() { b(0xDEAD_BEEF); }\n\
             pub fn b(s: u64) { c(s); }\n\
             pub fn c(s: u64) { consume(s); }\n\
             pub fn consume(s: u64) -> u64 { s }\n",
        )]);
        let c = g.find_fns(None, "c")[0];
        assert_eq!(flow.param_provenance(c, 0), Provenance::Literal);
    }

    #[test]
    fn uncalled_params_are_the_trusted_seed_boundary() {
        let (_, g, flow) = workspace(&[(
            "crates/sim/src/lib.rs",
            "sim",
            "pub fn entry(seed: u64) -> u64 { seed }\n",
        )]);
        let entry = g.find_fns(None, "entry")[0];
        assert_eq!(flow.param_provenance(entry, 0), Provenance::SeedDerived);
    }

    #[test]
    fn mixed_callers_join_to_unknown() {
        let (_, g, flow) = workspace(&[(
            "crates/sim/src/lib.rs",
            "sim",
            "pub fn lit() { sink(7); }\n\
             pub fn seeded(s: u64) { sink(s); }\n\
             pub fn sink(x: u64) -> u64 { x }\n",
        )]);
        // `seeded` itself is uncalled, so its param is SeedDerived;
        // sink then sees Literal from one caller and SeedDerived from
        // the other.
        let sink = g.find_fns(None, "sink")[0];
        assert_eq!(flow.param_provenance(sink, 0), Provenance::Unknown);
    }

    #[test]
    fn cfg_test_callers_do_not_propagate() {
        let (_, g, flow) = workspace(&[(
            "crates/sim/src/lib.rs",
            "sim",
            "pub fn sink(x: u64) -> u64 { x }\n\
             #[cfg(test)]\nmod tests {\n    fn t() { super::sink(42); }\n}\n",
        )]);
        let sink = g.find_fns(None, "sink")[0];
        assert_eq!(flow.param_provenance(sink, 0), Provenance::SeedDerived);
    }

    #[test]
    fn let_bindings_carry_provenance_to_eval() {
        let (files, g, flow) = workspace(&[(
            "crates/sim/src/lib.rs",
            "sim",
            "pub fn f() -> u64 { let x = 3; let y = x; y }\n",
        )]);
        let f = g.find_fns(None, "f")[0];
        assert_eq!(flow.ret_provenance(f), Some(Provenance::Literal));
        let file = &files[0];
        // Evaluate the trailing `y` expression directly.
        let y_token = (0..file.tokens().len())
            .rev()
            .find(|&i| file.token_text(i) == "y")
            .expect("fixture");
        let out = flow.eval_at(f, &files, &g, y_token..y_token + 1);
        assert_eq!(out.provenance, Provenance::Literal);
        assert!(out.indirect);
    }

    #[test]
    fn return_summaries_feed_call_sites() {
        let (_, g, flow) = workspace(&[(
            "crates/sim/src/lib.rs",
            "sim",
            "pub fn default_seed() -> u64 { 0xC0FFEE }\n\
             pub fn f() { sink(default_seed()); }\n\
             pub fn sink(x: u64) -> u64 { x }\n",
        )]);
        let default_seed = g.find_fns(None, "default_seed")[0];
        assert_eq!(flow.ret_provenance(default_seed), Some(Provenance::Literal));
        let sink = g.find_fns(None, "sink")[0];
        assert_eq!(flow.param_provenance(sink, 0), Provenance::Literal);
    }

    #[test]
    fn external_sources_taint_expressions() {
        let (files, g, flow) = workspace(&[(
            "crates/sim/src/lib.rs",
            "sim",
            "pub fn f() { let t = std::time::Instant::now(); consume(t); }\n\
             pub fn consume(x: u64) -> u64 { x }\n",
        )]);
        let consume = g.find_fns(None, "consume")[0];
        assert_eq!(flow.param_provenance(consume, 0), Provenance::External);
        let _ = files;
    }

    #[test]
    fn field_reads_are_unknown_not_flagged() {
        let (_, g, flow) = workspace(&[(
            "crates/sim/src/lib.rs",
            "sim",
            "pub struct S { seed: u64 }\n\
             impl S {\n    pub fn go(&self) { sink(self.seed); }\n}\n\
             pub fn sink(x: u64) -> u64 { x }\n",
        )]);
        let sink = g.find_fns(None, "sink")[0];
        assert_eq!(flow.param_provenance(sink, 0), Provenance::Unknown);
    }

    #[test]
    fn literal_consts_count_as_indirect_literal_evidence() {
        let (_, g, flow) = workspace(&[(
            "crates/sim/src/lib.rs",
            "sim",
            "const FIXED: u64 = 0xABCD;\n\
             pub fn f() { sink(FIXED); }\n\
             pub fn sink(x: u64) -> u64 { x }\n",
        )]);
        let sink = g.find_fns(None, "sink")[0];
        assert_eq!(flow.param_provenance(sink, 0), Provenance::Literal);
    }
}
