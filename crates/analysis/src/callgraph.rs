//! The workspace call graph: which `fn` calls which, across crates.
//!
//! Built once per scan from the per-file scope trees ([`scope`](crate::scope))
//! and token streams. Three steps:
//!
//! 1. **Definition harvest** — every `fn` scope becomes an [`FnDef`]
//!    carrying its crate, enclosing `impl` type/trait, parameter names
//!    (read from the header token range), and attribute facts
//!    (`#[doc(hidden)]`, `#[cfg(test)]`). Definitions are sorted by
//!    `(rel_path, byte_start)` so [`FnId`]s are deterministic regardless
//!    of the order files were loaded in.
//! 2. **Symbol tables** — crate-granular `BTreeMap`s: free fns keyed
//!    `(crate, name)`, methods keyed `(crate, type, name)`, plus a
//!    workspace-wide method-name index used for `.method(…)` receiver
//!    calls. Module paths inside a crate are deliberately flattened —
//!    the workspace never defines two same-named free fns in one crate,
//!    and when it someday does, both become candidates (an
//!    over-approximation, never a miss).
//! 3. **Call-site extraction** — a walk over each fn body's tokens.
//!    `name(`, `Type::name(`, `path::name(`, and `.name(` forms are
//!    classified; `use`-imports (including `{group, as rename}` lists)
//!    resolve bare names across crates; `.method(` calls resolve to
//!    **every** workspace impl of that method name, which is exactly the
//!    over-approximation that gives trait-dispatch edges (the
//!    `ResponsePlan::fill_chunk` family). Anything else is recorded as
//!    [`Resolution::External`] — never silently dropped, so the JSON dump
//!    shows precisely where resolution gave up (macros, std, locals).
//!
//! Known limits (documented in `ANALYSIS.md`): macro-generated code is
//! invisible (the lexer sees the un-expanded tokens), trait-object calls
//! are over-approximated to all same-named impls, and function pointers /
//! closures passed as values produce no edges.

use crate::json::Value;
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// Index of an [`FnDef`] in [`CallGraph::fns`].
pub type FnId = usize;

/// One `fn` definition found in the workspace.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Index of the defining file in the slice the graph was built from.
    pub file: usize,
    /// Workspace-relative path of the defining file.
    pub rel_path: String,
    /// Crate directory name (`sim`, `hash`, …; `"."` for the root crate).
    pub crate_name: String,
    /// The function's name.
    pub name: String,
    /// Base name of the `impl` self type, for methods.
    pub self_type: Option<String>,
    /// Trait name, when defined inside `impl Trait for Type` or a
    /// `trait` body (default methods).
    pub trait_name: Option<String>,
    /// 1-based line of the body's opening brace.
    pub line: usize,
    /// Byte range of the body in the masked text.
    pub byte_range: Range<usize>,
    /// Token-index range of the body (tokens strictly inside the braces).
    pub body_tokens: Range<usize>,
    /// Token-index range of the header (attributes through parameter list).
    pub header_tokens: Range<usize>,
    /// Parameter names, in order (`self` included when present).
    pub params: Vec<String>,
    /// Does the header carry `#[doc(hidden)]`?
    pub doc_hidden: bool,
    /// Is the definition inside a `#[cfg(test)]` region?
    pub cfg_test: bool,
}

impl FnDef {
    /// `Type::name` for methods, plain `name` for free fns.
    pub fn qualified_name(&self) -> String {
        match &self.self_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Where a call site's callee resolved to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolution {
    /// One or more candidate workspace fns (several for `.method(` calls
    /// that over-approximate trait dispatch).
    Resolved(Vec<FnId>),
    /// Not a workspace fn: std, an external crate, a local closure, or a
    /// tuple-struct constructor. The name is kept for the dump.
    External(String),
}

/// One call site inside a workspace fn body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The calling fn.
    pub caller: FnId,
    /// Index of the calling file (same slice as [`FnDef::file`]).
    pub file: usize,
    /// Token index of the callee-name identifier.
    pub token: usize,
    /// 1-based line of the callee-name identifier.
    pub line: usize,
    /// The callee name as written (last path segment).
    pub name: String,
    /// Was this a `.name(` receiver call?
    pub method_call: bool,
    /// What the name resolved to.
    pub resolution: Resolution,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every fn definition, sorted by `(rel_path, byte_start)`.
    pub fns: Vec<FnDef>,
    /// Every call site, sorted by `(caller, token)`.
    pub calls: Vec<CallSite>,
    /// Call-site indices grouped by caller, parallel to `fns`.
    callers: Vec<Vec<usize>>,
    /// `(file, token) -> call index`, for dataflow lookups.
    by_token: BTreeMap<(usize, usize), usize>,
}

/// Map an `extern crate` lib name (as it appears in `use` paths) to the
/// crate directory name used by [`SourceFile::crate_name`].
pub fn extern_crate_dir(lib_name: &str) -> Option<String> {
    match lib_name {
        "rfid_bfce" => Some("core".to_string()),
        "rfid_bfce_repro" => Some(".".to_string()),
        _ => lib_name.strip_prefix("rfid_").map(str::to_string),
    }
}

/// Keywords and control forms that look like `name(` in the token stream
/// but are never workspace calls worth an edge.
const NON_CALL_IDENTS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "let", "in",
    "as", "where", "impl", "dyn", "move", "ref", "mut", "pub", "use",
    "crate", "super", "self", "Self", "box", "unsafe", "else", "break",
    "continue",
];

impl CallGraph {
    /// Build the graph from every loaded source file. File order does not
    /// affect the result: definitions and calls are sorted by stable keys.
    pub fn build(files: &[SourceFile]) -> Self {
        let fns = harvest_fns(files);
        let tables = SymbolTables::build(&fns);
        let imports: Vec<ImportMap> = files.iter().map(ImportMap::parse).collect();

        let mut calls = Vec::new();
        for (id, def) in fns.iter().enumerate() {
            let file = &files[def.file];
            extract_calls(id, def, file, &imports[def.file], &tables, &mut calls);
        }
        calls.sort_by(|a, b| {
            let ka = (&fns[a.caller].rel_path, fns[a.caller].byte_range.start, a.token);
            let kb = (&fns[b.caller].rel_path, fns[b.caller].byte_range.start, b.token);
            ka.cmp(&kb)
        });

        let mut callers = vec![Vec::new(); fns.len()];
        let mut by_token = BTreeMap::new();
        for (i, c) in calls.iter().enumerate() {
            callers[c.caller].push(i);
            by_token.insert((c.file, c.token), i);
        }
        CallGraph {
            fns,
            calls,
            callers,
            by_token,
        }
    }

    /// Call sites made by `caller`.
    pub fn calls_from(&self, caller: FnId) -> impl Iterator<Item = &CallSite> {
        self.callers[caller].iter().map(|&i| &self.calls[i])
    }

    /// The resolution of the call whose callee-name identifier is token
    /// `token` of file `file`, if that position is a recorded call site.
    pub fn resolution_at(&self, file: usize, token: usize) -> Option<&CallSite> {
        self.by_token.get(&(file, token)).map(|&i| &self.calls[i])
    }

    /// Fn ids whose definition matches `(self_type, name)`; `None` self
    /// type means free fns.
    pub fn find_fns(&self, self_type: Option<&str>, name: &str) -> Vec<FnId> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, d)| d.name == name && d.self_type.as_deref() == self_type)
            .map(|(i, _)| i)
            .collect()
    }

    /// BFS over resolved edges from `seeds`; returns every reachable fn
    /// (seeds included).
    pub fn reachable_from(&self, seeds: &[FnId]) -> BTreeSet<FnId> {
        let mut seen: BTreeSet<FnId> = seeds.iter().copied().collect();
        let mut queue: Vec<FnId> = seeds.to_vec();
        while let Some(id) = queue.pop() {
            for call in self.calls_from(id) {
                if let Resolution::Resolved(targets) = &call.resolution {
                    for &t in targets {
                        if seen.insert(t) {
                            queue.push(t);
                        }
                    }
                }
            }
        }
        seen
    }

    /// Count of resolved edges whose **target** lives in `crate_name`.
    pub fn resolved_edges_into(&self, crate_name: &str) -> usize {
        self.calls
            .iter()
            .filter_map(|c| match &c.resolution {
                Resolution::Resolved(ts) => Some(ts),
                Resolution::External(_) => None,
            })
            .flat_map(|ts| ts.iter())
            .filter(|&&t| self.fns[t].crate_name == crate_name)
            .count()
    }

    /// The graph as a JSON value, for `--dump-callgraph` and
    /// `--format json`. Shape:
    /// `{ "fns": [...], "calls": [...], "crates": {name: resolved-edges-in} }`.
    pub fn to_json(&self) -> Value {
        let fns = self
            .fns
            .iter()
            .map(|d| {
                let mut obj = vec![
                    ("crate".to_string(), Value::Str(d.crate_name.clone())),
                    ("file".to_string(), Value::Str(d.rel_path.clone())),
                    ("line".to_string(), Value::Num(d.line as f64)),
                    ("name".to_string(), Value::Str(d.name.clone())),
                ];
                if let Some(t) = &d.self_type {
                    obj.push(("self_type".to_string(), Value::Str(t.clone())));
                }
                if let Some(t) = &d.trait_name {
                    obj.push(("trait".to_string(), Value::Str(t.clone())));
                }
                obj.push((
                    "params".to_string(),
                    Value::Arr(d.params.iter().cloned().map(Value::Str).collect()),
                ));
                if d.doc_hidden {
                    obj.push(("doc_hidden".to_string(), Value::Bool(true)));
                }
                if d.cfg_test {
                    obj.push(("cfg_test".to_string(), Value::Bool(true)));
                }
                Value::Obj(obj)
            })
            .collect();
        let calls = self
            .calls
            .iter()
            .map(|c| {
                let mut obj = vec![
                    ("caller".to_string(), Value::Num(c.caller as f64)),
                    ("line".to_string(), Value::Num(c.line as f64)),
                    ("name".to_string(), Value::Str(c.name.clone())),
                ];
                if c.method_call {
                    obj.push(("method_call".to_string(), Value::Bool(true)));
                }
                match &c.resolution {
                    Resolution::Resolved(ts) => obj.push((
                        "targets".to_string(),
                        Value::Arr(ts.iter().map(|&t| Value::Num(t as f64)).collect()),
                    )),
                    Resolution::External(name) => {
                        obj.push(("external".to_string(), Value::Str(name.clone())))
                    }
                }
                Value::Obj(obj)
            })
            .collect();
        let mut crates: BTreeMap<String, usize> = BTreeMap::new();
        for d in &self.fns {
            crates.entry(d.crate_name.clone()).or_insert(0);
        }
        for (name, count) in crates.iter_mut() {
            *count = self.resolved_edges_into(name);
        }
        Value::Obj(vec![
            ("schema".to_string(), Value::Str("rfid-callgraph/v1".to_string())),
            ("fns".to_string(), Value::Arr(fns)),
            ("calls".to_string(), Value::Arr(calls)),
            (
                "crates".to_string(),
                Value::Obj(
                    crates
                        .into_iter()
                        .map(|(k, v)| (k, Value::Num(v as f64)))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Harvest every `fn` scope of every file into sorted [`FnDef`]s.
fn harvest_fns(files: &[SourceFile]) -> Vec<FnDef> {
    let mut fns = Vec::new();
    for (file_idx, file) in files.iter().enumerate() {
        let tree = file.scopes();
        for scope in &tree.scopes {
            let name = match &scope.kind {
                crate::scope::ScopeKind::Fn(name) => name.clone(),
                _ => continue,
            };
            // Enclosing impl/trait: walk the parent chain past blocks.
            let (mut self_type, mut trait_name) = (None, None);
            let mut parent = scope.parent;
            while let Some(p) = parent {
                match &tree.scopes[p].kind {
                    crate::scope::ScopeKind::Impl {
                        trait_name: t,
                        type_name,
                    } => {
                        self_type = Some(type_name.clone());
                        trait_name = t.clone();
                        break;
                    }
                    crate::scope::ScopeKind::Trait(t) => {
                        trait_name = Some(t.clone());
                        break;
                    }
                    crate::scope::ScopeKind::Fn(_) => break, // nested fn: free
                    _ => parent = tree.scopes[p].parent,
                }
            }
            let header = scope.header_tokens.clone();
            let params = fn_params(file, header.clone());
            let body_tokens = tokens_in_range(file, &scope.byte_range);
            fns.push(FnDef {
                file: file_idx,
                rel_path: file.rel_path.clone(),
                crate_name: file.crate_name.clone(),
                name,
                self_type,
                trait_name,
                line: scope.lines.start,
                byte_range: scope.byte_range.clone(),
                body_tokens,
                header_tokens: header.clone(),
                params,
                doc_hidden: header_has_doc_hidden(file, header),
                cfg_test: scope.cfg_test || file.in_test_region(scope.lines.start),
            });
        }
    }
    fns.sort_by(|a, b| {
        (&a.rel_path, a.byte_range.start).cmp(&(&b.rel_path, b.byte_range.start))
    });
    fns
}

/// Token indices whose span lies strictly inside `bytes` (the body braces).
fn tokens_in_range(file: &SourceFile, bytes: &Range<usize>) -> Range<usize> {
    let tokens = file.tokens();
    let start = tokens.partition_point(|t| t.start <= bytes.start);
    let end = tokens.partition_point(|t| t.end < bytes.end);
    start..end.max(start)
}

/// Parameter names from a `fn` header: identifiers directly followed by
/// `:` at parenthesis depth 1, plus a leading `self`.
fn fn_params(file: &SourceFile, header: Range<usize>) -> Vec<String> {
    let mut params = Vec::new();
    // Find the `fn` keyword, skip the generic list if any (it may itself
    // contain parens: `fn f<F: Fn(u64) -> u64>(g: F)`), then the params.
    let mut i = header.start;
    while i < header.end && file.token_text(i) != "fn" {
        i += 1;
    }
    while i < header.end && file.token_text(i) != "(" && file.token_text(i) != "<" {
        i += 1;
    }
    if i < header.end && file.token_text(i) == "<" {
        i = skip_angles(file, i, header.end).unwrap_or(header.end);
    }
    while i < header.end && file.token_text(i) != "(" {
        i += 1;
    }
    if i >= header.end {
        return params;
    }
    let mut depth = 0i32;
    let mut angle = 0i32;
    while i < header.end {
        let text = file.token_text(i);
        match text {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "<" => angle += 1,
            "<<" => angle += 2,
            ">" => angle -= 1,
            ">>" => angle -= 2,
            "self" if depth == 1 && angle <= 0 => params.push("self".to_string()),
            _ => {
                if depth == 1
                    && angle <= 0
                    && file.tokens()[i].kind == crate::lexer::TokenKind::Ident
                    && i + 1 < header.end
                    && file.token_text(i + 1) == ":"
                    // `::` lexes as its own token, so a path segment like
                    // `std::ops` never matches `ident :`.
                    && (i == header.start || file.token_text(i - 1) != ":")
                {
                    params.push(text.to_string());
                }
            }
        }
        i += 1;
    }
    params
}

/// Does the header carry `#[doc(hidden)]`?
fn header_has_doc_hidden(file: &SourceFile, header: Range<usize>) -> bool {
    let mut i = header.start;
    while i + 5 < header.end {
        if file.token_text(i) == "#"
            && file.token_text(i + 1) == "["
            && file.token_text(i + 2) == "doc"
            && file.token_text(i + 3) == "("
            && file.token_text(i + 4) == "hidden"
            && file.token_text(i + 5) == ")"
        {
            return true;
        }
        i += 1;
    }
    false
}

/// Crate-granular symbol tables over the harvested definitions.
struct SymbolTables {
    /// `(crate, name)` → free-fn ids.
    free_fns: BTreeMap<(String, String), Vec<FnId>>,
    /// `(crate, type, name)` → method ids.
    methods: BTreeMap<(String, String, String), Vec<FnId>>,
    /// `name` → every method id with that name, workspace-wide (for
    /// `.method(` receiver calls — the trait-dispatch over-approximation).
    methods_by_name: BTreeMap<String, Vec<FnId>>,
    /// `(crate, type)` pairs that exist, to resolve imported type names.
    types_by_name: BTreeMap<String, Vec<String>>,
}

impl SymbolTables {
    fn build(fns: &[FnDef]) -> Self {
        let mut free_fns: BTreeMap<(String, String), Vec<FnId>> = BTreeMap::new();
        let mut methods: BTreeMap<(String, String, String), Vec<FnId>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut types_by_name: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for (id, def) in fns.iter().enumerate() {
            match &def.self_type {
                Some(t) => {
                    methods
                        .entry((def.crate_name.clone(), t.clone(), def.name.clone()))
                        .or_default()
                        .push(id);
                    methods_by_name
                        .entry(def.name.clone())
                        .or_default()
                        .push(id);
                    let crates = types_by_name.entry(t.clone()).or_default();
                    if !crates.contains(&def.crate_name) {
                        crates.push(def.crate_name.clone());
                    }
                }
                None => free_fns
                    .entry((def.crate_name.clone(), def.name.clone()))
                    .or_default()
                    .push(id),
            }
        }
        SymbolTables {
            free_fns,
            methods,
            methods_by_name,
            types_by_name,
        }
    }
}

/// Per-file `use`-import map: local name → (crate dir, original name).
/// Only cross-crate and `crate::` imports are recorded; `use x::*` globs
/// record nothing (resolution then falls back to External, which the dump
/// makes visible rather than guessing).
struct ImportMap {
    names: BTreeMap<String, (String, String)>,
}

impl ImportMap {
    fn parse(file: &SourceFile) -> Self {
        let mut names = BTreeMap::new();
        let tokens = file.tokens();
        let mut i = 0;
        while i < tokens.len() {
            if file.token_text(i) != "use" {
                i += 1;
                continue;
            }
            // Find the terminating `;` of this use item.
            let mut end = i + 1;
            while end < tokens.len() && file.token_text(end) != ";" {
                end += 1;
            }
            Self::parse_use(file, i + 1, end, &mut names);
            i = end + 1;
        }
        ImportMap { names }
    }

    /// Parse one `use` path (tokens `start..end`, semicolon excluded).
    fn parse_use(
        file: &SourceFile,
        start: usize,
        end: usize,
        names: &mut BTreeMap<String, (String, String)>,
    ) {
        // Leading path segments up to a `{` group or the final name.
        let mut segs: Vec<String> = Vec::new();
        let mut i = start;
        while i < end {
            match file.token_text(i) {
                "::" => i += 1,
                "{" => {
                    // Group: each comma-separated element is one more
                    // segment chain appended to `segs` (nested groups are
                    // rare in this workspace; one level is parsed, deeper
                    // nesting falls through to External at call sites).
                    let prefix = segs.clone();
                    let mut elem: Vec<String> = Vec::new();
                    let mut rename: Option<String> = None;
                    let mut after_as = false;
                    let mut depth = 1;
                    i += 1;
                    while i < end && depth > 0 {
                        match file.token_text(i) {
                            "{" => depth += 1,
                            "}" => {
                                depth -= 1;
                                if depth == 0 {
                                    Self::record(&prefix, &elem, rename.take(), names);
                                    break;
                                }
                            }
                            "," if depth == 1 => {
                                Self::record(&prefix, &elem, rename.take(), names);
                                elem.clear();
                                after_as = false;
                            }
                            "as" => after_as = true,
                            "::" => {}
                            t if file.tokens()[i].kind == crate::lexer::TokenKind::Ident => {
                                if after_as {
                                    rename = Some(t.to_string());
                                } else {
                                    elem.push(t.to_string());
                                }
                            }
                            _ => {}
                        }
                        i += 1;
                    }
                    return;
                }
                "as" => {
                    // `use a::b as c;`
                    if let Some(rename) = (i + 1..end)
                        .find(|&j| file.tokens()[j].kind == crate::lexer::TokenKind::Ident)
                        .map(|j| file.token_text(j).to_string())
                    {
                        Self::record(&[], &segs, Some(rename), names);
                    }
                    return;
                }
                "*" => return, // glob: record nothing
                t if file.tokens()[i].kind == crate::lexer::TokenKind::Ident => {
                    segs.push(t.to_string());
                    i += 1;
                }
                _ => i += 1,
            }
        }
        Self::record(&[], &segs, None, names);
    }

    /// Record one import chain (`prefix` + `elem`), optionally renamed.
    fn record(
        prefix: &[String],
        elem: &[String],
        rename: Option<String>,
        names: &mut BTreeMap<String, (String, String)>,
    ) {
        let mut segs: Vec<&str> = prefix.iter().map(String::as_str).collect();
        segs.extend(elem.iter().map(String::as_str));
        if segs.len() < 2 {
            return; // `use foo;` brings in a crate name, not an item
        }
        let head = segs[0];
        let crate_dir = if head == "crate" || head == "self" || head == "super" {
            // Same-crate import: the call-site fallback already searches
            // the defining crate first, so nothing to record.
            return;
        } else {
            match extern_crate_dir(head) {
                Some(dir) => dir,
                None => return, // std / external dependency
            }
        };
        let original = segs[segs.len() - 1].to_string();
        if original == "self" {
            return;
        }
        let local = rename.unwrap_or_else(|| original.clone());
        names.insert(local, (crate_dir, original));
    }

    /// Where `name` was imported from, if anywhere.
    fn lookup(&self, name: &str) -> Option<&(String, String)> {
        self.names.get(name)
    }
}

/// Walk one fn body and record every call site.
fn extract_calls(
    caller: FnId,
    def: &FnDef,
    file: &SourceFile,
    imports: &ImportMap,
    tables: &SymbolTables,
    out: &mut Vec<CallSite>,
) {
    let tokens = file.tokens();
    let tree = file.scopes();
    let body = def.body_tokens.clone();
    for i in body.clone() {
        if tokens[i].kind != crate::lexer::TokenKind::Ident {
            continue;
        }
        let name = file.token_text(i);
        if NON_CALL_IDENTS.contains(&name) {
            continue;
        }
        // Callee name must be directly followed by `(`, optionally with a
        // turbofish `::<…>` between.
        let after = i + 1;
        let is_call = (after < body.end && file.token_text(after) == "(")
            || (after + 1 < body.end
                && file.token_text(after) == "::"
                && file.token_text(after + 1) == "<"
                && matches!(
                    skip_angles(file, after + 1, body.end),
                    Some(j) if j < body.end && file.token_text(j) == "("
                ));
        if !is_call {
            continue;
        }
        // Not a definition (`fn name(`) and not a macro (`name!(` has the
        // `!` before the paren, which already failed the check above).
        if i > 0 && file.token_text(i - 1) == "fn" {
            continue;
        }
        // Tokens belonging to a *nested* fn's body are that fn's calls,
        // not this one's (nested fns are harvested as their own FnDefs).
        let innermost = tree
            .enclosing_fn(tokens[i].start)
            .map(|(idx, _)| tree.scopes[idx].byte_range.start);
        if innermost != Some(def.byte_range.start) {
            continue;
        }
        let line = tokens[i].line;
        let prev = if i > 0 { file.token_text(i - 1) } else { "" };
        let (resolution, method_call) = if prev == "." {
            (resolve_method(name, tables), true)
        } else if prev == "::" {
            (resolve_path(file, i, def, imports, tables), false)
        } else {
            (resolve_bare(name, def, imports, tables), false)
        };
        out.push(CallSite {
            caller,
            file: def.file,
            token: i,
            line,
            name: name.to_string(),
            method_call,
            resolution,
        });
    }
}

/// Skip a `<…>` group starting at token `i` (which must be `<`); returns
/// the index just past the matching `>`.
fn skip_angles(file: &SourceFile, i: usize, end: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = i;
    while j < end {
        match file.token_text(j) {
            "<" => depth += 1,
            "<<" => depth += 2,
            ">" => depth -= 1,
            ">>" => depth -= 2,
            _ => {}
        }
        j += 1;
        if depth <= 0 {
            return Some(j);
        }
    }
    None
}

/// `.name(` receiver call: every workspace method with that name.
fn resolve_method(name: &str, tables: &SymbolTables) -> Resolution {
    match tables.methods_by_name.get(name) {
        Some(ids) if !ids.is_empty() => Resolution::Resolved(ids.clone()),
        _ => Resolution::External(format!(".{name}")),
    }
}

/// Bare `name(` call: same crate first, then imports. A name that matches
/// one of the enclosing fn's parameters is a closure invocation — the
/// param shadows any same-named workspace fn, and the closure's target is
/// statically unknowable, so it resolves External rather than to a
/// name-collided workspace fn.
fn resolve_bare(
    name: &str,
    def: &FnDef,
    imports: &ImportMap,
    tables: &SymbolTables,
) -> Resolution {
    if def.params.iter().any(|p| p == name) {
        return Resolution::External(format!("closure:{name}"));
    }
    if let Some(ids) = tables
        .free_fns
        .get(&(def.crate_name.clone(), name.to_string()))
    {
        return Resolution::Resolved(ids.clone());
    }
    if let Some((crate_dir, original)) = imports.lookup(name) {
        if let Some(ids) = tables.free_fns.get(&(crate_dir.clone(), original.clone())) {
            return Resolution::Resolved(ids.clone());
        }
    }
    Resolution::External(name.to_string())
}

/// Path call `…::name(`: walk the preceding path segments back from the
/// callee name and classify the head.
fn resolve_path(
    file: &SourceFile,
    name_idx: usize,
    def: &FnDef,
    imports: &ImportMap,
    tables: &SymbolTables,
) -> Resolution {
    let name = file.token_text(name_idx).to_string();
    // Collect the path segments before `name`, innermost first:
    // `a::B::name(` → segs = ["B", "a"].
    let mut segs: Vec<String> = Vec::new();
    let mut j = name_idx;
    while j >= 2 && file.token_text(j - 1) == "::" {
        let seg = file.token_text(j - 2);
        if file.tokens()[j - 2].kind != crate::lexer::TokenKind::Ident
            && !matches!(seg, "crate" | "self" | "super" | "Self")
        {
            break;
        }
        segs.push(seg.to_string());
        j -= 2;
    }
    if segs.is_empty() {
        return Resolution::External(name);
    }
    let qualifier = segs[0].clone(); // segment directly before `name`
    let head = segs[segs.len() - 1].clone(); // outermost segment

    // `Self::name(` — the enclosing impl type.
    if qualifier == "Self" {
        if let Some(t) = &def.self_type {
            if let Some(ids) =
                tables
                    .methods
                    .get(&(def.crate_name.clone(), t.clone(), name.clone()))
            {
                return Resolution::Resolved(ids.clone());
            }
        }
        return Resolution::External(format!("Self::{name}"));
    }

    // Which crate does the path root in?
    let root_crate = if head == "crate" || head == "self" || head == "super" {
        Some(def.crate_name.clone())
    } else {
        extern_crate_dir(&head)
    };

    // `Type::name(` where the qualifier is a type: methods table. The
    // qualifier's crate comes from the explicit path root, the import
    // map, or (same-crate / glob-imported types) any crate defining it.
    if qualifier
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_uppercase())
    {
        let mut candidate_crates: Vec<String> = Vec::new();
        if segs.len() > 1 {
            if let Some(c) = root_crate.clone() {
                candidate_crates.push(c);
            }
        } else if let Some((crate_dir, original)) = imports.lookup(&qualifier) {
            // Imported type, possibly renamed: use the original name.
            if let Some(ids) =
                tables
                    .methods
                    .get(&(crate_dir.clone(), original.clone(), name.clone()))
            {
                return Resolution::Resolved(ids.clone());
            }
        } else {
            candidate_crates.push(def.crate_name.clone());
            if let Some(crates) = tables.types_by_name.get(&qualifier) {
                for c in crates {
                    if !candidate_crates.contains(c) {
                        candidate_crates.push(c.clone());
                    }
                }
            }
        }
        for c in candidate_crates {
            if let Some(ids) = tables.methods.get(&(c, qualifier.clone(), name.clone())) {
                return Resolution::Resolved(ids.clone());
            }
        }
        return Resolution::External(format!("{qualifier}::{name}"));
    }

    // Module-qualified free fn: `crate::module::name(` or
    // `rfid_hash::prng::name(` — flatten the module path to the crate.
    if let Some(c) = root_crate {
        if let Some(ids) = tables.free_fns.get(&(c.clone(), name.clone())) {
            return Resolution::Resolved(ids.clone());
        }
        return Resolution::External(format!("{head}::{name}"));
    }
    // Lowercase head that is not a workspace crate: maybe an imported
    // module alias; otherwise external.
    if let Some((crate_dir, _)) = imports.lookup(&head) {
        if let Some(ids) = tables.free_fns.get(&(crate_dir.clone(), name.clone())) {
            return Resolution::Resolved(ids.clone());
        }
    }
    Resolution::External(format!("{head}::{name}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{SourceFile, TargetKind};

    fn graph(files: &[(&str, &str, &str)]) -> (Vec<SourceFile>, CallGraph) {
        let sources: Vec<SourceFile> = files
            .iter()
            .map(|(path, krate, text)| SourceFile::new(path, krate, TargetKind::Lib, text))
            .collect();
        let g = CallGraph::build(&sources);
        (sources, g)
    }

    #[test]
    fn free_fn_calls_resolve_within_a_crate() {
        let (_, g) = graph(&[(
            "crates/sim/src/lib.rs",
            "sim",
            "pub fn outer() { inner(7); }\npub fn inner(x: u64) -> u64 { x }\n",
        )]);
        assert_eq!(g.fns.len(), 2);
        let outer = g.find_fns(None, "outer")[0];
        let inner = g.find_fns(None, "inner")[0];
        let calls: Vec<_> = g.calls_from(outer).collect();
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].resolution, Resolution::Resolved(vec![inner]));
        assert_eq!(g.fns[inner].params, vec!["x"]);
    }

    #[test]
    fn use_imports_resolve_across_crates() {
        let (_, g) = graph(&[
            (
                "crates/hash/src/lib.rs",
                "hash",
                "pub fn stream_seed(master: u64, stream: u64) -> u64 { master ^ stream }\n",
            ),
            (
                "crates/sim/src/lib.rs",
                "sim",
                "use rfid_hash::stream_seed;\npub fn go(seed: u64) -> u64 { stream_seed(seed, 1) }\n",
            ),
        ]);
        let go = g.find_fns(None, "go")[0];
        let seed_fn = g.find_fns(None, "stream_seed")[0];
        let calls: Vec<_> = g.calls_from(go).collect();
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].resolution, Resolution::Resolved(vec![seed_fn]));
    }

    #[test]
    fn grouped_and_renamed_imports_resolve() {
        let (_, g) = graph(&[
            (
                "crates/hash/src/lib.rs",
                "hash",
                "pub fn alpha() {}\npub fn beta() {}\n",
            ),
            (
                "crates/sim/src/lib.rs",
                "sim",
                "use rfid_hash::{alpha, beta as b};\npub fn go() { alpha(); b(); }\n",
            ),
        ]);
        let go = g.find_fns(None, "go")[0];
        let resolved = g
            .calls_from(go)
            .filter(|c| matches!(c.resolution, Resolution::Resolved(_)))
            .count();
        assert_eq!(resolved, 2);
    }

    #[test]
    fn type_method_paths_resolve() {
        let (_, g) = graph(&[
            (
                "crates/hash/src/prng.rs",
                "hash",
                "pub struct SplitMix64 { s: u64 }\nimpl SplitMix64 {\n    pub fn new(seed: u64) -> Self { Self { s: seed } }\n}\n",
            ),
            (
                "crates/sim/src/lib.rs",
                "sim",
                "use rfid_hash::SplitMix64;\npub fn go(seed: u64) { let _ = SplitMix64::new(seed); }\n",
            ),
        ]);
        let go = g.find_fns(None, "go")[0];
        let new_fn = g.find_fns(Some("SplitMix64"), "new")[0];
        let calls: Vec<_> = g.calls_from(go).collect();
        assert_eq!(calls.len(), 1, "{:?}", calls);
        assert_eq!(calls[0].resolution, Resolution::Resolved(vec![new_fn]));
    }

    #[test]
    fn receiver_method_calls_overapproximate_to_all_impls() {
        let (_, g) = graph(&[
            (
                "crates/core/src/lib.rs",
                "core",
                "pub struct A;\nimpl A { pub fn fill_chunk(&self) {} }\n",
            ),
            (
                "crates/baselines/src/lib.rs",
                "baselines",
                "pub struct B;\nimpl B { pub fn fill_chunk(&self) {} }\npub fn drive(x: &B) { x.fill_chunk(); }\n",
            ),
        ]);
        let drive = g.find_fns(None, "drive")[0];
        let calls: Vec<_> = g.calls_from(drive).collect();
        assert_eq!(calls.len(), 1);
        match &calls[0].resolution {
            Resolution::Resolved(ts) => assert_eq!(ts.len(), 2, "both impls are candidates"),
            other => panic!("expected resolved, got {other:?}"),
        }
        assert!(calls[0].method_call);
    }

    #[test]
    fn unresolved_calls_are_recorded_as_external() {
        let (_, g) = graph(&[(
            "crates/sim/src/lib.rs",
            "sim",
            "pub fn go() { std::mem::drop(3); missing(); }\n",
        )]);
        let go = g.find_fns(None, "go")[0];
        let externals: Vec<String> = g
            .calls_from(go)
            .filter_map(|c| match &c.resolution {
                Resolution::External(n) => Some(n.clone()),
                _ => None,
            })
            .collect();
        assert!(externals.contains(&"std::drop".to_string()), "{externals:?}");
        assert!(externals.contains(&"missing".to_string()), "{externals:?}");
    }

    #[test]
    fn macros_and_definitions_are_not_calls() {
        let (_, g) = graph(&[(
            "crates/sim/src/lib.rs",
            "sim",
            "pub fn go() { println!(\"x\"); assert!(true); }\n",
        )]);
        let go = g.find_fns(None, "go")[0];
        assert_eq!(g.calls_from(go).count(), 0, "macro invocations are not calls");
    }

    #[test]
    fn doc_hidden_and_cfg_test_are_detected() {
        let (_, g) = graph(&[(
            "crates/hash/src/lib.rs",
            "hash",
            "#[doc(hidden)]\npub fn hidden_kernel() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n",
        )]);
        let hidden = g.find_fns(None, "hidden_kernel")[0];
        assert!(g.fns[hidden].doc_hidden);
        let helper = g.find_fns(None, "helper")[0];
        assert!(g.fns[helper].cfg_test);
    }

    #[test]
    fn reachability_walks_resolved_edges() {
        let (_, g) = graph(&[(
            "crates/sim/src/lib.rs",
            "sim",
            "pub fn a() { b(); }\npub fn b() { c(); }\npub fn c() {}\npub fn island() {}\n",
        )]);
        let a = g.find_fns(None, "a")[0];
        let island = g.find_fns(None, "island")[0];
        let reach = g.reachable_from(&[a]);
        assert_eq!(reach.len(), 3);
        assert!(!reach.contains(&island));
    }

    #[test]
    fn build_is_deterministic_under_file_order() {
        let files = [
            (
                "crates/hash/src/lib.rs",
                "hash",
                "pub fn stream_seed(m: u64, s: u64) -> u64 { m ^ s }\n",
            ),
            (
                "crates/sim/src/lib.rs",
                "sim",
                "use rfid_hash::stream_seed;\npub fn go(s: u64) -> u64 { stream_seed(s, 1) }\n",
            ),
        ];
        let (_, g1) = graph(&files);
        let mut rev = files;
        rev.reverse();
        let (_, g2) = graph(&rev);
        let sig = |g: &CallGraph| {
            let fns: Vec<_> = g
                .fns
                .iter()
                .map(|d| (d.rel_path.clone(), d.name.clone(), d.line))
                .collect();
            let calls: Vec<_> = g
                .calls
                .iter()
                .map(|c| {
                    (
                        g.fns[c.caller].qualified_name(),
                        c.name.clone(),
                        match &c.resolution {
                            Resolution::Resolved(ts) => {
                                ts.iter().map(|&t| g.fns[t].qualified_name()).collect()
                            }
                            Resolution::External(n) => vec![format!("ext:{n}")],
                        },
                    )
                })
                .collect();
            (fns, calls)
        };
        assert_eq!(sig(&g1), sig(&g2));
    }

    #[test]
    fn json_dump_counts_resolved_edges_per_crate() {
        let (_, g) = graph(&[
            (
                "crates/hash/src/lib.rs",
                "hash",
                "pub fn stream_seed(m: u64, s: u64) -> u64 { m ^ s }\n",
            ),
            (
                "crates/sim/src/lib.rs",
                "sim",
                "use rfid_hash::stream_seed;\npub fn go(s: u64) -> u64 { stream_seed(s, 1) }\n",
            ),
        ]);
        assert_eq!(g.resolved_edges_into("hash"), 1);
        let rendered = g.to_json().write();
        assert!(rendered.contains("rfid-callgraph/v1"), "{rendered}");
        assert!(rendered.contains("\"crates\""), "{rendered}");
    }
}
