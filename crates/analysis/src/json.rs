//! A minimal JSON document model — writer and parser, no dependencies.
//!
//! The linter needs JSON twice: to *emit* `--format json` / `--format
//! sarif` reports, and to *validate* the SARIF it emits (the fixture test
//! parses the output back and checks the SARIF 2.1.0 skeleton). Pulling
//! `serde_json` in for that would break the crate's no-dependency
//! contract, so this is the ~200-line subset actually required: objects
//! with ordered keys (deterministic output), arrays, strings with full
//! escaping, numbers, booleans, null.

use std::fmt::Write as _;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always written shortest-round-trip via `{}`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved on write.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Convenience: an integer value.
    pub fn int(n: usize) -> Self {
        Value::Num(n as f64)
    }

    /// Member lookup on an object (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Serialize to a compact JSON string.
    pub fn write(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Returns a byte-offset-tagged error message
    /// on malformed input.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing bytes at offset {}", p.i));
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Recursive-descent parser state.
struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .b
            .get(self.i)
            .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.i += 1;
        }
    }

    fn consume(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at offset {}",
                c as char, self.i
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(text.as_bytes()) {
            self.i += text.len();
            Ok(v)
        } else {
            Err(format!("malformed literal at offset {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        while self.b.get(self.i).is_some_and(|c| {
            c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E')
        }) {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("malformed number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| {
                                    format!("malformed \\u escape at offset {}", self.i)
                                })?;
                            // Surrogate pairs are not needed for our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                            self.i += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are sound).
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.consume(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.consume(b':')?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Value::Obj(vec![
            ("name".into(), Value::str("rfid-analysis")),
            ("count".into(), Value::int(3)),
            ("clean".into(), Value::Bool(false)),
            (
                "items".into(),
                Value::Arr(vec![Value::str("a\"b\\c\n"), Value::Null, Value::Num(2.5)]),
            ),
        ]);
        let text = doc.write();
        let back = Value::parse(&text).expect("own output parses");
        assert_eq!(back, doc);
    }

    #[test]
    fn integers_are_written_without_fraction() {
        assert_eq!(Value::int(8192).write(), "8192");
        assert_eq!(Value::Num(2.5).write(), "2.5");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Value::str("a\"b").write(), r#""a\"b""#);
        assert_eq!(Value::str("tab\there").write(), r#""tab\there""#);
        assert_eq!(Value::str("\u{1}").write(), r#""\u0001""#);
    }

    #[test]
    fn lookup_helpers_navigate_objects() {
        let doc = Value::parse(r#"{"a": {"b": [1, "two"]}}"#).expect("valid");
        let arr = doc.get("a").and_then(|a| a.get("b")).and_then(Value::as_arr).expect("path");
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert_eq!(arr[1].as_str(), Some("two"));
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse(r#"{"a": }"#).is_err());
        assert!(Value::parse("[1, 2] trailing").is_err());
        assert!(Value::parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn unicode_survives_the_round_trip() {
        let doc = Value::str("ε–δ guarantee · 标签");
        let back = Value::parse(&doc.write()).expect("parses");
        assert_eq!(back, doc);
    }
}
