//! Comment- and literal-masking for token-level scanning.
//!
//! Every rule in this crate works on *masked* source text: a byte-for-byte
//! copy of the file in which the contents of comments, string literals, and
//! character literals have been replaced by spaces (newlines are kept so
//! line numbers survive). Masking first means a rule that greps for
//! `Instant::now` cannot be fooled — in either direction — by a doc comment
//! mentioning the pattern or by a format string containing it.
//!
//! The masker is a small hand-rolled state machine over the byte stream. It
//! understands the token shapes that matter for masking Rust source:
//!
//! * line comments (`//`, `///`, `//!`) and *nested* block comments,
//! * plain, byte, and raw string literals (`"…"`, `b"…"`, `r#"…"#`),
//! * character and byte literals (`'x'`, `'\n'`, `b'\\'`),
//! * lifetimes (`'a`), which look like unterminated char literals and must
//!   **not** swallow the rest of the line.

/// Maskable token classes the scanner is currently inside.
enum State {
    /// Ordinary code: bytes are copied through.
    Code,
    /// `// …` to end of line.
    LineComment,
    /// `/* … */`, tracking nesting depth.
    BlockComment(u32),
    /// `"…"` with escape handling.
    Str,
    /// `r"…"` / `r#"…"#` with the given number of `#`s.
    RawStr(u32),
}

/// Replace comment and literal *contents* with spaces, preserving byte
/// offsets and line structure exactly. Delimiters themselves are masked too;
/// only code survives. Non-ASCII bytes inside masked regions become spaces
/// like everything else (the output is only ever searched for ASCII
/// patterns, so it does not need to stay valid UTF-8 — callers treat it as
/// bytes).
pub fn mask_source(src: &str) -> Vec<u8> {
    mask_source_with_comments(src).0
}

/// Like [`mask_source`], but also returns a parallel per-byte map marking
/// which bytes belong to a *comment* (introducer included). Strings and
/// char literals are masked but **not** marked — the map is how
/// [`suppress`](crate::suppress) tells a real `// analysis:allow(…)`
/// comment from a string literal or doc text that merely mentions the
/// syntax.
pub fn mask_source_with_comments(src: &str) -> (Vec<u8>, Vec<bool>) {
    let b = src.as_bytes();
    let mut out = b.to_vec();
    let mut comment = vec![false; b.len()];
    let mut state = State::Code;
    let mut i = 0;
    while i < b.len() {
        match state {
            State::Code => {
                match b[i] {
                    b'/' if b.get(i + 1) == Some(&b'/') => {
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        comment[i] = true;
                        comment[i + 1] = true;
                        i += 2;
                        state = State::LineComment;
                    }
                    b'/' if b.get(i + 1) == Some(&b'*') => {
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        comment[i] = true;
                        comment[i + 1] = true;
                        i += 2;
                        state = State::BlockComment(1);
                    }
                    b'"' => {
                        out[i] = b' ';
                        i += 1;
                        state = State::Str;
                    }
                    b'r' | b'b' if is_raw_string_start(b, i) => {
                        // `r`, `br`, or `b` prefix followed by `#…"` or `"`.
                        let (hashes, open) = raw_string_open(b, i);
                        for x in out.iter_mut().take(open + 1).skip(i) {
                            *x = b' ';
                        }
                        i = open + 1;
                        state = State::RawStr(hashes);
                    }
                    b'b' if b.get(i + 1) == Some(&b'\'') => {
                        // Byte literal b'…'.
                        out[i] = b' ';
                        i = mask_char_literal(b, &mut out, i + 1);
                    }
                    b'\'' => {
                        i = mask_char_or_lifetime(b, &mut out, i);
                    }
                    _ => i += 1,
                }
            }
            State::LineComment => {
                if b[i] == b'\n' {
                    state = State::Code;
                } else {
                    out[i] = b' ';
                    comment[i] = true;
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    out[i] = b' ';
                    out[i + 1] = b' ';
                    comment[i] = true;
                    comment[i + 1] = true;
                    i += 2;
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    out[i] = b' ';
                    out[i + 1] = b' ';
                    comment[i] = true;
                    comment[i + 1] = true;
                    i += 2;
                    state = State::BlockComment(depth + 1);
                } else {
                    if b[i] != b'\n' {
                        out[i] = b' ';
                        comment[i] = true;
                    }
                    i += 1;
                }
            }
            State::Str => {
                if b[i] == b'\\' && i + 1 < b.len() {
                    out[i] = b' ';
                    if b[i + 1] != b'\n' {
                        out[i + 1] = b' ';
                    }
                    i += 2;
                } else {
                    if b[i] == b'"' {
                        state = State::Code;
                    }
                    if b[i] != b'\n' {
                        out[i] = b' ';
                    }
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if b[i] == b'"' && closes_raw_string(b, i, hashes) {
                    let end = i + 1 + hashes as usize;
                    for x in out.iter_mut().take(end).skip(i) {
                        *x = b' ';
                    }
                    i = end;
                    state = State::Code;
                } else {
                    if b[i] != b'\n' {
                        out[i] = b' ';
                    }
                    i += 1;
                }
            }
        }
    }
    (out, comment)
}

/// Does a raw-string literal (`r"`, `r#"`, `br"`, …) start at `i`?
fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if b.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while b.get(j) == Some(&b'#') {
        j += 1;
    }
    b.get(j) == Some(&b'"')
}

/// For a raw string starting at `i`, return `(hash_count, quote_index)`.
fn raw_string_open(b: &[u8], i: usize) -> (u32, usize) {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    j += 1; // the `r`
    let mut hashes = 0;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (hashes, j)
}

/// Does the `"` at `i` close a raw string with `hashes` trailing `#`s?
fn closes_raw_string(b: &[u8], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| b.get(i + k) == Some(&b'#'))
}

/// Mask a character literal whose opening `'` is at `i`; returns the index
/// just past the closing `'`. Falls back to masking a single byte if the
/// literal is malformed (scanner robustness beats strictness here).
fn mask_char_literal(b: &[u8], out: &mut [u8], i: usize) -> usize {
    let mut j = i + 1;
    if b.get(j) == Some(&b'\\') {
        // Escape: step over the backslash *and* the escaped byte before
        // scanning for the closing quote — otherwise `'\''` stops at the
        // escaped quote and leaves the real closer unmasked as a stray
        // apostrophe (which then gets misread as a lifetime).
        j += 2;
        while j < b.len() && b[j] != b'\'' {
            j += 1;
        }
    } else {
        // One (possibly multi-byte) character.
        while j < b.len() && b[j] != b'\'' {
            j += 1;
        }
    }
    let end = (j + 1).min(b.len());
    for x in out.iter_mut().take(end).skip(i) {
        *x = b' ';
    }
    end
}

/// Distinguish a char literal from a lifetime at the `'` at index `i` and
/// mask accordingly; returns the next scan index.
fn mask_char_or_lifetime(b: &[u8], out: &mut [u8], i: usize) -> usize {
    // Escaped char ('\n', '\u{1F600}') is always a literal.
    if b.get(i + 1) == Some(&b'\\') {
        return mask_char_literal(b, out, i);
    }
    // 'x' — a closing quote right after one character means a literal.
    // Multi-byte chars ('é') advance by the UTF-8 length of that char.
    if let Some(&first) = b.get(i + 1) {
        let char_len = utf8_len(first);
        if b.get(i + 1 + char_len) == Some(&b'\'') {
            return mask_char_literal(b, out, i);
        }
    }
    // Otherwise it is a lifetime ('a, '_, 'static): leave it unmasked.
    i + 1
}

/// Byte length of a UTF-8 character from its first byte.
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask(src: &str) -> String {
        String::from_utf8(mask_source(src)).expect("ascii test input")
    }

    #[test]
    fn line_comments_are_blanked() {
        let m = mask("let x = 1; // Instant::now()\nlet y = 2;");
        assert!(!m.contains("Instant"));
        assert!(m.contains("let y = 2;"));
        assert_eq!(m.lines().count(), 2);
    }

    #[test]
    fn nested_block_comments_are_blanked() {
        let m = mask("a /* outer /* inner */ still comment */ b");
        assert!(m.starts_with('a'));
        assert!(m.ends_with('b'));
        assert!(!m.contains("inner"));
        assert!(!m.contains("still"));
    }

    #[test]
    fn strings_are_blanked_but_code_survives() {
        let m = mask(r#"call("thread_rng", x.unwrap());"#);
        assert!(!m.contains("thread_rng"));
        assert!(m.contains("unwrap()"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings_early() {
        let m = mask(r#"let s = "a\"b unwrap() c"; done"#);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("done"));
    }

    #[test]
    fn raw_strings_with_hashes_are_blanked() {
        let m = mask("let s = r#\"expect( \"# ; after");
        assert!(!m.contains("expect"));
        assert!(m.contains("after"));
    }

    #[test]
    fn char_literals_are_blanked() {
        let m = mask("let c = 'x'; let q = '\\''; let n = '\\n'; keep");
        assert!(m.contains("keep"));
        assert!(!m.contains('x'));
    }

    #[test]
    fn lifetimes_are_not_treated_as_chars() {
        let m = mask("fn f<'a>(x: &'a str) -> &'a str { x.unwrap() }");
        assert!(m.contains("unwrap()"));
        assert!(m.contains("<'a>"));
    }

    #[test]
    fn byte_and_raw_byte_strings_are_blanked() {
        let m = mask("let a = b\"expect(\"; let b = br#\"unwrap()\"#; tail");
        assert!(!m.contains("expect"));
        assert!(!m.contains("unwrap"));
        assert!(m.contains("tail"));
    }

    #[test]
    fn comment_map_marks_comments_but_not_strings() {
        let src = "let s = \"// not a comment\"; // real comment";
        let (_, comment) = mask_source_with_comments(src);
        let in_string = src.find("not").expect("test input");
        let in_comment = src.find("real").expect("test input");
        assert!(!comment[in_string], "string contents are not comments");
        assert!(comment[in_comment], "line comment bytes are marked");
        // The `//` introducer itself is part of the comment …
        let introducer = src.rfind("//").expect("test input");
        assert!(comment[introducer]);
        // … but code bytes are not.
        assert!(!comment[0]);
    }

    #[test]
    fn offsets_and_newlines_are_preserved() {
        let src = "abc // x\ndef \"y\" ghi";
        let m = mask(src);
        assert_eq!(m.len(), src.len());
        assert_eq!(m.find('\n'), src.find('\n'));
        assert!(m.contains("def"));
        assert!(m.contains("ghi"));
    }
}
