//! The brace-matched scope tree: which `fn`/`impl`/`mod` a token sits in.
//!
//! Built once per file from the [`lexer`](crate::lexer) token stream.
//! Every `{ … }` region becomes a [`Scope`] whose kind is judged from the
//! *item header* — the tokens between the previous scope boundary
//! (`{`, `}`, or `;` at the same depth) and the opening brace. Rules query
//! the tree through [`ScopeTree::chain_at`], which walks from the
//! innermost scope outward, so a rule can distinguish "first statement of
//! a library `fn`" (a precondition guard) from "inside a loop or closure
//! three blocks deep" (a hot-path panic risk).
//!
//! `#[cfg(test)]` attributes attach to the scope they precede; test
//! regions (including block-less `#[cfg(test)] use …;` items) are computed
//! here and exempt every rule.

use crate::lexer::{Token, TokenKind};
use std::ops::Range;

/// What kind of item a scope's braces delimit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScopeKind {
    /// A function body; carries the function's name.
    Fn(String),
    /// An `impl` block. `trait_name` is the last path segment of the
    /// implemented trait (`None` for inherent impls), `type_name` the
    /// base name of the implementing type.
    Impl {
        /// Last segment of the trait path, if this is a trait impl.
        trait_name: Option<String>,
        /// Base name of the self type (generics stripped).
        type_name: String,
    },
    /// An inline `mod name { … }`.
    Mod(String),
    /// A `trait name { … }` definition.
    Trait(String),
    /// A `struct`/`enum`/`union` body (field lists, not code).
    TypeBody(String),
    /// Any other braced region: blocks, closures, `match` bodies, loop
    /// bodies, struct literals.
    Block,
}

/// One braced region of a file.
#[derive(Debug, Clone)]
pub struct Scope {
    /// What the braces delimit.
    pub kind: ScopeKind,
    /// Byte range of the body, from the `{` to the matching `}` inclusive.
    pub byte_range: Range<usize>,
    /// 1-based line range (inclusive start, inclusive end).
    pub lines: Range<usize>,
    /// Index of the enclosing scope in [`ScopeTree::scopes`], if any.
    pub parent: Option<usize>,
    /// Did a `#[cfg(test)]` attribute precede this item?
    pub cfg_test: bool,
}

/// All scopes of one file, in opening order.
#[derive(Debug, Default)]
pub struct ScopeTree {
    /// The scopes, indexed by [`Scope::parent`].
    pub scopes: Vec<Scope>,
    /// 1-based line ranges (half-open) under `#[cfg(test)]`, including
    /// block-less items.
    test_lines: Vec<Range<usize>>,
}

impl ScopeTree {
    /// Build the tree for one lexed file. `masked` must be the text the
    /// tokens were lexed from.
    pub fn build(masked: &str, tokens: &[Token]) -> Self {
        Builder::new(masked, tokens).run()
    }

    /// Indices of the scopes containing byte `offset`, innermost first.
    pub fn chain_at(&self, offset: usize) -> Vec<usize> {
        let mut chain: Vec<usize> = self
            .scopes
            .iter()
            .enumerate()
            .filter(|(_, s)| s.byte_range.contains(&offset))
            .map(|(i, _)| i)
            .collect();
        // Containment is nested, so deeper scopes have larger start
        // offsets; innermost first means descending start order.
        chain.sort_by(|a, b| self.scopes[*b].byte_range.start.cmp(&self.scopes[*a].byte_range.start));
        chain
    }

    /// The innermost enclosing `fn` scope at `offset`, if any, along with
    /// the number of [`ScopeKind::Block`] scopes strictly between the
    /// offset and that `fn` body (0 = directly in the fn body).
    pub fn enclosing_fn(&self, offset: usize) -> Option<(usize, usize)> {
        let chain = self.chain_at(offset);
        let mut blocks = 0;
        for idx in chain {
            match &self.scopes[idx].kind {
                ScopeKind::Fn(_) => return Some((idx, blocks)),
                ScopeKind::Block => blocks += 1,
                // A nested item (fn inside fn would have matched already;
                // impl/mod/trait/type bodies reset the search — code
                // directly inside them is not inside a fn).
                _ => return None,
            }
        }
        None
    }

    /// Is 1-based `line` inside a `#[cfg(test)]` region?
    pub fn in_test_region(&self, line: usize) -> bool {
        self.test_lines.iter().any(|r| r.contains(&line))
    }

    /// All `impl Trait for Type` scopes (trait impls only), excluding
    /// test regions.
    pub fn trait_impls(&self) -> impl Iterator<Item = (&str, &str, &Scope)> {
        self.scopes.iter().filter_map(|s| match &s.kind {
            ScopeKind::Impl {
                trait_name: Some(t),
                type_name,
            } if !self.in_test_region(s.lines.start) => Some((t.as_str(), type_name.as_str(), s)),
            _ => None,
        })
    }

    /// Human-readable description of where `offset` sits, for diagnostics:
    /// the innermost named item, e.g. `fn fill_chunk`.
    pub fn describe(&self, offset: usize) -> Option<String> {
        for idx in self.chain_at(offset) {
            match &self.scopes[idx].kind {
                ScopeKind::Fn(name) => return Some(format!("fn {name}")),
                ScopeKind::Impl { type_name, .. } => {
                    return Some(format!("impl {type_name}"))
                }
                ScopeKind::Mod(name) => return Some(format!("mod {name}")),
                ScopeKind::Trait(name) => return Some(format!("trait {name}")),
                ScopeKind::TypeBody(name) => return Some(name.clone()),
                ScopeKind::Block => continue,
            }
        }
        None
    }
}

/// Incremental tree builder: a stack machine over the token stream.
struct Builder<'a> {
    masked: &'a str,
    tokens: &'a [Token],
    scopes: Vec<Scope>,
    test_lines: Vec<Range<usize>>,
    /// Open scopes: indices into `scopes`.
    stack: Vec<usize>,
    /// Token index where the current item header starts.
    header_start: usize,
}

impl<'a> Builder<'a> {
    fn new(masked: &'a str, tokens: &'a [Token]) -> Self {
        Self {
            masked,
            tokens,
            scopes: Vec::new(),
            test_lines: Vec::new(),
            stack: Vec::new(),
            header_start: 0,
        }
    }

    fn text(&self, i: usize) -> &'a str {
        self.tokens[i].text(self.masked)
    }

    fn run(mut self) -> ScopeTree {
        let mut i = 0;
        while i < self.tokens.len() {
            match (self.tokens[i].kind, self.text(i)) {
                (TokenKind::Punct, "{") => {
                    self.open(i);
                    self.header_start = i + 1;
                }
                (TokenKind::Punct, "}") => {
                    self.close(i);
                    self.header_start = i + 1;
                }
                (TokenKind::Punct, ";") => {
                    // A block-less `#[cfg(test)] use …;` item: record it.
                    if let Some(attr) = self.header_cfg_test(i) {
                        let start_line = self.tokens[attr].line;
                        let end_line = self.tokens[i].line;
                        self.test_lines.push(start_line..end_line + 1);
                    }
                    self.header_start = i + 1;
                }
                _ => {}
            }
            i += 1;
        }
        // Unclosed scopes (malformed source): close them at EOF so queries
        // stay well-defined.
        let end = self.masked.len();
        let end_line = self.tokens.last().map_or(1, |t| t.line);
        while let Some(idx) = self.stack.pop() {
            self.scopes[idx].byte_range.end = end;
            self.scopes[idx].lines.end = end_line + 1;
        }
        let mut test_lines = self.test_lines;
        for s in &self.scopes {
            let inherited = s
                .parent
                .map(|p| self.scopes[p].cfg_test)
                .unwrap_or(false);
            // Only the outermost flagged scope records a region; children
            // inherit the flag and would duplicate the range.
            if s.cfg_test && !inherited {
                test_lines.push(s.lines.clone());
            }
        }
        ScopeTree {
            scopes: self.scopes,
            test_lines,
        }
    }

    /// Open a scope at the `{` token `open_idx`, classifying it from the
    /// header tokens `self.header_start..open_idx`.
    fn open(&mut self, open_idx: usize) {
        let header = self.header_start..open_idx;
        let kind = self.classify(header.clone());
        let cfg_test = self.header_cfg_test(open_idx).is_some()
            && !matches!(kind, ScopeKind::Block);
        let parent = self.stack.last().copied();
        let inherited_test = parent.map(|p| self.scopes[p].cfg_test).unwrap_or(false);
        let line = self.tokens[open_idx].line;
        self.scopes.push(Scope {
            kind,
            byte_range: self.tokens[open_idx].start..self.masked.len(),
            lines: line..line, // end patched on close
            parent,
            cfg_test: cfg_test || inherited_test,
        });
        self.stack.push(self.scopes.len() - 1);
    }

    fn close(&mut self, close_idx: usize) {
        if let Some(idx) = self.stack.pop() {
            self.scopes[idx].byte_range.end = self.tokens[close_idx].end;
            self.scopes[idx].lines.end = self.tokens[close_idx].line + 1;
        }
    }

    /// If the current header (ending at token `end`) carries a
    /// `#[cfg(test)]` attribute, return the index of its `#` token.
    fn header_cfg_test(&self, end: usize) -> Option<usize> {
        let mut i = self.header_start;
        while i + 5 < end.min(self.tokens.len()) {
            if self.text(i) == "#"
                && self.text(i + 1) == "["
                && self.text(i + 2) == "cfg"
                && self.text(i + 3) == "("
                && self.text(i + 4) == "test"
                && self.text(i + 5) == ")"
            {
                return Some(i);
            }
            i += 1;
        }
        None
    }

    /// Judge a scope's kind from its header tokens.
    fn classify(&self, header: Range<usize>) -> ScopeKind {
        // Attributes (`#[…]`) are part of the header run; skip over them
        // when looking for the item keyword so `#[inline] fn f()` works.
        let mut i = header.start;
        let end = header.end;
        while i < end {
            match self.text(i) {
                "#" => {
                    // Skip the attribute's bracket group.
                    i += 1;
                    if i < end && self.text(i) == "[" {
                        let mut depth = 0usize;
                        while i < end {
                            match self.text(i) {
                                "[" => depth += 1,
                                "]" => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            i += 1;
                        }
                    }
                    i += 1;
                }
                "fn" => {
                    let name = self
                        .ident_after(i, end)
                        .unwrap_or_else(|| "<anonymous>".to_string());
                    return ScopeKind::Fn(name);
                }
                "impl" => return self.classify_impl(i + 1, end),
                "mod" => {
                    let name = self
                        .ident_after(i, end)
                        .unwrap_or_else(|| "<anonymous>".to_string());
                    return ScopeKind::Mod(name);
                }
                "trait" => {
                    let name = self
                        .ident_after(i, end)
                        .unwrap_or_else(|| "<anonymous>".to_string());
                    return ScopeKind::Trait(name);
                }
                "struct" | "enum" | "union" => {
                    let name = self
                        .ident_after(i, end)
                        .unwrap_or_else(|| "<anonymous>".to_string());
                    return ScopeKind::TypeBody(name);
                }
                // `match`/`if`/`for`/`while`/`loop`/`unsafe`/`else` headers,
                // closure pipes, struct literals: plain blocks. `where`
                // clauses never appear before `fn` (the keyword search
                // continues past them only for items, and items lead with
                // their keyword).
                _ => i += 1,
            }
        }
        ScopeKind::Block
    }

    /// The first plain identifier after token `i` (skipping nothing), up
    /// to `end`.
    fn ident_after(&self, i: usize, end: usize) -> Option<String> {
        ((i + 1)..end)
            .find(|&j| self.tokens[j].kind == TokenKind::Ident)
            .map(|j| self.text(j).to_string())
    }

    /// Classify an `impl` header starting just past the `impl` keyword.
    fn classify_impl(&self, start: usize, end: usize) -> ScopeKind {
        // Skip the generic parameter list `impl<…>` if present.
        let mut i = start;
        if i < end && self.text(i) == "<" {
            let mut depth = 0i32;
            while i < end {
                match self.text(i) {
                    "<" | "<<" => depth += if self.text(i) == "<<" { 2 } else { 1 },
                    ">" | ">>" => {
                        depth -= if self.text(i) == ">>" { 2 } else { 1 };
                        if depth <= 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        }
        // Find a `for` at angle-depth zero: `impl Trait for Type`.
        let mut depth = 0i32;
        let mut for_at = None;
        for j in i..end {
            match self.text(j) {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                "for" if depth <= 0 => {
                    for_at = Some(j);
                    break;
                }
                _ => {}
            }
        }
        match for_at {
            Some(f) => {
                let trait_name = self.last_path_segment(i, f);
                let type_name = self
                    .first_path_base(f + 1, end)
                    .unwrap_or_else(|| "<unknown>".to_string());
                ScopeKind::Impl {
                    trait_name: Some(trait_name.unwrap_or_else(|| "<unknown>".to_string())),
                    type_name,
                }
            }
            None => ScopeKind::Impl {
                trait_name: None,
                type_name: self
                    .first_path_base(i, end)
                    .unwrap_or_else(|| "<unknown>".to_string()),
            },
        }
    }

    /// Last identifier of the path spelled by tokens `start..end`, ignoring
    /// generic arguments (`rfid_sim::CardinalityEstimator<T>` →
    /// `CardinalityEstimator`).
    fn last_path_segment(&self, start: usize, end: usize) -> Option<String> {
        let mut depth = 0i32;
        let mut last = None;
        for j in start..end {
            match self.text(j) {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                t if depth <= 0 && self.tokens[j].kind == TokenKind::Ident => {
                    last = Some(t.to_string());
                }
                _ => {}
            }
        }
        last
    }

    /// First identifier of the (type) path at `start..end`, skipping
    /// references and leading path segments: `&mut crate::Foo<T>` → the
    /// *last* segment of the first path, i.e. `Foo`.
    fn first_path_base(&self, start: usize, end: usize) -> Option<String> {
        let mut base: Option<String> = None;
        for j in start..end {
            match self.text(j) {
                "&" | "mut" | "dyn" => continue,
                "<" | "where" => break,
                "::" => continue,
                t if self.tokens[j].kind == TokenKind::Ident => {
                    base = Some(t.to_string());
                    // Keep going across `::` to reach the last segment,
                    // but stop at anything else.
                    if j + 1 < end && self.text(j + 1) != "::" {
                        break;
                    }
                }
                _ => break,
            }
        }
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree(src: &str) -> ScopeTree {
        ScopeTree::build(src, &lex(src))
    }

    #[test]
    fn fn_bodies_are_recognized() {
        let src = "pub fn alpha(x: u64) -> u64 {\n    x\n}\n";
        let t = tree(src);
        assert_eq!(t.scopes.len(), 1);
        assert_eq!(t.scopes[0].kind, ScopeKind::Fn("alpha".into()));
        assert_eq!(t.scopes[0].lines, 1..4);
    }

    #[test]
    fn nested_blocks_count_toward_fn_depth() {
        let src = "fn f(xs: &[u64]) {\n    let a = xs.len();\n    for x in xs {\n        touch(*x);\n    }\n}\n";
        let t = tree(src);
        // Offset of `touch`:
        let touch = src.find("touch").expect("present");
        let (fn_idx, blocks) = t.enclosing_fn(touch).expect("inside fn");
        assert_eq!(t.scopes[fn_idx].kind, ScopeKind::Fn("f".into()));
        assert_eq!(blocks, 1, "one loop body between token and fn");
        let a = src.find("xs.len").expect("present");
        assert_eq!(t.enclosing_fn(a).map(|(_, b)| b), Some(0), "top of fn body");
    }

    #[test]
    fn impls_capture_trait_and_type() {
        let src = "impl rfid_sim::CardinalityEstimator for Zoe {\n    fn go(&self) {}\n}\nimpl Helper {\n    fn aux() {}\n}\n";
        let t = tree(src);
        let impls: Vec<(&str, &str)> = t.trait_impls().map(|(a, b, _)| (a, b)).collect();
        assert_eq!(impls, [("CardinalityEstimator", "Zoe")]);
    }

    #[test]
    fn generic_impls_resolve_names() {
        let src = "impl<T: Clone> Estimator for Wrapper<T> {\n}\n";
        let t = tree(src);
        let impls: Vec<(&str, &str)> = t.trait_impls().map(|(a, b, _)| (a, b)).collect();
        assert_eq!(impls, [("Estimator", "Wrapper")]);
    }

    #[test]
    fn cfg_test_mods_are_test_regions() {
        let src = "pub fn real() {}\n\n#[cfg(test)]\nmod tests {\n    fn t() {\n        real();\n    }\n}\n";
        let t = tree(src);
        assert!(!t.in_test_region(1));
        assert!(t.in_test_region(4));
        assert!(t.in_test_region(6));
        assert!(!t.in_test_region(9));
    }

    #[test]
    fn blockless_cfg_test_items_are_test_regions() {
        let src = "#[cfg(test)]\nuse std::collections::HashSet;\npub fn f() {}\n";
        let t = tree(src);
        assert!(t.in_test_region(1));
        assert!(t.in_test_region(2));
        assert!(!t.in_test_region(3));
    }

    #[test]
    fn struct_literals_and_match_bodies_are_blocks() {
        let src = "fn f(x: u32) -> P {\n    match x {\n        0 => P { a: 1 },\n        _ => P { a: 2 },\n    }\n}\n";
        let t = tree(src);
        let blocks = t
            .scopes
            .iter()
            .filter(|s| s.kind == ScopeKind::Block)
            .count();
        assert_eq!(blocks, 3, "match body + two struct literals: {:?}", t.scopes);
    }

    #[test]
    fn describe_names_the_innermost_item() {
        let src = "impl Zoe {\n    fn probe(&self) {\n        inner();\n    }\n}\n";
        let t = tree(src);
        let at = src.find("inner").expect("present");
        assert_eq!(t.describe(at).as_deref(), Some("fn probe"));
    }

    #[test]
    fn fn_inside_cfg_test_mod_inherits_the_region() {
        let src = "#[cfg(test)]\nmod tests {\n    pub fn helper(x: Option<u8>) -> u8 {\n        x.unwrap()\n    }\n}\npub fn after() {}\n";
        let t = tree(src);
        assert!(t.in_test_region(4));
        assert!(!t.in_test_region(7));
    }
}
